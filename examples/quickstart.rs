//! Quickstart: train PPEP on the simulated FX-8320 and project PPE
//! across every VF state for a running workload.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ppep_core::prelude::*;
use ppep_rig::TrainingRig;
use ppep_sim::chip::{ChipSimulator, SimConfig};
use ppep_workloads::combos::instances;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train the models once, offline — idle model (Eq. 2), voltage
    //    exponent α, dynamic power model (Eq. 3), Green Governors
    //    baseline. `train_quick` uses a reduced training roster; see
    //    `ppep-experiments` for the paper-sized pipeline.
    println!("training PPEP models on the simulated AMD FX-8320…");
    let mut rig = TrainingRig::fx8320(42);
    let models = rig.train_quick()?;
    println!(
        "  α = {:.2}, {} dynamic-model weights fitted",
        models.alpha(),
        models.dynamic_model().coefficient_count()
    );

    // 2. Run a workload: two instances of the memory-bound 433.milc.
    let mut sim = ChipSimulator::new(SimConfig::fx8320(42));
    sim.load_workload(&instances("433.milc", 2, 42));
    let record = sim.run_intervals(10).pop().expect("ran 10 intervals");
    println!(
        "\nmeasured at {}: {:.1} (diode {:.1})",
        record.cu_vf[0], record.measured_power, record.temperature
    );

    // 3. One PPEP pipeline pass: CPI → events → power → PPE, at every
    //    VF state, from that single interval's counters.
    let ppep = Ppep::new(models);
    let projection = ppep.project(&record)?;

    println!("\n  VF    power      throughput   energy/work   EDP");
    for chip in projection.chip.iter().rev() {
        println!(
            "  {}  {:>7.1}  {:>10.2e} ips  {:>8.2}  {:>8.3}",
            chip.vf, chip.power, chip.ips, chip.energy, chip.edp,
        );
    }
    println!(
        "\nenergy-optimal: {}   EDP-optimal: {}",
        projection.best_energy_vf(),
        projection.best_edp_vf()
    );
    println!(
        "fastest state under a 40 W cap: {:?}",
        projection
            .fastest_under_cap(Watts::new(40.0))
            .map(|v| v.to_string())
    );
    Ok(())
}
