//! Energy/EDP space exploration (the §V-C1 scenario).
//!
//! Runs a workload at the highest VF state, then uses PPEP to price
//! every VF state for the observed work — energy, delay, and EDP —
//! without ever switching the chip there. This is the "explore the
//! DVFS space in one step" capability the paper's title refers to.
//!
//! ```text
//! cargo run --release --example energy_explorer [benchmark] [instances]
//! ```

use ppep_core::prelude::*;
use ppep_dvfs::optimal::{best_edp_state, per_thread_ppe};
use ppep_rig::TrainingRig;
use ppep_sim::chip::{ChipSimulator, SimConfig};
use ppep_workloads::combos::instances;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let benchmark = args.next().unwrap_or_else(|| "433.milc".to_string());
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);

    println!("training PPEP…");
    let mut rig = TrainingRig::fx8320(42);
    let ppep = Ppep::new(rig.train_quick()?);

    let mut sim = ChipSimulator::new(SimConfig::fx8320_pg(42));
    sim.load_workload(&instances(&benchmark, n, 42));
    let record = sim.run_intervals(10).pop().expect("warmed up");
    let projection = ppep.project(&record)?;
    let per_thread = per_thread_ppe(&projection, n)?;

    println!("\n{benchmark} × {n} — per-thread PPE for a 10⁹-instruction quantum:");
    println!("  VF    energy      time        EDP");
    for p in per_thread.iter().rev() {
        println!(
            "  {}  {:>7.2} J  {:>7.3} s  {:>8.3} J·s",
            p.vf, p.energy, p.time, p.edp
        );
    }
    let best_energy = per_thread
        .iter()
        .min_by(|a, b| a.energy.total_cmp(&b.energy))
        .expect("non-empty ladder");
    println!(
        "\nenergy-optimal: {} ({:.2} J)   EDP-optimal: {}",
        best_energy.vf,
        best_energy.energy,
        best_edp_state(&per_thread)
    );
    println!(
        "NB share of chip power at {}: {:.0}%",
        projection.source_vf[0],
        projection.chip_at(projection.source_vf[0]).nb_ratio() * 100.0
    );
    Ok(())
}
