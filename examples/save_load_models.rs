//! Train once, save the calibration, reload it, and keep predicting —
//! the paper's "one-time, offline effort" workflow (§IV-B1).
//!
//! ```text
//! cargo run --release --example save_load_models
//! ```

use ppep_core::prelude::*;
use ppep_models::persist;
use ppep_rig::TrainingRig;
use ppep_sim::chip::{ChipSimulator, SimConfig};
use ppep_workloads::combos::instances;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training PPEP (the one-time offline effort)…");
    let mut rig = TrainingRig::fx8320(42);
    let models = rig.train_quick()?;

    // Save the calibration to a diffable text file.
    let path = std::env::temp_dir().join("fx8320.ppep");
    let text = persist::to_string(&models);
    std::fs::write(&path, &text)?;
    println!(
        "saved {} ({} lines). First lines:",
        path.display(),
        text.lines().count()
    );
    for line in text.lines().take(6) {
        println!("  {line}");
    }

    // A "different process" reloads it and predicts without any
    // retraining, sensors, or simulator access to the training runs.
    let restored = persist::from_string(&std::fs::read_to_string(&path)?)?;
    let ppep = Ppep::new(restored);
    // Power gating on, matching the PG-aware idle decomposition the
    // reloaded bundle carries.
    let mut sim = ChipSimulator::new(SimConfig::fx8320_pg(42));
    sim.load_workload(&instances("462.libquantum", 2, 42));
    let record = sim.run_intervals(8).pop().expect("warmed up");
    let projection = ppep.project(&record)?;
    println!(
        "\nreloaded model agrees with the chip: measured {:.1}, projected {:.1} at {}",
        record.measured_power,
        projection.chip_at(record.cu_vf[0]).power,
        record.cu_vf[0]
    );
    println!("energy-optimal state: {}", projection.best_energy_vf());
    Ok(())
}
