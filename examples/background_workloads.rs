//! How background workloads change the PPE picture (Figs. 8–9).
//!
//! Sweeps a memory-bound (433.milc) and a CPU-bound (458.sjeng)
//! benchmark from 1 to 4 concurrent instances and projects per-thread
//! energy and EDP at every VF state, reproducing the paper's three
//! §V-C1 observations:
//!
//! 1. the lowest VF state minimises energy regardless of load;
//! 2. a lone memory-bound instance is cheaper per thread than a
//!    contended multi-instance run (at high VF);
//! 3. a lone CPU-bound instance is *more expensive* per thread (no one
//!    shares the chip's fixed power).
//!
//! ```text
//! cargo run --release --example background_workloads
//! ```

use ppep_core::prelude::*;
use ppep_dvfs::optimal::per_thread_ppe;
use ppep_rig::TrainingRig;
use ppep_sim::chip::{ChipSimulator, SimConfig};
use ppep_workloads::combos::instances;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training PPEP…");
    let mut rig = TrainingRig::fx8320(42);
    let ppep = Ppep::new(rig.train_quick()?);
    let table = ppep.models().vf_table().clone();

    for benchmark in ["433.milc", "458.sjeng"] {
        println!("\n=== {benchmark} — per-thread energy (J per 10⁹ instructions) ===");
        print!("  n  ");
        for vf in table.states().rev() {
            print!("{:>8}", vf.to_string());
        }
        println!("   best");
        for n in 1..=4 {
            let mut sim = ChipSimulator::new(SimConfig::fx8320_pg(42));
            sim.load_workload(&instances(benchmark, n, 42));
            let record = sim.run_intervals(10).pop().expect("warmed up");
            let per_thread = per_thread_ppe(&ppep.project(&record)?, n)?;
            print!("  {n}  ");
            for p in per_thread.iter().rev() {
                print!("{:>8.2}", p.energy);
            }
            let best = per_thread
                .iter()
                .min_by(|a, b| a.energy.total_cmp(&b.energy))
                .expect("ladder non-empty");
            println!("   {}", best.vf);
        }
    }
    println!(
        "\nNote how the x1 row is the cheapest column-wise for the memory-bound\n\
         benchmark (no NB contention) but the most expensive for the CPU-bound\n\
         one (nobody to share fixed power with) — the paper's observations 2–3."
    );
    Ok(())
}
