//! Predictive boost control — the §IV-E firmware-PPEP extension.
//!
//! The paper had to disable the FX-8320's boost states because the
//! stock controller is opaque to software; it notes a firmware PPEP
//! could drive them instead. This example trains on the boost-exposed
//! seven-state ladder and shows the controller granting boost to a
//! lone thread with thermal/power headroom, then withdrawing it as
//! load and temperature climb.
//!
//! ```text
//! cargo run --release --example boost_control
//! ```

use ppep_core::daemon::PpepDaemon;
use ppep_core::prelude::*;
use ppep_dvfs::boost::BoostController;
use ppep_rig::TrainingRig;
use ppep_sim::chip::{ChipSimulator, SimConfig};
use ppep_types::Kelvin;
use ppep_workloads::combos::instances;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training PPEP on the boost-exposed seven-state ladder…");
    let mut rig = TrainingRig::with_config(SimConfig::fx8320_boost(42), 42);
    let models = rig.train_quick()?;
    let ppep = Ppep::new(models);

    for (threads, label) in [(1, "one busy core"), (8, "all cores busy")] {
        let controller = BoostController::new(
            ppep.clone(),
            VfTable::FX8320_SOFTWARE_STATES,
            Watts::new(140.0),
            Kelvin::new(335.0),
        )?;
        let mut sim = ChipSimulator::new(SimConfig::fx8320_boost(42));
        sim.load_workload(&instances("458.sjeng", threads, 42));
        sim.set_all_vf(controller.nominal_top());
        let mut daemon = PpepDaemon::new(ppep.clone(), ppep_sim::SimPlatform::new(sim), controller);

        println!("\n--- {label} (TDP 140 W, thermal limit 335 K) ---");
        println!("step  power     temp      per-CU states");
        for step in 0..8 {
            let s = daemon.step()?;
            let states: Vec<String> = s.decision.iter().map(|vf| vf.to_string()).collect();
            println!(
                "{:>4}  {:>7.1}  {:>7.1}  {:?}",
                step, s.record.measured_power, s.record.temperature, states
            );
        }
    }
    println!(
        "\nBoost bins are indices 6-7 (VF6/VF7): granted when the projection\n\
         proves they fit the envelope, withdrawn as headroom disappears."
    );
    Ok(())
}
