//! North-bridge DVFS exploration (the Fig. 11 study).
//!
//! The FX-8320's NB (memory controller + L3) runs at one fixed
//! operating point. The paper uses PPEP to ask: what if it had a
//! second, lower point (0.940 V, 1.1 GHz — idle −40%, dynamic −36%,
//! leading-load cycles +50%)? This example prices the full
//! (core VF × NB VF) grid for a workload and reports the energy
//! saving and iso-energy speedup an NB-DVFS design would offer.
//!
//! ```text
//! cargo run --release --example nb_dvfs_exploration [benchmark] [instances]
//! ```

use ppep_core::prelude::*;
use ppep_rig::TrainingRig;
use ppep_sim::chip::{ChipSimulator, SimConfig};
use ppep_types::vf::NbVfState;
use ppep_workloads::combos::instances;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let benchmark = args.next().unwrap_or_else(|| "433.milc".to_string());
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    println!("training PPEP…");
    let mut rig = TrainingRig::fx8320(42);
    let ppep = Ppep::new(rig.train_quick()?);

    let mut sim = ChipSimulator::new(SimConfig::fx8320_pg(42));
    sim.load_workload(&instances(&benchmark, n, 42));
    let record = sim.run_intervals(10).pop().expect("warmed up");

    println!("\n{benchmark} × {n} — the (core VF × NB VF) grid:");
    println!("  core   NB      power     time       energy");
    let mut min_hi = f64::INFINITY;
    let mut min_all = f64::INFINITY;
    for nb in [NbVfState::High, NbVfState::Low] {
        let projection = ppep.project_nb(&record, nb)?;
        for chip in projection.chip.iter().rev() {
            let e = chip.energy.as_joules();
            if nb == NbVfState::High {
                min_hi = min_hi.min(e);
            }
            min_all = min_all.min(e);
            println!(
                "  {}  {}  {:>7.1}  {:>7.3} s  {:>7.2} J",
                chip.vf,
                nb,
                chip.power,
                chip.time_for_work.as_secs(),
                e
            );
        }
    }
    println!(
        "\nbest energy, stock NB only : {min_hi:.2} J\n\
         best energy, NB DVFS       : {min_all:.2} J\n\
         energy saving from NB DVFS : {:.1}%",
        (min_hi - min_all) / min_hi * 100.0
    );
    Ok(())
}
