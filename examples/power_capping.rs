//! One-step power capping (the Fig. 7 scenario).
//!
//! A mixed four-workload combination runs on four compute units while
//! the power budget swings between 95 W and 40 W — like a laptop being
//! unplugged from wall power. PPEP's all-VF power predictions let the
//! controller pick the fastest per-CU assignment under the cap in a
//! single 200 ms interval; the reactive baseline walks the ladder one
//! rung at a time.
//!
//! ```text
//! cargo run --release --example power_capping
//! ```

use ppep_core::prelude::*;
use ppep_dvfs::capping::{IterativeCapping, OneStepCapping};
use ppep_rig::TrainingRig;
use ppep_sim::chip::{ChipSimulator, SimConfig};
use ppep_types::CuId;
use ppep_workloads::combos::fig7_workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training PPEP…");
    let mut rig = TrainingRig::fx8320(42);
    let ppep = Ppep::new(rig.train_quick()?);
    let table = ppep.models().vf_table().clone();

    let cap_at = |step: usize| {
        if (step / 15).is_multiple_of(2) {
            Watts::new(95.0)
        } else {
            Watts::new(40.0)
        }
    };

    // Run the same square-wave cap under both policies.
    for one_step in [true, false] {
        let mut sim = ChipSimulator::new(SimConfig::fx8320_pg(42));
        sim.load_workload(&fig7_workload(42));
        let mut predictive = OneStepCapping::new(ppep.clone(), cap_at(0));
        let mut reactive = IterativeCapping::new(cap_at(0), &table);
        reactive.hold_intervals = 4;

        println!(
            "\n--- {} policy ---",
            if one_step {
                "PPEP one-step"
            } else {
                "simple iterative"
            }
        );
        println!("step  cap     measured  decision");
        let mut violations = 0;
        for step in 0..60 {
            let cap = cap_at(step);
            let record = sim.step_interval();
            if record.measured_power > cap * 1.03 {
                violations += 1;
            }
            let decision = if one_step {
                predictive.set_cap(cap);
                let projection = ppep.project(&record)?;
                predictive.choose(&projection)?
            } else {
                reactive.set_cap(cap);
                reactive.observe_power(record.measured_power);
                reactive.choose(4)
            };
            for (cu, vf) in decision.iter().enumerate() {
                sim.set_cu_vf(CuId(cu), *vf)?;
            }
            if step % 5 == 0 {
                println!(
                    "{:>4}  {:>5.0}W  {:>7.1}W  {:?}",
                    step,
                    cap.as_watts(),
                    record.measured_power.as_watts(),
                    decision.iter().map(|v| v.to_string()).collect::<Vec<_>>()
                );
            }
        }
        println!("cap violations: {violations}/60 intervals");
    }
    Ok(())
}
