//! Sharding-equivalence properties for the capping service.
//!
//! The sharded [`CappingService`] is a pure concurrency refactor: for
//! any tenant→shard assignment and any frame interleaving that
//! preserves each tenant's own frame order, every tenant must read
//! back the *byte-identical* reply transcript it would have received
//! from the single-lock service. Grants only move at tick/admission
//! boundaries, so the property quantifies over per-interval
//! permutations of the submission order — independently chosen for
//! the baseline and the sharded run — plus arbitrary fault-report
//! substitutions shared by both runs.

use ppep_core::{Platform, Ppep};
use ppep_rig::TrainingRig;
use ppep_serve::{CappingService, ServeConfig};
use ppep_sim::chip::{ChipSimulator, SimConfig};
use ppep_sim::SimPlatform;
use ppep_telemetry::session::{frame_to_bytes, SessionFrame};
use ppep_types::Watts;
use ppep_workloads::combos::fig7_workload;
use proptest::prelude::*;
use std::sync::OnceLock;

const SEED: u64 = 42;

fn trained() -> &'static Ppep {
    static PPEP: OnceLock<Ppep> = OnceLock::new();
    PPEP.get_or_init(|| {
        Ppep::new(
            TrainingRig::fx8320(SEED)
                .train_quick()
                .expect("training succeeds"),
        )
    })
}

fn client(tenant: u64) -> SimPlatform {
    let seed = SEED ^ tenant.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut sim = ChipSimulator::new(SimConfig::fx8320_pg(seed));
    sim.load_workload(&fig7_workload(seed));
    SimPlatform::new(sim)
}

/// Stable per-interval submission order: tenants sorted by the
/// generated key, ties broken by tenant id (stable sort).
fn order_of(keys: &[u64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by_key(|&t| keys.get(t).copied().unwrap_or(0));
    order
}

/// Replays the scripted session and returns one reply transcript per
/// tenant. `orders` holds one submission-order key vector per
/// interval; `faults[interval][tenant]` swaps that submission for a
/// sensor-dropout fault report.
fn replay(
    service: &CappingService,
    tenants: usize,
    orders: &[Vec<u64>],
    faults: &[Vec<bool>],
) -> Vec<Vec<u8>> {
    let mut transcripts = vec![Vec::new(); tenants];
    let mut clients: Vec<SimPlatform> = (0..tenants as u64).map(client).collect();

    // Admissions happen in canonical tenant order on both sides: the
    // water-fill grant depends on the admitted set, not the shard map.
    for tenant in 0..tenants as u64 {
        let hello = frame_to_bytes(&SessionFrame::Hello {
            tenant,
            requested_cap: Watts::new(30.0 + 5.0 * tenant as f64),
        });
        let (reply, consumed) = service.handle_frame(&hello).expect("admission frame");
        assert_eq!(consumed, hello.len());
        transcripts[tenant as usize].extend_from_slice(&reply);
    }

    for (interval, keys) in orders.iter().enumerate() {
        for &tenant in &order_of(keys) {
            let platform = &mut clients[tenant];
            let frame = if faults[interval][tenant] {
                let _dropped = platform.sample().expect("sim sample");
                SessionFrame::FaultReport {
                    tenant: tenant as u64,
                    index: platform.current_interval(),
                    error: ppep_types::Error::SensorDropout {
                        sensor: "hall-sensor",
                    },
                }
            } else {
                SessionFrame::Submit {
                    tenant: tenant as u64,
                    record: Box::new(platform.sample().expect("sim sample")),
                }
            };
            let request = frame_to_bytes(&frame);
            let (reply, consumed) = service.handle_frame(&request).expect("scripted frame");
            assert_eq!(consumed, request.len());
            transcripts[tenant].extend_from_slice(&reply);
        }
        service.tick().expect("tick holds the budget invariant");
    }
    transcripts
}

fn config_for(tenants: usize, shards: u32) -> ServeConfig {
    let mut config = ServeConfig::new(Watts::new(40.0 * tenants as f64));
    config.max_sessions = tenants as u32 + 1;
    config.min_grant = Watts::new(5.0);
    config.shards = shards;
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Byte-identical per-tenant reply transcripts: single-lock vs
    /// sharded, under independent interleavings and an arbitrary
    /// tenant→shard assignment (out-of-range shard ids wrap).
    #[test]
    fn sharded_replies_match_single_lock_per_tenant(
        tenants in 2usize..=5,
        shards in 2u32..=4,
        raw_assignment in prop::collection::vec(0usize..8, 5),
        base_orders in prop::collection::vec(prop::collection::vec(any::<u64>(), 5), 3),
        shard_orders in prop::collection::vec(prop::collection::vec(any::<u64>(), 5), 3),
        fault_bits in prop::collection::vec(prop::collection::vec(0u8..8, 5), 3),
    ) {
        let faults: Vec<Vec<bool>> = fault_bits
            .iter()
            .map(|row| row.iter().take(tenants).map(|&b| b == 0).collect())
            .collect();
        let truncate = |orders: &[Vec<u64>]| -> Vec<Vec<u64>> {
            orders
                .iter()
                .map(|row| row.iter().take(tenants).copied().collect())
                .collect()
        };
        let base_orders = truncate(&base_orders);
        let shard_orders = truncate(&shard_orders);
        let assignment: Vec<(u64, usize)> = raw_assignment
            .iter()
            .take(tenants)
            .enumerate()
            .map(|(t, &s)| (t as u64, s))
            .collect();

        let single = CappingService::new(trained().clone(), config_for(tenants, 1));
        let sharded = CappingService::new(trained().clone(), config_for(tenants, shards))
            .with_assignment(&assignment);

        let base = replay(&single, tenants, &base_orders, &faults);
        let split = replay(&sharded, tenants, &shard_orders, &faults);
        for (tenant, (lhs, rhs)) in base.iter().zip(&split).enumerate() {
            prop_assert!(
                lhs == rhs,
                "tenant {tenant} transcript diverged between single-lock and \
                 {shards}-shard service ({} vs {} bytes)",
                lhs.len(),
                rhs.len()
            );
        }
    }
}
