//! End-to-end integration tests spanning every crate: simulator →
//! PMU → training → PPEP engine → DVFS policies.
//!
//! These deliberately run the *whole* pipeline the way a downstream
//! user would, with a shared quick-trained model bundle.

use ppep_core::daemon::{DvfsController, PpepDaemon, StaticController};
use ppep_core::energy::EnergyPredictor;
use ppep_core::Ppep;
use ppep_dvfs::capping::OneStepCapping;
use ppep_dvfs::governor::OndemandGovernor;
use ppep_dvfs::optimal::per_thread_ppe;
use ppep_dvfs::EnergyOptimalController;
use ppep_models::trainer::TrainedModels;
use ppep_rig::TrainingRig;
use ppep_sim::chip::{ChipSimulator, SimConfig};
use ppep_sim::SimPlatform;
use ppep_types::{VfTable, Watts};
use ppep_workloads::combos::{fig7_workload, instances};
use std::sync::OnceLock;

fn models() -> &'static TrainedModels {
    static MODELS: OnceLock<TrainedModels> = OnceLock::new();
    MODELS.get_or_init(|| {
        TrainingRig::fx8320(42)
            .train_quick()
            .expect("training succeeds")
    })
}

#[test]
fn trained_bundle_is_complete() {
    let m = models();
    assert!(m.alpha() > 1.5 && m.alpha() < 2.6, "alpha {}", m.alpha());
    assert!(
        m.chip_power().pg_model().is_some(),
        "PG decomposition attached"
    );
    assert_eq!(m.vf_table().len(), 5);
    assert!(m.green_governors().weight() > 0.0);
}

#[test]
fn whole_pipeline_estimates_unseen_workloads() {
    // A workload absent from the quick training set, at an untrained
    // VF state, with a phase mix the model never saw.
    let ppep = Ppep::new(models().clone());
    let table = ppep.models().vf_table().clone();
    let mut sim = ChipSimulator::new(SimConfig::fx8320(42));
    sim.load_workload(&instances("470.lbm", 3, 42));
    sim.set_all_vf(table.state(2).unwrap());
    let records = sim.run_intervals(12);
    let mut errors = Vec::new();
    for r in &records[4..] {
        let est = ppep
            .models()
            .chip_power()
            .estimate_chip(&r.samples, r.cu_vf[0], &table, r.temperature)
            .expect("finite estimate");
        errors.push(
            (est.as_watts() - r.measured_power.as_watts()).abs() / r.measured_power.as_watts(),
        );
    }
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    assert!(
        mean < 0.15,
        "chip estimation AAE on unseen workload: {mean}"
    );
}

#[test]
fn daemon_with_energy_policy_saves_energy_vs_static_top() {
    let run = |energy_policy: bool| -> f64 {
        let ppep = Ppep::new(models().clone());
        let table = ppep.models().vf_table().clone();
        let mut sim = ChipSimulator::new(SimConfig::fx8320_pg(42));
        sim.load_workload(&instances("433.milc", 4, 42));
        let steps = if energy_policy {
            let mut daemon = PpepDaemon::new(ppep, SimPlatform::new(sim), EnergyOptimalController);
            daemon.run(20).into_result().expect("daemon runs")
        } else {
            let mut daemon = PpepDaemon::new(
                ppep,
                SimPlatform::new(sim),
                StaticController {
                    vf: table.highest(),
                },
            );
            daemon.run(20).into_result().expect("daemon runs")
        };
        // Energy per retired instruction over the run (nJ).
        let energy: f64 = steps
            .iter()
            .map(|s| s.record.measured_energy().as_joules())
            .sum();
        let work: f64 = steps.iter().map(|s| s.projection.work_instructions).sum();
        energy / work * 1e9
    };
    let optimal = run(true);
    let static_top = run(false);
    assert!(
        optimal < static_top * 0.8,
        "energy policy {optimal:.2} nJ/inst vs static-top {static_top:.2}"
    );
}

#[test]
fn capping_daemon_respects_cap_end_to_end() {
    let ppep = Ppep::new(models().clone());
    let cap = Watts::new(55.0);
    let mut sim = ChipSimulator::new(SimConfig::fx8320_pg(42));
    sim.load_workload(&fig7_workload(42));
    let controller = OneStepCapping::new(ppep.clone(), cap);
    let mut daemon = PpepDaemon::new(ppep, SimPlatform::new(sim), controller);
    let steps = daemon.run(10).into_result().expect("daemon runs");
    for s in &steps[1..] {
        assert!(
            s.record.measured_power <= cap * 1.06,
            "{} exceeded the cap at {:?}",
            s.record.measured_power,
            s.record.index
        );
    }
    // And it must not be trivially parked at VF1: some CU should run
    // above the bottom state under a 55 W budget.
    let last = steps.last().unwrap();
    assert!(
        last.decision.iter().any(|vf| vf.index() > 0),
        "controller sandbagging: {:?}",
        last.decision
    );
}

#[test]
fn ondemand_governor_tracks_load() {
    let ppep = Ppep::new(models().clone());
    let table = ppep.models().vf_table().clone();
    let sim = ChipSimulator::new(SimConfig::fx8320_pg(42));
    let mut daemon = PpepDaemon::new(
        ppep,
        SimPlatform::new(sim),
        OndemandGovernor::new(table.clone()),
    );
    // Idle chip: governor decays to the lowest state.
    let steps = daemon.run(6).into_result().expect("daemon runs");
    assert_eq!(steps.last().unwrap().decision[0], table.lowest());
    // Load appears: governor jumps to the top.
    daemon
        .platform_mut()
        .load_workload(&instances("458.sjeng", 2, 42));
    let steps = daemon.run(2).into_result().expect("daemon runs");
    assert_eq!(steps.last().unwrap().decision[0], table.highest());
}

#[test]
fn energy_predictor_consistency_across_interfaces() {
    let predictor = EnergyPredictor::new(models().clone());
    let mut sim = ChipSimulator::new(SimConfig::fx8320(42));
    sim.load_workload(&instances("403.gcc", 2, 42));
    let records = sim.run_intervals(6);
    let (ppep_errs, gg_errs) = predictor.trace_errors(&records).expect("trace errors");
    assert_eq!(ppep_errs.len(), records.len() - 1);
    assert_eq!(gg_errs.len(), records.len() - 1);
    for e in ppep_errs.iter().chain(&gg_errs) {
        assert!(e.is_finite() && *e >= 0.0);
    }
}

#[test]
fn per_thread_metrics_match_projection_chip_power() {
    let ppep = Ppep::new(models().clone());
    let mut sim = ChipSimulator::new(SimConfig::fx8320_pg(42));
    sim.load_workload(&instances("458.sjeng", 4, 42));
    let record = sim.run_intervals(8).pop().unwrap();
    let projection = ppep.project(&record).expect("projection");
    let per_thread = per_thread_ppe(&projection, 4).expect("per-thread PPE");
    for (chip, thread) in projection.chip.iter().zip(&per_thread) {
        // energy-per-quantum × throughput = chip power.
        let implied_power = thread.energy * chip.ips / 1.0e9;
        assert!(
            (implied_power - chip.power.as_watts()).abs() < 1e-6,
            "{} vs {}",
            implied_power,
            chip.power.as_watts()
        );
    }
}

#[test]
fn cross_platform_training_works_on_phenom() {
    let mut rig = TrainingRig::phenom_ii_x6(42);
    let m = rig.train_quick().expect("Phenom training succeeds");
    assert_eq!(m.vf_table().len(), 4);
    assert!(
        m.chip_power().pg_model().is_none(),
        "Phenom cannot power-gate"
    );
    // The engine still projects across its 4-state ladder.
    let ppep = Ppep::new(m);
    let mut sim = ChipSimulator::new(SimConfig::phenom_ii_x6(42));
    sim.load_workload(&instances("CG", 4, 42));
    let record = sim.run_intervals(8).pop().unwrap();
    let projection = ppep.project(&record).expect("projection");
    assert_eq!(projection.chip.len(), 4);
    assert_eq!(
        projection.best_energy_vf(),
        VfTable::phenom_ii_x6().lowest()
    );
}

#[test]
fn per_core_rails_platform_supports_heterogeneous_assignments() {
    // §IV-A extension: a chip with per-core voltage rails. Every
    // "CU" is one core, so the per-CU DVFS path becomes per-core.
    let mut config = SimConfig::fx8320(42);
    config.topology = ppep_types::Topology::fx8320_per_core_rails();
    let rig = TrainingRig::with_config(config.clone(), 42);
    let mut sim = rig.new_sim();
    // CPU-bound work, so throughput tracks the core clock directly.
    sim.load_workload(&instances("458.sjeng", 2, 42));
    let table = sim.topology().vf_table().clone();
    // Give each busy core its own state: one fast, one slow.
    sim.set_all_vf(table.lowest());
    sim.set_cu_vf(ppep_types::CuId(0), table.highest()).unwrap();
    let rec = sim.run_intervals(6).pop().unwrap();
    assert_eq!(rec.cu_vf.len(), 8, "one rail per core");
    // The fast core retires more than the slow one (placement puts
    // thread 0 on core 0 and thread 1 on core 1 when every CU has a
    // single core).
    let fast = rec.true_counts[0].get(ppep_pmc::EventId::RetiredInstructions);
    let slow = rec.true_counts[1].get(ppep_pmc::EventId::RetiredInstructions);
    assert!(
        fast > 1.5 * slow,
        "per-core rails must decouple the cores: {fast} vs {slow}"
    );
    // And the power breakdown reflects eight independent domains.
    assert_eq!(rec.true_power.cu_idle.len(), 8);
}

#[test]
fn custom_controller_trait_object_compatible() {
    // DvfsController must be usable as a trait object (step 5 of
    // Fig. 5 is a pluggable decision algorithm).
    struct Pin(ppep_types::VfStateId);
    impl DvfsController for Pin {
        fn decide(
            &mut self,
            p: &ppep_core::ppe::PpeProjection,
        ) -> ppep_types::Result<Vec<ppep_types::VfStateId>> {
            Ok(vec![self.0; p.source_vf.len()])
        }
    }
    let table = VfTable::fx8320();
    let mut boxed: Box<dyn DvfsController> = Box::new(Pin(table.lowest()));
    let ppep = Ppep::new(models().clone());
    let mut sim = ChipSimulator::new(SimConfig::fx8320(42));
    sim.load_workload(&instances("401.bzip2", 1, 42));
    let record = sim.step_interval();
    let projection = ppep.project(&record).expect("projection");
    let decision = boxed.decide(&projection).expect("decision");
    assert_eq!(decision, vec![table.lowest(); 4]);
}
