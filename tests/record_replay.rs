//! Cross-crate record/replay round trip: a PPEP daemon driven over a
//! live simulated chip, recorded to JSONL, then replayed with no
//! simulator at all — the replayed run must reproduce the live run's
//! decisions bit-for-bit.

use ppep_core::daemon::{DvfsController, PpepDaemon};
use ppep_core::ppe::PpeProjection;
use ppep_core::{Platform, Ppep};
use ppep_rig::TrainingRig;
use ppep_sim::chip::{ChipSimulator, SimConfig};
use ppep_sim::fault::FaultPlan;
use ppep_sim::SimPlatform;
use ppep_telemetry::{RecordingPlatform, ReplayPlatform, TraceReader};
use ppep_types::{Result, VfStateId, Watts};
use ppep_workloads::combos::instances;
use std::sync::OnceLock;

fn trained() -> &'static Ppep {
    static PPEP: OnceLock<Ppep> = OnceLock::new();
    PPEP.get_or_init(|| {
        Ppep::new(
            TrainingRig::fx8320(42)
                .train_quick()
                .expect("training succeeds"),
        )
    })
}

/// A deterministic controller with real decision variety: pick the
/// cheapest per-CU assignment whose projected chip power stays under a
/// budget (a miniature capping policy).
struct BudgetController {
    ppep: Ppep,
    budget: Watts,
}

impl DvfsController for BudgetController {
    fn decide(&mut self, projection: &PpeProjection) -> Result<Vec<VfStateId>> {
        let table = self.ppep.models().vf_table().clone();
        let mut assignment = vec![table.highest(); projection.source_vf.len()];
        for vf in table.states().rev() {
            assignment.fill(vf);
            if self
                .ppep
                .chip_power_with_assignment(projection, &assignment)?
                <= self.budget
            {
                break;
            }
        }
        Ok(assignment)
    }
}

fn live_sim(seed: u64) -> ChipSimulator {
    let mut sim = ChipSimulator::new(SimConfig::fx8320(seed));
    sim.load_workload(&instances("470.lbm", 4, seed));
    sim
}

fn drive<P: Platform>(
    platform: P,
    steps: usize,
) -> (Vec<Vec<VfStateId>>, PpepDaemon<P, BudgetController>) {
    let ppep = trained().clone();
    let controller = BudgetController {
        ppep: ppep.clone(),
        budget: Watts::new(95.0),
    };
    let mut daemon = PpepDaemon::new(ppep, platform, controller);
    let outcome = daemon.run(steps).into_result().expect("daemon runs");
    (outcome.into_iter().map(|s| s.decision).collect(), daemon)
}

#[test]
fn recorded_run_replays_bit_identically() {
    let steps = 12;
    let recording = RecordingPlatform::new(SimPlatform::new(live_sim(7)));
    let (live, daemon) = drive(recording, steps);
    let doc = daemon.platform().trace_jsonl().to_string();

    // The trace is structurally sound: meta + one interval and one
    // apply per step.
    let trace = TraceReader::parse(&doc).expect("trace parses");
    assert_eq!(trace.interval_count(), steps);
    assert_eq!(trace.fault_count(), 0);

    // Strict replay must reproduce the decisions without a simulator.
    let replay = ReplayPlatform::new(trace).strict();
    let (replayed, _) = drive(replay, steps);
    assert_eq!(live, replayed);
}

#[test]
fn faulted_run_replays_its_faults() {
    let steps = 20;
    let mut sim = live_sim(11);
    sim.set_fault_plan(FaultPlan::storm(99, steps as u64, 0.4, 8));
    let mut recording = RecordingPlatform::new(SimPlatform::new(sim));

    // Drive manually so transient faults are tolerated.
    let mut live_errors = Vec::new();
    for _ in 0..steps {
        if let Err(e) = recording.sample() {
            live_errors.push(e);
        }
    }
    assert!(!live_errors.is_empty(), "the storm must fault some samples");
    let (_, doc) = recording.finish();

    let mut replay = ReplayPlatform::from_jsonl(&doc).expect("trace parses");
    let mut replayed_errors = Vec::new();
    for _ in 0..steps {
        if let Err(e) = replay.sample() {
            replayed_errors.push(e);
        }
    }
    assert_eq!(live_errors, replayed_errors);
}
