//! Golden session transcript: the multi-tenant wire protocol pinned
//! as a committed fixture.
//!
//! `tests/fixtures/serve_session.bin` holds the byte-exact transcript
//! of a small scripted service session — admissions (including one
//! typed rejection), interval submissions from two tenants, a fault
//! report, and a goodbye — with every client request immediately
//! followed by the service's encoded response. The tests hold:
//!
//! 1. **Transcript stability** — replaying the script against a
//!    freshly trained service reproduces the committed bytes exactly,
//!    so any drift in the session framing, the admission arithmetic,
//!    or the capping decisions is caught against history.
//! 2. **Decode stability** — every frame in the fixture decodes, and
//!    re-encoding reproduces the committed bytes.
//!
//! Regenerate (after an *intentional* behaviour change) with:
//!
//! ```text
//! cargo test --test golden_session -- --ignored regenerate
//! ```

use ppep_core::{Platform, Ppep};
use ppep_rig::TrainingRig;
use ppep_serve::{CappingService, ServeConfig};
use ppep_sim::chip::{ChipSimulator, SimConfig};
use ppep_sim::SimPlatform;
use ppep_telemetry::session::{decode_stream, frame_to_bytes, SessionFrame};
use ppep_types::{Topology, Watts};
use ppep_workloads::combos::fig7_workload;
use std::path::PathBuf;
use std::sync::OnceLock;

const SEED: u64 = 42;
const INTERVALS: u64 = 4;
const FIXTURE: &str = "serve_session.bin";

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(FIXTURE)
}

fn trained() -> &'static Ppep {
    static PPEP: OnceLock<Ppep> = OnceLock::new();
    PPEP.get_or_init(|| {
        Ppep::new(
            TrainingRig::fx8320(SEED)
                .train_quick()
                .expect("training succeeds"),
        )
    })
}

fn client(seed: u64) -> SimPlatform {
    let mut sim = ChipSimulator::new(SimConfig::fx8320_pg(seed));
    sim.load_workload(&fig7_workload(seed));
    SimPlatform::new(sim)
}

fn golden_config() -> ServeConfig {
    let mut config = ServeConfig::new(Watts::new(100.0));
    config.max_sessions = 2;
    config.min_grant = Watts::new(20.0);
    config
}

/// Runs the scripted session against the default single-shard service.
fn record_transcript() -> Vec<u8> {
    record_transcript_on(CappingService::new(trained().clone(), golden_config()))
}

/// Runs the scripted session against `service`, appending every
/// request and response to the transcript.
fn record_transcript_on(service: CappingService) -> Vec<u8> {
    let mut transcript = Vec::new();
    let mut exchange = |service: &CappingService, frame: &SessionFrame| {
        let request = frame_to_bytes(frame);
        let (response, consumed) = service
            .handle_frame(&request)
            .expect("scripted frame is valid");
        assert_eq!(consumed, request.len());
        transcript.extend_from_slice(&request);
        transcript.extend_from_slice(&response);
    };

    // Admissions: two welcomes, then a pinned typed rejection.
    for (tenant, cap) in [(0u64, 60.0), (1, 50.0), (2, 30.0)] {
        exchange(
            &service,
            &SessionFrame::Hello {
                tenant,
                requested_cap: Watts::new(cap),
            },
        );
    }

    let mut clients = [client(SEED ^ 0xA), client(SEED ^ 0xB)];
    for interval in 0..INTERVALS {
        for (tenant, platform) in clients.iter_mut().enumerate() {
            // Tenant 1 loses its interval-2 measurement: the fixture
            // pins the degraded (held-decision) reply path too.
            let frame = if tenant == 1 && interval == 2 {
                let record = platform.sample().expect("sim sample");
                let _unsent = record;
                SessionFrame::FaultReport {
                    tenant: tenant as u64,
                    index: platform.current_interval(),
                    error: ppep_types::Error::SensorDropout {
                        sensor: "hall-sensor",
                    },
                }
            } else {
                SessionFrame::Submit {
                    tenant: tenant as u64,
                    record: Box::new(platform.sample().expect("sim sample")),
                }
            };
            exchange(&service, &frame);
        }
        service.tick().expect("tick holds the budget invariant");
    }

    exchange(&service, &SessionFrame::Goodbye { tenant: 1 });
    transcript
}

/// Regenerates the committed fixture. Ignored by default: run it only
/// after an intentional behaviour change, then commit the new file.
#[test]
#[ignore = "rewrites tests/fixtures/; run after intentional behaviour changes"]
fn regenerate_golden_session() {
    std::fs::create_dir_all(fixture_path().parent().expect("fixture dir")).expect("fixtures dir");
    std::fs::write(fixture_path(), record_transcript()).expect("write fixture");
}

#[test]
fn golden_session_matches_a_fresh_transcript() {
    let pinned = std::fs::read(fixture_path()).expect("fixture exists");
    assert_eq!(
        record_transcript(),
        pinned,
        "a fresh session transcript no longer matches the pinned fixture; \
         if the behaviour change is intentional, regenerate with \
         `cargo test --test golden_session -- --ignored regenerate`"
    );
}

#[test]
fn golden_session_reproduces_through_one_shard() {
    // A sharded service with every scripted tenant pinned onto the
    // same shard must replay the committed single-lock transcript
    // byte-for-byte: routing and the epoch arbiter may not perturb
    // the wire behaviour a solo shard observes.
    let mut config = golden_config();
    config.shards = 3;
    let service =
        CappingService::new(trained().clone(), config).with_assignment(&[(0, 1), (1, 1), (2, 1)]);

    let pinned = std::fs::read(fixture_path()).expect("fixture exists");
    assert_eq!(
        record_transcript_on(service),
        pinned,
        "the sharded service drifted from the pinned single-lock transcript"
    );
}

#[test]
fn golden_session_decodes_and_reencodes_byte_identically() {
    let pinned = std::fs::read(fixture_path()).expect("fixture exists");
    let frames = decode_stream(&pinned, &Topology::fx8320()).expect("fixture decodes");
    assert!(
        frames.len() > 2 * (3 + 2 * INTERVALS as usize),
        "request+response per exchange: got {} frames",
        frames.len()
    );

    // The scripted shape: three admission exchanges up front, with the
    // third pinned as a typed slots rejection.
    assert!(matches!(frames[0], SessionFrame::Hello { tenant: 0, .. }));
    assert!(matches!(
        frames[1],
        SessionFrame::Welcome {
            tenant: 0,
            slot: 0,
            ..
        }
    ));
    assert!(matches!(frames[4], SessionFrame::Hello { tenant: 2, .. }));
    assert!(matches!(
        frames[5],
        SessionFrame::Reject {
            tenant: 2,
            reason: ppep_types::RejectReason::SessionSlotsExhausted { active: 2, max: 2 },
        }
    ));
    assert!(
        frames
            .iter()
            .any(|f| matches!(f, SessionFrame::FaultReport { tenant: 1, .. })),
        "the fault-report exchange is part of the script"
    );

    let mut reencoded = Vec::new();
    for frame in &frames {
        reencoded.extend_from_slice(&frame_to_bytes(frame));
    }
    assert_eq!(
        reencoded, pinned,
        "decode -> re-encode drifted from the committed bytes"
    );
}
