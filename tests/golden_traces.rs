//! Golden-trace fixtures: recorded traces as regression tests.
//!
//! `tests/fixtures/` pins two small recorded capping runs — one clean,
//! one under a heavy fault storm — as JSONL documents committed to the
//! repository. The tests hold three properties over them:
//!
//! 1. **Format stability** — parsing a fixture and re-serializing it
//!    reproduces the committed bytes exactly, so any drift in the v1
//!    trace format is caught against history.
//! 2. **Lossless v2 transcoding** — the v2 binary framing encodes each
//!    fixture smaller and decodes it back bit-identically.
//! 3. **Pinned decisions** — strict-replaying a fixture under the same
//!    trained engine and controller reproduces the recorded decision
//!    sequence position by position; a divergence means the model or
//!    the controller changed behaviour underneath a recorded run.
//!
//! Regenerate the fixtures (after an *intentional* behaviour change)
//! with:
//!
//! ```text
//! cargo test --test golden_traces -- --ignored regenerate
//! ```

use ppep_core::daemon::PpepDaemon;
use ppep_core::resilient::{ResilientDaemon, SupervisorConfig};
use ppep_core::{Platform, Ppep, ProjectionKernel};
use ppep_dvfs::capping::OneStepCapping;
use ppep_rig::TrainingRig;
use ppep_sim::chip::{ChipSimulator, SimConfig};
use ppep_sim::fault::FaultPlan;
use ppep_sim::SimPlatform;
use ppep_telemetry::{RecordingPlatform, ReplayPlatform, TraceReader};
use ppep_types::{VfStateId, Watts};
use ppep_workloads::combos::fig7_workload;
use std::path::PathBuf;
use std::sync::OnceLock;

const SEED: u64 = 42;
const CLEAN_STEPS: usize = 12;
const STORM_STEPS: usize = 16;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn trained() -> &'static Ppep {
    static PPEP: OnceLock<Ppep> = OnceLock::new();
    PPEP.get_or_init(|| {
        Ppep::new(
            TrainingRig::fx8320(SEED)
                .train_quick()
                .expect("training succeeds"),
        )
    })
}

/// The fixtures' cap schedule: 95 W with a 40 W dip every other
/// 4-interval phase.
fn cap(step: usize) -> Watts {
    if (step / 4).is_multiple_of(2) {
        Watts::new(95.0)
    } else {
        Watts::new(40.0)
    }
}

/// Drives one supervised one-step capping run, returning per-interval
/// decisions and the daemon (so the caller can take the platform back).
fn drive<P: Platform>(
    platform: P,
    steps: usize,
    kernel: ProjectionKernel,
) -> (Vec<Vec<VfStateId>>, ResilientDaemon<P, OneStepCapping>) {
    let ppep = trained().clone().with_kernel(kernel);
    let table = ppep.models().vf_table().clone();
    let controller = OneStepCapping::new(ppep.clone(), cap(0));
    let inner = PpepDaemon::new(ppep, platform, controller);
    let mut daemon = ResilientDaemon::new(inner, SupervisorConfig::new(table.lowest()));
    let mut decisions = Vec::with_capacity(steps);
    for step in 0..steps {
        daemon.inner_mut().controller_mut().set_cap(cap(step));
        let s = daemon.step().expect("supervised step survives");
        decisions.push(s.decision);
    }
    (decisions, daemon)
}

/// Records one fixture run; `storm` adds the fault plan.
fn record(steps: usize, storm: bool, kernel: ProjectionKernel) -> String {
    let mut sim = ChipSimulator::new(SimConfig::fx8320_pg(SEED));
    sim.load_workload(&fig7_workload(SEED));
    if storm {
        let cores = trained().models().topology().core_count();
        sim.set_fault_plan(FaultPlan::storm(0xF00D, steps as u64, 0.3, cores));
    }
    let recording = RecordingPlatform::new(SimPlatform::new(sim));
    let (_, daemon) = drive(recording, steps, kernel);
    daemon.inner().platform().trace_jsonl().to_string()
}

fn fixtures() -> [(&'static str, usize, bool); 2] {
    [
        ("capping_clean.jsonl", CLEAN_STEPS, false),
        ("capping_storm.jsonl", STORM_STEPS, true),
    ]
}

/// Regenerates the committed fixtures. Ignored by default: run it only
/// after an intentional model/controller behaviour change, then commit
/// the new files.
#[test]
#[ignore = "rewrites tests/fixtures/; run after intentional behaviour changes"]
fn regenerate_golden_fixtures() {
    std::fs::create_dir_all(fixture_path("")).expect("fixtures dir");
    for (name, steps, storm) in fixtures() {
        std::fs::write(
            fixture_path(name),
            record(steps, storm, ProjectionKernel::Batch),
        )
        .expect("write fixture");
    }
}

#[test]
fn golden_fixtures_match_a_fresh_recording() {
    for (name, steps, storm) in fixtures() {
        let pinned = std::fs::read_to_string(fixture_path(name)).expect("fixture exists");
        for kernel in [ProjectionKernel::Batch, ProjectionKernel::Scalar] {
            assert_eq!(
                record(steps, storm, kernel),
                pinned,
                "{name} ({kernel} kernel): a fresh recording no longer matches the \
                 pinned fixture; if the behaviour change is intentional, regenerate \
                 with `cargo test --test golden_traces -- --ignored regenerate`"
            );
        }
    }
}

#[test]
fn golden_fixtures_reserialize_byte_identically() {
    for (name, _, _) in fixtures() {
        let pinned = std::fs::read_to_string(fixture_path(name)).expect("fixture exists");
        let trace = TraceReader::parse(&pinned).expect("fixture parses");
        assert_eq!(
            trace.to_jsonl(),
            pinned,
            "{name}: v1 serialization drifted from the committed bytes"
        );
    }
}

#[test]
fn golden_fixtures_transcode_to_v2_losslessly() {
    for (name, _, storm) in fixtures() {
        let pinned = std::fs::read_to_string(fixture_path(name)).expect("fixture exists");
        let trace = TraceReader::parse(&pinned).expect("fixture parses");
        let v2 = ppep_telemetry::binary::encode(&trace);
        assert!(
            v2.len() < pinned.len(),
            "{name}: v2 ({} bytes) must be smaller than v1 ({} bytes)",
            v2.len(),
            pinned.len()
        );
        let back = ppep_telemetry::binary::decode(&v2).expect("v2 decodes");
        assert_eq!(back.topology, trace.topology, "{name}: topology drifted");
        // Compare through serialization, not `PartialEq`: the storm
        // fixture records a quarantined interval whose temperature is
        // NaN, and NaN breaks `==` even for a bit-perfect decode. The
        // JSONL form is shortest-exact, so byte equality here is bit
        // equality of every field.
        assert_eq!(
            back.to_jsonl(),
            pinned,
            "{name}: v1 -> v2 -> v1 transcoding is not lossless"
        );
        assert!(
            storm || trace.fault_count() == 0,
            "{name}: the clean fixture must hold no fault lines"
        );
    }
}

#[test]
fn golden_fixtures_strict_replay_pins_the_decision_sequence() {
    for (name, steps, _) in fixtures() {
        let pinned = std::fs::read_to_string(fixture_path(name)).expect("fixture exists");
        let trace = TraceReader::parse(&pinned).expect("fixture parses");
        let recorded: Vec<Vec<VfStateId>> = trace.decisions().map(|d| d.chosen.clone()).collect();
        assert_eq!(
            recorded.len(),
            steps,
            "{name}: one decision line per supervised interval"
        );

        // Strict replay: every apply must reproduce the recorded one,
        // and the driven decisions must equal the recorded stream —
        // under either projection kernel.
        for kernel in [ProjectionKernel::Batch, ProjectionKernel::Scalar] {
            let replay = ReplayPlatform::new(trace.clone()).strict();
            let (replayed, _) = drive(replay, steps, kernel);
            assert_eq!(
                replayed, recorded,
                "{name} ({kernel} kernel): strict replay diverged from the pinned \
                 decision sequence"
            );
        }
    }
}

/// The capping service's chaos health export (`serve_health.jsonl`)
/// is a downstream consumer of projections: its deterministic fields
/// must come out byte-identical whichever kernel the engine runs.
#[test]
fn chaos_health_export_is_kernel_invariant() {
    use ppep_serve::chaos::{run, ChaosConfig};
    let mut config = ChaosConfig::smoke(SEED);
    config.intervals = 30;
    let batch = run(
        &trained().clone().with_kernel(ProjectionKernel::Batch),
        &config,
    )
    .expect("chaos run under the batch kernel");
    let scalar = run(
        &trained().clone().with_kernel(ProjectionKernel::Scalar),
        &config,
    )
    .expect("chaos run under the scalar kernel");
    assert_eq!(
        batch.health_jsonl, scalar.health_jsonl,
        "serve_health.jsonl drifted between kernels"
    );
    assert_eq!(batch.summary(), scalar.summary());
    assert_eq!(
        batch.victim_failsafe_replies,
        scalar.victim_failsafe_replies
    );
}
