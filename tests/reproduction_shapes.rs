//! Integration tests asserting the paper's headline *shapes* hold on
//! the quick-scale experiment pipeline — the same claims
//! `EXPERIMENTS.md` documents at full scale.
//!
//! Each test runs one experiment end-to-end (training included), so
//! this file doubles as a regression net for the whole reproduction.

use ppep_experiments::common::{Context, Scale, TraceStore, DEFAULT_SEED};
use ppep_experiments::{fig02_model_error, fig03_cross_vf, fig06_energy};
use ppep_types::VfStateId;

fn ctx() -> Context {
    Context::fx8320(Scale::Quick, DEFAULT_SEED)
}

#[test]
fn headline_power_model_errors_are_paper_shaped() {
    // One trace collection feeds both the Fig. 2 and Fig. 3 studies,
    // exactly as the paper's shared benchmark runs do.
    let ctx = ctx();
    let table = ctx.rig.config().topology.vf_table().clone();
    let vfs: Vec<VfStateId> = table.states().collect();
    let store = TraceStore::collect(
        &ctx.rig,
        &ctx.scale.roster(ctx.seed),
        &vfs,
        &ctx.scale.budget(),
    );

    let fig2 = fig02_model_error::run_with_store(&ctx, &store).expect("fig2");
    let fig3 = fig03_cross_vf::run_with_store(&ctx, &store).expect("fig3");

    // Paper: dynamic 10.6%, chip 4.6% (same-state); dynamic 8.3%,
    // chip 4.2% (cross-state). Shape requirements:
    // chip << dynamic, and both in the single-digit-to-low-teens band.
    assert!(fig2.chip_overall < fig2.dynamic_overall);
    assert!(fig2.chip_overall < 0.10, "chip {}", fig2.chip_overall);
    assert!(
        (0.02..0.30).contains(&fig2.dynamic_overall),
        "dynamic {}",
        fig2.dynamic_overall
    );
    assert!(fig3.chip_overall < fig3.dynamic_overall);
    assert!(fig3.chip_overall < 0.10, "cross chip {}", fig3.chip_overall);

    // Worst-case outliers exist (the paper sees up to 49% on
    // rapid-phase benchmarks) but are bounded.
    assert!(fig2.dynamic_worst > fig2.dynamic_overall * 1.5);
    assert!(fig2.dynamic_worst < 0.60, "worst {}", fig2.dynamic_worst);

    // Cross-state prediction errors grow as the source state moves
    // away from the training state.
    let src_mean = |idx: usize| {
        let v: Vec<f64> = fig3
            .pairs
            .iter()
            .filter(|p| p.from.index() == idx)
            .map(|p| p.chip.mean)
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    assert!(
        src_mean(0) > src_mean(4),
        "{} vs {}",
        src_mean(0),
        src_mean(4)
    );
}

#[test]
fn energy_prediction_beats_the_published_baseline() {
    let fig6 = fig06_energy::run(&ctx()).expect("fig6");
    // Paper: PPEP 3.6% vs Green Governors ~7% at VF5.
    assert!(
        fig6.ppep_avg < fig6.gg_avg,
        "{} vs {}",
        fig6.ppep_avg,
        fig6.gg_avg
    );
    assert!(
        fig6.gg_avg / fig6.ppep_avg > 1.5,
        "PPEP should roughly halve the baseline error: {} vs {}",
        fig6.ppep_avg,
        fig6.gg_avg
    );
    // Per-combo errors exist for every combination tested.
    assert!(!fig6.combos.is_empty());
    for c in &fig6.combos {
        assert!(c.ppep.is_finite() && c.ppep >= 0.0, "{}", c.name);
    }
}
