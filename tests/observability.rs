//! Observability invariants, cross-crate: attaching a recorder to the
//! full supervised pipeline must never change what it computes.
//!
//! The `Recorder` plumbing touches every hot path — sampler, framework
//! projection, supervisor, controller — so the property worth the most
//! is *inertness*: for arbitrary seeds, fault rates, and run lengths,
//! a trace-on run and a trace-off run produce bit-identical decisions
//! and bit-identical measured power.

use ppep_core::daemon::PpepDaemon;
use ppep_core::resilient::{ResilientDaemon, SupervisorConfig};
use ppep_core::Ppep;
use ppep_dvfs::capping::OneStepCapping;
use ppep_models::trainer::TrainedModels;
use ppep_obs::{PredictionScorer, RecorderHandle, ScorerConfig, Stage, TraceRecorder};
use ppep_rig::TrainingRig;
use ppep_sim::chip::{ChipSimulator, SimConfig};
use ppep_sim::fault::FaultPlan;
use ppep_sim::SimPlatform;
use ppep_telemetry::snapshot::{
    decode_snapshot, snapshot_to_bytes, ErrorStat, MetricsSnapshot, SloSummary,
};
use ppep_telemetry::RecordingPlatform;
use ppep_types::{VfStateId, Watts};
use ppep_workloads::combos::fig7_workload;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

fn models() -> &'static TrainedModels {
    static MODELS: OnceLock<TrainedModels> = OnceLock::new();
    MODELS.get_or_init(|| {
        TrainingRig::fx8320(42)
            .train_quick()
            .expect("training succeeds")
    })
}

/// One supervised capping run under a seeded fault storm. Returns the
/// per-interval VF decisions plus the measured chip power as raw f64
/// bits (`None` where the interval's measurement was lost to a fault).
fn run_storm(
    seed: u64,
    rate: f64,
    intervals: usize,
    recorder: RecorderHandle,
) -> (Vec<Vec<VfStateId>>, Vec<Option<u64>>) {
    let ppep = Ppep::new(models().clone());
    let table = ppep.models().vf_table().clone();
    let cores = ppep.models().topology().core_count();
    let controller =
        OneStepCapping::new(ppep.clone(), Watts::new(55.0)).with_recorder(recorder.clone());
    let mut sim = ChipSimulator::new(SimConfig::fx8320_pg(seed));
    sim.load_workload(&fig7_workload(seed));
    sim.set_fault_plan(FaultPlan::storm(seed, intervals as u64, rate, cores));
    let inner = PpepDaemon::new(ppep, SimPlatform::new(sim), controller).with_recorder(recorder);
    let mut daemon = ResilientDaemon::new(inner, SupervisorConfig::new(table.lowest()));
    let mut decisions = Vec::with_capacity(intervals);
    let mut power_bits = Vec::with_capacity(intervals);
    for _ in 0..intervals {
        let s = daemon.step().expect("storm faults are transient");
        power_bits.push(
            s.record
                .as_ref()
                .map(|r| r.true_power.total().as_watts().to_bits()),
        );
        decisions.push(s.decision);
    }
    (decisions, power_bits)
}

/// One supervised capping run under a seeded fault storm, recorded
/// through a [`RecordingPlatform`], with or without a prediction
/// scorer attached. Returns the per-interval decisions, the measured
/// power bits, the recorded trace JSONL, and the number of scored CPI
/// observations (0 without the scorer).
fn run_storm_recorded(
    seed: u64,
    rate: f64,
    intervals: usize,
    with_scorer: bool,
) -> (Vec<Vec<VfStateId>>, Vec<Option<u64>>, String, u64) {
    let ppep = Ppep::new(models().clone());
    let table = ppep.models().vf_table().clone();
    let cores = ppep.models().topology().core_count();
    let controller = OneStepCapping::new(ppep.clone(), Watts::new(55.0));
    let mut sim = ChipSimulator::new(SimConfig::fx8320_pg(seed));
    sim.load_workload(&fig7_workload(seed));
    sim.set_fault_plan(FaultPlan::storm(seed, intervals as u64, rate, cores));
    let recording = RecordingPlatform::new(SimPlatform::new(sim));
    let mut inner = PpepDaemon::new(ppep, recording, controller);
    if with_scorer {
        inner = inner.with_scorer(ScorerConfig::default());
    }
    let mut daemon = ResilientDaemon::new(inner, SupervisorConfig::new(table.lowest()));
    let mut decisions = Vec::with_capacity(intervals);
    let mut power_bits = Vec::with_capacity(intervals);
    for _ in 0..intervals {
        let s = daemon.step().expect("storm faults are transient");
        power_bits.push(
            s.record
                .as_ref()
                .map(|r| r.true_power.total().as_watts().to_bits()),
        );
        decisions.push(s.decision);
    }
    let scored = daemon
        .inner()
        .scorer()
        .map_or(0, |s| s.cores().iter().map(|t| t.scored()).sum());
    let trace = daemon.inner().platform().trace_jsonl().to_string();
    (decisions, power_bits, trace, scored)
}

/// Builds a scorer over 2 cores from a stream of observation seeds:
/// each seed derives a (core, predicted CPI, measured CPI) triple and
/// a chip-power observation.
fn scorer_from(seeds: &[u64]) -> PredictionScorer {
    let mut scorer = PredictionScorer::new(2, ScorerConfig::default());
    for &s in seeds {
        let core = (s % 2) as usize;
        let predicted = 0.2 + ((s >> 8) % 1_000) as f64 / 125.0;
        let measured = 0.2 + ((s >> 18) % 1_000) as f64 / 125.0;
        scorer.note_interval();
        scorer.score_core_cpi(core, predicted, Some(measured));
        scorer.score_power(predicted * 10.0, measured * 10.0);
    }
    scorer
}

fn stat(seed: u64, drifted: bool) -> ErrorStat {
    // Deterministic but varied finite values derived from the seed.
    let f = |k: u64| ((seed.wrapping_mul(k) % 10_000) as f64) / 7.0;
    ErrorStat {
        count: seed % 1_000,
        mean_pct: f(3),
        ewma_pct: f(5),
        baseline_pct: f(7),
        p99_pct: f(11),
        max_pct: f(13),
        drifted,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Trace-on and trace-off runs are bit-identical, and the traced
    /// run actually captured the pipeline.
    #[test]
    fn tracing_is_inert(
        seed in 0u64..10_000,
        rate in 0.0f64..0.25,
        intervals in 8usize..24,
    ) {
        let off = run_storm(seed, rate, intervals, RecorderHandle::noop());

        let recorder = Arc::new(TraceRecorder::new());
        let on = run_storm(
            seed,
            rate,
            intervals,
            RecorderHandle::new(recorder.clone()),
        );

        prop_assert_eq!(&off.0, &on.0, "decisions diverged under tracing");
        prop_assert_eq!(&off.1, &on.1, "measured power diverged under tracing");

        // The traced run recorded real work: a Sample span for every
        // interval and at least one projection + decision.
        let snap = recorder.snapshot();
        let sampled = snap
            .spans
            .iter()
            .filter(|s| s.stage == Stage::Sample)
            .count() as u64;
        prop_assert_eq!(snap.spans_evicted, 0);
        prop_assert_eq!(sampled, intervals as u64);
        prop_assert!(snap.spans.iter().any(|s| s.stage == Stage::Decide));
        prop_assert!(snap.spans.iter().any(|s| s.stage == Stage::CpiPredict));
    }

    /// Attaching a prediction scorer is bit-inert: scorer-on and
    /// scorer-off storms make identical decisions, measure identical
    /// power, and record byte-identical traces — while the scorer-on
    /// run really scored something.
    #[test]
    fn scoring_is_inert(
        seed in 0u64..10_000,
        rate in 0.0f64..0.25,
        intervals in 8usize..24,
    ) {
        let off = run_storm_recorded(seed, rate, intervals, false);
        let on = run_storm_recorded(seed, rate, intervals, true);

        prop_assert_eq!(&off.0, &on.0, "decisions diverged under scoring");
        prop_assert_eq!(&off.1, &on.1, "measured power diverged under scoring");
        prop_assert_eq!(&off.2, &on.2, "trace bytes diverged under scoring");
        prop_assert_eq!(off.3, 0u64);
        prop_assert!(on.3 > 0, "the scorer-on run never scored a pair");
    }

    /// Scorer merging is order-insensitive: folding B into A and A
    /// into B yield the same aggregate state, and the scored counts
    /// add up.
    #[test]
    fn scorer_merge_is_commutative(
        first in proptest::collection::vec(0u64..1 << 60, 0..24),
        second in proptest::collection::vec(0u64..1 << 60, 0..24),
    ) {
        let a = scorer_from(&first);
        let b = scorer_from(&second);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);

        prop_assert_eq!(&ab, &ba, "merge is not commutative");
        prop_assert_eq!(ab.intervals(), a.intervals() + b.intervals());
        for (merged, (ta, tb)) in ab.cores().iter().zip(a.cores().iter().zip(b.cores())) {
            prop_assert_eq!(merged.scored(), ta.scored() + tb.scored());
            prop_assert!(merged.max_pct() >= ta.max_pct().max(tb.max_pct()) - 1e-12);
        }
    }

    /// MetricsSnapshot frames survive the wire bit-exactly, and any
    /// single corrupted byte is rejected (never mis-decoded).
    #[test]
    fn metrics_snapshot_roundtrips_and_rejects_corruption(
        tenant in 0u64..1 << 40,
        interval in 0u64..1 << 40,
        seeds in proptest::collection::vec(1u64..1 << 48, 1..6),
        drifted in proptest::arbitrary::any::<bool>(),
        with_slo in proptest::arbitrary::any::<bool>(),
        corrupt_at in 0usize..4_096,
        corrupt_mask in 1u8..=255,
    ) {
        let snap = MetricsSnapshot {
            tenant,
            interval,
            cores: seeds.iter().map(|&s| stat(s, drifted)).collect(),
            power: stat(tenant ^ interval | 1, !drifted),
            slo: with_slo.then_some(SloSummary {
                availability: 0.75,
                cap_adherence: 0.5,
                p99_reply_us: 123.25,
            }),
        };
        let bytes = snapshot_to_bytes(&snap);
        let (decoded, consumed) = decode_snapshot(&bytes).expect("round trip");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(&decoded, &snap);

        let mut corrupted = bytes.clone();
        let at = corrupt_at % corrupted.len();
        corrupted[at] ^= corrupt_mask;
        match decode_snapshot(&corrupted) {
            Err(_) => {}
            Ok((mis, _)) => prop_assert!(
                false,
                "byte {} ^ {:#04x} decoded as {:?}",
                at,
                corrupt_mask,
                mis
            ),
        }
    }
}
