//! Observability invariants, cross-crate: attaching a recorder to the
//! full supervised pipeline must never change what it computes.
//!
//! The `Recorder` plumbing touches every hot path — sampler, framework
//! projection, supervisor, controller — so the property worth the most
//! is *inertness*: for arbitrary seeds, fault rates, and run lengths,
//! a trace-on run and a trace-off run produce bit-identical decisions
//! and bit-identical measured power.

use ppep_core::daemon::PpepDaemon;
use ppep_core::resilient::{ResilientDaemon, SupervisorConfig};
use ppep_core::Ppep;
use ppep_dvfs::capping::OneStepCapping;
use ppep_models::trainer::TrainedModels;
use ppep_obs::{RecorderHandle, Stage, TraceRecorder};
use ppep_rig::TrainingRig;
use ppep_sim::chip::{ChipSimulator, SimConfig};
use ppep_sim::fault::FaultPlan;
use ppep_sim::SimPlatform;
use ppep_types::{VfStateId, Watts};
use ppep_workloads::combos::fig7_workload;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

fn models() -> &'static TrainedModels {
    static MODELS: OnceLock<TrainedModels> = OnceLock::new();
    MODELS.get_or_init(|| {
        TrainingRig::fx8320(42)
            .train_quick()
            .expect("training succeeds")
    })
}

/// One supervised capping run under a seeded fault storm. Returns the
/// per-interval VF decisions plus the measured chip power as raw f64
/// bits (`None` where the interval's measurement was lost to a fault).
fn run_storm(
    seed: u64,
    rate: f64,
    intervals: usize,
    recorder: RecorderHandle,
) -> (Vec<Vec<VfStateId>>, Vec<Option<u64>>) {
    let ppep = Ppep::new(models().clone());
    let table = ppep.models().vf_table().clone();
    let cores = ppep.models().topology().core_count();
    let controller =
        OneStepCapping::new(ppep.clone(), Watts::new(55.0)).with_recorder(recorder.clone());
    let mut sim = ChipSimulator::new(SimConfig::fx8320_pg(seed));
    sim.load_workload(&fig7_workload(seed));
    sim.set_fault_plan(FaultPlan::storm(seed, intervals as u64, rate, cores));
    let inner = PpepDaemon::new(ppep, SimPlatform::new(sim), controller).with_recorder(recorder);
    let mut daemon = ResilientDaemon::new(inner, SupervisorConfig::new(table.lowest()));
    let mut decisions = Vec::with_capacity(intervals);
    let mut power_bits = Vec::with_capacity(intervals);
    for _ in 0..intervals {
        let s = daemon.step().expect("storm faults are transient");
        power_bits.push(
            s.record
                .as_ref()
                .map(|r| r.true_power.total().as_watts().to_bits()),
        );
        decisions.push(s.decision);
    }
    (decisions, power_bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Trace-on and trace-off runs are bit-identical, and the traced
    /// run actually captured the pipeline.
    #[test]
    fn tracing_is_inert(
        seed in 0u64..10_000,
        rate in 0.0f64..0.25,
        intervals in 8usize..24,
    ) {
        let off = run_storm(seed, rate, intervals, RecorderHandle::noop());

        let recorder = Arc::new(TraceRecorder::new());
        let on = run_storm(
            seed,
            rate,
            intervals,
            RecorderHandle::new(recorder.clone()),
        );

        prop_assert_eq!(&off.0, &on.0, "decisions diverged under tracing");
        prop_assert_eq!(&off.1, &on.1, "measured power diverged under tracing");

        // The traced run recorded real work: a Sample span for every
        // interval and at least one projection + decision.
        let snap = recorder.snapshot();
        let sampled = snap
            .spans
            .iter()
            .filter(|s| s.stage == Stage::Sample)
            .count() as u64;
        prop_assert_eq!(snap.spans_evicted, 0);
        prop_assert_eq!(sampled, intervals as u64);
        prop_assert!(snap.spans.iter().any(|s| s.stage == Stage::Decide));
        prop_assert!(snap.spans.iter().any(|s| s.stage == Stage::CpiPredict));
    }
}
