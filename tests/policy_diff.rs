//! Conformance tests for the policy-differential replay harness.
//!
//! - Self-replay (the recording policy vs its own recorded decision
//!   stream, or a policy vs itself) must report **zero** divergence:
//!   the replayed controller sees bit-identical projections and must
//!   re-make every decision.
//! - Genuinely different policies over the fault-storm capping trace
//!   must diverge, and the report must localize the first divergence
//!   and carry consistent per-interval rows.

use ppep_core::Ppep;
use ppep_experiments::common::{Context, Scale, DEFAULT_SEED};
use ppep_experiments::diff_policies::{self, PolicyKind, ReplayDiff};
use ppep_experiments::replay;
use ppep_telemetry::TraceReader;
use std::sync::OnceLock;

/// One recorded quick capping run (with the standard fault storm),
/// shared across tests so the simulator and trainer run once.
fn recorded() -> &'static (Ppep, String, usize) {
    static RUN: OnceLock<(Ppep, String, usize)> = OnceLock::new();
    RUN.get_or_init(|| {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let ppep = Ppep::new(ctx.train_models().expect("training succeeds"));
        let rec = replay::record(&ctx, &ppep).expect("recording succeeds");
        (ppep, rec.trace_jsonl, rec.period)
    })
}

fn differ() -> (ReplayDiff, TraceReader) {
    let (ppep, jsonl, period) = recorded();
    let trace = TraceReader::parse(jsonl).expect("trace parses");
    (ReplayDiff::new(ppep.clone(), *period), trace)
}

#[test]
fn self_replay_has_zero_divergence() {
    let (differ, trace) = differ();
    let report = differ
        .vs_recorded(&trace, PolicyKind::OneStep)
        .expect("diff runs");
    assert_eq!(report.first_divergence, None);
    assert_eq!(report.diverged_intervals, 0);
    assert_eq!(report.intervals, 48);
    assert!(report.rows.iter().all(|r| !r.diverged));
    // Identical decisions price identically.
    assert_eq!(
        report.energy_a.as_joules().to_bits(),
        report.energy_b.as_joules().to_bits()
    );
    assert_eq!(report.transitions_a, report.transitions_b);
    assert_eq!(report.cap_violations_a, report.cap_violations_b);
}

#[test]
fn identical_policies_have_zero_divergence() {
    let (differ, trace) = differ();
    let report = differ
        .diff(&trace, PolicyKind::Iterative, PolicyKind::Iterative)
        .expect("diff runs");
    assert_eq!(report.first_divergence, None);
    assert_eq!(report.diverged_intervals, 0);
}

#[test]
fn one_step_vs_energy_optimal_diverges_on_the_storm_trace() {
    let (differ, trace) = differ();
    let report = differ
        .diff(&trace, PolicyKind::OneStep, PolicyKind::EnergyOptimal)
        .expect("diff runs");
    assert!(
        report.diverged_intervals > 0,
        "a capping policy and an uncapped energy chaser must diverge"
    );
    let first = report
        .first_divergence
        .expect("nonzero divergence must localize its first interval");
    // The first diverging row really is the first row flagged.
    let flagged = report
        .rows
        .iter()
        .find(|r| r.diverged)
        .expect("a diverging row exists");
    assert_eq!(flagged.interval, first);
    // The uncapped side enforces no cap; the capping side always does.
    assert!(report.rows.iter().all(|r| r.cap_a.is_some()));
    assert!(report.rows.iter().all(|r| r.cap_b.is_none()));
    assert!(report.priced_intervals > 0, "the model must price rows");
}

#[test]
fn report_serializations_are_consistent() {
    let (differ, trace) = differ();
    let report = differ
        .diff(&trace, PolicyKind::OneStep, PolicyKind::SteepestDrop)
        .expect("diff runs");
    let csv = report.to_csv();
    // Header plus one line per compared interval.
    assert_eq!(csv.lines().count(), report.intervals + 1);
    let header = csv.lines().next().expect("header");
    assert_eq!(header.split(',').count(), 16);
    for line in csv.lines().skip(1) {
        assert_eq!(line.split(',').count(), 16, "ragged CSV row: {line}");
    }
    // JSONL: one summary line plus one line per interval, all valid
    // enough to re-split on top-level keys.
    let jsonl = report.to_jsonl();
    assert_eq!(jsonl.lines().count(), report.intervals + 1);
    let summary = jsonl.lines().next().expect("summary line");
    assert!(summary.contains("\"kind\":\"summary\""));
    assert!(summary.contains("\"policy_a\":\"one-step\""));
    assert!(summary.contains("\"policy_b\":\"steepest-drop\""));
    assert!(jsonl
        .lines()
        .skip(1)
        .all(|l| l.starts_with("{\"kind\":\"interval\"") && l.ends_with('}')));
}

#[test]
fn subcommand_entry_point_matches_the_api() {
    // The `diff-policies` subcommand path: record + diff in one call.
    let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
    let r =
        diff_policies::run(&ctx, PolicyKind::OneStep, PolicyKind::Recorded).expect("run succeeds");
    assert!(r.self_replay);
    assert_eq!(r.report.diverged_intervals, 0);
    assert!(!r.trace_jsonl.is_empty());
}
