//! Differential harness pinning the batch SoA projection kernel to
//! the scalar reference, bit for bit.
//!
//! The batch kernel (`ppep_core::batch`) restructures the Fig. 5
//! core × VF grid walk into struct-of-arrays passes. Its contract is
//! not "close": every `f64` it emits must have the *same bits* as the
//! scalar path, and every input the scalar path rejects must be
//! rejected with the same typed error. This harness drives both
//! kernels over adversarial inputs — NaN/±inf/subnormal counter
//! salting, zero-instruction (idle) intervals, counter values adjacent
//! to the 48-bit PMC wrap boundary, arbitrary VF ladders and
//! topologies, and both NB operating points — and compares with
//! `to_bits()` equality per cell.

use ppep_core::PpeProjection;
use ppep_core::Ppep;
use ppep_models::green_governors::GreenGovernors;
use ppep_models::idle::{IdlePowerModel, IdleSample};
use ppep_models::trainer::TrainedModels;
use ppep_models::{ChipPowerModel, DynamicPowerModel};
use ppep_pmc::sampler::IntervalSample;
use ppep_pmc::{EventCounts, EventId};
use ppep_telemetry::record::{IntervalRecord, PowerBreakdown};
use ppep_types::time::IntervalIndex;
use ppep_types::vf::NbVfState;
use ppep_types::{Gigahertz, Kelvin, Seconds, Topology, VfPoint, VfTable, Volts, Watts};
use proptest::prelude::*;

/// One counter value adjacent to the 48-bit PMC wrap boundary.
const PMC_WRAP: f64 = (1u64 << 48) as f64;

fn finite(lo: f64, hi: f64) -> impl Strategy<Value = f64> {
    prop::num::f64::NORMAL.prop_map(move |v| {
        let unit = (v.abs().fract()).clamp(0.0, 0.999_999);
        lo + unit * (hi - lo)
    })
}

/// A strictly increasing ladder built from positive increments.
fn build_table(n_states: usize, dv: &[f64], df: &[f64]) -> VfTable {
    let mut points = Vec::with_capacity(n_states);
    let mut v = 0.75;
    let mut f = 1.0;
    for i in 0..n_states {
        v += dv[i];
        f += df[i];
        points.push(VfPoint::new(Volts::new(v), Gigahertz::new(f)));
    }
    VfTable::new(points).expect("increments keep the ladder strictly increasing")
}

/// A synthetic trained bundle over an arbitrary ladder/topology —
/// no rig, so the proptest can vary every model parameter.
fn build_models(
    table: &VfTable,
    cus: usize,
    cores_per_cu: usize,
    weights: &[f64],
    alpha: f64,
) -> TrainedModels {
    let mut w = [0.0; 9];
    w.copy_from_slice(&weights[..9]);
    let reference = table.point(table.highest()).voltage;
    let dynamic = DynamicPowerModel::from_parts(w, alpha, reference);
    // P = 0.1·T + 10·V — linear, so any ladder's fit is exact.
    let mut samples = Vec::new();
    for (_, point) in table.iter() {
        for i in 0..4 {
            let t = 305.0 + 7.0 * f64::from(i);
            samples.push(IdleSample {
                voltage: point.voltage,
                temperature: Kelvin::new(t),
                power: Watts::new(0.1 * t + 10.0 * point.voltage.as_volts()),
            });
        }
    }
    let idle = IdlePowerModel::fit(&samples).expect("synthetic idle fit");
    let governors = GreenGovernors::from_parts(vec![Watts::new(10.0); table.len()], 1.0e-9);
    let topology = Topology::new("prop", cus, cores_per_cu, table.clone(), false, 4.0, 20.0)
        .expect("positive counts");
    TrainedModels::from_parts(
        ChipPowerModel::new(idle, dynamic),
        governors,
        alpha,
        table.clone(),
        topology,
    )
}

/// Per-core counter block: `kind` selects idle / ordinary /
/// wrap-adjacent / subnormal instruction counts, the ratios shape the
/// per-instruction fingerprint.
fn build_sample(kind: u8, inst_mag: f64, ratios: &[f64], duration: Seconds) -> IntervalSample {
    let inst = match kind % 4 {
        0 => 0.0,
        1 => inst_mag,
        // Counter values just below the 48-bit PMC wrap boundary.
        2 => PMC_WRAP - inst_mag.max(1.0),
        _ => 5.0e-324, // subnormal: busy, but absurdly so
    };
    let ccpi = 0.4 + ratios[0];
    let mcpi = ratios[1];
    let mut c = EventCounts::zero();
    c.set(EventId::RetiredInstructions, inst);
    c.set(EventId::CpuClocksNotHalted, (ccpi + mcpi) * inst);
    c.set(EventId::MabWaitCycles, mcpi * inst);
    c.set(EventId::DispatchStalls, (0.1 + ratios[2]) * inst);
    c.set(EventId::RetiredUops, (1.0 + ratios[3]) * inst);
    c.set(EventId::FpuPipeAssignment, ratios[4] * inst);
    c.set(EventId::InstructionCacheFetches, ratios[5] * inst);
    c.set(EventId::DataCacheAccesses, ratios[6] * inst);
    c.set(EventId::RequestsToL2, ratios[7] * inst);
    c.set(EventId::RetiredBranches, ratios[8] * inst);
    c.set(EventId::RetiredMispredictedBranches, ratios[9] * inst);
    c.set(EventId::L2CacheMisses, ratios[10] * inst);
    IntervalSample {
        counts: c,
        duration,
    }
}

fn build_record(
    models: &TrainedModels,
    kinds: &[u8],
    inst_mags: &[f64],
    ratios: &[f64],
    cu_vf_picks: &[usize],
    salt: Option<(usize, usize, f64)>,
) -> IntervalRecord {
    let n_cores = models.topology().core_count();
    let n_cus = models.topology().cu_count();
    let duration = Seconds::new(0.2);
    let mut samples = Vec::with_capacity(n_cores);
    for core in 0..n_cores {
        let r = &ratios[core * 11..core * 11 + 11];
        samples.push(build_sample(kinds[core], inst_mags[core], r, duration));
    }
    if let Some((core, event, value)) = salt {
        if let (Some(sample), Some(event)) =
            (samples.get_mut(core), EventId::from_index(event % 12))
        {
            sample.counts.set(event, value);
        }
    }
    let table = models.vf_table();
    let cu_vf: Vec<_> = (0..n_cus)
        .map(|cu| {
            let idx = cu_vf_picks[cu] % table.len();
            table.state(idx).expect("index reduced mod len")
        })
        .collect();
    let core_busy: Vec<bool> = samples
        .iter()
        .map(|s| s.counts.get(EventId::RetiredInstructions) > 0.0)
        .collect();
    IntervalRecord {
        index: IntervalIndex(0),
        duration,
        samples,
        true_counts: vec![EventCounts::zero(); n_cores],
        measured_power: Watts::new(25.0),
        true_power: PowerBreakdown {
            core_dynamic: vec![Watts::ZERO; n_cores],
            nb_dynamic: Watts::ZERO,
            cu_idle: vec![Watts::ZERO; n_cus],
            nb_idle: Watts::ZERO,
            base: Watts::ZERO,
        },
        temperature: Kelvin::new(318.0),
        cu_vf,
        nb_state: NbVfState::High,
        core_busy,
    }
}

/// `to_bits()` equality over every float either projection carries.
fn bits_eq(batch: &PpeProjection, scalar: &PpeProjection) -> Result<(), String> {
    macro_rules! check {
        ($a:expr, $b:expr, $what:expr) => {
            if $a.to_bits() != $b.to_bits() {
                return Err(format!("{} differ: {:?} vs {:?}", $what, $a, $b));
            }
        };
    }
    check!(
        batch.work_instructions,
        scalar.work_instructions,
        "work_instructions"
    );
    if batch.cores.len() != scalar.cores.len() {
        return Err("core counts differ".into());
    }
    for (b, s) in batch.cores.iter().zip(&scalar.cores) {
        if b.busy != s.busy || b.per_vf.len() != s.per_vf.len() {
            return Err(format!("core {:?} shape/busy differ", b.core));
        }
        for (bc, sc) in b.per_vf.iter().zip(&s.per_vf) {
            check!(bc.ips, sc.ips, format!("core {:?} {} ips", b.core, bc.vf));
            check!(bc.cpi, sc.cpi, format!("core {:?} {} cpi", b.core, bc.vf));
            check!(
                bc.dynamic_power.as_watts(),
                sc.dynamic_power.as_watts(),
                format!("core {:?} {} pdyn", b.core, bc.vf)
            );
        }
    }
    if batch.chip.len() != scalar.chip.len() {
        return Err("chip lengths differ".into());
    }
    for (b, s) in batch.chip.iter().zip(&scalar.chip) {
        check!(
            b.power.as_watts(),
            s.power.as_watts(),
            format!("{} power", b.vf)
        );
        check!(
            b.nb_power.as_watts(),
            s.nb_power.as_watts(),
            format!("{} nb_power", b.vf)
        );
        check!(b.ips, s.ips, format!("{} ips", b.vf));
        check!(
            b.time_for_work.as_secs(),
            s.time_for_work.as_secs(),
            format!("{} time", b.vf)
        );
        check!(
            b.energy.as_joules(),
            s.energy.as_joules(),
            format!("{} energy", b.vf)
        );
        check!(b.edp, s.edp, format!("{} edp", b.vf));
    }
    Ok(())
}

/// Both kernels on both NB points: identical projections or identical
/// typed errors — never a disagreement.
fn assert_kernels_agree(engine: &Ppep, record: &IntervalRecord) -> Result<(), String> {
    for nb in [NbVfState::High, NbVfState::Low] {
        let batch = engine.project_nb(record, nb);
        let scalar = engine.project_nb_scalar(record, nb);
        match (batch, scalar) {
            (Ok(b), Ok(s)) => bits_eq(&b, &s).map_err(|e| format!("{nb:?}: {e}"))?,
            (Err(b), Err(s)) => {
                if b.to_string() != s.to_string() {
                    return Err(format!("{nb:?}: error mismatch: {b} vs {s}"));
                }
            }
            (b, s) => {
                return Err(format!(
                    "{nb:?}: kernel disagreement: batch ok={} scalar ok={}",
                    b.is_ok(),
                    s.is_ok()
                ))
            }
        }
    }
    Ok(())
}

const SALT_VALUES: [f64; 6] = [
    f64::NAN,
    f64::INFINITY,
    f64::NEG_INFINITY,
    5.0e-324, // smallest positive subnormal
    1.0e-310, // mid-range subnormal
    -1.0,     // negative count (wrap mis-correction)
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary ladders, topologies, model weights, counter blocks
    /// (idle / ordinary / wrap-adjacent / subnormal), degenerate-value
    /// salting, and both NB states: batch output is bit-identical to
    /// scalar output, and errors are string-identical.
    #[test]
    fn batch_kernel_is_bit_identical_to_scalar(
        n_states in 2usize..=7,
        cus in 1usize..=4,
        cores_per_cu in 1usize..=2,
        dv in prop::collection::vec(finite(0.02, 0.12), 7),
        df in prop::collection::vec(finite(0.15, 0.6), 7),
        weights in prop::collection::vec(finite(1.0e-11, 1.0e-9), 9),
        alpha in finite(1.0, 2.2),
        kinds in prop::collection::vec(0u8..4, 8),
        inst_mags in prop::collection::vec(finite(1.0e6, 1.0e9), 8),
        ratios in prop::collection::vec(finite(0.0, 2.0), 88),
        cu_vf_picks in prop::collection::vec(0usize..64, 4),
        salt_core in 0usize..16,
        salt_event in 0usize..12,
        salt_pick in 0usize..6,
    ) {
        let table = build_table(n_states, &dv, &df);
        let models = build_models(&table, cus, cores_per_cu, &weights, alpha);
        // Half the time the salt lands on a real core and poisons one
        // counter with a NaN/±inf/subnormal/negative value.
        let salt = (salt_core < 8).then_some((salt_core, salt_event, SALT_VALUES[salt_pick]));
        let record = build_record(&models, &kinds, &inst_mags, &ratios, &cu_vf_picks, salt);
        let engine = Ppep::new(models);
        if let Err(e) = assert_kernels_agree(&engine, &record) {
            prop_assert!(false, "{}", e);
        }
    }
}

/// The trained FX-8320 bundle over a real simulated run: every
/// interval of a mixed workload projects bit-identically under both
/// kernels (the non-synthetic anchor for the property above).
#[test]
fn trained_engine_matches_across_a_simulated_run() {
    let mut rig = ppep_rig::TrainingRig::fx8320(42);
    let engine = Ppep::new(rig.train_quick().expect("training succeeds"));
    let mut sim = ppep_sim::ChipSimulator::new(ppep_sim::chip::SimConfig::fx8320(42));
    sim.load_workload(&ppep_workloads::combos::instances("433.milc", 3, 42));
    for record in sim.run_intervals(8) {
        assert_kernels_agree(&engine, &record).expect("kernels agree on simulated records");
    }
}

/// Explicit pins for the corners the proptest samples: an all-idle
/// record, a wrap-adjacent record, and each salt value in a fixed
/// slot — kept as named cases so a regression points at the corner.
#[test]
fn named_corner_cases_agree() {
    let table = VfTable::fx8320();
    let models = build_models(&table, 4, 2, &[5.0e-10; 9], 1.6);
    let engine = Ppep::new(models.clone());
    let ratios: Vec<f64> = (0..88).map(|i| 0.01 * (i % 20) as f64).collect();
    let picks = [4usize, 0, 2, 1];

    // All cores idle.
    let record = build_record(&models, &[0; 8], &[0.0; 8], &ratios, &picks, None);
    assert_kernels_agree(&engine, &record).expect("idle record");

    // All cores wrap-adjacent.
    let record = build_record(&models, &[2; 8], &[1.0e3; 8], &ratios, &picks, None);
    assert_kernels_agree(&engine, &record).expect("wrap-adjacent record");

    // Every salt value, planted in the busiest slot.
    for (i, value) in SALT_VALUES.iter().enumerate() {
        let salt = Some((0, i, *value));
        let record = build_record(&models, &[1; 8], &[5.0e8; 8], &ratios, &picks, salt);
        assert_kernels_agree(&engine, &record)
            .unwrap_or_else(|e| panic!("salt value {value:?}: {e}"));
    }
}
