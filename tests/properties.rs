//! Property-based tests over the workspace's core invariants.
//!
//! These cover the mathematical guarantees the PPEP pipeline leans on:
//! regression solvers agreeing with each other, the Eq. 1 CPI
//! projection forming a group action over frequencies, the hardware
//! event predictor preserving the Observation 1/2 invariants exactly,
//! the PG idle decomposition being consistent under Eqs. 7–8, and the
//! supervised daemon surviving arbitrary fault storms without ever
//! emitting a non-finite projection.

use ppep_models::cpi::CpiObservation;
use ppep_models::event_pred::HwEventPredictor;
use ppep_models::pg::{PgIdleEntry, PgIdleModel};
use ppep_pmc::sampler::IntervalSample;
use ppep_pmc::{EventCounts, EventId};
use ppep_regress::matrix::Matrix;
use ppep_regress::solve::{least_squares_qr, solve_cholesky, solve_gaussian};
use ppep_regress::{KFold, LinearRegression};
use ppep_types::{Gigahertz, Seconds, VfPoint, Volts, Watts};
use proptest::prelude::*;

fn finite(lo: f64, hi: f64) -> impl Strategy<Value = f64> {
    prop::num::f64::NORMAL.prop_map(move |v| {
        // Map an arbitrary normal float into [lo, hi) deterministically.
        let unit = (v.abs().fract()).clamp(0.0, 0.999_999);
        lo + unit * (hi - lo)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Gaussian elimination really solves the systems it accepts.
    #[test]
    fn gaussian_solution_satisfies_the_system(
        rows in prop::collection::vec(prop::collection::vec(finite(-5.0, 5.0), 4), 4),
        b in prop::collection::vec(finite(-10.0, 10.0), 4),
    ) {
        let mut m = Matrix::from_rows(&rows).unwrap();
        // Diagonal dominance guarantees non-singularity.
        for i in 0..4 {
            m[(i, i)] += 25.0;
        }
        let x = solve_gaussian(&m, &b).unwrap();
        let reconstructed = m.matvec(&x).unwrap();
        for (lhs, rhs) in reconstructed.iter().zip(&b) {
            prop_assert!((lhs - rhs).abs() < 1e-6, "{lhs} vs {rhs}");
        }
    }

    /// Cholesky and Gaussian agree on SPD systems.
    #[test]
    fn cholesky_matches_gaussian(
        rows in prop::collection::vec(prop::collection::vec(finite(-2.0, 2.0), 3), 6),
        b in prop::collection::vec(finite(-5.0, 5.0), 3),
    ) {
        let a = Matrix::from_rows(&rows).unwrap();
        let mut gram = a.gram(); // AᵀA is SPD given full column rank…
        for i in 0..3 {
            gram[(i, i)] += 1.0; // …made certain by ridge.
        }
        let x1 = solve_cholesky(&gram, &b).unwrap();
        let x2 = solve_gaussian(&gram, &b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            prop_assert!((u - v).abs() < 1e-6);
        }
    }

    /// QR least squares reproduces planted linear models exactly.
    #[test]
    fn qr_recovers_planted_coefficients(
        w in prop::collection::vec(finite(-3.0, 3.0), 3),
        xs in prop::collection::vec(prop::collection::vec(finite(-4.0, 4.0), 3), 12),
    ) {
        let mut design: Vec<Vec<f64>> = xs;
        // Spread the sample cloud so columns are independent.
        for (i, row) in design.iter_mut().enumerate() {
            row[i % 3] += 10.0 + i as f64;
        }
        let ys: Vec<f64> = design
            .iter()
            .map(|r| r.iter().zip(&w).map(|(x, wi)| x * wi).sum())
            .collect();
        let a = Matrix::from_rows(&design).unwrap();
        let solved = least_squares_qr(&a, &ys).unwrap();
        for (s, t) in solved.iter().zip(&w) {
            prop_assert!((s - t).abs() < 1e-6, "{s} vs {t}");
        }
    }

    /// Fitting a noiseless linear model recovers it (with intercept).
    #[test]
    fn linreg_recovers_exact_models(
        intercept in finite(-10.0, 10.0),
        w0 in finite(-5.0, 5.0),
        w1 in finite(-5.0, 5.0),
    ) {
        let xs: Vec<Vec<f64>> = (0..10)
            .flat_map(|a| (0..3).map(move |b| vec![a as f64, (b * b) as f64]))
            .collect();
        let ys: Vec<f64> =
            xs.iter().map(|r| intercept + w0 * r[0] + w1 * r[1]).collect();
        let fit = LinearRegression::fit(&xs, &ys, true).unwrap();
        prop_assert!((fit.intercept() - intercept).abs() < 1e-6);
        prop_assert!((fit.coefficients()[0] - w0).abs() < 1e-7);
        prop_assert!((fit.coefficients()[1] - w1).abs() < 1e-7);
    }

    /// Eq. 1 rebasing is transitive: going A→B→C equals A→C.
    #[test]
    fn cpi_rebase_is_transitive(
        ccpi in finite(0.3, 2.0),
        mcpi in finite(0.0, 3.0),
        fa in finite(1.0, 4.0),
        fb in finite(1.0, 4.0),
        fc in finite(1.0, 4.0),
    ) {
        let obs = CpiObservation::new(ccpi + mcpi, mcpi, Gigahertz::new(fa)).unwrap();
        let via_b = obs
            .rebase(Gigahertz::new(fb))
            .rebase(Gigahertz::new(fc));
        let direct = obs.rebase(Gigahertz::new(fc));
        prop_assert!((via_b.cpi() - direct.cpi()).abs() < 1e-9);
        prop_assert!((via_b.mcpi() - direct.mcpi()).abs() < 1e-9);
    }

    /// Memory-boundedness monotonicity: more memory CPI means more
    /// retained throughput when slowing down.
    #[test]
    fn memory_bound_work_retains_more_throughput(
        ccpi in finite(0.4, 1.5),
        mcpi_small in finite(0.0, 0.5),
        extra in finite(0.3, 2.0),
    ) {
        let f_hi = Gigahertz::new(3.5);
        let f_lo = Gigahertz::new(1.4);
        let lean = CpiObservation::new(ccpi + mcpi_small, mcpi_small, f_hi).unwrap();
        let heavy =
            CpiObservation::new(ccpi + mcpi_small + extra, mcpi_small + extra, f_hi).unwrap();
        prop_assert!(heavy.predict_speedup(f_lo) > lean.predict_speedup(f_lo));
    }

    /// The event predictor preserves per-instruction fingerprints and
    /// the Observation-2 gap exactly, for any consistent sample.
    #[test]
    fn event_predictor_preserves_invariants(
        uops in finite(1.0, 2.0),
        dcache in finite(0.1, 0.8),
        l2miss in finite(0.0, 0.03),
        mcpi in finite(0.0, 2.0),
        stalls in finite(0.1, 0.8),
        target_idx in 0usize..5,
    ) {
        let table = ppep_types::VfTable::fx8320();
        let from = table.point(table.highest());
        let to = table.point(table.state(target_idx).unwrap());
        let dt = Seconds::new(0.2);
        let cpi = 0.4 + stalls + mcpi;
        let cycles = from.frequency.as_hz() * dt.as_secs();
        let inst = cycles / cpi;
        let mut c = EventCounts::zero();
        c.set(EventId::RetiredInstructions, inst);
        c.set(EventId::CpuClocksNotHalted, cycles);
        c.set(EventId::MabWaitCycles, mcpi * inst);
        c.set(EventId::RetiredUops, uops * inst);
        c.set(EventId::DataCacheAccesses, dcache * inst);
        c.set(EventId::L2CacheMisses, l2miss * inst);
        c.set(EventId::DispatchStalls, (stalls + 0.9 * mcpi) * inst);
        let sample = IntervalSample { counts: c, duration: dt };
        let pred = HwEventPredictor::new().predict(&sample, from, to).unwrap();
        prop_assert!(pred.ips > 0.0);
        // Observation 1: per-instruction rates preserved.
        for (event, per_inst) in [
            (EventId::RetiredUops, uops),
            (EventId::DataCacheAccesses, dcache),
            (EventId::L2CacheMisses, l2miss),
        ] {
            let got = pred.rates.get(event) / pred.ips;
            prop_assert!((got - per_inst).abs() < 1e-9, "{event}: {got} vs {per_inst}");
        }
        // Observation 2: the CPI − DSPI gap carries over.
        let src_gap = cpi - (stalls + 0.9 * mcpi);
        let dst_gap = pred.cpi - pred.rates.get(EventId::DispatchStalls) / pred.ips;
        prop_assert!((src_gap - dst_gap).abs() < 1e-9);
    }

    /// Eq. 7 per-core shares always sum back to the gated chip idle
    /// power, whatever the busy pattern.
    #[test]
    fn pg_attribution_is_conservative(
        cu_w in finite(1.0, 8.0),
        nb_w in finite(1.0, 10.0),
        base_w in finite(0.5, 6.0),
        busy_mask in 1u8..16,
    ) {
        let entries = vec![PgIdleEntry {
            pidle_cu: Watts::new(cu_w),
            pidle_nb: Watts::new(nb_w),
        }; 5];
        let model = PgIdleModel::from_parts(entries, Watts::new(base_w), 4);
        let table = ppep_types::VfTable::fx8320();
        let vf = table.highest();
        // One core busy per set bit of the mask (one per CU).
        let cu_active: Vec<bool> = (0..4).map(|i| busy_mask & (1 << i) != 0).collect();
        let n = cu_active.iter().filter(|b| **b).count();
        let chip = model
            .chip_idle_pg_enabled(&cu_active, &[vf; 4])
            .unwrap()
            .as_watts();
        let per_core_total: f64 = cu_active
            .iter()
            .filter(|b| **b)
            .map(|_| model.per_core_idle_pg_enabled(vf, 1, n).unwrap().as_watts())
            .sum();
        prop_assert!((chip - per_core_total).abs() < 1e-9, "{chip} vs {per_core_total}");
    }

    /// K-fold splits partition the index space for any (n, k).
    #[test]
    fn kfold_partitions(n in 4usize..200, k in 2usize..5, seed in 0u64..1000) {
        prop_assume!(n >= k);
        let kf = KFold::new_shuffled(n, k, seed).unwrap();
        let mut seen = vec![false; n];
        for f in 0..k {
            for &i in kf.test_indices(f) {
                prop_assert!(!seen[i], "index {i} in two folds");
                seen[i] = true;
            }
            let train = kf.train_indices(f);
            prop_assert_eq!(train.len() + kf.test_indices(f).len(), n);
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    /// Unit arithmetic: energy identities hold for any magnitudes.
    #[test]
    fn energy_identities(p in finite(0.1, 500.0), t in finite(0.001, 100.0)) {
        let e = Watts::new(p) * Seconds::new(t);
        prop_assert!((e / Seconds::new(t) - Watts::new(p)).abs().as_watts() < 1e-9);
        prop_assert!(((e / Watts::new(p)).as_secs() - t).abs() < 1e-9);
    }

    /// VfPoint-based scaling: dynamic model voltage scaling is
    /// monotone in voltage for core events.
    #[test]
    fn dynamic_scaling_monotone(v1 in finite(0.6, 1.0), v2 in finite(1.01, 1.5)) {
        let mut weights = [0.0; 9];
        weights[0] = 1.0e-9;
        let model = ppep_models::DynamicPowerModel::from_parts(
            weights,
            2.0,
            Volts::new(1.32),
        );
        let mut rates = [0.0; 9];
        rates[0] = 1.0e9;
        let lo = model.estimate_core(&rates, Volts::new(v1)).unwrap();
        let hi = model.estimate_core(&rates, Volts::new(v2)).unwrap();
        prop_assert!(hi > lo);
    }
}

/// A quick-trained engine shared by the daemon properties (training is
/// deterministic, so sharing it does not couple the cases).
fn trained_engine() -> ppep_core::Ppep {
    use std::sync::OnceLock;
    static MODELS: OnceLock<ppep_models::trainer::TrainedModels> = OnceLock::new();
    ppep_core::Ppep::new(
        MODELS
            .get_or_init(|| {
                ppep_rig::TrainingRig::fx8320(42)
                    .train_quick()
                    .expect("training succeeds")
            })
            .clone(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever faults a storm throws at it — dropouts, NaN diodes,
    /// stuck sensors, counter wraps, MSR failures, overruns, at any
    /// rate — the supervised daemon never panics, never aborts, and
    /// never emits a non-finite power/energy projection.
    #[test]
    fn supervised_daemon_survives_arbitrary_fault_storms(
        storm_seed in 0u64..1_000,
        rate in finite(0.0, 0.9),
    ) {
        use ppep_core::daemon::{PpepDaemon, StaticController};
        use ppep_core::resilient::{ResilientDaemon, SupervisorConfig};
        use ppep_sim::fault::FaultPlan;

        const INTERVALS: usize = 12;
        let ppep = trained_engine();
        let table = ppep.models().vf_table().clone();
        let mut sim = ppep_sim::ChipSimulator::new(ppep_sim::chip::SimConfig::fx8320(42));
        sim.load_workload(&ppep_workloads::combos::instances("433.milc", 4, 42));
        sim.set_fault_plan(FaultPlan::storm(storm_seed, INTERVALS as u64, rate, 8));
        let inner = PpepDaemon::new(
            ppep,
            ppep_sim::SimPlatform::new(sim),
            StaticController { vf: table.lowest() },
        );
        let mut daemon = ResilientDaemon::new(inner, SupervisorConfig::new(table.lowest()));

        let steps = daemon.run(INTERVALS);
        prop_assert!(steps.is_ok(), "transient faults must never abort: {:?}", steps.err());
        let steps = steps.unwrap();
        prop_assert_eq!(steps.len(), INTERVALS);
        for s in &steps {
            prop_assert_eq!(s.decision.len(), 4, "one VF per CU, always");
            if let Some(p) = &s.projection {
                for c in &p.chip {
                    prop_assert!(
                        c.power.as_watts().is_finite() && c.power.as_watts() >= 0.0,
                        "power {:?} at interval {}", c.power, s.interval
                    );
                    prop_assert!(c.energy.as_joules().is_finite() && c.edp.is_finite());
                    prop_assert!(c.ips.is_finite());
                }
                prop_assert!(p.temperature.as_kelvin().is_finite());
            }
        }
        let report = daemon.report();
        prop_assert_eq!(report.intervals, INTERVALS as u64);
        let availability = report.decision_availability();
        prop_assert!((0.0..=1.0).contains(&availability));
        // Bookkeeping is conservative: every interval is accounted as
        // exactly one of fresh, held, or failsafe-pinned.
        prop_assert_eq!(
            report.fresh_decisions + report.held_decisions + report.failsafe_intervals,
            INTERVALS as u64
        );
    }
}

/// A plain (non-proptest) sanity check that the strategies above are
/// actually exercising the range they claim.
#[test]
fn finite_strategy_stays_in_range() {
    use proptest::strategy::ValueTree;
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::default();
    for _ in 0..100 {
        let v = finite(2.0, 3.0).new_tree(&mut runner).unwrap().current();
        assert!((2.0..3.0).contains(&v), "{v}");
    }
}

// Silence the unused-import warning for VfPoint, which documents the
// intended vocabulary for future properties.
#[allow(dead_code)]
fn _vocabulary(_p: VfPoint) {}
