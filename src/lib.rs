//! Umbrella crate for the PPEP reproduction workspace.
//!
//! This crate exists to host the repository-level examples
//! (`examples/`) and cross-crate integration tests (`tests/`). The
//! actual functionality lives in the `ppep-*` crates under `crates/`;
//! the most convenient entry point for downstream users is
//! [`ppep_core`], which re-exports the full public API.
//!
//! # Quickstart
//!
//! ```
//! use ppep_core::prelude::*;
//! use ppep_rig::TrainingRig;
//!
//! // Build a simulated AMD FX-8320-like chip and train PPEP on it.
//! let mut rig = TrainingRig::fx8320(42);
//! let trained = rig.train_quick().expect("training succeeds");
//! assert!(trained.dynamic_model().coefficient_count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ppep_core as core;
pub use ppep_dvfs as dvfs;
pub use ppep_experiments as experiments;
pub use ppep_models as models;
pub use ppep_pmc as pmc;
pub use ppep_regress as regress;
pub use ppep_rig as rig;
pub use ppep_sim as sim;
pub use ppep_telemetry as telemetry;
pub use ppep_types as types;
pub use ppep_workloads as workloads;
