//! Training-pipeline benchmarks: the one-time offline cost of §IV.

use criterion::{criterion_group, criterion_main, Criterion};
use ppep_models::idle::IdlePowerModel;
use ppep_models::trainer::{TrainingBudget, TrainingRig};
use ppep_models::DynamicPowerModel;
use ppep_types::Volts;
use std::hint::black_box;

fn bench_idle_fit(c: &mut Criterion) {
    let rig = TrainingRig::fx8320(42);
    let samples = rig.collect_idle_traces(&TrainingBudget::quick());
    c.bench_function("idle_model_fit", |b| {
        b.iter(|| IdlePowerModel::fit(black_box(&samples)).expect("fit"))
    });
}

fn bench_dynamic_fit(c: &mut Criterion) {
    let rig = TrainingRig::fx8320(42);
    let budget = TrainingBudget::quick();
    let idle = IdlePowerModel::fit(&rig.collect_idle_traces(&budget)).expect("idle fit");
    let table = rig.config().topology.vf_table().clone();
    let vf5 = table.highest();
    let mut samples = Vec::new();
    for spec in ppep_workloads::combos::spec_combos(42).iter().take(10) {
        let trace = rig.collect_run(spec, vf5, &budget);
        for r in &trace.records {
            samples.push(TrainingRig::dyn_sample_from(r, &idle, &table).expect("finite sample"));
        }
    }
    c.bench_function("dynamic_model_fit", |b| {
        b.iter(|| {
            DynamicPowerModel::fit(black_box(&samples), 2.0, Volts::new(1.32), 1e-4)
                .expect("fit")
        })
    });
}

fn bench_trace_collection(c: &mut Criterion) {
    let rig = TrainingRig::fx8320(42);
    let mut budget = TrainingBudget::quick();
    budget.warmup_intervals = 2;
    budget.record_intervals = 3;
    let spec = ppep_workloads::combos::instances("403.gcc", 4, 42);
    let vf5 = rig.config().topology.vf_table().highest();
    c.bench_function("collect_run_5_intervals", |b| {
        b.iter(|| black_box(rig.collect_run(&spec, vf5, &budget)))
    });
}

criterion_group!(training, bench_idle_fit, bench_dynamic_fit, bench_trace_collection);
criterion_main!(training);
