//! Online-overhead benchmarks: the §IV-E claim.
//!
//! PPEP runs as a user-level daemon with "negligible overhead at the
//! 200 ms sampling rate". These benches measure one pipeline pass and
//! its pieces; the full projection must come in far below the 200 ms
//! budget (it lands in microseconds).

use criterion::{criterion_group, criterion_main, Criterion};
use ppep_bench::{sample_record, shared_engine, shared_models};
use ppep_models::event_pred::HwEventPredictor;
use std::hint::black_box;

fn bench_full_projection(c: &mut Criterion) {
    let ppep = shared_engine();
    let record = sample_record();
    c.bench_function("ppep_project_all_vf_states", |b| {
        b.iter(|| ppep.project(black_box(&record)).expect("projection"))
    });
}

/// Scalar reference vs the struct-of-arrays batch kernel on the same
/// record — the Criterion twin of the `kernel-bench` CI gate
/// (`BENCH_kernel.json`), which also enforces bit equality.
fn bench_kernel_comparison(c: &mut Criterion) {
    use ppep_core::ProjectionKernel;
    let record = sample_record();
    let batch = shared_engine().with_kernel(ProjectionKernel::Batch);
    let scalar = shared_engine().with_kernel(ProjectionKernel::Scalar);
    c.bench_function("projection_kernel_scalar", |b| {
        b.iter(|| scalar.project(black_box(&record)).expect("projection"))
    });
    c.bench_function("projection_kernel_batch", |b| {
        b.iter(|| batch.project(black_box(&record)).expect("projection"))
    });
}

fn bench_pipeline_pieces(c: &mut Criterion) {
    let models = shared_models();
    let record = sample_record();
    let table = models.vf_table().clone();
    let vf5 = table.highest();
    let vf1 = table.lowest();

    c.bench_function("chip_power_estimate", |b| {
        b.iter(|| {
            models.chip_power().estimate_chip(
                black_box(&record.samples),
                vf5,
                &table,
                record.temperature,
            )
        })
    });
    c.bench_function("chip_power_predict_cross_vf", |b| {
        b.iter(|| {
            models
                .chip_power()
                .predict_chip(black_box(&record.samples), vf5, vf1, &table, record.temperature)
                .expect("prediction")
        })
    });
    c.bench_function("hw_event_predictor_one_core", |b| {
        let predictor = HwEventPredictor::new();
        let from = table.point(vf5);
        let to = table.point(vf1);
        b.iter(|| predictor.predict(black_box(&record.samples[0]), from, to).expect("predict"))
    });
    c.bench_function("idle_model_estimate", |b| {
        let v = table.point(vf5).voltage;
        b.iter(|| models.idle_model().estimate(black_box(v), record.temperature))
    });
    c.bench_function("energy_prediction_next_interval", |b| {
        let predictor = ppep_core::energy::EnergyPredictor::new(models.clone());
        b.iter(|| predictor.predict_next_energy(black_box(&record)).expect("energy"))
    });
}

fn bench_capping_decision(c: &mut Criterion) {
    let ppep = shared_engine();
    let record = sample_record();
    let projection = ppep.project(&record).expect("projection");
    let controller =
        ppep_dvfs::capping::OneStepCapping::new(ppep.clone(), ppep_types::Watts::new(60.0));
    c.bench_function("one_step_capping_decision", |b| {
        b.iter(|| controller.choose(black_box(&projection)).expect("decision"))
    });
}

criterion_group!(
    online,
    bench_full_projection,
    bench_kernel_comparison,
    bench_pipeline_pieces,
    bench_capping_decision
);
criterion_main!(online);
