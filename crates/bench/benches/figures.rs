//! Per-figure regeneration benchmarks: every table and figure of the
//! evaluation, exercised end-to-end at quick scale.
//!
//! The expensive shared stages (trace collection, model training) run
//! once as fixtures; each bench then measures the figure's own
//! analysis, so `cargo bench` both regenerates and times the whole
//! evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use ppep_experiments::common::{Context, CvMachinery, Scale, TraceStore, DEFAULT_SEED};
use ppep_experiments::*;
use ppep_types::VfStateId;
use std::hint::black_box;
use std::sync::OnceLock;

fn ctx() -> Context {
    Context::fx8320(Scale::Quick, DEFAULT_SEED)
}

fn shared_store() -> &'static TraceStore {
    static STORE: OnceLock<TraceStore> = OnceLock::new();
    STORE.get_or_init(|| {
        let ctx = ctx();
        let table = ctx.rig.config().topology.vf_table().clone();
        let vfs: Vec<VfStateId> = table.states().collect();
        TraceStore::collect(&ctx.rig, &ctx.scale.roster(ctx.seed), &vfs, &ctx.scale.budget())
    })
}

fn shared_engine() -> &'static ppep_core::Ppep {
    static ENGINE: OnceLock<ppep_core::Ppep> = OnceLock::new();
    ENGINE.get_or_init(|| {
        ppep_core::Ppep::new(ctx().train_models().expect("training succeeds"))
    })
}

fn bench_fig1(c: &mut Criterion) {
    let ctx = ctx();
    c.bench_function("fig01_idle_trace", |b| {
        b.iter(|| black_box(fig01_idle_trace::run(&ctx).expect("fig1")))
    });
}

fn bench_fig2_fig3(c: &mut Criterion) {
    let ctx = ctx();
    let store = shared_store();
    let mut group = c.benchmark_group("model_validation");
    group.sample_size(10);
    group.bench_function("fig02_same_state_cv", |b| {
        b.iter(|| black_box(fig02_model_error::run_with_store(&ctx, store).expect("fig2")))
    });
    group.bench_function("fig03_cross_vf_cv", |b| {
        b.iter(|| black_box(fig03_cross_vf::run_with_store(&ctx, store).expect("fig3")))
    });
    group.bench_function("cv_fold_dynamic_fit", |b| {
        let budget = ctx.scale.budget();
        let cv = CvMachinery::build(&ctx.rig, store, &budget, 4).expect("cv");
        b.iter(|| black_box(cv.fit_fold(0, &ctx.rig, store).expect("fold fit")))
    });
    group.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let ctx = ctx();
    let mut group = c.benchmark_group("pg_sweep");
    group.sample_size(10);
    group.bench_function("fig04_pg_sweep", |b| {
        b.iter(|| black_box(fig04_pg_sweep::run(&ctx).expect("fig4")))
    });
    group.finish();
}

fn bench_fig6_fig7(c: &mut Criterion) {
    let ctx = ctx();
    let mut group = c.benchmark_group("policies");
    group.sample_size(10);
    group.bench_function("fig06_energy_prediction", |b| {
        b.iter(|| black_box(fig06_energy::run(&ctx).expect("fig6")))
    });
    group.bench_function("fig07_power_capping", |b| {
        b.iter(|| black_box(fig07_capping::run(&ctx).expect("fig7")))
    });
    group.finish();
}

fn bench_section_v(c: &mut Criterion) {
    let ctx = ctx();
    let engine = shared_engine();
    let mut group = c.benchmark_group("dvfs_space_exploration");
    group.sample_size(10);
    group.bench_function("fig08_09_background_sweep", |b| {
        b.iter(|| {
            black_box(fig08_09_background::run_with_engine(&ctx, engine).expect("fig8/9"))
        })
    });
    group.bench_function("fig10_nb_share", |b| {
        b.iter(|| black_box(fig10_nb_share::run_with_engine(&ctx, engine).expect("fig10")))
    });
    group.bench_function("fig11_nb_dvfs", |b| {
        b.iter(|| black_box(fig11_nb_dvfs::run_with_engine(&ctx, engine).expect("fig11")))
    });
    group.finish();
}

fn bench_side_studies(c: &mut Criterion) {
    let ctx = ctx();
    let mut group = c.benchmark_group("side_studies");
    group.sample_size(10);
    group.bench_function("cpi_predictor_accuracy", |b| {
        b.iter(|| black_box(cpi_accuracy::run(&ctx).expect("cpi")))
    });
    group.bench_function("idle_model_accuracy", |b| {
        b.iter(|| black_box(idle_accuracy::run(&ctx).expect("idle")))
    });
    group.bench_function("observations_study", |b| {
        b.iter(|| black_box(observations::run(&ctx).expect("obs")))
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_fig1,
    bench_fig2_fig3,
    bench_fig4,
    bench_fig6_fig7,
    bench_section_v,
    bench_side_studies
);
criterion_main!(figures);
