//! Substrate benchmarks: simulator stepping, PMU multiplexing, and the
//! numerical kernels the models are built on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ppep_bench::loaded_simulator;
use ppep_pmc::{EventCounts, Pmu};
use ppep_regress::matrix::Matrix;
use ppep_regress::solve::least_squares_qr;
use ppep_regress::LinearRegression;
use ppep_types::Seconds;
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("chip_step_interval_8_cores", |b| {
        b.iter_batched_ref(
            loaded_simulator,
            |sim| black_box(sim.step_interval()),
            BatchSize::SmallInput,
        )
    });
}

fn bench_pmu(c: &mut Criterion) {
    let mut counts = EventCounts::zero();
    for e in ppep_pmc::events::ALL_EVENTS {
        counts.set(e, 1.0e6);
    }
    c.bench_function("pmu_tick_and_drain_interval", |b| {
        b.iter_batched_ref(
            Pmu::new,
            |pmu| {
                for _ in 0..10 {
                    pmu.tick(black_box(&counts), Seconds::new(0.02)).expect("tick");
                }
                pmu.drain_interval().expect("drain")
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_regression(c: &mut Criterion) {
    // A power-model-shaped problem: 1000 samples × 9 regressors.
    let xs: Vec<Vec<f64>> = (0..1000)
        .map(|i| {
            (0..9)
                .map(|j| ((i * 7 + j * 13) % 100) as f64 / 10.0 + j as f64)
                .collect()
        })
        .collect();
    let ys: Vec<f64> = xs.iter().map(|r| r.iter().sum::<f64>() * 1.5 + 3.0).collect();
    c.bench_function("linreg_fit_1000x9", |b| {
        b.iter(|| LinearRegression::fit(black_box(&xs), black_box(&ys), true).expect("fit"))
    });
    c.bench_function("nonnegative_fit_1000x9", |b| {
        b.iter(|| {
            LinearRegression::fit_nonnegative(black_box(&xs), black_box(&ys), true, 1e-4)
                .expect("fit")
        })
    });
    let a = Matrix::from_rows(&xs).unwrap();
    c.bench_function("qr_least_squares_1000x10", |b| {
        b.iter(|| least_squares_qr(black_box(&a), black_box(&ys)).expect("solve"))
    });
}

criterion_group!(substrate, bench_simulator, bench_pmu, bench_regression);
criterion_main!(substrate);
