//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches measure two distinct things:
//!
//! * **online overhead** — how long one PPEP pipeline pass takes
//!   (§IV-E claims negligible overhead at a 200 ms sampling rate);
//! * **regeneration cost** — how long each figure's analysis takes on
//!   pre-collected traces, so `cargo bench` exercises every table and
//!   figure of the evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ppep_core::Ppep;
use ppep_models::trainer::{TrainedModels, TrainingRig};
use ppep_sim::chip::{ChipSimulator, IntervalRecord, SimConfig};
use ppep_workloads::combos::instances;
use std::sync::OnceLock;

/// A quick-trained model bundle, built once per bench process.
pub fn shared_models() -> &'static TrainedModels {
    static MODELS: OnceLock<TrainedModels> = OnceLock::new();
    MODELS.get_or_init(|| {
        TrainingRig::fx8320(42).train_quick().expect("training succeeds")
    })
}

/// A PPEP engine over the shared models.
pub fn shared_engine() -> Ppep {
    Ppep::new(shared_models().clone())
}

/// One warmed-up interval record of a mixed workload, for projection
/// benchmarks.
pub fn sample_record() -> IntervalRecord {
    let mut sim = ChipSimulator::new(SimConfig::fx8320_pg(42));
    sim.load_workload(&instances("433.milc", 4, 42));
    sim.run_intervals(8).pop().expect("ran 8 intervals")
}

/// A ready-to-step simulator under full load.
pub fn loaded_simulator() -> ChipSimulator {
    let mut sim = ChipSimulator::new(SimConfig::fx8320(42));
    sim.load_workload(&instances("458.sjeng", 8, 42));
    sim
}
