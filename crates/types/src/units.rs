//! Newtype wrappers for the physical quantities PPEP manipulates.
//!
//! Every unit is a thin wrapper over `f64` implementing the arithmetic
//! that is physically meaningful (e.g. `Watts * Seconds = Joules`).
//! Construction is explicit (`Watts::new(95.0)`, `Gigahertz::new(3.5)`)
//! so that raw floats never silently cross an API boundary with the
//! wrong interpretation.

use crate::error::{Error, Result};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Guards a raw value at a model boundary: returns it unchanged when
/// finite, and [`Error::NonFinite`] when it is NaN or ±∞.
///
/// Model constructors and outputs route every computed quantity
/// through this guard (or the per-unit [`Watts::finite`]-style
/// methods) so a poisoned term — a division by a zero interval, a
/// corrupted sensor feeding a regression — surfaces as a typed error
/// at the boundary instead of silently propagating NaN through every
/// downstream projection. `what` names the guarded quantity for the
/// diagnostic (e.g. `"eq3 dynamic power"`).
///
/// ```
/// use ppep_types::units::finite;
///
/// assert_eq!(finite(3.5, "cpi").unwrap(), 3.5);
/// assert!(finite(f64::NAN, "cpi").is_err());
/// assert!(finite(f64::INFINITY, "speedup").is_err());
/// ```
#[inline]
pub fn finite(value: f64, what: &'static str) -> Result<f64> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(Error::NonFinite { what, value })
    }
}

/// Writes an already-rendered unit string honouring the formatter's
/// width and alignment (but not its precision, which the caller has
/// already applied to the numeric part).
fn pad_unit(f: &mut fmt::Formatter<'_>, rendered: &str) -> fmt::Result {
    match f.width() {
        None => f.write_str(rendered),
        Some(width) => match f.align() {
            Some(fmt::Alignment::Left) => write!(f, "{rendered:<width$}"),
            Some(fmt::Alignment::Center) => write!(f, "{rendered:^width$}"),
            // Right alignment is the natural default for quantities.
            _ => write!(f, "{rendered:>width$}"),
        },
    }
}

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr, $as_fn:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw value in this unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// The zero value of this unit.
            pub const ZERO: Self = Self(0.0);

            /// Returns the underlying raw value.
            #[inline]
            pub const fn $as_fn(self) -> f64 {
                self.0
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamps the value into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                assert!(lo.0 <= hi.0, "clamp bounds inverted");
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// True when the wrapped value is finite (not NaN/inf).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Guards this quantity at a model boundary: `Ok(self)`
            /// when finite, [`crate::Error::NonFinite`] otherwise.
            /// See [`crate::units::finite`].
            #[inline]
            pub fn finite(self, what: &'static str) -> crate::error::Result<Self> {
                crate::units::finite(self.0, what).map(Self)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let rendered = if let Some(prec) = f.precision() {
                    format!("{:.*} {}", prec, self.0, $suffix)
                } else {
                    format!("{} {}", self.0, $suffix)
                };
                pad_unit(f, &rendered)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }
    };
}

unit!(
    /// Electrical potential in volts.
    Volts,
    "V",
    as_volts
);
unit!(
    /// Clock frequency in gigahertz.
    Gigahertz,
    "GHz",
    as_ghz
);
unit!(
    /// Power in watts.
    Watts,
    "W",
    as_watts
);
unit!(
    /// Absolute temperature in kelvin.
    Kelvin,
    "K",
    as_kelvin
);
unit!(
    /// Energy in joules.
    Joules,
    "J",
    as_joules
);
unit!(
    /// Time duration in seconds.
    Seconds,
    "s",
    as_secs
);

/// Temperature in degrees Celsius, convertible to [`Kelvin`].
///
/// The paper reads the socket thermal diode which reports Celsius; the
/// idle-power model (Eq. 2) uses kelvin. Keeping both as distinct types
/// removes a classic off-by-273 bug.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Celsius(f64);

impl Celsius {
    /// Wraps a raw Celsius reading.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Self(value)
    }

    /// Returns the underlying raw value.
    #[inline]
    pub const fn as_celsius(self) -> f64 {
        self.0
    }

    /// Converts to absolute temperature.
    #[inline]
    pub fn to_kelvin(self) -> Kelvin {
        Kelvin::new(self.0 + 273.15)
    }

    /// Guards this reading at a model boundary: `Ok(self)` when
    /// finite, [`crate::Error::NonFinite`] otherwise. See
    /// [`crate::units::finite`].
    #[inline]
    pub fn finite(self, what: &'static str) -> Result<Self> {
        finite(self.0, what).map(Self)
    }
}

impl Kelvin {
    /// Converts to degrees Celsius.
    #[inline]
    pub fn to_celsius(self) -> Celsius {
        Celsius::new(self.as_kelvin() - 273.15)
    }
}

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rendered = if let Some(prec) = f.precision() {
            format!("{:.*} °C", prec, self.0)
        } else {
            format!("{} °C", self.0)
        };
        pad_unit(f, &rendered)
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.as_watts() * rhs.as_secs())
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.as_joules() / rhs.as_secs())
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds::new(self.as_joules() / rhs.as_watts())
    }
}

impl Gigahertz {
    /// Clock cycles elapsed over `dt` at this frequency.
    #[inline]
    pub fn cycles_in(self, dt: Seconds) -> f64 {
        self.as_ghz() * 1.0e9 * dt.as_secs()
    }

    /// Frequency expressed in hertz.
    #[inline]
    pub fn as_hz(self) -> f64 {
        self.as_ghz() * 1.0e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_guard_accepts_numbers_and_rejects_poison() {
        assert_eq!(finite(95.0, "power").unwrap(), 95.0);
        assert_eq!(finite(-3.0, "delta").unwrap(), -3.0);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = finite(bad, "power").unwrap_err();
            match err {
                Error::NonFinite { what, .. } => assert_eq!(what, "power"),
                other => panic!("wrong error {other}"),
            }
        }
        assert_eq!(Watts::new(4.0).finite("p").unwrap(), Watts::new(4.0));
        assert!(Watts::new(f64::NAN).finite("p").is_err());
        assert!(Celsius::new(f64::INFINITY).finite("diode").is_err());
        assert!(Kelvin::new(300.0).finite("t").is_ok());
    }

    #[test]
    fn watts_times_seconds_is_joules() {
        let e = Watts::new(95.0) * Seconds::new(0.2);
        assert!((e.as_joules() - 19.0).abs() < 1e-12);
    }

    #[test]
    fn joules_over_seconds_is_watts() {
        let p = Joules::new(19.0) / Seconds::new(0.2);
        assert!((p.as_watts() - 95.0).abs() < 1e-12);
    }

    #[test]
    fn joules_over_watts_is_seconds() {
        let t = Joules::new(19.0) / Watts::new(95.0);
        assert!((t.as_secs() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn celsius_kelvin_round_trip() {
        let c = Celsius::new(61.85);
        let k = c.to_kelvin();
        assert!((k.as_kelvin() - 335.0).abs() < 1e-9);
        assert!((k.to_celsius().as_celsius() - 61.85).abs() < 1e-9);
    }

    #[test]
    fn frequency_cycle_count() {
        // 3.5 GHz over a 200 ms interval = 7e8 cycles.
        let cycles = Gigahertz::new(3.5).cycles_in(Seconds::new(0.2));
        assert!((cycles - 7.0e8).abs() < 1.0);
    }

    #[test]
    fn ratio_of_same_unit_is_dimensionless() {
        let ratio = Gigahertz::new(3.5) / Gigahertz::new(1.4);
        assert!((ratio - 2.5).abs() < 1e-12);
    }

    #[test]
    fn unit_arithmetic_and_ordering() {
        let a = Watts::new(10.0);
        let b = Watts::new(4.0);
        assert_eq!((a - b).as_watts(), 6.0);
        assert_eq!((a + b).as_watts(), 14.0);
        assert_eq!((a * 2.0).as_watts(), 20.0);
        assert_eq!((a / 2.0).as_watts(), 5.0);
        assert!(b < a);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!((-a).abs(), a);
    }

    #[test]
    fn clamp_behaves() {
        let v = Volts::new(1.5);
        assert_eq!(
            v.clamp(Volts::new(0.888), Volts::new(1.320)),
            Volts::new(1.320)
        );
    }

    #[test]
    #[should_panic(expected = "clamp bounds inverted")]
    fn clamp_panics_on_inverted_bounds() {
        let _ = Volts::new(1.0).clamp(Volts::new(2.0), Volts::new(1.0));
    }

    #[test]
    fn sum_of_units() {
        let total: Watts = [Watts::new(1.0), Watts::new(2.5), Watts::new(3.5)]
            .into_iter()
            .sum();
        assert_eq!(total.as_watts(), 7.0);
    }

    #[test]
    fn display_includes_suffix_and_precision() {
        assert_eq!(format!("{:.2}", Watts::new(4.567)), "4.57 W");
        assert_eq!(format!("{}", Gigahertz::new(3.5)), "3.5 GHz");
        assert_eq!(format!("{:.1}", Celsius::new(61.85)), "61.9 °C");
    }

    #[test]
    fn display_honours_width_and_alignment() {
        // Quantities right-align by default (tabular output).
        assert_eq!(format!("{:8.1}", Watts::new(4.5)), "   4.5 W");
        assert_eq!(format!("{:<8.1}", Watts::new(4.5)), "4.5 W   ");
        assert_eq!(format!("{:^9.1}", Watts::new(4.5)), "  4.5 W  ");
        assert_eq!(format!("{:>10.1}", Celsius::new(61.85)), "   61.9 °C");
    }
}
