//! Chip topology: compute units, cores, and the shared north bridge.
//!
//! The AMD FX-8320 has four compute units (CUs), each with two cores
//! and a shared 2 MB L2; all CUs share a north bridge (NB) containing
//! the memory controller and 8 MB of L3 (§II). Power gating, when
//! enabled, operates at CU granularity (§IV-D). The Phenom™ II X6
//! 1090T has six cores without CU pairing and no power gating.

use crate::error::{Error, Result};
use crate::vf::VfTable;
use std::fmt;

/// Identifier of a core within a chip (0-based, chip-wide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Identifier of a compute unit within a chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CuId(pub usize);

impl fmt::Display for CuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cu{}", self.0)
    }
}

/// Static description of a chip's structure and VF capabilities.
///
/// ```
/// use ppep_types::{CoreId, CuId, Topology};
///
/// # fn main() -> ppep_types::Result<()> {
/// let chip = Topology::fx8320();
/// assert_eq!(chip.core_count(), 8);
/// assert_eq!(chip.cu_of(CoreId(5))?, CuId(2));
/// assert_eq!(chip.cores_of(CuId(2))?, vec![CoreId(4), CoreId(5)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    name: String,
    cu_count: usize,
    cores_per_cu: usize,
    vf_table: VfTable,
    supports_power_gating: bool,
    issue_width: f64,
    mispredict_penalty_cycles: f64,
}

impl Topology {
    /// Builds a custom topology.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidTopology`] when counts are zero or the
    /// microarchitectural constants are non-positive.
    pub fn new(
        name: impl Into<String>,
        cu_count: usize,
        cores_per_cu: usize,
        vf_table: VfTable,
        supports_power_gating: bool,
        issue_width: f64,
        mispredict_penalty_cycles: f64,
    ) -> Result<Self> {
        if cu_count == 0 || cores_per_cu == 0 {
            return Err(Error::InvalidTopology(
                "cu_count and cores_per_cu must be positive".into(),
            ));
        }
        if issue_width <= 0.0 || mispredict_penalty_cycles <= 0.0 {
            return Err(Error::InvalidTopology(
                "issue width and mispredict penalty must be positive".into(),
            ));
        }
        Ok(Self {
            name: name.into(),
            cu_count,
            cores_per_cu,
            vf_table,
            supports_power_gating,
            issue_width,
            mispredict_penalty_cycles,
        })
    }

    /// The AMD FX-8320 platform of the paper: 4 CUs × 2 cores, 5 VF
    /// states, CU-level power gating, 4-wide dispatch.
    pub fn fx8320() -> Self {
        Self::new("AMD FX-8320", 4, 2, VfTable::fx8320(), true, 4.0, 20.0)
            .expect("static FX-8320 topology is valid")
    }

    /// The FX-8320 with its two hardware boost states exposed
    /// (the §IV-E firmware-PPEP extension; see
    /// [`VfTable::fx8320_with_boost`]).
    pub fn fx8320_with_boost() -> Self {
        Self::new(
            "AMD FX-8320 (boost exposed)",
            4,
            2,
            VfTable::fx8320_with_boost(),
            true,
            4.0,
            20.0,
        )
        .expect("static boosted FX-8320 topology is valid")
    }

    /// A hypothetical future FX-class chip with **per-core voltage
    /// rails**: eight single-core power domains instead of four
    /// two-core CUs. §IV-A notes PPEP's "methodology can be extended
    /// to future processors with per-core voltage rails"; this preset
    /// exercises that path (every per-CU API now operates per core).
    pub fn fx8320_per_core_rails() -> Self {
        Self::new(
            "FX-class, per-core rails",
            8,
            1,
            VfTable::fx8320(),
            true,
            4.0,
            20.0,
        )
        .expect("static per-core-rail topology is valid")
    }

    /// The AMD Phenom™ II X6 1090T platform: 6 single-core "CUs",
    /// 4 VF states, no power gating, 3-wide dispatch.
    pub fn phenom_ii_x6() -> Self {
        Self::new(
            "AMD Phenom II X6 1090T",
            6,
            1,
            VfTable::phenom_ii_x6(),
            false,
            3.0,
            18.0,
        )
        .expect("static Phenom II topology is valid")
    }

    /// Human-readable platform name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of compute units.
    #[inline]
    pub fn cu_count(&self) -> usize {
        self.cu_count
    }

    /// Cores per compute unit.
    #[inline]
    pub fn cores_per_cu(&self) -> usize {
        self.cores_per_cu
    }

    /// Total core count.
    #[inline]
    pub fn core_count(&self) -> usize {
        self.cu_count * self.cores_per_cu
    }

    /// The VF ladder of this chip.
    #[inline]
    pub fn vf_table(&self) -> &VfTable {
        &self.vf_table
    }

    /// Whether the chip can power-gate idle CUs (and the NB when all
    /// CUs are gated).
    #[inline]
    pub fn supports_power_gating(&self) -> bool {
        self.supports_power_gating
    }

    /// Dispatch/issue width used in the Eq. 5/6 retire-cycle estimate.
    #[inline]
    pub fn issue_width(&self) -> f64 {
        self.issue_width
    }

    /// Branch-misprediction penalty in cycles (`MisBranchPen` in Eq. 5).
    #[inline]
    pub fn mispredict_penalty_cycles(&self) -> f64 {
        self.mispredict_penalty_cycles
    }

    /// The compute unit that owns a core.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownCore`] for out-of-range ids.
    pub fn cu_of(&self, core: CoreId) -> Result<CuId> {
        if core.0 < self.core_count() {
            Ok(CuId(core.0 / self.cores_per_cu))
        } else {
            Err(Error::UnknownCore {
                core: core.0,
                count: self.core_count(),
            })
        }
    }

    /// The cores belonging to a compute unit.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownCu`] for out-of-range ids.
    pub fn cores_of(&self, cu: CuId) -> Result<Vec<CoreId>> {
        if cu.0 < self.cu_count {
            Ok((0..self.cores_per_cu)
                .map(|i| CoreId(cu.0 * self.cores_per_cu + i))
                .collect())
        } else {
            Err(Error::UnknownCu {
                cu: cu.0,
                count: self.cu_count,
            })
        }
    }

    /// Iterates over all core ids.
    pub fn cores(&self) -> impl ExactSizeIterator<Item = CoreId> {
        (0..self.core_count()).map(CoreId)
    }

    /// Iterates over all CU ids.
    pub fn cus(&self) -> impl ExactSizeIterator<Item = CuId> {
        (0..self.cu_count).map(CuId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fx8320_structure() {
        let t = Topology::fx8320();
        assert_eq!(t.cu_count(), 4);
        assert_eq!(t.cores_per_cu(), 2);
        assert_eq!(t.core_count(), 8);
        assert!(t.supports_power_gating());
        assert_eq!(t.vf_table().len(), 5);
        assert_eq!(t.name(), "AMD FX-8320");
    }

    #[test]
    fn phenom_structure() {
        let t = Topology::phenom_ii_x6();
        assert_eq!(t.core_count(), 6);
        assert!(!t.supports_power_gating());
        assert_eq!(t.vf_table().len(), 4);
    }

    #[test]
    fn core_to_cu_mapping() {
        let t = Topology::fx8320();
        assert_eq!(t.cu_of(CoreId(0)).unwrap(), CuId(0));
        assert_eq!(t.cu_of(CoreId(1)).unwrap(), CuId(0));
        assert_eq!(t.cu_of(CoreId(2)).unwrap(), CuId(1));
        assert_eq!(t.cu_of(CoreId(7)).unwrap(), CuId(3));
        assert!(t.cu_of(CoreId(8)).is_err());
    }

    #[test]
    fn cu_to_cores_mapping() {
        let t = Topology::fx8320();
        assert_eq!(t.cores_of(CuId(0)).unwrap(), vec![CoreId(0), CoreId(1)]);
        assert_eq!(t.cores_of(CuId(3)).unwrap(), vec![CoreId(6), CoreId(7)]);
        assert!(t.cores_of(CuId(4)).is_err());
    }

    #[test]
    fn mapping_round_trips() {
        let t = Topology::fx8320();
        for cu in t.cus() {
            for core in t.cores_of(cu).unwrap() {
                assert_eq!(t.cu_of(core).unwrap(), cu);
            }
        }
    }

    #[test]
    fn invalid_topology_rejected() {
        assert!(Topology::new("x", 0, 2, VfTable::fx8320(), true, 4.0, 20.0).is_err());
        assert!(Topology::new("x", 4, 0, VfTable::fx8320(), true, 4.0, 20.0).is_err());
        assert!(Topology::new("x", 4, 2, VfTable::fx8320(), true, 0.0, 20.0).is_err());
        assert!(Topology::new("x", 4, 2, VfTable::fx8320(), true, 4.0, -1.0).is_err());
    }

    #[test]
    fn iterators_cover_everything() {
        let t = Topology::fx8320();
        assert_eq!(t.cores().count(), 8);
        assert_eq!(t.cus().count(), 4);
        assert_eq!(t.cores().last(), Some(CoreId(7)));
    }
}
