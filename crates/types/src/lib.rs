//! Shared domain types for the PPEP reproduction.
//!
//! This crate defines the vocabulary every other `ppep-*` crate speaks:
//!
//! * strongly-typed physical [`units`] (volts, hertz, watts, kelvin,
//!   joules, seconds) so that a power can never be confused with an
//!   energy at a call site;
//! * voltage-frequency state descriptions ([`vf`]) including the exact
//!   five-state table of the AMD FX-8320 used throughout the paper;
//! * the chip [`topology`] (compute units, cores, north bridge) of the
//!   two evaluation platforms;
//! * sampling [`time`] constants (the paper's 20 ms power samples and
//!   200 ms DVFS decision intervals);
//! * the common [`Error`] type.
//!
//! # Example
//!
//! ```
//! use ppep_types::vf::VfTable;
//!
//! let table = VfTable::fx8320();
//! let vf5 = table.highest();
//! assert_eq!(table.point(vf5).frequency.as_ghz(), 3.5);
//! assert_eq!(table.point(vf5).voltage.as_volts(), 1.320);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod time;
pub mod topology;
pub mod units;
pub mod vf;

pub use error::{Error, RejectReason, Result};
pub use topology::{CoreId, CuId, Topology};
pub use units::{Celsius, Gigahertz, Joules, Kelvin, Seconds, Volts, Watts};
pub use vf::{VfPoint, VfStateId, VfTable};
