//! Sampling-time constants and interval bookkeeping.
//!
//! The paper samples chip power every **20 ms** through the Hall-effect
//! sensor and makes a DVFS decision every **200 ms**, i.e. it averages
//! 10 power readings per decision interval (§II).

use crate::units::Seconds;

/// Period of one raw power-sensor sample (20 ms).
pub const POWER_SAMPLE_PERIOD: Seconds = Seconds::new(0.020);

/// Period of one DVFS decision interval (200 ms).
pub const DECISION_INTERVAL: Seconds = Seconds::new(0.200);

/// Number of power-sensor samples per decision interval (10).
pub const SAMPLES_PER_INTERVAL: usize = 10;

/// A monotonically increasing decision-interval index.
///
/// Interval `k` covers simulated wall-clock time
/// `[k * 200 ms, (k + 1) * 200 ms)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct IntervalIndex(pub u64);

impl IntervalIndex {
    /// The start time of this interval.
    pub fn start_time(self) -> Seconds {
        DECISION_INTERVAL * self.0 as f64
    }

    /// The next interval.
    #[must_use]
    pub fn next(self) -> Self {
        Self(self.0 + 1)
    }
}

impl std::fmt::Display for IntervalIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "interval {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_samples_per_interval() {
        let per = DECISION_INTERVAL / POWER_SAMPLE_PERIOD;
        assert!((per - SAMPLES_PER_INTERVAL as f64).abs() < 1e-12);
    }

    #[test]
    fn interval_start_times() {
        assert_eq!(IntervalIndex(0).start_time().as_secs(), 0.0);
        assert!((IntervalIndex(5).start_time().as_secs() - 1.0).abs() < 1e-12);
        assert_eq!(IntervalIndex(3).next(), IntervalIndex(4));
    }
}
