//! The shared error type for the PPEP workspace.

use std::fmt;

/// Convenience alias used across the `ppep-*` crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Why an admission-controlled service turned a session away.
///
/// Carried by [`Error::Rejected`]. Every variant names the exhausted
/// resource and the numbers behind the decision, so a client can tell
/// "come back later" (slots, budget) apart from "fix your request"
/// (duplicate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RejectReason {
    /// Every session slot is occupied.
    SessionSlotsExhausted {
        /// Live sessions at the time of the request.
        active: u32,
        /// The service's session-slot limit.
        max: u32,
    },
    /// Admitting the tenant would leave it (or an existing tenant)
    /// below the minimum viable power grant.
    BudgetExhausted {
        /// Watts the tenant asked for.
        requested_w: f64,
        /// Watts the arbiter could actually have granted it.
        available_w: f64,
    },
    /// The tenant id already has a live session.
    DuplicateTenant {
        /// The conflicting tenant id.
        tenant: u64,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::SessionSlotsExhausted { active, max } => {
                write!(f, "session slots exhausted ({active}/{max} in use)")
            }
            RejectReason::BudgetExhausted {
                requested_w,
                available_w,
            } => write!(
                f,
                "power budget exhausted (requested {requested_w} W, {available_w} W available)"
            ),
            RejectReason::DuplicateTenant { tenant } => {
                write!(f, "tenant {tenant} already has a live session")
            }
        }
    }
}

/// Errors produced by the PPEP reproduction crates.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A VF table failed validation.
    InvalidVfTable(String),
    /// A VF state index was out of range for its table.
    UnknownVfState {
        /// Requested 0-based index.
        index: usize,
        /// Table length.
        len: usize,
    },
    /// A topology description failed validation.
    InvalidTopology(String),
    /// A core id was out of range.
    UnknownCore {
        /// Requested core index.
        core: usize,
        /// Number of cores on the chip.
        count: usize,
    },
    /// A CU id was out of range.
    UnknownCu {
        /// Requested CU index.
        cu: usize,
        /// Number of CUs on the chip.
        count: usize,
    },
    /// A numerical routine failed (singular matrix, bad dimensions…).
    Numerical(String),
    /// A model was used before being trained / fitted.
    NotTrained(String),
    /// Input data failed validation (wrong length, non-finite values…).
    InvalidInput(String),
    /// A simulated device (virtual MSR, sensor…) rejected an operation.
    Device(String),
    /// A workload or experiment configuration is inconsistent.
    InvalidConfig(String),
    /// A sensor produced no reading this interval (dropout). The
    /// device is expected to recover on a later sample — transient.
    SensorDropout {
        /// Which sensor dropped out (e.g. `"hall-sensor"`).
        sensor: &'static str,
    },
    /// A sensor returned a reading that cannot be trusted: non-finite,
    /// stuck at a constant, or spiked far outside the physical range.
    /// The next sample may be fine — transient.
    SensorImplausible {
        /// Which sensor misbehaved.
        sensor: &'static str,
        /// The offending raw value (may be NaN).
        value: f64,
    },
    /// A virtual-MSR read failed mid-interval, so the PMU sample for
    /// this interval is lost. Re-programming the slot usually
    /// recovers it — transient.
    MsrReadFailed {
        /// The MSR address that failed.
        msr: u32,
    },
    /// The daemon missed its sampling deadline (scheduling overrun);
    /// the interval's counters cover an unknown span and must be
    /// discarded. The next interval is expected on time — transient.
    MissedInterval {
        /// How many consecutive intervals were missed.
        missed: u32,
    },
    /// The platform's measurement substrate is gone for good (device
    /// unbound, firmware wedged) — fatal; no retry can help.
    DeviceLost(String),
    /// An admission-controlled service refused to open a session. The
    /// refusal is a *decision*, not a glitch: blindly retrying the
    /// same request cannot change it (the tenant must re-apply for
    /// admission once conditions change) — fatal.
    Rejected {
        /// Why the session was turned away.
        reason: RejectReason,
    },
    /// A tenant blew through its interval-deadline allowance: the
    /// watchdog escalates repeated (individually transient)
    /// [`Error::MissedInterval`] faults into this fatal error once the
    /// miss count reaches the configured limit.
    DeadlineExceeded {
        /// Consecutive deadlines missed.
        missed: u32,
        /// The watchdog's allowance.
        limit: u32,
    },
    /// A model input or output that must be a finite number was NaN or
    /// ±∞. Raised by the [`crate::units::finite`] guard so that a
    /// poisoned value is caught at the model boundary instead of
    /// silently propagating into projections.
    NonFinite {
        /// What quantity was being guarded (e.g. `"eq3 dynamic power"`).
        what: &'static str,
        /// The offending raw value.
        value: f64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidVfTable(msg) => write!(f, "invalid VF table: {msg}"),
            Error::UnknownVfState { index, len } => {
                write!(f, "VF state index {index} out of range for table of {len}")
            }
            Error::InvalidTopology(msg) => write!(f, "invalid topology: {msg}"),
            Error::UnknownCore { core, count } => {
                write!(f, "core {core} out of range for chip with {count} cores")
            }
            Error::UnknownCu { cu, count } => {
                write!(f, "CU {cu} out of range for chip with {count} CUs")
            }
            Error::Numerical(msg) => write!(f, "numerical error: {msg}"),
            Error::NotTrained(msg) => write!(f, "model not trained: {msg}"),
            Error::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            Error::Device(msg) => write!(f, "device error: {msg}"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::SensorDropout { sensor } => {
                write!(f, "sensor dropout: {sensor} produced no reading")
            }
            Error::SensorImplausible { sensor, value } => {
                write!(f, "implausible reading from {sensor}: {value}")
            }
            Error::MsrReadFailed { msr } => {
                write!(f, "virtual MSR read failed: {msr:#06x}")
            }
            Error::MissedInterval { missed } => {
                write!(
                    f,
                    "missed {missed} sampling interval(s); counters cover an unknown span"
                )
            }
            Error::DeviceLost(msg) => write!(f, "measurement device lost: {msg}"),
            Error::Rejected { reason } => write!(f, "session rejected: {reason}"),
            Error::DeadlineExceeded { missed, limit } => {
                write!(
                    f,
                    "interval deadline missed {missed} time(s), exceeding the allowance of {limit}"
                )
            }
            Error::NonFinite { what, value } => {
                write!(f, "non-finite {what}: {value} cannot enter a projection")
            }
        }
    }
}

impl Error {
    /// Whether this failure is expected to clear on its own, so a
    /// supervisor should retry / hold last-good rather than abort.
    ///
    /// Transient: per-interval measurement faults ([`Error::SensorDropout`],
    /// [`Error::SensorImplausible`], [`Error::MsrReadFailed`],
    /// [`Error::MissedInterval`]). Everything else — configuration,
    /// validation, numerical and training failures,
    /// [`Error::DeviceLost`], and the service-level verdicts
    /// [`Error::Rejected`] (an admission decision, not a glitch) and
    /// [`Error::DeadlineExceeded`] (the watchdog's escalation of
    /// *already-retried* transient misses) — is fatal: retrying the
    /// same operation cannot produce a different outcome.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            Error::SensorDropout { .. }
                | Error::SensorImplausible { .. }
                | Error::MsrReadFailed { .. }
                | Error::MissedInterval { .. }
        )
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_meaningfully() {
        let e = Error::UnknownVfState { index: 7, len: 5 };
        assert_eq!(
            e.to_string(),
            "VF state index 7 out of range for table of 5"
        );
        let e = Error::Numerical("singular matrix".into());
        assert!(e.to_string().contains("singular"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: Send + Sync + 'static + std::error::Error>() {}
        assert_bounds::<Error>();
    }

    /// One example of every variant, with its expected classification.
    /// Grep-check: if a variant is added to `Error` it must be added
    /// here too (the match below fails to compile otherwise).
    fn all_variants() -> Vec<(Error, bool)> {
        vec![
            (Error::InvalidVfTable("t".into()), false),
            (Error::UnknownVfState { index: 9, len: 5 }, false),
            (Error::InvalidTopology("t".into()), false),
            (Error::UnknownCore { core: 9, count: 8 }, false),
            (Error::UnknownCu { cu: 9, count: 4 }, false),
            (Error::Numerical("singular".into()), false),
            (Error::NotTrained("power model".into()), false),
            (Error::InvalidInput("NaN".into()), false),
            (Error::Device("busy".into()), false),
            (Error::InvalidConfig("bad".into()), false),
            (
                Error::SensorDropout {
                    sensor: "hall-sensor",
                },
                true,
            ),
            (
                Error::SensorImplausible {
                    sensor: "thermal-diode",
                    value: f64::NAN,
                },
                true,
            ),
            (Error::MsrReadFailed { msr: 0xC001_0201 }, true),
            (Error::MissedInterval { missed: 2 }, true),
            (Error::DeviceLost("unbound".into()), false),
            (
                Error::Rejected {
                    reason: RejectReason::SessionSlotsExhausted { active: 8, max: 8 },
                },
                false,
            ),
            (
                Error::DeadlineExceeded {
                    missed: 5,
                    limit: 4,
                },
                false,
            ),
            (
                Error::NonFinite {
                    what: "eq3 dynamic power",
                    value: f64::NAN,
                },
                false,
            ),
        ]
    }

    #[test]
    fn transient_classification_covers_every_variant() {
        let examples = all_variants();
        for (e, expect_transient) in &examples {
            assert_eq!(e.is_transient(), *expect_transient, "{e} classified wrong");
            // Exhaustiveness guard: this match must name every
            // variant — extending `Error` without classifying the new
            // variant here is a compile error (modulo #[non_exhaustive]
            // requiring the wildcard arm for downstream crates; this
            // test lives in-crate so the list stays authoritative).
            match e {
                Error::InvalidVfTable(_)
                | Error::UnknownVfState { .. }
                | Error::InvalidTopology(_)
                | Error::UnknownCore { .. }
                | Error::UnknownCu { .. }
                | Error::Numerical(_)
                | Error::NotTrained(_)
                | Error::InvalidInput(_)
                | Error::Device(_)
                | Error::InvalidConfig(_)
                | Error::DeviceLost(_)
                | Error::Rejected { .. }
                | Error::DeadlineExceeded { .. }
                | Error::NonFinite { .. } => assert!(!e.is_transient()),
                Error::SensorDropout { .. }
                | Error::SensorImplausible { .. }
                | Error::MsrReadFailed { .. }
                | Error::MissedInterval { .. } => assert!(e.is_transient()),
            }
        }
        assert_eq!(
            examples.len(),
            18,
            "new variants must be added to all_variants()"
        );
    }

    #[test]
    fn fault_variants_display_meaningfully() {
        assert!(Error::SensorDropout {
            sensor: "hall-sensor"
        }
        .to_string()
        .contains("hall-sensor"));
        let e = Error::SensorImplausible {
            sensor: "thermal-diode",
            value: f64::NAN,
        };
        assert!(e.to_string().contains("NaN"));
        assert!(Error::MsrReadFailed { msr: 0xC0010201 }
            .to_string()
            .contains("0xc0010201"));
        assert!(Error::MissedInterval { missed: 3 }
            .to_string()
            .contains('3'));
        assert!(Error::DeviceLost("unbound".into())
            .to_string()
            .contains("unbound"));
    }

    #[test]
    fn service_variants_display_meaningfully() {
        let e = Error::Rejected {
            reason: RejectReason::SessionSlotsExhausted { active: 8, max: 8 },
        };
        assert_eq!(
            e.to_string(),
            "session rejected: session slots exhausted (8/8 in use)"
        );
        let e = Error::Rejected {
            reason: RejectReason::BudgetExhausted {
                requested_w: 60.0,
                available_w: 12.5,
            },
        };
        assert!(e.to_string().contains("60 W"));
        assert!(e.to_string().contains("12.5 W available"));
        let e = Error::Rejected {
            reason: RejectReason::DuplicateTenant { tenant: 3 },
        };
        assert!(e.to_string().contains("tenant 3"));
        let e = Error::DeadlineExceeded {
            missed: 5,
            limit: 4,
        };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains("allowance of 4"));
    }
}
