//! The shared error type for the PPEP workspace.

use std::fmt;

/// Convenience alias used across the `ppep-*` crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the PPEP reproduction crates.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A VF table failed validation.
    InvalidVfTable(String),
    /// A VF state index was out of range for its table.
    UnknownVfState {
        /// Requested 0-based index.
        index: usize,
        /// Table length.
        len: usize,
    },
    /// A topology description failed validation.
    InvalidTopology(String),
    /// A core id was out of range.
    UnknownCore {
        /// Requested core index.
        core: usize,
        /// Number of cores on the chip.
        count: usize,
    },
    /// A CU id was out of range.
    UnknownCu {
        /// Requested CU index.
        cu: usize,
        /// Number of CUs on the chip.
        count: usize,
    },
    /// A numerical routine failed (singular matrix, bad dimensions…).
    Numerical(String),
    /// A model was used before being trained / fitted.
    NotTrained(String),
    /// Input data failed validation (wrong length, non-finite values…).
    InvalidInput(String),
    /// A simulated device (virtual MSR, sensor…) rejected an operation.
    Device(String),
    /// A workload or experiment configuration is inconsistent.
    InvalidConfig(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidVfTable(msg) => write!(f, "invalid VF table: {msg}"),
            Error::UnknownVfState { index, len } => {
                write!(f, "VF state index {index} out of range for table of {len}")
            }
            Error::InvalidTopology(msg) => write!(f, "invalid topology: {msg}"),
            Error::UnknownCore { core, count } => {
                write!(f, "core {core} out of range for chip with {count} cores")
            }
            Error::UnknownCu { cu, count } => {
                write!(f, "CU {cu} out of range for chip with {count} CUs")
            }
            Error::Numerical(msg) => write!(f, "numerical error: {msg}"),
            Error::NotTrained(msg) => write!(f, "model not trained: {msg}"),
            Error::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            Error::Device(msg) => write!(f, "device error: {msg}"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_meaningfully() {
        let e = Error::UnknownVfState { index: 7, len: 5 };
        assert_eq!(e.to_string(), "VF state index 7 out of range for table of 5");
        let e = Error::Numerical("singular matrix".into());
        assert!(e.to_string().contains("singular"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: Send + Sync + 'static + std::error::Error>() {}
        assert_bounds::<Error>();
    }
}
