//! Voltage-frequency (VF) state descriptions.
//!
//! The paper's main platform, the AMD FX-8320, exposes five
//! software-visible VF states per compute unit (§II):
//!
//! | State | Voltage | Frequency |
//! |-------|---------|-----------|
//! | VF5   | 1.320 V | 3.5 GHz   |
//! | VF4   | 1.242 V | 2.9 GHz   |
//! | VF3   | 1.128 V | 2.3 GHz   |
//! | VF2   | 1.008 V | 1.7 GHz   |
//! | VF1   | 0.888 V | 1.4 GHz   |
//!
//! A [`VfTable`] stores the ladder for a given chip; a [`VfStateId`] is
//! a validated index into that table. The secondary platform (AMD
//! Phenom™ II X6 1090T, four VF states, no power gating) gets its own
//! preset; its exact ladder is not printed in the paper, so we use a
//! plausible published P-state ladder (documented in `DESIGN.md`).

use crate::error::{Error, Result};
use crate::units::{Gigahertz, Volts};
use std::fmt;

/// One voltage-frequency operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VfPoint {
    /// Core supply voltage at this state.
    pub voltage: Volts,
    /// Core clock frequency at this state.
    pub frequency: Gigahertz,
}

impl VfPoint {
    /// Creates an operating point.
    pub const fn new(voltage: Volts, frequency: Gigahertz) -> Self {
        Self { voltage, frequency }
    }
}

impl fmt::Display for VfPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.1})", self.voltage, self.frequency)
    }
}

/// Index of a VF state within a [`VfTable`].
///
/// Index 0 is the *lowest* state (the paper's VF1); larger indices are
/// faster states. Use [`VfStateId::paper_name`] to render the paper's
/// 1-based `VFn` naming. The `Default` value is the slowest state —
/// the safe fallback when a selection over an empty ladder has no
/// better answer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VfStateId(pub(crate) usize);

impl VfStateId {
    /// The raw 0-based index (0 = slowest state).
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }

    /// The paper's name for this state: `VF1` for index 0, etc.
    pub fn paper_name(self) -> String {
        format!("VF{}", self.0 + 1)
    }
}

impl fmt::Display for VfStateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `pad` is safe here: no numeric precision is in play for a
        // short state name, and width/alignment pass through.
        f.pad(&format!("VF{}", self.0 + 1))
    }
}

/// The ladder of VF states supported by a chip, ordered slowest first.
///
/// ```
/// use ppep_types::VfTable;
///
/// let table = VfTable::fx8320();
/// let vf5 = table.highest();
/// assert_eq!(vf5.to_string(), "VF5");
/// assert_eq!(table.point(vf5).frequency.as_ghz(), 3.5);
/// // Fig. 3 evaluates all 25 ordered state pairs.
/// assert_eq!(table.state_pairs().len(), 25);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VfTable {
    points: Vec<VfPoint>,
}

impl VfTable {
    /// Builds a table from operating points ordered slowest-first.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidVfTable`] if fewer than two points are
    /// given, or if voltages/frequencies are not strictly increasing or
    /// not positive.
    pub fn new(points: Vec<VfPoint>) -> Result<Self> {
        if points.len() < 2 {
            return Err(Error::InvalidVfTable(
                "a VF table needs at least two states".into(),
            ));
        }
        for p in &points {
            if p.voltage.as_volts() <= 0.0 || p.frequency.as_ghz() <= 0.0 {
                return Err(Error::InvalidVfTable(
                    "voltages and frequencies must be positive".into(),
                ));
            }
        }
        for w in points.windows(2) {
            if w[1].voltage <= w[0].voltage || w[1].frequency <= w[0].frequency {
                return Err(Error::InvalidVfTable(
                    "VF points must be strictly increasing in both voltage and frequency".into(),
                ));
            }
        }
        Ok(Self { points })
    }

    /// The AMD FX-8320 five-state ladder from §II of the paper.
    pub fn fx8320() -> Self {
        Self::new(vec![
            VfPoint::new(Volts::new(0.888), Gigahertz::new(1.4)), // VF1
            VfPoint::new(Volts::new(1.008), Gigahertz::new(1.7)), // VF2
            VfPoint::new(Volts::new(1.128), Gigahertz::new(2.3)), // VF3
            VfPoint::new(Volts::new(1.242), Gigahertz::new(2.9)), // VF4
            VfPoint::new(Volts::new(1.320), Gigahertz::new(3.5)), // VF5
        ])
        .expect("static FX-8320 table is valid")
    }

    /// The FX-8320 ladder *including* its two hardware boost states.
    ///
    /// The paper disables boosting because the stock boost controller
    /// is not software-controllable and would perturb the measurements
    /// (§II), but notes that a firmware PPEP "can also be used to
    /// control hardware boost states" (§IV-E). This seven-state table
    /// supports that extension: indices 5 and 6 are the boost points
    /// (the FX-8320's published 3.8/4.0 GHz turbo bins, with voltages
    /// extrapolated along the ladder).
    pub fn fx8320_with_boost() -> Self {
        Self::new(vec![
            VfPoint::new(Volts::new(0.888), Gigahertz::new(1.4)), // VF1
            VfPoint::new(Volts::new(1.008), Gigahertz::new(1.7)), // VF2
            VfPoint::new(Volts::new(1.128), Gigahertz::new(2.3)), // VF3
            VfPoint::new(Volts::new(1.242), Gigahertz::new(2.9)), // VF4
            VfPoint::new(Volts::new(1.320), Gigahertz::new(3.5)), // VF5
            VfPoint::new(Volts::new(1.368), Gigahertz::new(3.8)), // boost 1
            VfPoint::new(Volts::new(1.416), Gigahertz::new(4.0)), // boost 2
        ])
        .expect("static boosted FX-8320 table is valid")
    }

    /// Number of software-visible (non-boost) states on the FX-8320.
    pub const FX8320_SOFTWARE_STATES: usize = 5;

    /// A four-state ladder for the AMD Phenom™ II X6 1090T.
    ///
    /// The paper validates on this chip but does not print its VF
    /// values; this ladder follows typical published P-states for the
    /// part (see `DESIGN.md`, substitutions table).
    pub fn phenom_ii_x6() -> Self {
        Self::new(vec![
            VfPoint::new(Volts::new(1.025), Gigahertz::new(0.8)), // VF1
            VfPoint::new(Volts::new(1.150), Gigahertz::new(1.8)), // VF2
            VfPoint::new(Volts::new(1.275), Gigahertz::new(2.5)), // VF3
            VfPoint::new(Volts::new(1.400), Gigahertz::new(3.2)), // VF4
        ])
        .expect("static Phenom II table is valid")
    }

    /// Number of states in the ladder.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always false: a valid table has ≥ 2 states.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The state id for a raw index, if in range.
    pub fn state(&self, index: usize) -> Result<VfStateId> {
        if index < self.points.len() {
            Ok(VfStateId(index))
        } else {
            Err(Error::UnknownVfState {
                index,
                len: self.points.len(),
            })
        }
    }

    /// The slowest (lowest-power) state — the paper's VF1.
    #[inline]
    pub fn lowest(&self) -> VfStateId {
        VfStateId(0)
    }

    /// The fastest state — the paper's VF5 on the FX-8320.
    #[inline]
    pub fn highest(&self) -> VfStateId {
        VfStateId(self.points.len() - 1)
    }

    /// The operating point of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different, longer table.
    #[inline]
    pub fn point(&self, id: VfStateId) -> VfPoint {
        self.points[id.0]
    }

    /// One state slower, or `None` at the bottom of the ladder.
    pub fn step_down(&self, id: VfStateId) -> Option<VfStateId> {
        id.0.checked_sub(1).map(VfStateId)
    }

    /// One state faster, or `None` at the top of the ladder.
    pub fn step_up(&self, id: VfStateId) -> Option<VfStateId> {
        if id.0 + 1 < self.points.len() {
            Some(VfStateId(id.0 + 1))
        } else {
            None
        }
    }

    /// Iterates over all states, slowest first.
    pub fn states(&self) -> impl DoubleEndedIterator<Item = VfStateId> + ExactSizeIterator {
        (0..self.points.len()).map(VfStateId)
    }

    /// Iterates over `(id, point)` pairs, slowest first.
    pub fn iter(&self) -> impl Iterator<Item = (VfStateId, VfPoint)> + '_ {
        self.points
            .iter()
            .enumerate()
            .map(|(i, p)| (VfStateId(i), *p))
    }

    /// All ordered `(from, to)` pairs of states, including `from == to`.
    ///
    /// Figure 3 of the paper evaluates cross-VF prediction on all 25
    /// such pairs of the FX-8320.
    pub fn state_pairs(&self) -> Vec<(VfStateId, VfStateId)> {
        let n = self.points.len();
        let mut pairs = Vec::with_capacity(n * n);
        // Paper order: VF5->VF5, VF5->VF4, ..., VF1->VF1 (fastest source first).
        for from in (0..n).rev() {
            for to in (0..n).rev() {
                pairs.push((VfStateId(from), VfStateId(to)));
            }
        }
        pairs
    }

    /// Frequency ratio `f(to) / f(from)` between two states.
    pub fn frequency_ratio(&self, from: VfStateId, to: VfStateId) -> f64 {
        self.point(to).frequency / self.point(from).frequency
    }

    /// Voltage ratio `V(to) / V(from)` between two states.
    pub fn voltage_ratio(&self, from: VfStateId, to: VfStateId) -> f64 {
        self.point(to).voltage / self.point(from).voltage
    }
}

/// The north-bridge operating point.
///
/// On the FX-8320 the NB (memory controller + L3) runs at a fixed
/// (1.175 V, 2.2 GHz) in all of the paper's measurements (§IV-B1). The
/// NB-DVFS study (§V-C2, Fig. 11) introduces a second, lower point at
/// (0.940 V, 1.1 GHz).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NbVfState {
    /// The stock north-bridge operating point (1.175 V, 2.2 GHz).
    #[default]
    High,
    /// The hypothetical low point of the Fig. 11 study (0.940 V, 1.1 GHz).
    Low,
}

impl NbVfState {
    /// The operating point for this NB state.
    pub fn point(self) -> VfPoint {
        match self {
            NbVfState::High => VfPoint::new(Volts::new(1.175), Gigahertz::new(2.2)),
            NbVfState::Low => VfPoint::new(Volts::new(0.940), Gigahertz::new(1.1)),
        }
    }
}

impl fmt::Display for NbVfState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NbVfState::High => write!(f, "NB-VF_hi"),
            NbVfState::Low => write!(f, "NB-VF_lo"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fx8320_matches_paper_table() {
        let t = VfTable::fx8320();
        assert_eq!(t.len(), 5);
        let vf5 = t.point(t.highest());
        assert_eq!(vf5.voltage.as_volts(), 1.320);
        assert_eq!(vf5.frequency.as_ghz(), 3.5);
        let vf1 = t.point(t.lowest());
        assert_eq!(vf1.voltage.as_volts(), 0.888);
        assert_eq!(vf1.frequency.as_ghz(), 1.4);
        assert_eq!(t.highest().paper_name(), "VF5");
        assert_eq!(t.lowest().paper_name(), "VF1");
    }

    #[test]
    fn phenom_has_four_states() {
        let t = VfTable::phenom_ii_x6();
        assert_eq!(t.len(), 4);
        assert_eq!(t.highest().paper_name(), "VF4");
    }

    #[test]
    fn stepping_walks_the_ladder() {
        let t = VfTable::fx8320();
        let mut id = t.lowest();
        let mut seen = vec![id];
        while let Some(next) = t.step_up(id) {
            id = next;
            seen.push(id);
        }
        assert_eq!(seen.len(), 5);
        assert_eq!(id, t.highest());
        assert_eq!(t.step_up(id), None);
        assert_eq!(t.step_down(t.lowest()), None);
        assert_eq!(t.step_down(id), Some(VfStateId(3)));
    }

    #[test]
    fn state_pairs_cover_all_combinations_in_paper_order() {
        let t = VfTable::fx8320();
        let pairs = t.state_pairs();
        assert_eq!(pairs.len(), 25);
        // First pair in Fig. 3 is VF5->VF5.
        assert_eq!(pairs[0], (VfStateId(4), VfStateId(4)));
        // Last pair is VF1->VF1.
        assert_eq!(pairs[24], (VfStateId(0), VfStateId(0)));
        // All distinct.
        let mut dedup = pairs.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 25);
    }

    #[test]
    fn ratios() {
        let t = VfTable::fx8320();
        let r = t.frequency_ratio(t.highest(), t.lowest());
        assert!((r - 1.4 / 3.5).abs() < 1e-12);
        let v = t.voltage_ratio(t.lowest(), t.highest());
        assert!((v - 1.320 / 0.888).abs() < 1e-12);
    }

    #[test]
    fn invalid_tables_rejected() {
        assert!(VfTable::new(vec![VfPoint::new(Volts::new(1.0), Gigahertz::new(1.0))]).is_err());
        // Non-monotonic frequency.
        assert!(VfTable::new(vec![
            VfPoint::new(Volts::new(1.0), Gigahertz::new(2.0)),
            VfPoint::new(Volts::new(1.1), Gigahertz::new(1.5)),
        ])
        .is_err());
        // Non-positive voltage.
        assert!(VfTable::new(vec![
            VfPoint::new(Volts::new(0.0), Gigahertz::new(1.0)),
            VfPoint::new(Volts::new(1.1), Gigahertz::new(1.5)),
        ])
        .is_err());
    }

    #[test]
    fn out_of_range_state_is_error() {
        let t = VfTable::fx8320();
        assert!(t.state(4).is_ok());
        assert!(t.state(5).is_err());
    }

    #[test]
    fn nb_states_match_study_parameters() {
        let hi = NbVfState::High.point();
        assert_eq!(hi.voltage.as_volts(), 1.175);
        assert_eq!(hi.frequency.as_ghz(), 2.2);
        let lo = NbVfState::Low.point();
        // The study drops voltage 20% and frequency 50%.
        assert!((lo.voltage.as_volts() - 0.94).abs() < 1e-12);
        assert!((lo.frequency.as_ghz() - 1.1).abs() < 1e-12);
        assert_eq!(NbVfState::default(), NbVfState::High);
    }
}
