//! Shared socket power-budget arbitration for the multi-tenant
//! capping service.
//!
//! One physical socket has one power budget; N tenants each want a
//! per-tenant cap enforced by their own capping controller. The
//! [`BudgetArbiter`] owns the invariant that makes that safe: **the
//! sum of granted per-tenant caps never exceeds the socket cap**, at
//! any point in any sequence of joins, leaves, failsafes, and
//! restores. Allocation is deterministic max-min fair (water-filling):
//! every active tenant gets an equal share of the socket cap, except
//! that nobody is granted more than they requested — surplus from
//! modest tenants flows to the hungry ones.
//!
//! Bulkhead coupling: a tenant whose supervisor enters Failsafe is
//! pinned to its safe VF state and cannot spend its cap, so
//! [`BudgetArbiter::failsafe`] zeroes its grant and redistributes the
//! freed budget to the survivors; [`BudgetArbiter::restore`] re-admits
//! it on recovery. Admission reserves `min_grant` per registered
//! tenant (failsafed included) so a restore can never be starved by
//! sessions admitted in the meantime.

use ppep_types::{Error, RejectReason, Result, Watts};

/// One tenant's budget bookkeeping.
#[derive(Debug, Clone)]
struct TenantBudget {
    id: u64,
    requested_w: f64,
    granted_w: f64,
    failsafed: bool,
}

/// The shared socket power-budget arbiter. See the module docs.
#[derive(Debug, Clone)]
pub struct BudgetArbiter {
    socket_cap_w: f64,
    min_grant_w: f64,
    /// Join order; allocation iterates this deterministically.
    tenants: Vec<TenantBudget>,
}

impl BudgetArbiter {
    /// Builds an arbiter for a socket budget of `socket_cap`,
    /// reserving at least `min_grant` for every registered tenant.
    pub fn new(socket_cap: Watts, min_grant: Watts) -> Self {
        Self {
            socket_cap_w: socket_cap.as_watts().max(0.0),
            min_grant_w: min_grant.as_watts().max(0.0),
            tenants: Vec::new(),
        }
    }

    /// The socket-wide budget.
    pub fn socket_cap(&self) -> Watts {
        Watts::new(self.socket_cap_w)
    }

    /// The per-tenant admission floor.
    pub fn min_grant(&self) -> Watts {
        Watts::new(self.min_grant_w)
    }

    /// Registered tenants (active + failsafed).
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Registered tenants currently holding a live grant.
    pub fn active_count(&self) -> usize {
        self.tenants.iter().filter(|t| !t.failsafed).count()
    }

    /// Admits a tenant requesting a cap of `requested`, returning the
    /// granted cap.
    ///
    /// # Errors
    ///
    /// [`Error::Rejected`] with [`RejectReason::DuplicateTenant`] when
    /// `tenant` is already registered, or
    /// [`RejectReason::BudgetExhausted`] when admitting one more
    /// tenant would break the `min_grant` reservation for everyone
    /// registered (failsafed tenants keep their reservation so their
    /// restore cannot be starved).
    pub fn join(&mut self, tenant: u64, requested: Watts) -> Result<Watts> {
        if self.tenants.iter().any(|t| t.id == tenant) {
            return Err(Error::Rejected {
                reason: RejectReason::DuplicateTenant { tenant },
            });
        }
        let reserved = (self.tenants.len() + 1) as f64 * self.min_grant_w;
        if reserved > self.socket_cap_w {
            let available =
                (self.socket_cap_w - self.tenants.len() as f64 * self.min_grant_w).max(0.0);
            return Err(Error::Rejected {
                reason: RejectReason::BudgetExhausted {
                    requested_w: requested.as_watts(),
                    available_w: available,
                },
            });
        }
        self.tenants.push(TenantBudget {
            id: tenant,
            requested_w: requested.as_watts().max(0.0),
            granted_w: 0.0,
            failsafed: false,
        });
        self.rebalance();
        self.granted(tenant).ok_or_else(|| {
            Error::InvalidInput(format!("arbiter: tenant {tenant} vanished during join"))
        })
    }

    /// Deregisters a tenant, redistributing its budget.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] when `tenant` is not registered.
    pub fn leave(&mut self, tenant: u64) -> Result<()> {
        let before = self.tenants.len();
        self.tenants.retain(|t| t.id != tenant);
        if self.tenants.len() == before {
            return Err(Error::InvalidInput(format!(
                "arbiter: unknown tenant {tenant}"
            )));
        }
        self.rebalance();
        Ok(())
    }

    /// Marks a tenant failsafed: its grant drops to zero (the safe VF
    /// pin spends no discretionary budget) and the freed watts are
    /// redistributed. Idempotent.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] when `tenant` is not registered.
    pub fn failsafe(&mut self, tenant: u64) -> Result<()> {
        let t = self
            .tenants
            .iter_mut()
            .find(|t| t.id == tenant)
            .ok_or_else(|| Error::InvalidInput(format!("arbiter: unknown tenant {tenant}")))?;
        t.failsafed = true;
        self.rebalance();
        Ok(())
    }

    /// Re-admits a recovered tenant to the allocation, returning its
    /// new grant. Idempotent. Always succeeds for a registered tenant:
    /// admission reserved its `min_grant` while it was failsafed.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] when `tenant` is not registered.
    pub fn restore(&mut self, tenant: u64) -> Result<Watts> {
        let t = self
            .tenants
            .iter_mut()
            .find(|t| t.id == tenant)
            .ok_or_else(|| Error::InvalidInput(format!("arbiter: unknown tenant {tenant}")))?;
        t.failsafed = false;
        self.rebalance();
        self.granted(tenant).ok_or_else(|| {
            Error::InvalidInput(format!("arbiter: tenant {tenant} vanished during restore"))
        })
    }

    /// The cap currently granted to `tenant` (zero while failsafed),
    /// or `None` when it is not registered.
    pub fn granted(&self, tenant: u64) -> Option<Watts> {
        self.tenants
            .iter()
            .find(|t| t.id == tenant)
            .map(|t| Watts::new(t.granted_w))
    }

    /// Every registered tenant's `(id, granted cap)`, in join order.
    pub fn grants(&self) -> Vec<(u64, Watts)> {
        self.tenants
            .iter()
            .map(|t| (t.id, Watts::new(t.granted_w)))
            .collect()
    }

    /// The aggregate granted budget. Never exceeds
    /// [`BudgetArbiter::socket_cap`].
    pub fn total_granted(&self) -> Watts {
        Watts::new(self.tenants.iter().map(|t| t.granted_w).sum())
    }

    /// Deterministic max-min fair (water-filling) allocation over the
    /// active tenants, each capped at its own request.
    fn rebalance(&mut self) {
        for t in &mut self.tenants {
            t.granted_w = 0.0;
        }
        let mut remaining = self.socket_cap_w;
        let mut unsatisfied: Vec<usize> = self
            .tenants
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.failsafed)
            .map(|(i, _)| i)
            .collect();
        while !unsatisfied.is_empty() && remaining > 0.0 {
            let round_size = unsatisfied.len();
            let share = remaining / round_size as f64;
            let mut still_hungry = Vec::with_capacity(round_size);
            for i in unsatisfied {
                let Some(t) = self.tenants.get_mut(i) else {
                    continue;
                };
                if t.requested_w <= share {
                    // Fully satisfied at this water level; its surplus
                    // stays in `remaining` for the next round.
                    t.granted_w = t.requested_w;
                    remaining -= t.requested_w;
                } else {
                    still_hungry.push(i);
                }
            }
            if still_hungry.len() == round_size {
                // Nobody was satisfied this round: the water level is
                // final — split the remainder evenly and stop.
                for i in still_hungry {
                    if let Some(t) = self.tenants.get_mut(i) {
                        t.granted_w = share;
                    }
                }
                break;
            }
            unsatisfied = still_hungry;
        }
        // f64 rounding can leave the sum a few ulps above the cap;
        // scale down defensively so the invariant is exact-ish.
        let total: f64 = self.tenants.iter().map(|t| t.granted_w).sum();
        if total > self.socket_cap_w && total > 0.0 {
            let scale = self.socket_cap_w / total;
            for t in &mut self.tenants {
                t.granted_w *= scale;
            }
        }
    }
}

/// One deferred data-plane arbiter operation.
///
/// The sharded serve path buffers these on the shard that observed
/// the health transition (or eviction) and hands them to
/// [`EpochArbiter::defer`] at the tick barrier — the data plane never
/// touches the arbiter directly, so grants cannot depend on which
/// shard's thread got there first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbiterOp {
    /// The tenant's supervisor entered Failsafe: zero its grant.
    Failsafe,
    /// The tenant recovered: re-admit it to the allocation.
    Restore,
    /// The tenant was evicted: deregister it.
    Leave,
}

/// An immutable, published view of every tenant's grant at one epoch.
///
/// Shards read caps from the snapshot their service last published —
/// never from the live arbiter — so a reply's reported cap is a pure
/// function of (epoch, tenant), independent of shard interleaving.
#[derive(Debug, Clone, Default)]
pub struct GrantSnapshot {
    epoch: u64,
    /// `(tenant, granted watts)`, sorted by tenant id.
    grants: Vec<(u64, f64)>,
    total_w: f64,
}

impl GrantSnapshot {
    /// The epoch this snapshot was published at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The cap granted to `tenant` at this epoch, or `None` when it
    /// was not registered.
    pub fn granted(&self, tenant: u64) -> Option<Watts> {
        self.grants
            .binary_search_by_key(&tenant, |(id, _)| *id)
            .ok()
            .and_then(|i| self.grants.get(i))
            .map(|(_, w)| Watts::new(*w))
    }

    /// The aggregate granted budget at this epoch.
    pub fn total_granted(&self) -> Watts {
        Watts::new(self.total_w)
    }

    /// Registered tenants at this epoch.
    pub fn len(&self) -> usize {
        self.grants.len()
    }

    /// Whether no tenant was registered at this epoch.
    pub fn is_empty(&self) -> bool {
        self.grants.is_empty()
    }

    /// Every `(tenant, granted cap)` pair, sorted by tenant id.
    pub fn grants(&self) -> impl Iterator<Item = (u64, Watts)> + '_ {
        self.grants.iter().map(|(id, w)| (*id, Watts::new(*w)))
    }
}

/// Epoch-stepped wrapper around [`BudgetArbiter`] — the cross-shard
/// message protocol of the sharded capping service.
///
/// Two op classes with different timing:
///
/// * **Control-plane ops** ([`EpochArbiter::join`],
///   [`EpochArbiter::leave_now`]) apply immediately and republish the
///   snapshot. Admission and Goodbye already serialize on the
///   service's control plane, so their order is well-defined.
/// * **Data-plane ops** ([`EpochArbiter::defer`]: failsafe, restore,
///   eviction-leave) are buffered and applied at the next
///   [`EpochArbiter::advance`] — the tick barrier. Before applying,
///   the buffer is canonicalized by a *stable* sort on tenant id:
///   per-tenant op order is preserved (a tenant's ops all come from
///   its one home shard, in program order), while cross-tenant
///   arrival order — the only thing shard scheduling can perturb —
///   is discarded. Water-fill grants after `advance` are therefore
///   byte-identical for every interleaving, which the proptest below
///   pins against the plain single-threaded [`BudgetArbiter`].
#[derive(Debug, Clone)]
pub struct EpochArbiter {
    inner: BudgetArbiter,
    epoch: u64,
    pending: Vec<(u64, ArbiterOp)>,
    published: GrantSnapshot,
}

impl EpochArbiter {
    /// Builds the arbiter and publishes the (empty) epoch-0 snapshot.
    pub fn new(socket_cap: Watts, min_grant: Watts) -> Self {
        let mut a = Self {
            inner: BudgetArbiter::new(socket_cap, min_grant),
            epoch: 0,
            pending: Vec::new(),
            published: GrantSnapshot::default(),
        };
        a.republish();
        a
    }

    /// The socket-wide budget.
    pub fn socket_cap(&self) -> Watts {
        self.inner.socket_cap()
    }

    /// The per-tenant admission floor.
    pub fn min_grant(&self) -> Watts {
        self.inner.min_grant()
    }

    /// The current epoch (bumped by every [`EpochArbiter::advance`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The last published snapshot.
    pub fn snapshot(&self) -> &GrantSnapshot {
        &self.published
    }

    /// Deferred ops waiting for the next epoch boundary.
    pub fn pending_ops(&self) -> usize {
        self.pending.len()
    }

    /// Registered tenants (live arbiter view, deferred ops excluded).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Immediate admission (control plane). Republishes the snapshot
    /// so the new tenant's first replies see its grant.
    ///
    /// # Errors
    ///
    /// As [`BudgetArbiter::join`].
    pub fn join(&mut self, tenant: u64, requested: Watts) -> Result<Watts> {
        let granted = self.inner.join(tenant, requested)?;
        self.republish();
        Ok(granted)
    }

    /// Immediate deregistration (control plane, Goodbye path). Drops
    /// the tenant's still-pending deferred ops so a later incarnation
    /// under the same id cannot be hit by its predecessor's failsafe.
    ///
    /// # Errors
    ///
    /// As [`BudgetArbiter::leave`].
    pub fn leave_now(&mut self, tenant: u64) -> Result<()> {
        self.inner.leave(tenant)?;
        self.pending.retain(|(id, _)| *id != tenant);
        self.republish();
        Ok(())
    }

    /// Buffers a data-plane op for the next epoch boundary.
    pub fn defer(&mut self, tenant: u64, op: ArbiterOp) {
        self.pending.push((tenant, op));
    }

    /// Applies every deferred op in canonical order, bumps the epoch,
    /// and republishes. An op targeting a tenant that already left is
    /// stale, not an error — it is dropped.
    pub fn advance(&mut self) -> &GrantSnapshot {
        let mut ops = std::mem::take(&mut self.pending);
        // Stable: cross-tenant order becomes ascending id, per-tenant
        // order stays as the home shard produced it.
        ops.sort_by_key(|(tenant, _)| *tenant);
        for (tenant, op) in ops {
            let outcome = match op {
                ArbiterOp::Failsafe => self.inner.failsafe(tenant),
                ArbiterOp::Restore => self.inner.restore(tenant).map(|_| ()),
                ArbiterOp::Leave => self.inner.leave(tenant),
            };
            drop(outcome);
        }
        self.epoch += 1;
        self.republish();
        &self.published
    }

    fn republish(&mut self) {
        let mut grants: Vec<(u64, f64)> = self
            .inner
            .grants()
            .into_iter()
            .map(|(id, w)| (id, w.as_watts()))
            .collect();
        grants.sort_by_key(|(id, _)| *id);
        self.published = GrantSnapshot {
            epoch: self.epoch,
            grants,
            total_w: self.inner.total_granted().as_watts(),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arbiter(cap: f64, min: f64) -> BudgetArbiter {
        BudgetArbiter::new(Watts::new(cap), Watts::new(min))
    }

    #[test]
    fn single_tenant_gets_min_of_request_and_cap() {
        let mut a = arbiter(100.0, 10.0);
        assert_eq!(a.join(1, Watts::new(60.0)).unwrap(), Watts::new(60.0));
        let mut b = arbiter(100.0, 10.0);
        assert_eq!(b.join(1, Watts::new(150.0)).unwrap(), Watts::new(100.0));
    }

    #[test]
    fn surplus_flows_to_hungry_tenants() {
        let mut a = arbiter(100.0, 10.0);
        a.join(1, Watts::new(20.0)).unwrap();
        a.join(2, Watts::new(90.0)).unwrap();
        // Equal split would be 50/50, but tenant 1 only wants 20; the
        // other 30 W flow to tenant 2.
        assert_eq!(a.granted(1).unwrap(), Watts::new(20.0));
        assert_eq!(a.granted(2).unwrap(), Watts::new(80.0));
    }

    #[test]
    fn duplicate_and_exhausted_joins_are_typed_rejections() {
        let mut a = arbiter(30.0, 10.0);
        a.join(1, Watts::new(30.0)).unwrap();
        match a.join(1, Watts::new(5.0)).unwrap_err() {
            Error::Rejected {
                reason: RejectReason::DuplicateTenant { tenant },
            } => assert_eq!(tenant, 1),
            other => panic!("wrong rejection {other}"),
        }
        a.join(2, Watts::new(30.0)).unwrap();
        a.join(3, Watts::new(30.0)).unwrap();
        match a.join(4, Watts::new(30.0)).unwrap_err() {
            Error::Rejected {
                reason: RejectReason::BudgetExhausted { available_w, .. },
            } => assert!(available_w < 10.0),
            other => panic!("wrong rejection {other}"),
        }
    }

    #[test]
    fn failsafe_frees_budget_and_restore_reclaims_it() {
        let mut a = arbiter(90.0, 10.0);
        a.join(1, Watts::new(60.0)).unwrap();
        a.join(2, Watts::new(60.0)).unwrap();
        assert_eq!(a.granted(1).unwrap(), Watts::new(45.0));
        assert_eq!(a.granted(2).unwrap(), Watts::new(45.0));
        a.failsafe(1).unwrap();
        assert_eq!(a.granted(1).unwrap(), Watts::ZERO);
        assert_eq!(
            a.granted(2).unwrap(),
            Watts::new(60.0),
            "freed budget flows"
        );
        let back = a.restore(1).unwrap();
        assert_eq!(back, Watts::new(45.0));
        assert_eq!(a.granted(2).unwrap(), Watts::new(45.0));
    }

    #[test]
    fn admission_reserves_for_failsafed_tenants() {
        let mut a = arbiter(30.0, 10.0);
        a.join(1, Watts::new(30.0)).unwrap();
        a.join(2, Watts::new(30.0)).unwrap();
        a.failsafe(1).unwrap();
        a.join(3, Watts::new(30.0)).unwrap();
        // Slots are full even though tenant 1 is failsafed: its
        // min_grant stays reserved so restore cannot be starved.
        assert!(a.join(4, Watts::new(5.0)).is_err());
        assert!(a.restore(1).unwrap() >= Watts::new(10.0));
    }

    /// Decodes one raw u64 into an arbiter operation; used by the
    /// property below to explore arbitrary operation sequences.
    fn apply_op(a: &mut BudgetArbiter, raw: u64) {
        let id = raw % 6;
        let kind = (raw / 6) % 4;
        let request = 5.0 + (raw % 977) as f64 * 0.1;
        match kind {
            0 => {
                let _ = a.join(id, Watts::new(request));
            }
            1 => {
                let _ = a.leave(id);
            }
            2 => {
                let _ = a.failsafe(id);
            }
            _ => {
                let _ = a.restore(id);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// For ANY sequence of joins/leaves/failsafes/restores:
        /// the aggregate granted budget never exceeds the socket cap,
        /// nobody is granted more than they asked for, and freed
        /// budget is fully redistributed (the aggregate equals
        /// min(cap, sum of active requests) up to rounding).
        #[test]
        fn budget_invariants_hold_for_any_op_sequence(
            ops in prop::collection::vec(0u64..1_000_000, 1..80),
            cap_raw in 40u64..200,
            min_raw in 0u64..15,
        ) {
            let cap = cap_raw as f64;
            let mut a = arbiter(cap, min_raw as f64);
            for raw in ops {
                apply_op(&mut a, raw);

                let total = a.total_granted().as_watts();
                prop_assert!(
                    total <= cap * (1.0 + 1e-12) + 1e-9,
                    "aggregate {total} exceeds socket cap {cap}"
                );

                let mut active_request_sum = 0.0;
                for t in &a.tenants {
                    prop_assert!(
                        t.granted_w <= t.requested_w + 1e-9,
                        "tenant {} granted {} over request {}",
                        t.id, t.granted_w, t.requested_w
                    );
                    prop_assert!(t.granted_w >= 0.0);
                    if t.failsafed {
                        prop_assert!(t.granted_w == 0.0, "failsafed tenants hold no budget");
                    } else {
                        active_request_sum += t.requested_w;
                    }
                }

                // Full redistribution: nothing claimable is left on
                // the table.
                let claimable = cap.min(active_request_sum);
                prop_assert!(
                    total >= claimable - 1e-6,
                    "aggregate {total} leaves budget unclaimed (claimable {claimable})"
                );
            }
        }

        /// Restore never fails for a registered tenant, whatever was
        /// admitted in the meantime — the min_grant reservation at
        /// admission time guarantees it.
        #[test]
        fn restore_always_succeeds_for_registered_tenants(
            ops in prop::collection::vec(0u64..1_000_000, 1..60),
        ) {
            let mut a = arbiter(120.0, 10.0);
            for raw in ops {
                apply_op(&mut a, raw);
                let ids: Vec<u64> = a.tenants.iter().map(|t| t.id).collect();
                for id in ids {
                    // Probe on a clone so the sequence under test is
                    // not disturbed.
                    let mut probe = a.clone();
                    prop_assert!(probe.restore(id).is_ok());
                }
            }
        }

        /// The tentpole pin: for ANY buffered data-plane op stream and
        /// ANY per-tenant-order-preserving reshuffle of it (i.e. any
        /// shard interleaving), `advance()` publishes grants
        /// byte-identical to the plain single-threaded
        /// [`BudgetArbiter`] fed the ops in canonical order.
        #[test]
        fn advance_is_interleaving_independent_and_pins_the_plain_arbiter(
            raw_ops in prop::collection::vec(0u64..1_000_000, 0..40),
            sched in prop::collection::vec(0u64..1_000_000, 1..40),
            epochs in 1usize..4,
        ) {
            const TENANTS: u64 = 4;
            let decode = |raw: u64| -> (u64, ArbiterOp) {
                let tenant = raw % TENANTS;
                let op = match (raw / TENANTS) % 3 {
                    0 => ArbiterOp::Failsafe,
                    1 => ArbiterOp::Restore,
                    _ => ArbiterOp::Leave,
                };
                (tenant, op)
            };

            let mut plain = arbiter(120.0, 5.0);
            let mut ea = EpochArbiter::new(Watts::new(120.0), Watts::new(5.0));
            let mut eb = EpochArbiter::new(Watts::new(120.0), Watts::new(5.0));
            for tenant in 0..TENANTS {
                let req = Watts::new(15.0 + tenant as f64 * 11.0);
                prop_assert!(plain.join(tenant, req).is_ok());
                prop_assert!(ea.join(tenant, req).is_ok());
                prop_assert!(eb.join(tenant, req).is_ok());
            }

            let chunk = (raw_ops.len() / epochs).max(1);
            for (round, ops) in raw_ops.chunks(chunk).enumerate() {
                // Interleaving A: arrival order as generated.
                let a_stream: Vec<(u64, ArbiterOp)> =
                    ops.iter().map(|raw| decode(*raw)).collect();
                // Interleaving B: an arbitrary reshuffle that keeps
                // each tenant's ops in order — exactly the freedom a
                // shard scheduler has.
                let mut queues: Vec<std::collections::VecDeque<(u64, ArbiterOp)>> =
                    (0..TENANTS).map(|_| std::collections::VecDeque::new()).collect();
                for (tenant, op) in &a_stream {
                    if let Some(q) = queues.get_mut(*tenant as usize) {
                        q.push_back((*tenant, *op));
                    }
                }
                let mut b_stream = Vec::with_capacity(a_stream.len());
                let mut cursor = 0usize;
                while b_stream.len() < a_stream.len() {
                    let pick = sched
                        .get(cursor % sched.len())
                        .copied()
                        .unwrap_or(0) as usize;
                    cursor += 1;
                    let nonempty: Vec<usize> = queues
                        .iter()
                        .enumerate()
                        .filter(|(_, q)| !q.is_empty())
                        .map(|(i, _)| i)
                        .collect();
                    let Some(&qi) = nonempty.get(pick % nonempty.len().max(1)) else {
                        break;
                    };
                    if let Some(q) = queues.get_mut(qi) {
                        if let Some(item) = q.pop_front() {
                            b_stream.push(item);
                        }
                    }
                }
                prop_assert_eq!(a_stream.len(), b_stream.len());

                // Canonical order for the plain arbiter: ascending
                // tenant id, per-tenant program order (what the stable
                // sort inside advance() produces).
                for tenant in 0..TENANTS {
                    for (id, op) in a_stream.iter().filter(|(id, _)| *id == tenant) {
                        let outcome = match op {
                            ArbiterOp::Failsafe => plain.failsafe(*id),
                            ArbiterOp::Restore => plain.restore(*id).map(|_| ()),
                            ArbiterOp::Leave => plain.leave(*id),
                        };
                        drop(outcome);
                    }
                }
                for (tenant, op) in &a_stream {
                    ea.defer(*tenant, *op);
                }
                for (tenant, op) in &b_stream {
                    eb.defer(*tenant, *op);
                }
                let snap_a = ea.advance().clone();
                let snap_b = eb.advance().clone();

                let bits = |s: &GrantSnapshot| -> Vec<(u64, u64)> {
                    s.grants().map(|(id, w)| (id, w.as_watts().to_bits())).collect()
                };
                prop_assert_eq!(
                    bits(&snap_a), bits(&snap_b),
                    "round {}: interleaving changed the grants", round
                );
                let plain_bits: Vec<(u64, u64)> = {
                    let mut v: Vec<(u64, u64)> = plain
                        .grants()
                        .into_iter()
                        .map(|(id, w)| (id, w.as_watts().to_bits()))
                        .collect();
                    v.sort_by_key(|(id, _)| *id);
                    v
                };
                prop_assert_eq!(
                    bits(&snap_a), plain_bits,
                    "round {}: epoch arbiter diverged from the plain arbiter", round
                );
                prop_assert_eq!(
                    snap_a.total_granted().as_watts().to_bits(),
                    plain.total_granted().as_watts().to_bits()
                );
            }
        }
    }

    #[test]
    fn join_and_leave_now_republish_immediately() {
        let mut a = EpochArbiter::new(Watts::new(100.0), Watts::new(10.0));
        assert_eq!(a.snapshot().epoch(), 0);
        assert!(a.snapshot().is_empty());
        a.join(1, Watts::new(60.0)).unwrap();
        assert_eq!(a.snapshot().granted(1), Some(Watts::new(60.0)));
        a.join(2, Watts::new(50.0)).unwrap();
        // Water level moved at admission time, before any advance.
        assert_eq!(a.snapshot().granted(1), Some(Watts::new(50.0)));
        assert_eq!(a.snapshot().granted(2), Some(Watts::new(50.0)));
        assert_eq!(a.snapshot().epoch(), 0, "joins do not bump the epoch");
        a.leave_now(1).unwrap();
        assert_eq!(a.snapshot().granted(1), None);
        assert_eq!(a.snapshot().granted(2), Some(Watts::new(50.0)));
    }

    #[test]
    fn deferred_ops_apply_only_at_the_epoch_boundary() {
        let mut a = EpochArbiter::new(Watts::new(100.0), Watts::new(10.0));
        a.join(1, Watts::new(60.0)).unwrap();
        a.join(2, Watts::new(60.0)).unwrap();
        a.defer(1, ArbiterOp::Failsafe);
        // Snapshot is unchanged until the tick barrier.
        assert_eq!(a.snapshot().granted(1), Some(Watts::new(50.0)));
        assert_eq!(a.pending_ops(), 1);
        let snap = a.advance().clone();
        assert_eq!(snap.epoch(), 1);
        assert_eq!(snap.granted(1), Some(Watts::ZERO));
        assert_eq!(
            snap.granted(2),
            Some(Watts::new(60.0)),
            "freed budget flows"
        );
        assert_eq!(a.pending_ops(), 0);
    }

    #[test]
    fn leave_now_drops_the_tenants_pending_ops() {
        let mut a = EpochArbiter::new(Watts::new(100.0), Watts::new(10.0));
        a.join(1, Watts::new(40.0)).unwrap();
        a.join(2, Watts::new(40.0)).unwrap();
        a.defer(1, ArbiterOp::Failsafe);
        a.defer(2, ArbiterOp::Failsafe);
        a.leave_now(1).unwrap();
        assert_eq!(a.pending_ops(), 1, "tenant 1's pending op is gone");
        // A re-joined incarnation of tenant 1 must not inherit the
        // old failsafe.
        a.join(1, Watts::new(40.0)).unwrap();
        let snap = a.advance().clone();
        assert_eq!(snap.granted(1), Some(Watts::new(40.0)));
        assert_eq!(snap.granted(2), Some(Watts::ZERO));
    }

    #[test]
    fn stale_deferred_ops_are_dropped_not_errors() {
        let mut a = EpochArbiter::new(Watts::new(100.0), Watts::new(10.0));
        a.join(1, Watts::new(40.0)).unwrap();
        a.defer(9, ArbiterOp::Leave); // never registered
        a.defer(1, ArbiterOp::Failsafe);
        a.defer(1, ArbiterOp::Leave); // evicted after failsafing
        let snap = a.advance().clone();
        assert!(snap.is_empty());
        assert_eq!(snap.total_granted(), Watts::ZERO);
    }
}
