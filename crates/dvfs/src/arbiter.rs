//! Shared socket power-budget arbitration for the multi-tenant
//! capping service.
//!
//! One physical socket has one power budget; N tenants each want a
//! per-tenant cap enforced by their own capping controller. The
//! [`BudgetArbiter`] owns the invariant that makes that safe: **the
//! sum of granted per-tenant caps never exceeds the socket cap**, at
//! any point in any sequence of joins, leaves, failsafes, and
//! restores. Allocation is deterministic max-min fair (water-filling):
//! every active tenant gets an equal share of the socket cap, except
//! that nobody is granted more than they requested — surplus from
//! modest tenants flows to the hungry ones.
//!
//! Bulkhead coupling: a tenant whose supervisor enters Failsafe is
//! pinned to its safe VF state and cannot spend its cap, so
//! [`BudgetArbiter::failsafe`] zeroes its grant and redistributes the
//! freed budget to the survivors; [`BudgetArbiter::restore`] re-admits
//! it on recovery. Admission reserves `min_grant` per registered
//! tenant (failsafed included) so a restore can never be starved by
//! sessions admitted in the meantime.

use ppep_types::{Error, RejectReason, Result, Watts};

/// One tenant's budget bookkeeping.
#[derive(Debug, Clone)]
struct TenantBudget {
    id: u64,
    requested_w: f64,
    granted_w: f64,
    failsafed: bool,
}

/// The shared socket power-budget arbiter. See the module docs.
#[derive(Debug, Clone)]
pub struct BudgetArbiter {
    socket_cap_w: f64,
    min_grant_w: f64,
    /// Join order; allocation iterates this deterministically.
    tenants: Vec<TenantBudget>,
}

impl BudgetArbiter {
    /// Builds an arbiter for a socket budget of `socket_cap`,
    /// reserving at least `min_grant` for every registered tenant.
    pub fn new(socket_cap: Watts, min_grant: Watts) -> Self {
        Self {
            socket_cap_w: socket_cap.as_watts().max(0.0),
            min_grant_w: min_grant.as_watts().max(0.0),
            tenants: Vec::new(),
        }
    }

    /// The socket-wide budget.
    pub fn socket_cap(&self) -> Watts {
        Watts::new(self.socket_cap_w)
    }

    /// The per-tenant admission floor.
    pub fn min_grant(&self) -> Watts {
        Watts::new(self.min_grant_w)
    }

    /// Registered tenants (active + failsafed).
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Registered tenants currently holding a live grant.
    pub fn active_count(&self) -> usize {
        self.tenants.iter().filter(|t| !t.failsafed).count()
    }

    /// Admits a tenant requesting a cap of `requested`, returning the
    /// granted cap.
    ///
    /// # Errors
    ///
    /// [`Error::Rejected`] with [`RejectReason::DuplicateTenant`] when
    /// `tenant` is already registered, or
    /// [`RejectReason::BudgetExhausted`] when admitting one more
    /// tenant would break the `min_grant` reservation for everyone
    /// registered (failsafed tenants keep their reservation so their
    /// restore cannot be starved).
    pub fn join(&mut self, tenant: u64, requested: Watts) -> Result<Watts> {
        if self.tenants.iter().any(|t| t.id == tenant) {
            return Err(Error::Rejected {
                reason: RejectReason::DuplicateTenant { tenant },
            });
        }
        let reserved = (self.tenants.len() + 1) as f64 * self.min_grant_w;
        if reserved > self.socket_cap_w {
            let available =
                (self.socket_cap_w - self.tenants.len() as f64 * self.min_grant_w).max(0.0);
            return Err(Error::Rejected {
                reason: RejectReason::BudgetExhausted {
                    requested_w: requested.as_watts(),
                    available_w: available,
                },
            });
        }
        self.tenants.push(TenantBudget {
            id: tenant,
            requested_w: requested.as_watts().max(0.0),
            granted_w: 0.0,
            failsafed: false,
        });
        self.rebalance();
        self.granted(tenant).ok_or_else(|| {
            Error::InvalidInput(format!("arbiter: tenant {tenant} vanished during join"))
        })
    }

    /// Deregisters a tenant, redistributing its budget.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] when `tenant` is not registered.
    pub fn leave(&mut self, tenant: u64) -> Result<()> {
        let before = self.tenants.len();
        self.tenants.retain(|t| t.id != tenant);
        if self.tenants.len() == before {
            return Err(Error::InvalidInput(format!(
                "arbiter: unknown tenant {tenant}"
            )));
        }
        self.rebalance();
        Ok(())
    }

    /// Marks a tenant failsafed: its grant drops to zero (the safe VF
    /// pin spends no discretionary budget) and the freed watts are
    /// redistributed. Idempotent.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] when `tenant` is not registered.
    pub fn failsafe(&mut self, tenant: u64) -> Result<()> {
        let t = self
            .tenants
            .iter_mut()
            .find(|t| t.id == tenant)
            .ok_or_else(|| Error::InvalidInput(format!("arbiter: unknown tenant {tenant}")))?;
        t.failsafed = true;
        self.rebalance();
        Ok(())
    }

    /// Re-admits a recovered tenant to the allocation, returning its
    /// new grant. Idempotent. Always succeeds for a registered tenant:
    /// admission reserved its `min_grant` while it was failsafed.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] when `tenant` is not registered.
    pub fn restore(&mut self, tenant: u64) -> Result<Watts> {
        let t = self
            .tenants
            .iter_mut()
            .find(|t| t.id == tenant)
            .ok_or_else(|| Error::InvalidInput(format!("arbiter: unknown tenant {tenant}")))?;
        t.failsafed = false;
        self.rebalance();
        self.granted(tenant).ok_or_else(|| {
            Error::InvalidInput(format!("arbiter: tenant {tenant} vanished during restore"))
        })
    }

    /// The cap currently granted to `tenant` (zero while failsafed),
    /// or `None` when it is not registered.
    pub fn granted(&self, tenant: u64) -> Option<Watts> {
        self.tenants
            .iter()
            .find(|t| t.id == tenant)
            .map(|t| Watts::new(t.granted_w))
    }

    /// Every registered tenant's `(id, granted cap)`, in join order.
    pub fn grants(&self) -> Vec<(u64, Watts)> {
        self.tenants
            .iter()
            .map(|t| (t.id, Watts::new(t.granted_w)))
            .collect()
    }

    /// The aggregate granted budget. Never exceeds
    /// [`BudgetArbiter::socket_cap`].
    pub fn total_granted(&self) -> Watts {
        Watts::new(self.tenants.iter().map(|t| t.granted_w).sum())
    }

    /// Deterministic max-min fair (water-filling) allocation over the
    /// active tenants, each capped at its own request.
    fn rebalance(&mut self) {
        for t in &mut self.tenants {
            t.granted_w = 0.0;
        }
        let mut remaining = self.socket_cap_w;
        let mut unsatisfied: Vec<usize> = self
            .tenants
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.failsafed)
            .map(|(i, _)| i)
            .collect();
        while !unsatisfied.is_empty() && remaining > 0.0 {
            let round_size = unsatisfied.len();
            let share = remaining / round_size as f64;
            let mut still_hungry = Vec::with_capacity(round_size);
            for i in unsatisfied {
                let Some(t) = self.tenants.get_mut(i) else {
                    continue;
                };
                if t.requested_w <= share {
                    // Fully satisfied at this water level; its surplus
                    // stays in `remaining` for the next round.
                    t.granted_w = t.requested_w;
                    remaining -= t.requested_w;
                } else {
                    still_hungry.push(i);
                }
            }
            if still_hungry.len() == round_size {
                // Nobody was satisfied this round: the water level is
                // final — split the remainder evenly and stop.
                for i in still_hungry {
                    if let Some(t) = self.tenants.get_mut(i) {
                        t.granted_w = share;
                    }
                }
                break;
            }
            unsatisfied = still_hungry;
        }
        // f64 rounding can leave the sum a few ulps above the cap;
        // scale down defensively so the invariant is exact-ish.
        let total: f64 = self.tenants.iter().map(|t| t.granted_w).sum();
        if total > self.socket_cap_w && total > 0.0 {
            let scale = self.socket_cap_w / total;
            for t in &mut self.tenants {
                t.granted_w *= scale;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arbiter(cap: f64, min: f64) -> BudgetArbiter {
        BudgetArbiter::new(Watts::new(cap), Watts::new(min))
    }

    #[test]
    fn single_tenant_gets_min_of_request_and_cap() {
        let mut a = arbiter(100.0, 10.0);
        assert_eq!(a.join(1, Watts::new(60.0)).unwrap(), Watts::new(60.0));
        let mut b = arbiter(100.0, 10.0);
        assert_eq!(b.join(1, Watts::new(150.0)).unwrap(), Watts::new(100.0));
    }

    #[test]
    fn surplus_flows_to_hungry_tenants() {
        let mut a = arbiter(100.0, 10.0);
        a.join(1, Watts::new(20.0)).unwrap();
        a.join(2, Watts::new(90.0)).unwrap();
        // Equal split would be 50/50, but tenant 1 only wants 20; the
        // other 30 W flow to tenant 2.
        assert_eq!(a.granted(1).unwrap(), Watts::new(20.0));
        assert_eq!(a.granted(2).unwrap(), Watts::new(80.0));
    }

    #[test]
    fn duplicate_and_exhausted_joins_are_typed_rejections() {
        let mut a = arbiter(30.0, 10.0);
        a.join(1, Watts::new(30.0)).unwrap();
        match a.join(1, Watts::new(5.0)).unwrap_err() {
            Error::Rejected {
                reason: RejectReason::DuplicateTenant { tenant },
            } => assert_eq!(tenant, 1),
            other => panic!("wrong rejection {other}"),
        }
        a.join(2, Watts::new(30.0)).unwrap();
        a.join(3, Watts::new(30.0)).unwrap();
        match a.join(4, Watts::new(30.0)).unwrap_err() {
            Error::Rejected {
                reason: RejectReason::BudgetExhausted { available_w, .. },
            } => assert!(available_w < 10.0),
            other => panic!("wrong rejection {other}"),
        }
    }

    #[test]
    fn failsafe_frees_budget_and_restore_reclaims_it() {
        let mut a = arbiter(90.0, 10.0);
        a.join(1, Watts::new(60.0)).unwrap();
        a.join(2, Watts::new(60.0)).unwrap();
        assert_eq!(a.granted(1).unwrap(), Watts::new(45.0));
        assert_eq!(a.granted(2).unwrap(), Watts::new(45.0));
        a.failsafe(1).unwrap();
        assert_eq!(a.granted(1).unwrap(), Watts::ZERO);
        assert_eq!(
            a.granted(2).unwrap(),
            Watts::new(60.0),
            "freed budget flows"
        );
        let back = a.restore(1).unwrap();
        assert_eq!(back, Watts::new(45.0));
        assert_eq!(a.granted(2).unwrap(), Watts::new(45.0));
    }

    #[test]
    fn admission_reserves_for_failsafed_tenants() {
        let mut a = arbiter(30.0, 10.0);
        a.join(1, Watts::new(30.0)).unwrap();
        a.join(2, Watts::new(30.0)).unwrap();
        a.failsafe(1).unwrap();
        a.join(3, Watts::new(30.0)).unwrap();
        // Slots are full even though tenant 1 is failsafed: its
        // min_grant stays reserved so restore cannot be starved.
        assert!(a.join(4, Watts::new(5.0)).is_err());
        assert!(a.restore(1).unwrap() >= Watts::new(10.0));
    }

    /// Decodes one raw u64 into an arbiter operation; used by the
    /// property below to explore arbitrary operation sequences.
    fn apply_op(a: &mut BudgetArbiter, raw: u64) {
        let id = raw % 6;
        let kind = (raw / 6) % 4;
        let request = 5.0 + (raw % 977) as f64 * 0.1;
        match kind {
            0 => {
                let _ = a.join(id, Watts::new(request));
            }
            1 => {
                let _ = a.leave(id);
            }
            2 => {
                let _ = a.failsafe(id);
            }
            _ => {
                let _ = a.restore(id);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// For ANY sequence of joins/leaves/failsafes/restores:
        /// the aggregate granted budget never exceeds the socket cap,
        /// nobody is granted more than they asked for, and freed
        /// budget is fully redistributed (the aggregate equals
        /// min(cap, sum of active requests) up to rounding).
        #[test]
        fn budget_invariants_hold_for_any_op_sequence(
            ops in prop::collection::vec(0u64..1_000_000, 1..80),
            cap_raw in 40u64..200,
            min_raw in 0u64..15,
        ) {
            let cap = cap_raw as f64;
            let mut a = arbiter(cap, min_raw as f64);
            for raw in ops {
                apply_op(&mut a, raw);

                let total = a.total_granted().as_watts();
                prop_assert!(
                    total <= cap * (1.0 + 1e-12) + 1e-9,
                    "aggregate {total} exceeds socket cap {cap}"
                );

                let mut active_request_sum = 0.0;
                for t in &a.tenants {
                    prop_assert!(
                        t.granted_w <= t.requested_w + 1e-9,
                        "tenant {} granted {} over request {}",
                        t.id, t.granted_w, t.requested_w
                    );
                    prop_assert!(t.granted_w >= 0.0);
                    if t.failsafed {
                        prop_assert!(t.granted_w == 0.0, "failsafed tenants hold no budget");
                    } else {
                        active_request_sum += t.requested_w;
                    }
                }

                // Full redistribution: nothing claimable is left on
                // the table.
                let claimable = cap.min(active_request_sum);
                prop_assert!(
                    total >= claimable - 1e-6,
                    "aggregate {total} leaves budget unclaimed (claimable {claimable})"
                );
            }
        }

        /// Restore never fails for a registered tenant, whatever was
        /// admitted in the meantime — the min_grant reservation at
        /// admission time guarantees it.
        #[test]
        fn restore_always_succeeds_for_registered_tenants(
            ops in prop::collection::vec(0u64..1_000_000, 1..60),
        ) {
            let mut a = arbiter(120.0, 10.0);
            for raw in ops {
                apply_op(&mut a, raw);
                let ids: Vec<u64> = a.tenants.iter().map(|t| t.id).collect();
                for id in ids {
                    // Probe on a clone so the sequence under test is
                    // not disturbed.
                    let mut probe = a.clone();
                    prop_assert!(probe.restore(id).is_ok());
                }
            }
        }
    }
}
