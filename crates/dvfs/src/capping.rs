//! Power capping: one-step (PPEP) versus iterative (reactive).
//!
//! Finding the VF state that maximises performance under a power cap
//! is usually an iterative search: change state, wait a time slice,
//! measure, repeat (§V-B). PPEP's all-VF power predictions collapse
//! that loop: the controller directly selects, in one decision
//! interval, the assignment that maximises predicted performance under
//! the cap. The paper measures 0.2 s convergence and 94% budget
//! adherence for the predictive controller versus 2.8 s and 81% for
//! the reactive one (Fig. 7).
//!
//! Like the paper, the one-step controller assumes per-CU power
//! planes (per-CU DVFS); the iterative baseline moves all CUs in
//! lockstep, as commodity governors do.

use ppep_core::daemon::DvfsController;
use ppep_core::ppe::PpeProjection;
use ppep_core::Ppep;
use ppep_obs::RecorderHandle;
use ppep_types::{Result, VfStateId, Watts};

/// Counts the CUs whose VF state differs between the measured
/// assignment and the controller's decision — the number of VF
/// transitions the decision will trigger when applied.
fn count_transitions(from: &[VfStateId], to: &[VfStateId]) -> u64 {
    from.iter().zip(to).filter(|(a, b)| a != b).count() as u64
}

/// The PPEP-based one-step capping controller.
#[derive(Debug, Clone)]
pub struct OneStepCapping {
    ppep: Ppep,
    cap: Watts,
    /// Guard band: the controller targets `cap · (1 − guard_band)` so
    /// that model bias and sensor noise do not turn into persistent
    /// cap violations. Production capping firmware does the same.
    pub guard_band: f64,
    recorder: RecorderHandle,
}

impl OneStepCapping {
    /// Builds a controller enforcing `cap` with a 5% guard band.
    pub fn new(ppep: Ppep, cap: Watts) -> Self {
        Self {
            ppep,
            cap,
            guard_band: 0.05,
            recorder: RecorderHandle::noop(),
        }
    }

    /// Attaches an observability recorder; the controller then counts
    /// `dvfs.vf_transitions` (CUs moved per decision) and
    /// `dvfs.cap_violations` (intervals whose source-state power
    /// exceeded the cap).
    #[must_use]
    pub fn with_recorder(mut self, recorder: RecorderHandle) -> Self {
        self.recorder = recorder;
        self
    }

    /// Changes the enforced cap (e.g. on a battery/wall transition).
    pub fn set_cap(&mut self, cap: Watts) {
        self.cap = cap;
    }

    /// The current cap.
    pub fn cap(&self) -> Watts {
        self.cap
    }

    /// The single-step search: start from the fastest uniform state
    /// that fits, then greedily raise individual CUs (most projected
    /// throughput gain per watt first) while the assignment still
    /// fits the cap.
    ///
    /// # Errors
    ///
    /// Propagates projection-evaluation errors.
    pub fn choose(&self, projection: &PpeProjection) -> Result<Vec<VfStateId>> {
        let table = self.ppep.models().vf_table().clone();
        let cu_count = projection.source_vf.len();
        let target = self.cap * (1.0 - self.guard_band);

        // Fastest uniform state under the target (fall back to lowest).
        let uniform = projection
            .fastest_under_cap(target)
            .unwrap_or_else(|| table.lowest());
        let mut assignment = vec![uniform; cu_count];

        // Greedy refinement: repeatedly raise the CU whose step-up
        // still fits and adds the most predicted throughput.
        loop {
            let current_power = self
                .ppep
                .chip_power_with_assignment(projection, &assignment)?;
            let mut best: Option<(usize, VfStateId, f64)> = None;
            for cu in 0..cu_count {
                let Some(up) = table.step_up(assignment[cu]) else {
                    continue;
                };
                let mut candidate = assignment.clone();
                candidate[cu] = up;
                let power = self
                    .ppep
                    .chip_power_with_assignment(projection, &candidate)?;
                if power > target {
                    continue;
                }
                let gain = self.cu_throughput_gain(projection, cu, assignment[cu], up);
                if gain <= 0.0 {
                    // Idle (possibly gated) CUs gain nothing from a
                    // faster state; promoting them only misstates the
                    // decision (and wastes power on non-gating parts).
                    continue;
                }
                let watts = (power - current_power).as_watts().max(1e-9);
                let score = gain / watts;
                if best.as_ref().is_none_or(|(_, _, s)| score > *s) {
                    best = Some((cu, up, score));
                }
            }
            match best {
                Some((cu, up, _)) => assignment[cu] = up,
                None => break,
            }
        }
        Ok(assignment)
    }

    fn cu_throughput_gain(
        &self,
        projection: &PpeProjection,
        cu: usize,
        from: VfStateId,
        to: VfStateId,
    ) -> f64 {
        let cores_per_cu = self.ppep.models().topology().cores_per_cu();
        projection
            .cores
            .chunks(cores_per_cu)
            .nth(cu)
            .map_or(0.0, |cores| {
                cores
                    .iter()
                    .map(|core| core.at(to).ips - core.at(from).ips)
                    .sum()
            })
    }
}

impl DvfsController for OneStepCapping {
    fn decide(&mut self, projection: &PpeProjection) -> Result<Vec<VfStateId>> {
        let decision = self.choose(projection)?;
        if self.recorder.enabled() {
            let source = self
                .ppep
                .chip_power_with_assignment(projection, &projection.source_vf)?;
            if source > self.cap {
                self.recorder.incr("dvfs.cap_violations");
            }
            self.recorder.add(
                "dvfs.vf_transitions",
                count_transitions(&projection.source_vf, &decision),
            );
        }
        Ok(decision)
    }

    fn enforced_cap(&self) -> Option<Watts> {
        Some(self.cap)
    }

    fn set_enforced_cap(&mut self, cap: Watts) {
        self.set_cap(cap);
    }
}

/// The reactive baseline: step all CUs down when over the cap, step
/// up when comfortably under, one rung per decision interval.
#[derive(Debug, Clone)]
pub struct IterativeCapping {
    cap: Watts,
    /// Fraction of headroom below the cap required before stepping up
    /// (hysteresis against oscillation).
    pub step_up_margin: f64,
    /// Decision period: the controller holds each setting for this
    /// many intervals to measure its stable power before moving again
    /// (commodity governors average over a window; 1 = react every
    /// interval).
    pub hold_intervals: usize,
    current: VfStateId,
    table: ppep_types::VfTable,
    last_measured: Option<Watts>,
    since_change: usize,
    recorder: RecorderHandle,
}

impl IterativeCapping {
    /// Builds the baseline starting at the chip's highest state.
    pub fn new(cap: Watts, table: &ppep_types::VfTable) -> Self {
        Self {
            cap,
            step_up_margin: 0.10,
            hold_intervals: 1,
            current: table.highest(),
            table: table.clone(),
            last_measured: None,
            since_change: 0,
            recorder: RecorderHandle::noop(),
        }
    }

    /// Attaches an observability recorder; see
    /// [`OneStepCapping::with_recorder`].
    #[must_use]
    pub fn with_recorder(mut self, recorder: RecorderHandle) -> Self {
        self.recorder = recorder;
        self
    }

    /// Changes the enforced cap.
    pub fn set_cap(&mut self, cap: Watts) {
        self.cap = cap;
    }

    /// The current cap.
    pub fn cap(&self) -> Watts {
        self.cap
    }

    /// Feeds the measured chip power of the last interval — the only
    /// signal a reactive controller has.
    pub fn observe_power(&mut self, measured: Watts) {
        self.last_measured = Some(measured);
    }

    /// The reactive step.
    pub fn choose(&mut self, cu_count: usize) -> Vec<VfStateId> {
        self.since_change += 1;
        if self.since_change >= self.hold_intervals {
            if let Some(p) = self.last_measured {
                if p > self.cap {
                    if let Some(down) = self.table.step_down(self.current) {
                        self.current = down;
                        self.since_change = 0;
                    }
                } else if p.as_watts() < self.cap.as_watts() * (1.0 - self.step_up_margin) {
                    if let Some(up) = self.table.step_up(self.current) {
                        self.current = up;
                        self.since_change = 0;
                    }
                }
            }
        }
        vec![self.current; cu_count]
    }
}

impl DvfsController for IterativeCapping {
    fn decide(&mut self, projection: &PpeProjection) -> Result<Vec<VfStateId>> {
        if self.last_measured.is_none() {
            // No external power observation was fed (the daemon only
            // hands controllers the projection): fall back to the
            // projection's estimate of power at the interval's own
            // state, so the reactive loop still closes.
            if let Some(&source) = projection.source_vf.iter().max() {
                self.observe_power(projection.chip_at(source).power);
            }
        }
        if self.recorder.enabled() {
            if let Some(p) = self.last_measured {
                if p > self.cap {
                    self.recorder.incr("dvfs.cap_violations");
                }
            }
        }
        let decision = self.choose(projection.source_vf.len());
        if self.recorder.enabled() {
            self.recorder.add(
                "dvfs.vf_transitions",
                count_transitions(&projection.source_vf, &decision),
            );
        }
        // Consume the observation: the next decision needs a fresh one.
        self.last_measured = None;
        Ok(decision)
    }

    fn enforced_cap(&self) -> Option<Watts> {
        Some(self.cap)
    }

    fn set_enforced_cap(&mut self, cap: Watts) {
        self.set_cap(cap);
    }
}

/// The Steepest Drop policy of Winter et al. (PACT 2010), one of the
/// power-capping schemes the paper's related work discusses (§VI).
///
/// Steepest Drop "assumes knowledge of the power consumption of each
/// core, which is not yet fully supported by modern processors" - the
/// paper's point is that PPEP *supplies* that knowledge. This
/// implementation walks from the current assignment along the
/// steepest power-drop-per-throughput-loss direction until the
/// predicted chip power fits the cap (and greedily climbs back when
/// there is headroom), using PPEP's per-core projections as the
/// per-core power oracle.
#[derive(Debug, Clone)]
pub struct SteepestDrop {
    ppep: Ppep,
    cap: Watts,
    /// Guard band under the cap, as for [`OneStepCapping`].
    pub guard_band: f64,
    recorder: RecorderHandle,
}

impl SteepestDrop {
    /// Builds the policy.
    pub fn new(ppep: Ppep, cap: Watts) -> Self {
        Self {
            ppep,
            cap,
            guard_band: 0.05,
            recorder: RecorderHandle::noop(),
        }
    }

    /// Attaches an observability recorder; see
    /// [`OneStepCapping::with_recorder`].
    #[must_use]
    pub fn with_recorder(mut self, recorder: RecorderHandle) -> Self {
        self.recorder = recorder;
        self
    }

    /// Changes the enforced cap.
    pub fn set_cap(&mut self, cap: Watts) {
        self.cap = cap;
    }

    /// One full descent/ascent pass from the measured assignment.
    ///
    /// # Errors
    ///
    /// Propagates projection-evaluation errors.
    pub fn choose(&self, projection: &PpeProjection) -> Result<Vec<VfStateId>> {
        let table = self.ppep.models().vf_table().clone();
        let cores_per_cu = self.ppep.models().topology().cores_per_cu();
        let cu_count = projection.source_vf.len();
        let target = self.cap * (1.0 - self.guard_band);
        let mut assignment = projection.source_vf.clone();

        let cu_ips = |assignment: &[VfStateId], cu: usize| -> f64 {
            projection
                .cores
                .chunks(cores_per_cu)
                .nth(cu)
                .map_or(0.0, |cores| {
                    cores.iter().map(|core| core.at(assignment[cu]).ips).sum()
                })
        };

        // Descend: drop the CU with the steepest watts-per-lost-ips.
        while self
            .ppep
            .chip_power_with_assignment(projection, &assignment)?
            > target
        {
            let current = self
                .ppep
                .chip_power_with_assignment(projection, &assignment)?;
            let mut best: Option<(usize, VfStateId, f64)> = None;
            for cu in 0..cu_count {
                let Some(down) = table.step_down(assignment[cu]) else {
                    continue;
                };
                let mut candidate = assignment.clone();
                candidate[cu] = down;
                let power = self
                    .ppep
                    .chip_power_with_assignment(projection, &candidate)?;
                let saved = (current - power).as_watts();
                let lost = (cu_ips(&assignment, cu) - cu_ips(&candidate, cu)).max(1.0);
                let steepness = saved / lost;
                if best.as_ref().is_none_or(|(_, _, s)| steepness > *s) {
                    best = Some((cu, down, steepness));
                }
            }
            match best {
                Some((cu, down, _)) => assignment[cu] = down,
                None => break, // floor reached: nothing left to drop
            }
        }
        // Ascend while there is headroom (mirrors the descent).
        loop {
            let mut best: Option<(usize, VfStateId, f64)> = None;
            for cu in 0..cu_count {
                let Some(up) = table.step_up(assignment[cu]) else {
                    continue;
                };
                let mut candidate = assignment.clone();
                candidate[cu] = up;
                let power = self
                    .ppep
                    .chip_power_with_assignment(projection, &candidate)?;
                if power > target {
                    continue;
                }
                let gain = cu_ips(&candidate, cu) - cu_ips(&assignment, cu);
                if best.as_ref().is_none_or(|(_, _, g)| gain > *g) {
                    best = Some((cu, up, gain));
                }
            }
            match best {
                Some((cu, up, gain)) if gain > 0.0 => assignment[cu] = up,
                _ => break,
            }
        }
        Ok(assignment)
    }
}

impl DvfsController for SteepestDrop {
    fn decide(&mut self, projection: &PpeProjection) -> Result<Vec<VfStateId>> {
        let decision = self.choose(projection)?;
        if self.recorder.enabled() {
            let source = self
                .ppep
                .chip_power_with_assignment(projection, &projection.source_vf)?;
            if source > self.cap {
                self.recorder.incr("dvfs.cap_violations");
            }
            self.recorder.add(
                "dvfs.vf_transitions",
                count_transitions(&projection.source_vf, &decision),
            );
        }
        Ok(decision)
    }

    fn enforced_cap(&self) -> Option<Watts> {
        Some(self.cap)
    }

    fn set_enforced_cap(&mut self, cap: Watts) {
        self.set_cap(cap);
    }
}

/// Cap-adherence statistics over a power trace: the fraction of
/// intervals whose measured power stayed under the cap, and the number
/// of intervals until the trace first got (and stayed) under it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapAdherence {
    /// Fraction of intervals at or below the cap.
    pub under_cap_fraction: f64,
    /// Intervals from the start until power first dropped under the
    /// cap (trace length if never).
    pub settle_intervals: usize,
}

/// Computes adherence statistics for a measured power trace against a
/// cap.
pub fn cap_adherence(trace: &[Watts], cap: Watts) -> CapAdherence {
    let n = trace.len().max(1);
    let under = trace.iter().filter(|p| **p <= cap).count();
    let settle = trace.iter().position(|p| *p <= cap).unwrap_or(trace.len());
    CapAdherence {
        under_cap_fraction: under as f64 / n as f64,
        settle_intervals: settle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppep_core::daemon::PpepDaemon;
    use ppep_rig::TrainingRig;
    use ppep_sim::chip::{ChipSimulator, SimConfig};
    use ppep_sim::SimPlatform;
    use ppep_types::VfTable;
    use ppep_workloads::combos::fig7_workload;
    use std::sync::OnceLock;

    fn engine() -> Ppep {
        static MODELS: OnceLock<ppep_models::trainer::TrainedModels> = OnceLock::new();
        Ppep::new(
            MODELS
                .get_or_init(|| {
                    TrainingRig::fx8320(42)
                        .train_quick()
                        .expect("training succeeds")
                })
                .clone(),
        )
    }

    #[test]
    fn one_step_meets_cap_within_one_interval() {
        let ppep = engine();
        let mut sim = ChipSimulator::new(SimConfig::fx8320(42));
        sim.load_workload(&fig7_workload(42));
        let cap = Watts::new(70.0);
        let controller = OneStepCapping::new(ppep.clone(), cap);
        let mut daemon = PpepDaemon::new(ppep, SimPlatform::new(sim), controller);
        let steps = daemon.run(6).into_result().unwrap();
        // First interval runs at boot state (may exceed the cap); from
        // the second interval on, measured power must respect it
        // (small sensor-noise slack).
        for s in &steps[1..] {
            assert!(
                s.record.measured_power.as_watts() <= cap.as_watts() * 1.06,
                "interval {:?} at {} W exceeds cap",
                s.record.index,
                s.record.measured_power.as_watts()
            );
        }
    }

    #[test]
    fn one_step_does_not_sandbag() {
        // Under a generous cap the controller must keep everything at
        // the top state.
        let ppep = engine();
        let table = ppep.models().vf_table().clone();
        let mut sim = ChipSimulator::new(SimConfig::fx8320(42));
        sim.load_workload(&fig7_workload(42));
        let controller = OneStepCapping::new(ppep.clone(), Watts::new(500.0));
        let mut daemon = PpepDaemon::new(ppep, SimPlatform::new(sim), controller);
        let steps = daemon.run(3).into_result().unwrap();
        assert_eq!(steps.last().unwrap().decision, vec![table.highest(); 4]);
    }

    #[test]
    fn one_step_converges_faster_than_iterative() {
        let cap = Watts::new(65.0);
        let run = |one_step: bool| -> Vec<Watts> {
            let ppep = engine();
            let table = ppep.models().vf_table().clone();
            let mut sim = ChipSimulator::new(SimConfig::fx8320(42));
            sim.load_workload(&fig7_workload(42));
            // Warm up at full speed so the cap transition is visible.
            let _ = sim.run_intervals(10);
            if one_step {
                let controller = OneStepCapping::new(ppep.clone(), cap);
                let mut daemon = PpepDaemon::new(ppep, SimPlatform::new(sim), controller);
                daemon
                    .run(15)
                    .into_result()
                    .unwrap()
                    .iter()
                    .map(|s| s.record.measured_power)
                    .collect()
            } else {
                let mut controller = IterativeCapping::new(cap, &table);
                let mut trace = Vec::new();
                for _ in 0..15 {
                    let record = sim.step_interval();
                    controller.observe_power(record.measured_power);
                    let decision = controller.choose(4);
                    for (cu, vf) in decision.iter().enumerate() {
                        sim.set_cu_vf(ppep_types::CuId(cu), *vf).unwrap();
                    }
                    trace.push(record.measured_power);
                }
                trace
            }
        };
        let predictive = cap_adherence(&run(true), cap * 1.03);
        let reactive = cap_adherence(&run(false), cap * 1.03);
        assert!(
            predictive.settle_intervals < reactive.settle_intervals,
            "one-step settles in {} vs iterative {}",
            predictive.settle_intervals,
            reactive.settle_intervals
        );
        assert!(
            predictive.under_cap_fraction >= reactive.under_cap_fraction,
            "one-step adherence {} vs iterative {}",
            predictive.under_cap_fraction,
            reactive.under_cap_fraction
        );
    }

    #[test]
    fn iterative_steps_one_rung_per_interval() {
        let table = VfTable::fx8320();
        let mut c = IterativeCapping::new(Watts::new(50.0), &table);
        // No observation yet: stays at the top.
        assert_eq!(c.choose(4), vec![table.highest(); 4]);
        // Over the cap: one rung down per observation.
        c.observe_power(Watts::new(90.0));
        assert_eq!(c.choose(4)[0].index(), 3);
        c.observe_power(Watts::new(80.0));
        assert_eq!(c.choose(4)[0].index(), 2);
        // Far under the cap: climbs back.
        c.observe_power(Watts::new(20.0));
        assert_eq!(c.choose(4)[0].index(), 3);
        // Just under the cap (within margin): holds.
        c.observe_power(Watts::new(48.0));
        assert_eq!(c.choose(4)[0].index(), 3);
    }

    #[test]
    fn iterative_saturates_at_ladder_ends() {
        let table = VfTable::fx8320();
        let mut c = IterativeCapping::new(Watts::new(10.0), &table);
        for _ in 0..10 {
            c.observe_power(Watts::new(99.0));
            let _ = c.choose(4);
        }
        assert_eq!(c.choose(4)[0], table.lowest());
        let mut up = IterativeCapping::new(Watts::new(1000.0), &table);
        for _ in 0..10 {
            up.observe_power(Watts::new(5.0));
            let _ = up.choose(4);
        }
        assert_eq!(up.choose(4)[0], table.highest());
    }

    #[test]
    fn one_step_leaves_idle_cus_at_the_floor() {
        // Regression: the greedy refinement used to walk idle (gated)
        // CUs up to the top state because a zero-gain step still beat
        // an empty candidate set.
        let ppep = engine();
        let mut sim = ChipSimulator::new(SimConfig::fx8320_pg(42));
        sim.load_workload(&ppep_workloads::combos::instances("458.sjeng", 2, 42));
        let record = sim.run_intervals(5).pop().unwrap();
        let projection = ppep.project(&record).unwrap();
        let controller = OneStepCapping::new(ppep.clone(), Watts::new(500.0));
        let decision = controller.choose(&projection).unwrap();
        // Busy CUs 0 and 1 run fast; idle CUs 2 and 3 stay where the
        // uniform baseline put them (the top fits under 500 W, so the
        // baseline is already VF5 — but no *step-up churn* happens).
        let table = ppep.models().vf_table().clone();
        assert_eq!(decision[0], table.highest());
        // Under a cap that forces a low uniform baseline, the idle CUs
        // must remain at that baseline instead of being promoted.
        let tight = OneStepCapping::new(ppep.clone(), Watts::new(40.0));
        let tight_decision = tight.choose(&projection).unwrap();
        assert_eq!(
            tight_decision[2], tight_decision[3],
            "idle CUs move together (not at all): {tight_decision:?}"
        );
        let busy_max = tight_decision[..2].iter().max().unwrap();
        assert!(
            tight_decision[2] <= *busy_max,
            "idle CUs must not outrank busy ones: {tight_decision:?}"
        );
    }

    #[test]
    fn iterative_controller_works_inside_the_daemon() {
        // Regression: decide() used to ignore power entirely, leaving
        // the baseline pinned at the top state forever.
        let ppep = engine();
        let table = ppep.models().vf_table().clone();
        let mut sim = ChipSimulator::new(SimConfig::fx8320(42));
        sim.load_workload(&fig7_workload(42));
        let controller = IterativeCapping::new(Watts::new(40.0), &table);
        let mut daemon = PpepDaemon::new(ppep, SimPlatform::new(sim), controller);
        let steps = daemon.run(10).into_result().unwrap();
        // It must have stepped down from the boot state.
        assert!(
            steps.last().unwrap().decision[0] < table.highest(),
            "daemon-driven iterative capping never moved: {:?}",
            steps.last().unwrap().decision
        );
    }

    #[test]
    fn steepest_drop_descends_to_the_cap_and_climbs_back() {
        let ppep = engine();
        let mut sim = ChipSimulator::new(SimConfig::fx8320(42));
        sim.load_workload(&fig7_workload(42));
        let _ = sim.run_intervals(5);
        let record = sim.step_interval();
        let projection = ppep.project(&record).unwrap();
        // Tight cap: must descend below the source assignment.
        let tight = SteepestDrop::new(ppep.clone(), Watts::new(50.0));
        let decision = tight.choose(&projection).unwrap();
        let predicted = ppep
            .chip_power_with_assignment(&projection, &decision)
            .unwrap();
        assert!(
            predicted <= Watts::new(50.0),
            "predicted {predicted} over cap"
        );
        assert!(decision.iter().any(|vf| *vf < projection.source_vf[0]));
        // Generous cap: must not descend at all (and may climb).
        let loose = SteepestDrop::new(ppep.clone(), Watts::new(500.0));
        let decision = loose.choose(&projection).unwrap();
        for (d, s) in decision.iter().zip(&projection.source_vf) {
            assert!(d >= s, "loose cap must not demote: {decision:?}");
        }
        // Impossible cap: descends to the floor without panicking.
        let impossible = SteepestDrop::new(ppep.clone(), Watts::new(1.0));
        let decision = impossible.choose(&projection).unwrap();
        let table = ppep.models().vf_table().clone();
        assert_eq!(decision, vec![table.lowest(); 4]);
    }

    #[test]
    fn steepest_drop_and_one_step_agree_on_feasibility() {
        // Both policies must land under the same cap; their exact
        // assignments may differ, but neither may violate it.
        let ppep = engine();
        let mut sim = ChipSimulator::new(SimConfig::fx8320(42));
        sim.load_workload(&fig7_workload(42));
        let record = sim.run_intervals(5).pop().unwrap();
        let projection = ppep.project(&record).unwrap();
        let cap = Watts::new(60.0);
        for decision in [
            OneStepCapping::new(ppep.clone(), cap)
                .choose(&projection)
                .unwrap(),
            SteepestDrop::new(ppep.clone(), cap)
                .choose(&projection)
                .unwrap(),
        ] {
            let predicted = ppep
                .chip_power_with_assignment(&projection, &decision)
                .unwrap();
            assert!(predicted <= cap, "{predicted} over {cap}");
        }
    }

    #[test]
    fn adherence_statistics() {
        let cap = Watts::new(50.0);
        let trace = vec![
            Watts::new(80.0),
            Watts::new(60.0),
            Watts::new(45.0),
            Watts::new(48.0),
            Watts::new(55.0),
            Watts::new(49.0),
        ];
        let a = cap_adherence(&trace, cap);
        assert_eq!(a.settle_intervals, 2);
        assert!((a.under_cap_fraction - 3.0 / 6.0).abs() < 1e-12);
        let never = cap_adherence(&[Watts::new(99.0)], cap);
        assert_eq!(never.settle_intervals, 1);
        assert_eq!(never.under_cap_fraction, 0.0);
        let empty = cap_adherence(&[], cap);
        assert_eq!(empty.under_cap_fraction, 0.0);
    }
}
