//! A PPEP-driven hardware boost controller — the §IV-E extension.
//!
//! The paper disables the FX-8320's boost states because the stock
//! controller is not software-controllable, but points out that a
//! firmware implementation of PPEP "can also be used to control
//! hardware boost states". This module builds that controller: instead
//! of reactively ramping and backing off, it *predicts* whether a
//! boosted assignment stays inside the TDP and thermal envelope, and
//! engages boost in a single step only when it provably fits.
//!
//! Use with a boost-exposing platform
//! (`ppep_sim::chip::SimConfig::fx8320_boost`) and models trained on
//! its seven-state ladder.

use ppep_core::daemon::DvfsController;
use ppep_core::ppe::PpeProjection;
use ppep_core::Ppep;
use ppep_types::{Kelvin, Result, VfStateId, Watts};

/// Predictive boost controller: run at the nominal top state by
/// default, boost individual CUs when the projection says the chip
/// stays inside its power and thermal budget.
#[derive(Debug, Clone)]
pub struct BoostController {
    ppep: Ppep,
    /// Chip power budget the boosted assignment must respect.
    pub tdp: Watts,
    /// Diode temperature above which boosting is vetoed outright.
    pub thermal_limit: Kelvin,
    /// Guard band under the TDP (fraction), like the capping policy.
    pub guard_band: f64,
    nominal_top: VfStateId,
}

impl BoostController {
    /// Builds a controller whose nominal (non-boost) ceiling is the
    /// state at `software_states − 1` of the engine's ladder.
    ///
    /// # Errors
    ///
    /// Returns an error when the engine's ladder has no boost states
    /// beyond `software_states`, or `software_states` is zero.
    pub fn new(
        ppep: Ppep,
        software_states: usize,
        tdp: Watts,
        thermal_limit: Kelvin,
    ) -> Result<Self> {
        let table = ppep.models().vf_table().clone();
        if software_states == 0 || software_states >= table.len() {
            return Err(ppep_types::Error::InvalidConfig(format!(
                "need 0 < software_states < ladder length {}, got {software_states}",
                table.len()
            )));
        }
        let nominal_top = table.state(software_states - 1)?;
        Ok(Self {
            ppep,
            tdp,
            thermal_limit,
            guard_band: 0.05,
            nominal_top,
        })
    }

    /// The nominal (non-boost) top state.
    pub fn nominal_top(&self) -> VfStateId {
        self.nominal_top
    }

    /// The boost decision: start everyone at the nominal top, then
    /// greedily promote CUs into boost bins while the predicted chip
    /// power stays under the guarded TDP and the chip is cool enough.
    ///
    /// # Errors
    ///
    /// Propagates projection-evaluation errors.
    pub fn choose(&self, projection: &PpeProjection) -> Result<Vec<VfStateId>> {
        let table = self.ppep.models().vf_table().clone();
        let cu_count = projection.source_vf.len();
        let mut assignment = vec![self.nominal_top; cu_count];

        // Thermal veto: no boosting on a hot chip.
        if projection.temperature > self.thermal_limit {
            return Ok(assignment);
        }
        let budget = self.tdp * (1.0 - self.guard_band);
        // Nominal must fit; otherwise this is a capping problem, not a
        // boosting one — stay nominal and let a capping policy demote.
        if self
            .ppep
            .chip_power_with_assignment(projection, &assignment)?
            > budget
        {
            return Ok(assignment);
        }
        loop {
            let mut best: Option<(usize, VfStateId, f64)> = None;
            for cu in 0..cu_count {
                let Some(up) = table.step_up(assignment[cu]) else {
                    continue;
                };
                let mut candidate = assignment.clone();
                candidate[cu] = up;
                let power = self
                    .ppep
                    .chip_power_with_assignment(projection, &candidate)?;
                if power > budget {
                    continue;
                }
                // Promote the CU with the most predicted throughput gain.
                let cores_per_cu = self.ppep.models().topology().cores_per_cu();
                let gain: f64 =
                    projection
                        .cores
                        .chunks(cores_per_cu)
                        .nth(cu)
                        .map_or(0.0, |cores| {
                            cores
                                .iter()
                                .map(|core| core.at(up).ips - core.at(assignment[cu]).ips)
                                .sum()
                        });
                if best.as_ref().is_none_or(|(_, _, g)| gain > *g) {
                    best = Some((cu, up, gain));
                }
            }
            match best {
                Some((cu, up, gain)) if gain > 0.0 => assignment[cu] = up,
                _ => break,
            }
        }
        Ok(assignment)
    }
}

impl DvfsController for BoostController {
    fn decide(&mut self, projection: &PpeProjection) -> Result<Vec<VfStateId>> {
        self.choose(projection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppep_core::daemon::PpepDaemon;
    use ppep_models::trainer::TrainedModels;
    use ppep_rig::TrainingRig;
    use ppep_sim::chip::{ChipSimulator, SimConfig};
    use ppep_sim::SimPlatform;
    use ppep_types::vf::VfTable;
    use ppep_workloads::combos::instances;
    use std::sync::OnceLock;

    fn boosted_models() -> &'static TrainedModels {
        static MODELS: OnceLock<TrainedModels> = OnceLock::new();
        MODELS.get_or_init(|| {
            TrainingRig::with_config(SimConfig::fx8320_boost(42), 42)
                .train_quick()
                .expect("boost-ladder training succeeds")
        })
    }

    fn controller(tdp: f64) -> BoostController {
        BoostController::new(
            Ppep::new(boosted_models().clone()),
            VfTable::FX8320_SOFTWARE_STATES,
            Watts::new(tdp),
            Kelvin::new(335.0),
        )
        .expect("valid controller")
    }

    fn daemon(tdp: f64, workload: &str, n: usize) -> PpepDaemon<SimPlatform, BoostController> {
        let ppep = Ppep::new(boosted_models().clone());
        let mut sim = ChipSimulator::new(SimConfig::fx8320_boost(42));
        sim.load_workload(&instances(workload, n, 42));
        sim.set_all_vf(controller(tdp).nominal_top());
        PpepDaemon::new(ppep, SimPlatform::new(sim), controller(tdp))
    }

    #[test]
    fn lone_thread_with_headroom_gets_boosted() {
        let mut d = daemon(125.0, "458.sjeng", 1);
        let steps = d.run(4).into_result().expect("daemon runs");
        let last = steps.last().unwrap();
        assert!(
            last.decision.iter().any(|vf| vf.index() >= 5),
            "cool, under-budget chip must boost: {:?}",
            last.decision
        );
        // And the boosted run must still respect the TDP.
        assert!(last.record.measured_power < Watts::new(125.0));
    }

    #[test]
    fn fully_loaded_chip_boosts_less_and_respects_tdp() {
        // 8 busy sjeng cores draw ~150 W at nominal; a 152 W TDP
        // leaves no headroom to boost (a lone thread under the same
        // TDP has plenty). A looser TDP makes this assertion
        // knife-edge: the full chip can squeeze out the same 2 boost
        // bins the lone thread's single busy CU is limited to.
        let tdp = 152.0;
        let mut full = daemon(tdp, "458.sjeng", 8);
        let full_steps = full.run(6).into_result().expect("daemon runs");
        for s in &full_steps[1..] {
            assert!(
                s.record.measured_power <= Watts::new(tdp * 1.04),
                "boost controller violated TDP: {}",
                s.record.measured_power
            );
        }
        let boosted_full = full_steps
            .last()
            .unwrap()
            .decision
            .iter()
            .filter(|vf| vf.index() >= 5)
            .count();
        // A lone thread under the same TDP boosts every headroom it
        // can; the loaded chip must grant strictly fewer boost bins.
        let mut lone = daemon(tdp, "458.sjeng", 1);
        let lone_steps = lone.run(4).into_result().expect("daemon runs");
        let boosted_lone_levels: usize = lone_steps
            .last()
            .unwrap()
            .decision
            .iter()
            .map(|vf| vf.index().saturating_sub(4))
            .sum();
        let boosted_full_levels: usize = full_steps
            .last()
            .unwrap()
            .decision
            .iter()
            .map(|vf| vf.index().saturating_sub(4))
            .sum();
        assert!(
            boosted_full_levels < boosted_lone_levels,
            "full chip boosted {boosted_full_levels} levels ({boosted_full} CUs) \
             vs lone {boosted_lone_levels}"
        );
    }

    #[test]
    fn hot_chip_is_vetoed() {
        let ppep = Ppep::new(boosted_models().clone());
        let mut sim = ChipSimulator::new(SimConfig::fx8320_boost(42));
        sim.load_workload(&instances("458.sjeng", 1, 42));
        sim.set_all_vf(controller(125.0).nominal_top());
        sim.set_temperature(Kelvin::new(341.0));
        let record = sim.step_interval();
        let projection = ppep.project(&record).expect("projection");
        let decision = controller(125.0).choose(&projection).expect("decision");
        assert!(
            decision.iter().all(|vf| vf.index() < 5),
            "hot chip must not boost: {decision:?}"
        );
    }

    #[test]
    fn tiny_tdp_keeps_nominal() {
        let mut d = daemon(10.0, "458.sjeng", 1);
        let steps = d.run(2).into_result().expect("daemon runs");
        // Boosting is off; the controller leaves capping to a capper.
        for s in &steps {
            assert!(
                s.decision.iter().all(|vf| vf.index() <= 4),
                "{:?}",
                s.decision
            );
        }
    }

    #[test]
    fn constructor_validation() {
        let ppep = Ppep::new(boosted_models().clone());
        assert!(
            BoostController::new(ppep.clone(), 0, Watts::new(125.0), Kelvin::new(335.0)).is_err()
        );
        assert!(BoostController::new(ppep, 7, Watts::new(125.0), Kelvin::new(335.0)).is_err());
    }
}
