//! Reference governors for context and ablation.
//!
//! Neither of these uses PPEP's predictions: the pinned governor is
//! the paper's "static VF policy" (§V-C1 shows it is near-optimal for
//! energy), and the utilisation governor approximates a commodity
//! ondemand policy, which reacts to load rather than predicting PPE.

use ppep_core::daemon::DvfsController;
use ppep_core::ppe::PpeProjection;
use ppep_types::{Result, VfStateId, VfTable};

/// Pins all CUs to one state forever.
#[derive(Debug, Clone, Copy)]
pub struct PinnedGovernor {
    /// The pinned state.
    pub vf: VfStateId,
}

impl DvfsController for PinnedGovernor {
    fn decide(&mut self, projection: &PpeProjection) -> Result<Vec<VfStateId>> {
        Ok(vec![self.vf; projection.source_vf.len()])
    }
}

/// An ondemand-style governor: jump to the highest state when any
/// core is busy, fall one rung per idle interval otherwise.
#[derive(Debug, Clone)]
pub struct OndemandGovernor {
    table: VfTable,
    current: VfStateId,
}

impl OndemandGovernor {
    /// Starts at the lowest state.
    pub fn new(table: VfTable) -> Self {
        let current = table.lowest();
        Self { table, current }
    }

    /// The governor's current state.
    pub fn current(&self) -> VfStateId {
        self.current
    }
}

impl DvfsController for OndemandGovernor {
    fn decide(&mut self, projection: &PpeProjection) -> Result<Vec<VfStateId>> {
        if projection.busy_core_count() > 0 {
            self.current = self.table.highest();
        } else if let Some(down) = self.table.step_down(self.current) {
            self.current = down;
        }
        Ok(vec![self.current; projection.source_vf.len()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppep_core::ppe::{ChipPpe, CoreProjection, PpeProjection};
    use ppep_types::time::IntervalIndex;
    use ppep_types::{CoreId, Joules, Kelvin, Seconds, Watts};

    fn projection(busy: usize) -> PpeProjection {
        let table = VfTable::fx8320();
        let chip = table
            .states()
            .map(|vf| ChipPpe {
                vf,
                power: Watts::new(30.0),
                nb_power: Watts::new(10.0),
                ips: 1.0e9,
                time_for_work: Seconds::new(1.0),
                energy: Joules::new(30.0),
                edp: 30.0,
            })
            .collect();
        let cores = (0..8)
            .map(|i| CoreProjection {
                core: CoreId(i),
                busy: i < busy,
                per_vf: vec![],
            })
            .collect();
        PpeProjection {
            interval: IntervalIndex(0),
            temperature: Kelvin::new(310.0),
            source_vf: vec![table.highest(); 4],
            cores,
            chip,
            work_instructions: 0.0,
        }
    }

    #[test]
    fn pinned_governor_never_moves() {
        let table = VfTable::fx8320();
        let mut g = PinnedGovernor { vf: table.lowest() };
        for busy in [0, 4, 8] {
            assert_eq!(
                g.decide(&projection(busy)).unwrap(),
                vec![table.lowest(); 4]
            );
        }
    }

    #[test]
    fn ondemand_races_up_and_decays_down() {
        let table = VfTable::fx8320();
        let mut g = OndemandGovernor::new(table.clone());
        assert_eq!(g.current(), table.lowest());
        // Load appears: straight to the top.
        g.decide(&projection(2)).unwrap();
        assert_eq!(g.current(), table.highest());
        // Load disappears: one rung per interval.
        g.decide(&projection(0)).unwrap();
        assert_eq!(g.current().index(), 3);
        g.decide(&projection(0)).unwrap();
        assert_eq!(g.current().index(), 2);
        for _ in 0..10 {
            g.decide(&projection(0)).unwrap();
        }
        assert_eq!(g.current(), table.lowest());
    }
}
