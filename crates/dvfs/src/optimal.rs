//! Energy- and EDP-optimal state selection (§V-C1, Figs. 8–9).
//!
//! The PPEP projection prices every VF state for the work observed in
//! the last interval; these controllers simply pick the minimiser. The
//! per-thread metrics behind Figs. 8 and 9 — energy and EDP per
//! instance as the number of background instances varies — are
//! computed here too.

use ppep_core::daemon::DvfsController;
use ppep_core::ppe::PpeProjection;
use ppep_types::{Result, VfStateId};

/// Picks the VF state minimising predicted energy for the work.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnergyOptimalController;

impl DvfsController for EnergyOptimalController {
    fn decide(&mut self, projection: &PpeProjection) -> Result<Vec<VfStateId>> {
        Ok(vec![
            projection.best_energy_vf();
            projection.source_vf.len()
        ])
    }
}

/// Picks the VF state minimising predicted energy-delay product.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdpOptimalController;

impl DvfsController for EdpOptimalController {
    fn decide(&mut self, projection: &PpeProjection) -> Result<Vec<VfStateId>> {
        Ok(vec![projection.best_edp_vf(); projection.source_vf.len()])
    }
}

/// The generalised energy-delay metric `E·Dᵝ`: β = 0 is pure energy,
/// β = 1 the classic EDP, β = 2 the performance-leaning ED²P common in
/// the DVFS literature.
///
/// # Panics
///
/// Panics for a negative or non-finite `beta`.
pub fn ed_beta(energy_j: f64, delay_s: f64, beta: f64) -> f64 {
    assert!(
        beta >= 0.0 && beta.is_finite(),
        "beta must be finite and >= 0"
    );
    energy_j * delay_s.powf(beta)
}

/// The VF state minimising `E·Dᵝ` over a projection.
///
/// # Panics
///
/// Panics for a negative or non-finite `beta`.
pub fn best_ed_beta_vf(projection: &PpeProjection, beta: f64) -> VfStateId {
    projection
        .chip
        .iter()
        .min_by(|a, b| {
            ed_beta(a.energy.as_joules(), a.time_for_work.as_secs(), beta).total_cmp(&ed_beta(
                b.energy.as_joules(),
                b.time_for_work.as_secs(),
                beta,
            ))
        })
        .map(|c| c.vf)
        .unwrap_or_default()
}

/// Picks the VF state minimising the generalised `E·Dᵝ` metric.
#[derive(Debug, Clone, Copy)]
pub struct EdBetaOptimalController {
    /// The delay exponent β (0 = energy, 1 = EDP, 2 = ED²P).
    pub beta: f64,
}

impl DvfsController for EdBetaOptimalController {
    fn decide(&mut self, projection: &PpeProjection) -> Result<Vec<VfStateId>> {
        Ok(vec![
            best_ed_beta_vf(projection, self.beta);
            projection.source_vf.len()
        ])
    }
}

/// Work quantum for per-thread comparisons: one giga-instruction per
/// thread, so energies are comparable across instance counts (each
/// paper benchmark is a fixed program; Fig. 8/9 compare the energy to
/// finish it, not the energy of one wall-clock interval).
pub const THREAD_WORK_INSTRUCTIONS: f64 = 1.0e9;

/// Per-thread PPE numbers at one VF state for an `n`-instance
/// workload: the Fig. 8/9 quantities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerThreadPpe {
    /// The VF state.
    pub vf: VfStateId,
    /// Energy for one thread to retire its
    /// [`THREAD_WORK_INSTRUCTIONS`]-instruction quantum (J).
    pub energy: f64,
    /// Time for that quantum (s).
    pub time: f64,
    /// Per-thread energy-delay product (J·s).
    pub edp: f64,
}

/// Computes per-thread energy/EDP across the ladder from a chip
/// projection of an `n`-instance homogeneous workload.
///
/// Each of the `n` threads runs at `ips_total / n` and is attributed
/// `power / n` of the chip, so for a fixed per-thread work quantum:
/// `time = n·W / ips_total` and `energy = power · W / ips_total`.
///
/// # Errors
///
/// Returns an error when `instances` is zero or the projection has no
/// throughput (idle chip).
pub fn per_thread_ppe(projection: &PpeProjection, instances: usize) -> Result<Vec<PerThreadPpe>> {
    if instances == 0 {
        return Err(ppep_types::Error::InvalidInput(
            "instances must be positive".into(),
        ));
    }
    projection
        .chip
        .iter()
        .map(|c| {
            if c.ips <= 0.0 {
                return Err(ppep_types::Error::InvalidInput(
                    "per-thread PPE undefined for an idle projection".into(),
                ));
            }
            let time = instances as f64 * THREAD_WORK_INSTRUCTIONS / c.ips;
            let energy = c.power.as_watts() * THREAD_WORK_INSTRUCTIONS / c.ips;
            Ok(PerThreadPpe {
                vf: c.vf,
                energy,
                time,
                edp: energy * time,
            })
        })
        .collect()
}

/// The state with the lowest per-thread EDP.
pub fn best_edp_state(per_thread: &[PerThreadPpe]) -> VfStateId {
    per_thread
        .iter()
        .min_by(|a, b| a.edp.total_cmp(&b.edp))
        .map(|t| t.vf)
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppep_core::ppe::ChipPpe;
    use ppep_types::time::IntervalIndex;
    use ppep_types::{Joules, Kelvin, Seconds, VfTable, Watts};

    fn projection(powers: &[f64], ips: &[f64]) -> PpeProjection {
        let table = VfTable::fx8320();
        let work = 1.0e9;
        let chip: Vec<ChipPpe> = table
            .states()
            .map(|vf| {
                let i = vf.index();
                let t = work / ips[i];
                let e = powers[i] * t;
                ChipPpe {
                    vf,
                    power: Watts::new(powers[i]),
                    nb_power: Watts::new(powers[i] * 0.3),
                    ips: ips[i],
                    time_for_work: Seconds::new(t),
                    energy: Joules::new(e),
                    edp: e * t,
                }
            })
            .collect();
        PpeProjection {
            interval: IntervalIndex(0),
            temperature: Kelvin::new(320.0),
            source_vf: vec![table.highest(); 4],
            cores: vec![],
            chip,
            work_instructions: work,
        }
    }

    #[test]
    fn controllers_pick_the_minimisers() {
        // Energy-optimal at the bottom, EDP-optimal in the middle.
        let p = projection(
            &[20.0, 33.0, 50.0, 70.0, 95.0],
            &[1.0e9, 1.6e9, 2.1e9, 2.5e9, 2.8e9],
        );
        let table = VfTable::fx8320();
        let mut energy = EnergyOptimalController;
        assert_eq!(energy.decide(&p).unwrap(), vec![table.lowest(); 4]);
        let mut edp = EdpOptimalController;
        let pick = edp.decide(&p).unwrap()[0];
        assert!(pick > table.lowest(), "EDP favours a faster state");
    }

    #[test]
    fn per_thread_uses_a_fixed_work_quantum() {
        let p = projection(
            &[20.0, 33.0, 50.0, 70.0, 95.0],
            &[1.0e9, 1.6e9, 2.1e9, 2.5e9, 2.8e9],
        );
        let one = per_thread_ppe(&p, 1).unwrap();
        // VF5: power 95 W, chip ips 2.8e9 -> 1e9 inst costs 95/2.8 J.
        assert!((one[4].energy - 95.0 / 2.8).abs() < 1e-9);
        assert!((one[4].time - 1.0 / 2.8).abs() < 1e-9);
        // With the same chip-level projection, four threads each see a
        // quarter of the throughput: same per-quantum energy, 4x time.
        let four = per_thread_ppe(&p, 4).unwrap();
        for (a, b) in one.iter().zip(&four) {
            assert!((a.energy - b.energy).abs() < 1e-12);
            assert!((b.time / a.time - 4.0).abs() < 1e-12);
        }
        assert!(per_thread_ppe(&p, 0).is_err());
    }

    #[test]
    fn ed_beta_interpolates_between_energy_and_performance() {
        let p = projection(
            &[20.0, 33.0, 50.0, 70.0, 95.0],
            &[1.0e9, 1.6e9, 2.1e9, 2.5e9, 2.8e9],
        );
        let table = VfTable::fx8320();
        // beta = 0 reduces to energy-optimal.
        assert_eq!(best_ed_beta_vf(&p, 0.0), p.best_energy_vf());
        // beta = 1 reduces to EDP-optimal.
        assert_eq!(best_ed_beta_vf(&p, 1.0), p.best_edp_vf());
        // Large beta favours the fastest state.
        assert_eq!(best_ed_beta_vf(&p, 8.0), table.highest());
        // The optimum moves monotonically up the ladder with beta.
        let mut last = best_ed_beta_vf(&p, 0.0);
        for beta in [0.5, 1.0, 2.0, 4.0, 8.0] {
            let now = best_ed_beta_vf(&p, beta);
            assert!(now >= last, "beta {beta} moved the optimum down");
            last = now;
        }
        // Controller wrapper agrees with the free function.
        let mut c = EdBetaOptimalController { beta: 2.0 };
        assert_eq!(c.decide(&p).unwrap()[0], best_ed_beta_vf(&p, 2.0));
    }

    #[test]
    #[should_panic(expected = "beta must be finite")]
    fn ed_beta_rejects_negative_exponent() {
        let _ = ed_beta(1.0, 1.0, -1.0);
    }

    #[test]
    fn best_edp_shifts_down_when_low_states_get_cheaper() {
        // A projection where VF5 wins EDP...
        let fast_friendly = projection(
            &[40.0, 50.0, 60.0, 70.0, 80.0],
            &[0.5e9, 1.1e9, 1.8e9, 2.6e9, 3.5e9],
        );
        let p1 = per_thread_ppe(&fast_friendly, 1).unwrap();
        let table = VfTable::fx8320();
        assert_eq!(best_edp_state(&p1), table.highest());
        // ...and one with contention-limited scaling where it doesn't.
        let contended = projection(
            &[40.0, 50.0, 60.0, 70.0, 80.0],
            &[1.4e9, 1.7e9, 1.9e9, 2.0e9, 2.05e9],
        );
        let p4 = per_thread_ppe(&contended, 4).unwrap();
        assert!(best_edp_state(&p4) < table.highest());
    }
}
