//! DVFS policies built on PPEP's all-VF projections (§V).
//!
//! * [`capping`] — the one-step power-capping controller of Fig. 7
//!   (pick the fastest per-CU assignment that fits the cap, in a
//!   single decision interval) and the reactive iterative baseline it
//!   is compared against.
//! * [`optimal`] — energy-optimal and EDP-optimal state selection
//!   (§V-C1), plus the per-thread energy/EDP metrics behind Figs. 8
//!   and 9.
//! * [`governor`] — simple reference governors (static pin,
//!   ondemand-style utilisation reactive) for context.
//! * [`boost`] — the §IV-E extension: a firmware-style predictive
//!   boost controller over the FX-8320's (normally hidden) boost
//!   states.
//! * [`arbiter`] — the shared socket power-budget arbiter behind the
//!   multi-tenant capping service: deterministic max-min fair grants
//!   whose sum never exceeds the socket cap.
//!
//! All controllers implement [`ppep_core::daemon::DvfsController`], so
//! they plug into the same daemon loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod boost;
pub mod capping;
pub mod governor;
pub mod optimal;

pub use arbiter::{ArbiterOp, BudgetArbiter, EpochArbiter, GrantSnapshot};
pub use boost::BoostController;
pub use capping::{IterativeCapping, OneStepCapping, SteepestDrop};
pub use optimal::{EdBetaOptimalController, EdpOptimalController, EnergyOptimalController};
