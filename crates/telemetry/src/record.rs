//! The per-interval measurement record.
//!
//! One [`IntervalRecord`] is everything a platform reports for one
//! 200 ms decision interval: the observables PPEP consumes (PMU
//! samples, sensor power, diode temperature, the VF states in force)
//! plus the hidden ground truth a simulated backend can expose for
//! validation. Hardware backends leave the ground-truth fields empty
//! (`true_counts`) or zeroed (`true_power`); nothing on the online
//! path reads them.

use ppep_pmc::sampler::IntervalSample;
use ppep_pmc::EventCounts;
use ppep_types::time::IntervalIndex;
use ppep_types::vf::NbVfState;
use ppep_types::{Kelvin, Seconds, Topology, VfStateId, Watts};

/// The hidden ground-truth power decomposition of one interval
/// (averaged over its sub-ticks).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerBreakdown {
    /// Dynamic power attributable to each core's activity.
    pub core_dynamic: Vec<Watts>,
    /// NB dynamic power from memory traffic.
    pub nb_dynamic: Watts,
    /// Idle (leakage + housekeeping) power of each CU after gating.
    pub cu_idle: Vec<Watts>,
    /// NB idle power after gating.
    pub nb_idle: Watts,
    /// Always-on base power.
    pub base: Watts,
}

impl PowerBreakdown {
    /// Total chip power.
    pub fn total(&self) -> Watts {
        self.dynamic_total() + self.idle_total()
    }

    /// All dynamic power (cores + NB).
    pub fn dynamic_total(&self) -> Watts {
        self.core_dynamic.iter().copied().sum::<Watts>() + self.nb_dynamic
    }

    /// All idle power (CUs + NB + base).
    pub fn idle_total(&self) -> Watts {
        self.cu_idle.iter().copied().sum::<Watts>() + self.nb_idle + self.base
    }

    /// NB-attributable power (idle + dynamic) — the Fig. 10 quantity.
    pub fn nb_total(&self) -> Watts {
        self.nb_dynamic + self.nb_idle
    }
}

/// Everything observable (and the hidden truth) for one 200 ms
/// decision interval.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalRecord {
    /// Which interval this is.
    pub index: IntervalIndex,
    /// Interval length (200 ms).
    pub duration: Seconds,
    /// Per-core PMU samples (multiplexed + extrapolated — what PPEP
    /// sees).
    pub samples: Vec<IntervalSample>,
    /// Per-core exact event counts (hidden truth, for ablations).
    pub true_counts: Vec<EventCounts>,
    /// Average of the ten 20 ms sensor readings (what PPEP sees).
    pub measured_power: Watts,
    /// The hidden true power decomposition.
    pub true_power: PowerBreakdown,
    /// Thermal-diode reading at interval end (what PPEP sees).
    pub temperature: Kelvin,
    /// Each CU's VF state during the interval.
    pub cu_vf: Vec<VfStateId>,
    /// The NB state during the interval.
    pub nb_state: NbVfState,
    /// Whether each core retired any instructions this interval.
    pub core_busy: Vec<bool>,
}

impl IntervalRecord {
    /// Number of busy compute units this interval.
    pub fn busy_cu_count(&self, topology: &Topology) -> usize {
        topology
            .cus()
            .filter(|cu| {
                topology.cores_of(*cu).is_ok_and(|cores| {
                    cores
                        .iter()
                        .any(|c| self.core_busy.get(c.0).copied().unwrap_or(false))
                })
            })
            .count()
    }

    /// Measured energy of the interval (sensor power × duration).
    pub fn measured_energy(&self) -> ppep_types::Joules {
        self.measured_power * self.duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals_add_up() {
        let b = PowerBreakdown {
            core_dynamic: vec![Watts::new(2.0), Watts::new(3.0)],
            nb_dynamic: Watts::new(1.0),
            cu_idle: vec![Watts::new(4.0)],
            nb_idle: Watts::new(0.5),
            base: Watts::new(10.0),
        };
        assert_eq!(b.dynamic_total(), Watts::new(6.0));
        assert_eq!(b.idle_total(), Watts::new(14.5));
        assert_eq!(b.total(), Watts::new(20.5));
        assert_eq!(b.nb_total(), Watts::new(1.5));
    }
}
