//! Session and handshake frames for the multi-tenant capping service.
//!
//! The capping service (`ppep-serve`) hosts one supervised daemon per
//! tenant; clients stream their per-interval measurements in and
//! receive PPE projections plus DVFS decisions back. This module owns
//! that wire protocol. Each message rides **the v2 binary framing
//! from [`crate::binary`]** — `kind u8, payload_len varint, payload,
//! crc32(payload) u32-le` — so a session stream is checksummed and
//! length-delimited exactly like a v2 trace document. Session kinds
//! live in a disjoint range (16+) from trace frame kinds (0–5), so the
//! two streams can never be confused.
//!
//! ```text
//! client -> server : Hello       (tenant id + requested power cap)
//! server -> client : Welcome     (granted cap + session slot)
//!                  | Reject      (typed RejectReason)
//! client -> server : Submit      (one IntervalRecord)
//!                  | FaultReport (the client's sample failed)
//! server -> client : Reply       (decision + health + projection band)
//!                  | Evicted     (the session was terminated, and why)
//! client -> server : Goodbye
//! ```
//!
//! Payload bodies reuse the workspace's existing, fixture-pinned
//! codecs: `Submit` carries a v1 JSONL interval line and
//! `FaultReport`/`Evicted` carry a v1 JSONL fault line, so every field
//! round-trips with the same bit-exactness guarantees as the trace
//! formats.

use crate::binary::crc32;
use crate::json::Json;
use crate::record::IntervalRecord;
use crate::trace::{parse_error, parse_interval, push_fault, push_interval};
use ppep_types::time::IntervalIndex;
use ppep_types::{Error, Kelvin, RejectReason, Result, Topology, VfStateId, Watts};

/// Frame kind byte for [`SessionFrame::Hello`].
pub const FRAME_HELLO: u8 = 16;
/// Frame kind byte for [`SessionFrame::Welcome`].
pub const FRAME_WELCOME: u8 = 17;
/// Frame kind byte for [`SessionFrame::Reject`].
pub const FRAME_REJECT: u8 = 18;
/// Frame kind byte for [`SessionFrame::Submit`].
pub const FRAME_SUBMIT: u8 = 19;
/// Frame kind byte for [`SessionFrame::FaultReport`].
pub const FRAME_FAULT_REPORT: u8 = 20;
/// Frame kind byte for [`SessionFrame::Reply`].
pub const FRAME_REPLY: u8 = 21;
/// Frame kind byte for [`SessionFrame::Goodbye`].
pub const FRAME_GOODBYE: u8 = 22;
/// Frame kind byte for [`SessionFrame::Evicted`].
pub const FRAME_EVICTED: u8 = 23;

/// A tenant's health as reported on the wire (the service-side
/// supervisor state, re-encoded so the wire format does not depend on
/// `ppep-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantHealth {
    /// Measurements validate; decisions are fresh.
    Healthy,
    /// Recent faults; decisions held from the last good projection.
    Degraded,
    /// Persistent faults; the tenant is pinned to its safe VF state.
    Failsafe,
}

impl TenantHealth {
    fn code(self) -> u8 {
        match self {
            TenantHealth::Healthy => 0,
            TenantHealth::Degraded => 1,
            TenantHealth::Failsafe => 2,
        }
    }

    fn from_code(code: u8) -> Result<Self> {
        match code {
            0 => Ok(TenantHealth::Healthy),
            1 => Ok(TenantHealth::Degraded),
            2 => Ok(TenantHealth::Failsafe),
            other => Err(Error::InvalidInput(format!(
                "session frame: unknown health code {other}"
            ))),
        }
    }
}

impl std::fmt::Display for TenantHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenantHealth::Healthy => write!(f, "healthy"),
            TenantHealth::Degraded => write!(f, "degraded"),
            TenantHealth::Failsafe => write!(f, "failsafe"),
        }
    }
}

/// How the service produced the decision in a [`SessionFrame::Reply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// Fresh decision from the submitted, validated measurement.
    Fresh,
    /// Re-decided on the tenant's held last-good projection.
    Held,
    /// The tenant's safe VF state was pinned.
    Failsafe,
}

impl DecisionKind {
    fn code(self) -> u8 {
        match self {
            DecisionKind::Fresh => 0,
            DecisionKind::Held => 1,
            DecisionKind::Failsafe => 2,
        }
    }

    fn from_code(code: u8) -> Result<Self> {
        match code {
            0 => Ok(DecisionKind::Fresh),
            1 => Ok(DecisionKind::Held),
            2 => Ok(DecisionKind::Failsafe),
            other => Err(Error::InvalidInput(format!(
                "session frame: unknown decision kind {other}"
            ))),
        }
    }
}

/// The PPE projection band a [`SessionFrame::Reply`] carries back: the
/// chip-power range the engine projects across the tenant's whole VF
/// ladder, plus the projected steady-state temperature. This is the
/// DVFS exploration envelope the decision was priced in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProjectionSummary {
    /// Projected chip power at the most frugal VF assignment.
    pub power_floor: Watts,
    /// Projected chip power at the most aggressive VF assignment.
    pub power_ceiling: Watts,
    /// Projected steady-state temperature.
    pub temperature: Kelvin,
}

/// One session-layer message.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionFrame {
    /// Client → server: open a session.
    Hello {
        /// The tenant's id (unique per service).
        tenant: u64,
        /// The power cap the tenant would like enforced.
        requested_cap: Watts,
    },
    /// Server → client: the session is open.
    Welcome {
        /// Echoed tenant id.
        tenant: u64,
        /// The cap the budget arbiter actually granted (may be below
        /// the request, and may be re-balanced later — every
        /// [`SessionFrame::Reply`] echoes the cap in force).
        granted_cap: Watts,
        /// The session slot assigned.
        slot: u32,
    },
    /// Server → client: admission control turned the session away.
    Reject {
        /// Echoed tenant id.
        tenant: u64,
        /// The typed refusal.
        reason: RejectReason,
    },
    /// Client → server: one measured decision interval.
    Submit {
        /// The submitting tenant.
        tenant: u64,
        /// The interval's measurements.
        record: Box<IntervalRecord>,
    },
    /// Client → server: the client's sample for this interval failed;
    /// the service's supervisor absorbs the fault (hold / failsafe).
    FaultReport {
        /// The reporting tenant.
        tenant: u64,
        /// The interval whose measurement was lost.
        index: IntervalIndex,
        /// The measurement fault.
        error: Error,
    },
    /// Server → client: the per-interval answer.
    Reply {
        /// The tenant this reply addresses.
        tenant: u64,
        /// The supervised interval counter on the service side.
        interval: u64,
        /// How the decision was produced.
        action: DecisionKind,
        /// The tenant's health after this interval.
        health: TenantHealth,
        /// The tenant's power cap currently in force (post-arbiter).
        cap: Watts,
        /// The per-CU VF assignment to apply.
        decision: Vec<VfStateId>,
        /// The projection band, when a fresh projection was computed.
        projection: Option<ProjectionSummary>,
    },
    /// Client → server: close the session, freeing its slot + budget.
    Goodbye {
        /// The departing tenant.
        tenant: u64,
    },
    /// Server → client: the service terminated the session (deadline
    /// blown, panic bulkhead, fatal fault).
    Evicted {
        /// The evicted tenant.
        tenant: u64,
        /// The service-side interval at eviction.
        index: IntervalIndex,
        /// Why the session was terminated.
        error: Error,
    },
}

// ---------------------------------------------------------------------
// Payload primitives (same varint/f64 spellings as the v2 codec)
// ---------------------------------------------------------------------

pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) struct PayloadReader<'a> {
    buf: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> PayloadReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn truncated(what: &str) -> Error {
        Error::InvalidInput(format!("session frame: truncated {what}"))
    }

    pub(crate) fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| Self::truncated(what))?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| Self::truncated(what))?;
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?.first().copied().unwrap_or_default())
    }

    pub(crate) fn varint(&mut self, what: &str) -> Result<u64> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.u8(what)?;
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(Error::InvalidInput(format!(
            "session frame: varint overflow in {what}"
        )))
    }

    fn u32_of(&mut self, what: &str) -> Result<u32> {
        u32::try_from(self.varint(what)?)
            .map_err(|_| Error::InvalidInput(format!("session frame: {what} out of range")))
    }

    pub(crate) fn f64(&mut self, what: &str) -> Result<f64> {
        let b = self.take(8, what)?;
        let mut bits = 0u64;
        for (i, byte) in b.iter().enumerate() {
            bits |= u64::from(*byte) << (8 * i as u32);
        }
        Ok(f64::from_bits(bits))
    }

    fn str_(&mut self, what: &str) -> Result<&'a str> {
        let n = self.varint(what)?;
        let n = usize::try_from(n)
            .map_err(|_| Error::InvalidInput(format!("session frame: {what} out of range")))?;
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(Self::truncated(what));
        }
        let bytes = self.take(n, what)?;
        std::str::from_utf8(bytes)
            .map_err(|_| Error::InvalidInput(format!("session frame: non-UTF-8 {what}")))
    }

    pub(crate) fn finish(&self, what: &str) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(Error::InvalidInput(format!(
                "session frame: {} trailing byte(s) after {what}",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

const REJECT_SLOTS: u8 = 0;
const REJECT_BUDGET: u8 = 1;
const REJECT_DUPLICATE: u8 = 2;

fn put_reject_reason(out: &mut Vec<u8>, reason: &RejectReason) {
    match reason {
        RejectReason::SessionSlotsExhausted { active, max } => {
            out.push(REJECT_SLOTS);
            put_varint(out, u64::from(*active));
            put_varint(out, u64::from(*max));
        }
        RejectReason::BudgetExhausted {
            requested_w,
            available_w,
        } => {
            out.push(REJECT_BUDGET);
            put_f64(out, *requested_w);
            put_f64(out, *available_w);
        }
        RejectReason::DuplicateTenant { tenant } => {
            out.push(REJECT_DUPLICATE);
            put_varint(out, *tenant);
        }
    }
}

fn read_reject_reason(r: &mut PayloadReader<'_>) -> Result<RejectReason> {
    match r.u8("reject code")? {
        REJECT_SLOTS => Ok(RejectReason::SessionSlotsExhausted {
            active: r.u32_of("reject active")?,
            max: r.u32_of("reject max")?,
        }),
        REJECT_BUDGET => Ok(RejectReason::BudgetExhausted {
            requested_w: r.f64("reject requested")?,
            available_w: r.f64("reject available")?,
        }),
        REJECT_DUPLICATE => Ok(RejectReason::DuplicateTenant {
            tenant: r.varint("reject tenant")?,
        }),
        other => Err(Error::InvalidInput(format!(
            "session frame: unknown reject code {other}"
        ))),
    }
}

/// The fault line (`{"type":"fault",...}`) as a JSONL string — the
/// payload body shared by `FaultReport` and `Evicted`.
fn fault_line(index: IntervalIndex, error: &Error) -> String {
    let mut line = String::new();
    push_fault(&mut line, index, error);
    line
}

fn parse_fault_line(line: &str) -> Result<(IntervalIndex, Error)> {
    let v = Json::parse(line.trim_end())?;
    if v.get("type")?.as_str()? != "fault" {
        return Err(Error::InvalidInput(
            "session frame: fault payload is not a fault line".into(),
        ));
    }
    Ok((
        IntervalIndex(v.get("index")?.as_u64()?),
        parse_error(v.get("error")?)?,
    ))
}

/// Appends `frame` to `out` in the v2 framing
/// (`kind, payload_len varint, payload, crc32`).
pub fn encode_frame(frame: &SessionFrame, out: &mut Vec<u8>) {
    let mut payload = Vec::new();
    let kind = match frame {
        SessionFrame::Hello {
            tenant,
            requested_cap,
        } => {
            put_varint(&mut payload, *tenant);
            put_f64(&mut payload, requested_cap.as_watts());
            FRAME_HELLO
        }
        SessionFrame::Welcome {
            tenant,
            granted_cap,
            slot,
        } => {
            put_varint(&mut payload, *tenant);
            put_f64(&mut payload, granted_cap.as_watts());
            put_varint(&mut payload, u64::from(*slot));
            FRAME_WELCOME
        }
        SessionFrame::Reject { tenant, reason } => {
            put_varint(&mut payload, *tenant);
            put_reject_reason(&mut payload, reason);
            FRAME_REJECT
        }
        SessionFrame::Submit { tenant, record } => {
            put_varint(&mut payload, *tenant);
            let mut line = String::new();
            push_interval(&mut line, record);
            put_str(&mut payload, &line);
            FRAME_SUBMIT
        }
        SessionFrame::FaultReport {
            tenant,
            index,
            error,
        } => {
            put_varint(&mut payload, *tenant);
            put_str(&mut payload, &fault_line(*index, error));
            FRAME_FAULT_REPORT
        }
        SessionFrame::Reply {
            tenant,
            interval,
            action,
            health,
            cap,
            decision,
            projection,
        } => {
            put_varint(&mut payload, *tenant);
            put_varint(&mut payload, *interval);
            payload.push(action.code());
            payload.push(health.code());
            put_f64(&mut payload, cap.as_watts());
            put_varint(&mut payload, decision.len() as u64);
            for vf in decision {
                put_varint(&mut payload, vf.index() as u64);
            }
            match projection {
                Some(p) => {
                    payload.push(1);
                    put_f64(&mut payload, p.power_floor.as_watts());
                    put_f64(&mut payload, p.power_ceiling.as_watts());
                    put_f64(&mut payload, p.temperature.as_kelvin());
                }
                None => payload.push(0),
            }
            FRAME_REPLY
        }
        SessionFrame::Goodbye { tenant } => {
            put_varint(&mut payload, *tenant);
            FRAME_GOODBYE
        }
        SessionFrame::Evicted {
            tenant,
            index,
            error,
        } => {
            put_varint(&mut payload, *tenant);
            put_str(&mut payload, &fault_line(*index, error));
            FRAME_EVICTED
        }
    };
    out.push(kind);
    put_varint(out, payload.len() as u64);
    let crc = crc32(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Encodes one frame into a fresh buffer.
pub fn frame_to_bytes(frame: &SessionFrame) -> Vec<u8> {
    let mut out = Vec::new();
    encode_frame(frame, &mut out);
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Decodes the first frame of `src`, returning it and the bytes
/// consumed. `topology` resolves the VF ladder and counter layout for
/// `Submit` and `Reply` payloads; both sides of a session must agree
/// on it (the service's trained topology).
///
/// # Errors
///
/// Returns [`Error::InvalidInput`] on truncation, a CRC mismatch, an
/// unknown frame kind, or a payload inconsistent with `topology`.
pub fn decode_frame(src: &[u8], topology: &Topology) -> Result<(SessionFrame, usize)> {
    let mut header = PayloadReader::new(src);
    let kind = header.u8("frame kind")?;
    let len = header.varint("payload length")?;
    let len = usize::try_from(len)
        .map_err(|_| Error::InvalidInput("session frame: payload length out of range".into()))?;
    let payload = header.take(len, "frame payload")?;
    let crc_stored = {
        let b = header.take(4, "frame crc")?;
        let mut v = 0u32;
        for (i, byte) in b.iter().enumerate() {
            v |= u32::from(*byte) << (8 * i as u32);
        }
        v
    };
    if crc32(payload) != crc_stored {
        return Err(Error::InvalidInput(format!(
            "session frame: CRC mismatch on kind {kind}"
        )));
    }
    let consumed = header.pos;
    let mut r = PayloadReader::new(payload);
    let frame = match kind {
        FRAME_HELLO => SessionFrame::Hello {
            tenant: r.varint("hello tenant")?,
            requested_cap: Watts::new(r.f64("hello cap")?),
        },
        FRAME_WELCOME => SessionFrame::Welcome {
            tenant: r.varint("welcome tenant")?,
            granted_cap: Watts::new(r.f64("welcome cap")?),
            slot: r.u32_of("welcome slot")?,
        },
        FRAME_REJECT => SessionFrame::Reject {
            tenant: r.varint("reject tenant")?,
            reason: read_reject_reason(&mut r)?,
        },
        FRAME_SUBMIT => {
            let tenant = r.varint("submit tenant")?;
            let line = r.str_("submit record")?;
            let v = Json::parse(line.trim_end())?;
            if v.get("type")?.as_str()? != "interval" {
                return Err(Error::InvalidInput(
                    "session frame: submit payload is not an interval line".into(),
                ));
            }
            SessionFrame::Submit {
                tenant,
                record: Box::new(parse_interval(&v, topology)?),
            }
        }
        FRAME_FAULT_REPORT => {
            let tenant = r.varint("fault tenant")?;
            let (index, error) = parse_fault_line(r.str_("fault line")?)?;
            SessionFrame::FaultReport {
                tenant,
                index,
                error,
            }
        }
        FRAME_REPLY => {
            let tenant = r.varint("reply tenant")?;
            let interval = r.varint("reply interval")?;
            let action = DecisionKind::from_code(r.u8("reply action")?)?;
            let health = TenantHealth::from_code(r.u8("reply health")?)?;
            let cap = Watts::new(r.f64("reply cap")?);
            let n = r.varint("reply decision length")?;
            let n = usize::try_from(n).map_err(|_| {
                Error::InvalidInput("session frame: decision length out of range".into())
            })?;
            if n > topology.cu_count() {
                return Err(Error::InvalidInput(format!(
                    "session frame: decision names {n} CUs, chip has {}",
                    topology.cu_count()
                )));
            }
            let mut decision = Vec::with_capacity(n);
            for _ in 0..n {
                let idx = r.varint("reply vf index")?;
                let idx = usize::try_from(idx).map_err(|_| {
                    Error::InvalidInput("session frame: vf index out of range".into())
                })?;
                decision.push(topology.vf_table().state(idx)?);
            }
            let projection = match r.u8("reply projection flag")? {
                0 => None,
                1 => Some(ProjectionSummary {
                    power_floor: Watts::new(r.f64("projection floor")?),
                    power_ceiling: Watts::new(r.f64("projection ceiling")?),
                    temperature: Kelvin::new(r.f64("projection temperature")?),
                }),
                other => {
                    return Err(Error::InvalidInput(format!(
                        "session frame: bad projection flag {other}"
                    )))
                }
            };
            SessionFrame::Reply {
                tenant,
                interval,
                action,
                health,
                cap,
                decision,
                projection,
            }
        }
        FRAME_GOODBYE => SessionFrame::Goodbye {
            tenant: r.varint("goodbye tenant")?,
        },
        FRAME_EVICTED => {
            let tenant = r.varint("evicted tenant")?;
            let (index, error) = parse_fault_line(r.str_("evicted line")?)?;
            SessionFrame::Evicted {
                tenant,
                index,
                error,
            }
        }
        other => {
            return Err(Error::InvalidInput(format!(
                "session frame: unknown kind {other}"
            )))
        }
    };
    r.finish("session payload")?;
    Ok((frame, consumed))
}

/// Decodes a whole stream of concatenated session frames.
///
/// # Errors
///
/// Propagates [`decode_frame`] errors.
pub fn decode_stream(src: &[u8], topology: &Topology) -> Result<Vec<SessionFrame>> {
    let mut frames = Vec::new();
    let mut rest = src;
    while !rest.is_empty() {
        let (frame, consumed) = decode_frame(rest, topology)?;
        frames.push(frame);
        rest = rest.get(consumed..).unwrap_or_default();
    }
    Ok(frames)
}

/// Maximum payload length [`read_frame_bytes`] will allocate for one
/// frame read off a socket. Generous (a `Submit` carries one JSONL
/// interval line, a few KB) while bounding what a corrupt or hostile
/// length prefix can make the server allocate.
pub const MAX_WIRE_PAYLOAD: usize = 1 << 20;

/// Reads exactly one length-delimited v2 session frame from `reader`,
/// returning the frame's raw bytes (kind + varint length + payload +
/// CRC), or `None` on a clean end-of-stream (EOF before the kind
/// byte). The bytes are *not* decoded — feed them to
/// [`decode_frame`]; keeping the syscall layer byte-oriented is what
/// lets the serve path run CRC validation outside any lock.
///
/// # Errors
///
/// [`Error::InvalidInput`] on a truncated frame, an over-long varint,
/// a length prefix above [`MAX_WIRE_PAYLOAD`], or any I/O error.
pub fn read_frame_bytes<R: std::io::Read>(reader: &mut R) -> Result<Option<Vec<u8>>> {
    let mut kind = [0u8; 1];
    match reader.read_exact(&mut kind) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => {
            return Err(Error::InvalidInput(format!(
                "session frame: socket read failed: {e}"
            )))
        }
    }
    let mut out = vec![kind[0]];
    let mut len: u64 = 0;
    let mut shift = 0u32;
    loop {
        let mut b = [0u8; 1];
        reader.read_exact(&mut b).map_err(|e| {
            Error::InvalidInput(format!("session frame: truncated length prefix: {e}"))
        })?;
        out.push(b[0]);
        len |= u64::from(b[0] & 0x7F) << shift;
        if b[0] & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift >= 64 {
            return Err(Error::InvalidInput(
                "session frame: length varint too long".into(),
            ));
        }
    }
    let len = usize::try_from(len)
        .map_err(|_| Error::InvalidInput("session frame: payload length out of range".into()))?;
    if len > MAX_WIRE_PAYLOAD {
        return Err(Error::InvalidInput(format!(
            "session frame: payload length {len} exceeds wire cap {MAX_WIRE_PAYLOAD}"
        )));
    }
    let start = out.len();
    out.resize(start + len + 4, 0);
    let body = out
        .get_mut(start..)
        .ok_or_else(|| Error::InvalidInput("session frame: body slice out of range".into()))?;
    reader
        .read_exact(body)
        .map_err(|e| Error::InvalidInput(format!("session frame: truncated payload: {e}")))?;
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppep_types::vf::NbVfState;
    use ppep_types::{Seconds, VfTable};

    fn topology() -> Topology {
        Topology::fx8320()
    }

    fn sample_record(topology: &Topology) -> IntervalRecord {
        use crate::record::PowerBreakdown;
        use ppep_pmc::sampler::IntervalSample;
        use ppep_pmc::{EventCounts, EventId};
        let table = VfTable::fx8320();
        let mut counts = EventCounts::zero();
        counts.set(EventId::RetiredInstructions, 1.0e9);
        IntervalRecord {
            index: IntervalIndex(7),
            duration: Seconds::new(0.2),
            samples: vec![
                IntervalSample {
                    counts,
                    duration: Seconds::new(0.2),
                };
                topology.core_count()
            ],
            true_counts: vec![counts; topology.core_count()],
            measured_power: Watts::new(55.25),
            true_power: PowerBreakdown {
                core_dynamic: vec![Watts::new(5.5); topology.core_count()],
                nb_dynamic: Watts::new(4.25),
                cu_idle: vec![Watts::new(6.125); topology.cu_count()],
                nb_idle: Watts::new(3.5),
                base: Watts::new(11.0),
            },
            temperature: Kelvin::new(330.5),
            cu_vf: vec![table.highest(); topology.cu_count()],
            nb_state: NbVfState::High,
            core_busy: vec![true; topology.core_count()],
        }
    }

    fn all_frames() -> Vec<SessionFrame> {
        let topo = topology();
        let table = VfTable::fx8320();
        vec![
            SessionFrame::Hello {
                tenant: 3,
                requested_cap: Watts::new(60.0),
            },
            SessionFrame::Welcome {
                tenant: 3,
                granted_cap: Watts::new(48.5),
                slot: 2,
            },
            SessionFrame::Reject {
                tenant: 9,
                reason: RejectReason::SessionSlotsExhausted { active: 8, max: 8 },
            },
            SessionFrame::Reject {
                tenant: 9,
                reason: RejectReason::BudgetExhausted {
                    requested_w: 60.0,
                    available_w: 12.5,
                },
            },
            SessionFrame::Reject {
                tenant: 9,
                reason: RejectReason::DuplicateTenant { tenant: 9 },
            },
            SessionFrame::Submit {
                tenant: 3,
                record: Box::new(sample_record(&topo)),
            },
            SessionFrame::FaultReport {
                tenant: 3,
                index: IntervalIndex(8),
                error: Error::SensorDropout {
                    sensor: "hall-sensor",
                },
            },
            SessionFrame::Reply {
                tenant: 3,
                interval: 8,
                action: DecisionKind::Held,
                health: TenantHealth::Degraded,
                cap: Watts::new(48.5),
                decision: vec![table.lowest(); topo.cu_count()],
                projection: Some(ProjectionSummary {
                    power_floor: Watts::new(22.0),
                    power_ceiling: Watts::new(88.0),
                    temperature: Kelvin::new(335.0),
                }),
            },
            SessionFrame::Goodbye { tenant: 3 },
            SessionFrame::Evicted {
                tenant: 4,
                index: IntervalIndex(12),
                error: Error::DeadlineExceeded {
                    missed: 5,
                    limit: 4,
                },
            },
        ]
    }

    #[test]
    fn every_frame_kind_round_trips() {
        let topo = topology();
        for frame in all_frames() {
            let bytes = frame_to_bytes(&frame);
            let (back, consumed) = decode_frame(&bytes, &topo).expect("frame decodes");
            assert_eq!(consumed, bytes.len(), "whole frame consumed");
            match (&frame, &back) {
                // `DeadlineExceeded` crosses the wire through the
                // generic "other" fault spelling (its rendered
                // message), so the decoded error keeps the text but
                // not the variant; everything else must be
                // structurally identical.
                (
                    SessionFrame::Evicted { error: a, .. },
                    SessionFrame::Evicted { error: b, .. },
                ) => assert!(b.to_string().contains(&a.to_string())),
                _ => assert_eq!(frame, back),
            }
        }
    }

    #[test]
    fn a_stream_of_frames_decodes_in_order() {
        let topo = topology();
        let frames = all_frames();
        let mut stream = Vec::new();
        for f in &frames {
            encode_frame(f, &mut stream);
        }
        let back = decode_stream(&stream, &topo).expect("stream decodes");
        assert_eq!(back.len(), frames.len());
        assert!(matches!(back.first(), Some(SessionFrame::Hello { .. })));
        assert!(matches!(back.last(), Some(SessionFrame::Evicted { .. })));
    }

    #[test]
    fn submit_payload_round_trips_bit_exactly() {
        let topo = topology();
        let record = sample_record(&topo);
        let bytes = frame_to_bytes(&SessionFrame::Submit {
            tenant: 1,
            record: Box::new(record.clone()),
        });
        let (back, _) = decode_frame(&bytes, &topo).expect("decodes");
        match back {
            SessionFrame::Submit { record: r, .. } => {
                assert_eq!(r.measured_power, record.measured_power);
                assert_eq!(r.temperature, record.temperature);
                assert_eq!(r.cu_vf, record.cu_vf);
                assert_eq!(r.index, record.index);
            }
            other => unreachable!("decoded {other:?}"),
        }
    }

    #[test]
    fn corrupted_and_truncated_frames_are_rejected() {
        let topo = topology();
        let bytes = frame_to_bytes(&SessionFrame::Goodbye { tenant: 1 });
        // Flip one payload bit: CRC must catch it.
        let mut corrupt = bytes.clone();
        if let Some(b) = corrupt.get_mut(2) {
            *b ^= 0x01;
        }
        assert!(decode_frame(&corrupt, &topo).is_err(), "CRC must reject");
        // Every strict prefix is truncated.
        for cut in 0..bytes.len() {
            assert!(
                decode_frame(bytes.get(..cut).unwrap_or_default(), &topo).is_err(),
                "prefix of {cut} bytes must be rejected"
            );
        }
        // An unknown kind is rejected.
        assert!(decode_frame(&[99, 0, 0, 0, 0, 0], &topo).is_err());
    }

    #[test]
    fn read_frame_bytes_splits_a_stream_and_ends_cleanly() {
        let topo = topology();
        let frames = vec![
            SessionFrame::Hello {
                tenant: 3,
                requested_cap: Watts::new(40.0),
            },
            SessionFrame::Submit {
                tenant: 3,
                record: Box::new(sample_record(&topo)),
            },
            SessionFrame::Goodbye { tenant: 3 },
        ];
        let mut stream = Vec::new();
        for f in &frames {
            encode_frame(f, &mut stream);
        }
        let mut cursor = std::io::Cursor::new(stream);
        for f in &frames {
            let bytes = read_frame_bytes(&mut cursor)
                .expect("frame reads")
                .expect("stream not exhausted");
            assert_eq!(bytes, frame_to_bytes(f), "raw bytes match the encoder");
            let (decoded, consumed) = decode_frame(&bytes, &topo).expect("frame decodes");
            assert_eq!(consumed, bytes.len(), "no trailing bytes");
            assert_eq!(&decoded, f);
        }
        assert!(
            read_frame_bytes(&mut cursor).expect("clean EOF").is_none(),
            "EOF before a kind byte is a clean end-of-stream"
        );
    }

    #[test]
    fn read_frame_bytes_rejects_truncation_and_hostile_lengths() {
        let bytes = frame_to_bytes(&SessionFrame::Goodbye { tenant: 9 });
        // Every strict prefix that contains the kind byte is a
        // truncated frame, not a clean EOF.
        for cut in 1..bytes.len() {
            let mut cursor = std::io::Cursor::new(bytes.get(..cut).unwrap_or_default());
            assert!(
                read_frame_bytes(&mut cursor).is_err(),
                "prefix of {cut} bytes must error"
            );
        }
        // A length prefix past the wire cap must be refused before
        // any allocation of that size.
        let mut hostile = vec![FRAME_SUBMIT];
        put_varint(&mut hostile, (MAX_WIRE_PAYLOAD as u64) + 1);
        hostile.extend_from_slice(&[0u8; 8]);
        let mut cursor = std::io::Cursor::new(hostile);
        assert!(read_frame_bytes(&mut cursor).is_err());
        // An endless continuation-bit run is an over-long varint.
        let mut runaway = vec![FRAME_SUBMIT];
        runaway.extend_from_slice(&[0x80u8; 16]);
        let mut cursor = std::io::Cursor::new(runaway);
        assert!(read_frame_bytes(&mut cursor).is_err());
    }

    #[test]
    fn session_kinds_stay_clear_of_trace_kinds() {
        // The v2 trace codec owns kinds 0-5; session frames must never
        // collide so a mixed-up stream fails loudly instead of parsing.
        for kind in [
            FRAME_HELLO,
            FRAME_WELCOME,
            FRAME_REJECT,
            FRAME_SUBMIT,
            FRAME_FAULT_REPORT,
            FRAME_REPLY,
            FRAME_GOODBYE,
            FRAME_EVICTED,
        ] {
            assert!(kind >= 16);
        }
    }
}
