//! A minimal JSON document model, writer, and parser.
//!
//! The trace format in [`crate::trace`] is JSON Lines; the workspace
//! is offline-only (no serde), so this module hand-rolls the small
//! JSON subset the trace needs. Two deliberate extensions for `f64`
//! fidelity: non-finite numbers are written as the strings `"NaN"`,
//! `"inf"`, and `"-inf"`, and [`Json::as_f64`] reads them back —
//! finite values round-trip exactly because Rust's `Display` for
//! `f64` emits the shortest decimal form that parses to the same bits.

use ppep_types::{Error, Result};

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] when `self` is not an object or
    /// the key is absent.
    pub fn get(&self, key: &str) -> Result<&Json> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::InvalidInput(format!("trace json: missing key `{key}`"))),
            _ => Err(Error::InvalidInput(format!(
                "trace json: `{key}` lookup on a non-object"
            ))),
        }
    }

    /// The value as an `f64`, accepting the `"NaN"`/`"inf"`/`"-inf"`
    /// string spellings of non-finite numbers.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for any other shape.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Json::Num(v) => Ok(*v),
            Json::Str(s) if s == "NaN" => Ok(f64::NAN),
            Json::Str(s) if s == "inf" => Ok(f64::INFINITY),
            Json::Str(s) if s == "-inf" => Ok(f64::NEG_INFINITY),
            other => Err(Error::InvalidInput(format!(
                "trace json: expected number, got {other:?}"
            ))),
        }
    }

    /// The value as a non-negative integer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for non-numbers, negatives, and
    /// non-integers.
    pub fn as_u64(&self) -> Result<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => Ok(*v as u64),
            other => Err(Error::InvalidInput(format!(
                "trace json: expected unsigned integer, got {other:?}"
            ))),
        }
    }

    /// The value as a `usize`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for non-integers.
    pub fn as_usize(&self) -> Result<usize> {
        usize::try_from(self.as_u64()?)
            .map_err(|_| Error::InvalidInput("trace json: integer out of usize range".into()))
    }

    /// The value as a bool.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for non-booleans.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(Error::InvalidInput(format!(
                "trace json: expected bool, got {other:?}"
            ))),
        }
    }

    /// The value as a string slice.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for non-strings.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(Error::InvalidInput(format!(
                "trace json: expected string, got {other:?}"
            ))),
        }
    }

    /// The value as an array slice.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for non-arrays.
    pub fn as_arr(&self) -> Result<&[Json]> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(Error::InvalidInput(format!(
                "trace json: expected array, got {other:?}"
            ))),
        }
    }

    /// Parses one JSON document (with nothing but whitespace after it).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] on malformed input.
    pub fn parse(src: &str) -> Result<Json> {
        let mut cur = Cursor {
            bytes: src.as_bytes(),
            pos: 0,
        };
        cur.skip_ws();
        let value = cur.value()?;
        cur.skip_ws();
        if cur.peek().is_some() {
            return Err(Error::InvalidInput(format!(
                "trace json: trailing bytes at offset {}",
                cur.pos
            )));
        }
        Ok(value)
    }
}

/// Appends `v` to `out` as a JSON token: the shortest exact decimal
/// for finite values, the quoted `"NaN"`/`"inf"`/`"-inf"` spellings
/// otherwise.
pub fn push_f64(out: &mut String, v: f64) {
    use std::fmt::Write as _;
    if v.is_nan() {
        out.push_str("\"NaN\"");
    } else if v == f64::INFINITY {
        out.push_str("\"inf\"");
    } else if v == f64::NEG_INFINITY {
        out.push_str("\"-inf\"");
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn push_str(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, want: u8) -> Result<()> {
        match self.bump() {
            Some(b) if b == want => Ok(()),
            other => Err(Error::InvalidInput(format!(
                "trace json: expected `{}` at offset {}, got {other:?}",
                want as char,
                self.pos.saturating_sub(1),
            ))),
        }
    }

    fn eat_keyword(&mut self, rest: &str) -> Result<()> {
        for want in rest.bytes() {
            self.eat(want)?;
        }
        Ok(())
    }

    fn value(&mut self) -> Result<Json> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Json::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Json::Bool(false))
            }
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Json::Null)
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::InvalidInput(format!(
                "trace json: unexpected {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(fields)),
                other => {
                    return Err(Error::InvalidInput(format!(
                        "trace json: expected `,` or `}}` in object, got {other:?}"
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                other => {
                    return Err(Error::InvalidInput(format!(
                        "trace json: expected `,` or `]` in array, got {other:?}"
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code: u32 = 0;
                        for _ in 0..4 {
                            let digit = match self.bump() {
                                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                                other => {
                                    return Err(Error::InvalidInput(format!(
                                        "trace json: bad \\u escape digit {other:?}"
                                    )))
                                }
                            };
                            code = code * 16 + digit;
                        }
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => {
                                return Err(Error::InvalidInput(format!(
                                    "trace json: \\u{code:04x} is not a scalar value \
                                     (surrogate pairs are not supported)"
                                )))
                            }
                        }
                    }
                    other => {
                        return Err(Error::InvalidInput(format!(
                            "trace json: bad escape {other:?}"
                        )))
                    }
                },
                Some(byte) => {
                    // Re-assemble UTF-8 multibyte sequences by leaning
                    // on the source being a valid &str: collect the
                    // continuation bytes and decode the chunk.
                    if byte < 0x80 {
                        out.push(byte as char);
                    } else {
                        let start = self.pos - 1;
                        while matches!(self.peek(), Some(b) if b & 0xC0 == 0x80) {
                            self.pos += 1;
                        }
                        let chunk = self.bytes.get(start..self.pos).unwrap_or(&[]);
                        match std::str::from_utf8(chunk) {
                            Ok(s) => out.push_str(s),
                            Err(_) => {
                                return Err(Error::InvalidInput(
                                    "trace json: invalid UTF-8 in string".into(),
                                ))
                            }
                        }
                    }
                }
                None => {
                    return Err(Error::InvalidInput(
                        "trace json: unterminated string".into(),
                    ))
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let chunk = self.bytes.get(start..self.pos).unwrap_or(&[]);
        std::str::from_utf8(chunk)
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| {
                Error::InvalidInput(format!("trace json: malformed number at offset {start}"))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, -2.5, "x"], "b": {"c": true, "d": null}, "e": false}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap(), &Json::Bool(true));
        assert_eq!(v.get("b").unwrap().get("d").unwrap(), &Json::Null);
        assert!(!v.get("e").unwrap().as_bool().unwrap());
        assert!(v.get("missing").is_err());
    }

    #[test]
    fn f64_round_trips_exactly_including_nonfinite() {
        for v in [
            0.0,
            -0.0,
            0.1,
            2.0 / 3.0,
            1.4e9,
            f64::MIN_POSITIVE,
            f64::MAX,
            std::f64::consts::PI,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let mut s = String::new();
            push_f64(&mut s, v);
            let back = Json::parse(&s).unwrap().as_f64().unwrap();
            assert!(
                back == v || (back.is_nan() && v.is_nan()),
                "{v} -> {s} -> {back}"
            );
        }
    }

    #[test]
    fn strings_escape_and_round_trip() {
        for s in ["plain", "with \"quotes\"", "tab\there", "new\nline", "μW·s"] {
            let mut out = String::new();
            push_str(&mut out, s);
            assert_eq!(Json::parse(&out).unwrap().as_str().unwrap(), s);
        }
    }

    #[test]
    fn malformed_documents_error() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "tru", "1.2.3", "[] []"] {
            assert!(Json::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn integer_accessors_validate() {
        assert_eq!(Json::parse("42").unwrap().as_u64().unwrap(), 42);
        assert!(Json::parse("-1").unwrap().as_u64().is_err());
        assert!(Json::parse("1.5").unwrap().as_u64().is_err());
        assert_eq!(Json::parse("7").unwrap().as_usize().unwrap(), 7);
    }
}
