//! The `MetricsSnapshot` wire frame: accuracy scorekeeping and SLO
//! aggregates on the v2 binary framing.
//!
//! PR 8 closes the predict→actuate→measure loop with an in-process
//! [`ppep_obs::PredictionScorer`]; this module is how those numbers
//! leave the process. A snapshot rides the same
//! `kind, payload_len varint, payload, crc32(payload) u32-le` framing
//! as v2 trace frames (kinds 0–5) and session frames (kinds 16–23),
//! in its own disjoint kind — [`FRAME_METRICS_SNAPSHOT`] (24) — so a
//! snapshot can be appended to either stream and still fail loudly if
//! the streams are ever confused.
//!
//! The payload is a pure summary (counts, means, EWMAs, quantiles,
//! drift flags), deliberately *not* the raw error series: a tenant's
//! scorecard is a few hundred bytes per export regardless of run
//! length.

use crate::binary::crc32;
use crate::session::{put_f64, put_varint, PayloadReader};
use ppep_obs::{ErrorTrack, PredictionScorer};
use ppep_types::{Error, Result};

/// Frame kind byte for [`MetricsSnapshot`] — disjoint from the v2
/// trace kinds (0–5) and the session kinds (16–23).
pub const FRAME_METRICS_SNAPSHOT: u8 = 24;

/// Summary statistics of one tracked error series (per-core CPI APE
/// or chip-power APE), in percent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStat {
    /// Predicted-vs-measured pairs scored.
    pub count: u64,
    /// Mean APE.
    pub mean_pct: f64,
    /// Short-window (reactive) EWMA of the APE series.
    pub ewma_pct: f64,
    /// Long-window (baseline) EWMA of the APE series.
    pub baseline_pct: f64,
    /// Bucket-resolution p99 of the APE series.
    pub p99_pct: f64,
    /// Largest APE seen.
    pub max_pct: f64,
    /// Whether the drift trip-wire is currently tripped.
    pub drifted: bool,
}

impl ErrorStat {
    /// Summarizes one scorer track.
    pub fn from_track(track: &ErrorTrack) -> Self {
        Self {
            count: track.scored(),
            mean_pct: track.mean_pct(),
            ewma_pct: track.drift().short_pct(),
            baseline_pct: track.drift().baseline_pct(),
            p99_pct: track.percentile_pct(0.99),
            max_pct: track.max_pct(),
            drifted: track.drift().tripped(),
        }
    }
}

/// Per-tenant service-level aggregates riding along with the accuracy
/// stats (the serving layer's `SloTracker` fills these in; standalone
/// daemons leave them out).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSummary {
    /// Fraction of intervals with an informed (fresh or held)
    /// decision.
    pub availability: f64,
    /// Fraction of capped intervals whose measured power respected
    /// the cap in force.
    pub cap_adherence: f64,
    /// Bucket-resolution p99 of the service's reply latency, µs.
    pub p99_reply_us: f64,
}

/// One exported accuracy/SLO scorecard for one tenant (or the whole
/// daemon, with `tenant` 0 outside the serving layer).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// The tenant the snapshot describes.
    pub tenant: u64,
    /// Intervals scored when the snapshot was taken.
    pub interval: u64,
    /// Per-core CPI error summaries, core order.
    pub cores: Vec<ErrorStat>,
    /// Chip-power error summary.
    pub power: ErrorStat,
    /// Service-level aggregates, when exported by the serving layer.
    pub slo: Option<SloSummary>,
}

impl MetricsSnapshot {
    /// Builds a snapshot from a live scorer.
    pub fn from_scorer(tenant: u64, scorer: &PredictionScorer, slo: Option<SloSummary>) -> Self {
        Self {
            tenant,
            interval: scorer.intervals(),
            cores: scorer.cores().iter().map(ErrorStat::from_track).collect(),
            power: ErrorStat::from_track(scorer.power()),
            slo,
        }
    }
}

fn put_stat(out: &mut Vec<u8>, s: &ErrorStat) {
    put_varint(out, s.count);
    put_f64(out, s.mean_pct);
    put_f64(out, s.ewma_pct);
    put_f64(out, s.baseline_pct);
    put_f64(out, s.p99_pct);
    put_f64(out, s.max_pct);
    out.push(u8::from(s.drifted));
}

fn read_stat(r: &mut PayloadReader<'_>) -> Result<ErrorStat> {
    let count = r.varint("stat count")?;
    let mean_pct = r.f64("stat mean")?;
    let ewma_pct = r.f64("stat ewma")?;
    let baseline_pct = r.f64("stat baseline")?;
    let p99_pct = r.f64("stat p99")?;
    let max_pct = r.f64("stat max")?;
    let drifted = match r.u8("stat drift flag")? {
        0 => false,
        1 => true,
        other => {
            return Err(Error::InvalidInput(format!(
                "metrics snapshot: bad drift flag {other}"
            )))
        }
    };
    Ok(ErrorStat {
        count,
        mean_pct,
        ewma_pct,
        baseline_pct,
        p99_pct,
        max_pct,
        drifted,
    })
}

/// Appends `snap` to `out` in the v2 framing
/// (`kind, payload_len varint, payload, crc32`).
pub fn encode_snapshot(snap: &MetricsSnapshot, out: &mut Vec<u8>) {
    let mut payload = Vec::new();
    put_varint(&mut payload, snap.tenant);
    put_varint(&mut payload, snap.interval);
    put_varint(&mut payload, snap.cores.len() as u64);
    for s in &snap.cores {
        put_stat(&mut payload, s);
    }
    put_stat(&mut payload, &snap.power);
    match &snap.slo {
        Some(slo) => {
            payload.push(1);
            put_f64(&mut payload, slo.availability);
            put_f64(&mut payload, slo.cap_adherence);
            put_f64(&mut payload, slo.p99_reply_us);
        }
        None => payload.push(0),
    }
    out.push(FRAME_METRICS_SNAPSHOT);
    put_varint(out, payload.len() as u64);
    let crc = crc32(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Encodes one snapshot into a fresh buffer.
pub fn snapshot_to_bytes(snap: &MetricsSnapshot) -> Vec<u8> {
    let mut out = Vec::new();
    encode_snapshot(snap, &mut out);
    out
}

/// Decodes the first snapshot frame of `src`, returning it and the
/// bytes consumed.
///
/// # Errors
///
/// Returns [`Error::InvalidInput`] on truncation, a CRC mismatch, a
/// wrong frame kind, or a malformed payload.
pub fn decode_snapshot(src: &[u8]) -> Result<(MetricsSnapshot, usize)> {
    let mut header = PayloadReader::new(src);
    let kind = header.u8("snapshot kind")?;
    if kind != FRAME_METRICS_SNAPSHOT {
        return Err(Error::InvalidInput(format!(
            "metrics snapshot: kind {kind} is not {FRAME_METRICS_SNAPSHOT}"
        )));
    }
    let len = header.varint("snapshot payload length")?;
    let len = usize::try_from(len)
        .map_err(|_| Error::InvalidInput("metrics snapshot: payload length out of range".into()))?;
    let payload = header.take(len, "snapshot payload")?;
    let crc_stored = {
        let b = header.take(4, "snapshot crc")?;
        let mut v = 0u32;
        for (i, byte) in b.iter().enumerate() {
            v |= u32::from(*byte) << (8 * i as u32);
        }
        v
    };
    if crc32(payload) != crc_stored {
        return Err(Error::InvalidInput("metrics snapshot: CRC mismatch".into()));
    }
    let consumed = header.pos;
    let mut r = PayloadReader::new(payload);
    let tenant = r.varint("snapshot tenant")?;
    let interval = r.varint("snapshot interval")?;
    let n = r.varint("snapshot core count")?;
    let n = usize::try_from(n)
        .map_err(|_| Error::InvalidInput("metrics snapshot: core count out of range".into()))?;
    if n > 4096 {
        return Err(Error::InvalidInput(format!(
            "metrics snapshot: implausible core count {n}"
        )));
    }
    let mut cores = Vec::with_capacity(n);
    for _ in 0..n {
        cores.push(read_stat(&mut r)?);
    }
    let power = read_stat(&mut r)?;
    let slo = match r.u8("snapshot slo flag")? {
        0 => None,
        1 => Some(SloSummary {
            availability: r.f64("slo availability")?,
            cap_adherence: r.f64("slo cap adherence")?,
            p99_reply_us: r.f64("slo reply p99")?,
        }),
        other => {
            return Err(Error::InvalidInput(format!(
                "metrics snapshot: bad slo flag {other}"
            )))
        }
    };
    r.finish("snapshot payload")?;
    Ok((
        MetricsSnapshot {
            tenant,
            interval,
            cores,
            power,
            slo,
        },
        consumed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{FRAME_EVICTED, FRAME_HELLO};
    use ppep_obs::ScorerConfig;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            tenant: 3,
            interval: 41,
            cores: vec![
                ErrorStat {
                    count: 40,
                    mean_pct: 2.7,
                    ewma_pct: 2.9,
                    baseline_pct: 2.6,
                    p99_pct: 10.0,
                    max_pct: 14.5,
                    drifted: false,
                },
                ErrorStat {
                    count: 38,
                    mean_pct: 9.1,
                    ewma_pct: 31.0,
                    baseline_pct: 6.0,
                    p99_pct: 50.0,
                    max_pct: 61.2,
                    drifted: true,
                },
            ],
            power: ErrorStat {
                count: 41,
                mean_pct: 4.6,
                ewma_pct: 4.4,
                baseline_pct: 4.7,
                p99_pct: 20.0,
                max_pct: 19.8,
                drifted: false,
            },
            slo: Some(SloSummary {
                availability: 0.975,
                cap_adherence: 1.0,
                p99_reply_us: 850.0,
            }),
        }
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        for snap in [
            sample(),
            MetricsSnapshot {
                slo: None,
                cores: Vec::new(),
                ..sample()
            },
        ] {
            let bytes = snapshot_to_bytes(&snap);
            let (back, consumed) = decode_snapshot(&bytes).expect("snapshot decodes");
            assert_eq!(consumed, bytes.len(), "whole frame consumed");
            assert_eq!(back, snap);
        }
    }

    #[test]
    fn from_scorer_summarizes_the_live_tracks() {
        let mut scorer = PredictionScorer::new(2, ScorerConfig::default());
        for _ in 0..10 {
            scorer.score_core_cpi(0, 1.03, Some(1.0));
            scorer.score_core_cpi(1, 2.0, Some(1.0));
            scorer.score_power(95.0, 100.0);
            scorer.note_interval();
        }
        let snap = MetricsSnapshot::from_scorer(7, &scorer, None);
        assert_eq!(snap.tenant, 7);
        assert_eq!(snap.interval, 10);
        assert_eq!(snap.cores.len(), 2);
        assert_eq!(snap.cores[0].count, 10);
        assert!((snap.cores[0].mean_pct - 3.0).abs() < 1e-9);
        assert!((snap.cores[1].mean_pct - 100.0).abs() < 1e-9);
        assert!((snap.power.mean_pct - 5.0).abs() < 1e-9);
        assert_eq!(snap.slo, None);
        // And the summary survives the wire.
        let (back, _) = decode_snapshot(&snapshot_to_bytes(&snap)).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn corrupted_and_truncated_snapshots_are_rejected() {
        let bytes = snapshot_to_bytes(&sample());
        // Flip one payload bit: the CRC must catch it.
        for i in 2..bytes.len().saturating_sub(4) {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x10;
            assert!(
                decode_snapshot(&corrupt).is_err(),
                "bit flip at {i} must be rejected"
            );
        }
        // Every strict prefix is truncated.
        for cut in 0..bytes.len() {
            assert!(
                decode_snapshot(bytes.get(..cut).unwrap_or_default()).is_err(),
                "prefix of {cut} bytes must be rejected"
            );
        }
    }

    #[test]
    fn snapshot_kind_is_disjoint_from_trace_and_session_kinds() {
        // Trace kinds are 0–5, session kinds 16–23; the snapshot gets
        // its own byte so mixed streams fail loudly.
        const {
            assert!(FRAME_METRICS_SNAPSHOT > 5);
            assert!(FRAME_METRICS_SNAPSHOT > FRAME_EVICTED);
            assert!(FRAME_METRICS_SNAPSHOT >= FRAME_HELLO + 8);
        }
        // A session decoder must refuse the snapshot kind.
        let bytes = snapshot_to_bytes(&sample());
        assert!(crate::session::decode_frame(&bytes, &ppep_types::Topology::fx8320()).is_err());
    }
}
