//! Trace format v2: length-prefixed binary framing with per-frame CRC.
//!
//! The v1 JSONL format (see [`crate::trace`]) is debuggable but costs
//! ~2.7 KB per 200 ms interval — most of it shortest-exact decimal
//! spellings of `f64` payloads. This module encodes the *same* event
//! stream (bit-identically, proven by proptest round trips and the
//! golden fixtures) in a compact binary layout:
//!
//! ```text
//! document := MAGIC "PPB2" , version u8 (=2) , frame*
//! frame    := kind u8 , payload_len varint , payload , crc32(payload) u32-le
//! kind     := 1 meta | 2 interval | 3 fault | 4 apply | 5 decision
//! ```
//!
//! The first frame must be the meta frame (topology + VF ladder), so a
//! v2 document is self-describing exactly like a v1 one. Every frame
//! carries a CRC-32 (IEEE) of its payload; truncated documents and
//! corrupted frames are rejected with [`Error::InvalidInput`].
//! [`crate::trace::TraceReader::parse_any`] sniffs the magic and falls
//! back to the v1 JSONL reader, so old traces keep loading.
//!
//! # Value coding
//!
//! Interval payloads are bit streams (LSB-first). Each `f64` is coded
//! against *predictors* the decoder reconstructs from already-decoded
//! state, choosing the cheapest of several modes per value:
//!
//! - **same** — the value's bits equal a predictor's: 1–4 bits total.
//! - **xor** — significant bits of `bits(v) ^ bits(pred)` after
//!   stripping leading (and optionally trailing) zero bits; similar
//!   values share sign/exponent/high-mantissa bits, so only the noisy
//!   low bits are stored.
//! - **int delta** — for integer-valued counters: a signed varint of
//!   `v - round(pred)`.
//! - **scaled int** — PMU interval samples are exactly
//!   `m * (T(n)/T(k))` where `m` is the accumulated hardware count and
//!   `T(j)` is a `j`-fold sum of the sub-tick period (time-multiplexed
//!   extrapolation); the encoder *verifies* bit-exact reconstruction,
//!   then stores `k` and a varint delta of `m` against the same
//!   counter slot in the previous interval.
//! - **raw** — the 64 bits verbatim (always available, always exact).
//!
//! Predictors are positional: a counter's previous-interval value, a
//! sampled counter's same-interval true count (and vice versa), the
//! previous element of a per-CU vector, a linear extrapolation for
//! temperature. All state lives in [`Codec`] and is updated by both
//! sides under identical rules, so the scheme needs no side channel.
//! On the record/replay capping workload this cuts trace size over 5×
//! versus v1 JSONL while round-tripping every `f64` bit-exactly.

use crate::decision::DecisionRecord;
use crate::record::{IntervalRecord, PowerBreakdown};
use crate::trace::{TraceEvent, TraceReader};
use ppep_pmc::events::EVENT_COUNT;
use ppep_pmc::sampler::IntervalSample;
use ppep_pmc::EventCounts;
use ppep_types::time::{IntervalIndex, SAMPLES_PER_INTERVAL};
use ppep_types::vf::{NbVfState, VfPoint};
use ppep_types::{
    Error, Gigahertz, Kelvin, Result, Seconds, Topology, VfStateId, VfTable, Volts, Watts,
};
use std::sync::OnceLock;

/// The v2 document magic, the first four bytes of every binary trace.
pub const MAGIC: [u8; 4] = *b"PPB2";

/// The binary trace format version written after the magic.
pub const BINARY_VERSION: u8 = 2;

const FRAME_END: u8 = 0;
const FRAME_META: u8 = 1;
const FRAME_INTERVAL: u8 = 2;
const FRAME_FAULT: u8 = 3;
const FRAME_APPLY: u8 = 4;
const FRAME_DECISION: u8 = 5;

/// Whether `src` starts with the v2 magic.
pub fn is_binary(src: &[u8]) -> bool {
    src.get(..MAGIC.len()) == Some(MAGIC.as_slice())
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320)
// ---------------------------------------------------------------------

fn crc_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// CRC-32 (IEEE) of `bytes`, as used for per-frame checksums.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for b in bytes {
        let idx = ((c ^ u32::from(*b)) & 0xFF) as usize;
        c = table.get(idx).copied().unwrap_or_default() ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Byte-level primitives
// ---------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// A bounds-checked reader over a byte slice.
struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn truncated(what: &str) -> Error {
        Error::InvalidInput(format!("v2 trace: truncated {what}"))
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| Self::truncated(what))?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| Self::truncated(what))?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?.first().copied().unwrap_or_default())
    }

    fn u32_le(&mut self, what: &str) -> Result<u32> {
        let b = self.take(4, what)?;
        let mut v = 0u32;
        for (i, byte) in b.iter().enumerate() {
            v |= u32::from(*byte) << (8 * i as u32);
        }
        Ok(v)
    }

    fn varint(&mut self, what: &str) -> Result<u64> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.u8(what)?;
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(Error::InvalidInput(format!(
            "v2 trace: varint overflow in {what}"
        )))
    }

    fn usize_capped(&mut self, what: &str, cap: usize) -> Result<usize> {
        let v = self.varint(what)?;
        let n = usize::try_from(v)
            .map_err(|_| Error::InvalidInput(format!("v2 trace: {what} out of range")))?;
        if n > cap {
            return Err(Error::InvalidInput(format!(
                "v2 trace: {what} of {n} exceeds plausible bound {cap}"
            )));
        }
        Ok(n)
    }

    fn f64(&mut self, what: &str) -> Result<f64> {
        let b = self.take(8, what)?;
        let mut bits = 0u64;
        for (i, byte) in b.iter().enumerate() {
            bits |= u64::from(*byte) << (8 * i as u32);
        }
        Ok(f64::from_bits(bits))
    }

    fn str_(&mut self, what: &str) -> Result<&'a str> {
        let n = self.usize_capped(what, self.remaining())?;
        let bytes = self.take(n, what)?;
        std::str::from_utf8(bytes)
            .map_err(|_| Error::InvalidInput(format!("v2 trace: non-UTF-8 {what}")))
    }
}

// ---------------------------------------------------------------------
// Bit-level primitives (LSB-first, like DEFLATE)
// ---------------------------------------------------------------------

#[derive(Default)]
struct BitWriter {
    out: Vec<u8>,
    acc: u32,
    filled: u32,
}

impl BitWriter {
    fn bit(&mut self, b: u64) {
        self.acc |= ((b & 1) as u32) << self.filled;
        self.filled += 1;
        if self.filled == 8 {
            self.out.push(self.acc as u8);
            self.acc = 0;
            self.filled = 0;
        }
    }

    fn bits(&mut self, v: u64, n: u32) {
        for i in 0..n {
            self.bit(v >> i);
        }
    }

    fn finish(mut self) -> Vec<u8> {
        if self.filled > 0 {
            self.out.push(self.acc as u8);
        }
        self.out
    }
}

struct BitReader<'a> {
    bytes: &'a [u8],
    bitpos: usize,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, bitpos: 0 }
    }

    fn bit(&mut self) -> Result<u64> {
        let byte = self
            .bytes
            .get(self.bitpos / 8)
            .copied()
            .ok_or_else(|| Error::InvalidInput("v2 trace: bit stream exhausted".into()))?;
        let b = u64::from(byte >> (self.bitpos % 8)) & 1;
        self.bitpos += 1;
        Ok(b)
    }

    fn bits(&mut self, n: u32) -> Result<u64> {
        let mut v = 0u64;
        for i in 0..n {
            v |= self.bit()? << i;
        }
        Ok(v)
    }
}

/// Per-context run state for length fields: bit lengths of residuals
/// are strongly clustered within one field family (a counter's noise
/// floor barely moves between intervals), so each length is coded as a
/// 1-bit "same as last time in this context" flag, with the 6-bit
/// literal only on change. `xor` and `mag` track the XOR-residual and
/// integer-magnitude sub-streams separately.
#[derive(Debug, Default, Clone, Copy)]
struct LenCtx {
    xor: u8,
    mag: u8,
}

fn put_len(bw: &mut BitWriter, len: u8, last: &mut u8) {
    // Jitter walks residual lengths by a few bits between intervals in
    // a near-geometric distribution, so the zigzagged delta gets a
    // Rice code (k = 2): unary quotient, two remainder bits, a 6-bit
    // absolute-length escape once the quotient hits 8.
    let delta = i16::from(len) - i16::from(*last);
    *last = len;
    let z = if delta >= 0 {
        (2 * delta) as u64
    } else {
        (-2 * delta - 1) as u64
    };
    let q = z >> 2;
    if q >= 8 {
        bw.bits(0xFF, 8);
        bw.bits(u64::from(len), 6);
    } else {
        for _ in 0..q {
            bw.bit(1);
        }
        bw.bit(0);
        bw.bits(z & 3, 2);
    }
}

fn get_len(br: &mut BitReader, last: &mut u8) -> Result<u8> {
    let mut q = 0u64;
    while q < 8 && br.bit()? == 1 {
        q += 1;
    }
    let len = if q >= 8 {
        br.bits(6)? as u8
    } else {
        let z = (q << 2) | br.bits(2)?;
        let delta = if z.is_multiple_of(2) {
            (z / 2) as i16
        } else {
            -(z.div_ceil(2) as i16)
        };
        let l = i16::from(*last) + delta;
        u8::try_from(l)
            .ok()
            .filter(|l| *l <= 63)
            .ok_or_else(|| Error::InvalidInput("v2 trace: residual length out of range".into()))?
    };
    *last = len;
    Ok(len)
}

/// Writes a magnitude as a context-coded bit-length followed by the
/// bits below the (implicit) top set bit. Magnitudes must fit 63 bits.
fn put_umag(bw: &mut BitWriter, mag: u64, last: &mut u8) {
    let len = (64 - mag.leading_zeros()) as u8;
    put_len(bw, len, last);
    if len > 0 {
        bw.bits(mag ^ (1u64 << (len - 1)), u32::from(len) - 1);
    }
}

fn get_umag(br: &mut BitReader, last: &mut u8) -> Result<u64> {
    let len = u32::from(get_len(br, last)?);
    if len == 0 {
        return Ok(0);
    }
    let low = br.bits(len - 1)?;
    Ok(low | (1u64 << (len - 1)))
}

/// Approximate cost for mode selection: the length field averages a
/// few bits thanks to the run flag.
fn umag_cost(mag: u64) -> u32 {
    let len = 64 - mag.leading_zeros();
    4 + len.saturating_sub(1)
}

fn put_sdelta(bw: &mut BitWriter, delta: i64, last: &mut u8) {
    bw.bit(u64::from(delta < 0));
    put_umag(bw, delta.unsigned_abs(), last);
}

fn get_sdelta(br: &mut BitReader, last: &mut u8) -> Result<i64> {
    let neg = br.bit()? == 1;
    let mag = get_umag(br, last)?;
    let v = i64::try_from(mag)
        .map_err(|_| Error::InvalidInput("v2 trace: signed delta overflow".into()))?;
    Ok(if neg { v.wrapping_neg() } else { v })
}

/// Writes the significant bits of a nonzero XOR residual (top set bit
/// implicit), preceded by a context-coded length.
fn put_xor(bw: &mut BitWriter, x: u64, last: &mut u8) {
    let len = (64 - x.leading_zeros()) as u8;
    put_len(bw, len - 1, last);
    if len > 1 {
        bw.bits(x ^ (1u64 << (len - 1)), u32::from(len) - 1);
    }
}

fn get_xor(br: &mut BitReader, last: &mut u8) -> Result<u64> {
    let len = u32::from(get_len(br, last)?) + 1;
    let low = if len > 1 { br.bits(len - 1)? } else { 0 };
    Ok(low | (1u64 << (len - 1)))
}

fn xor_cost(x: u64) -> u32 {
    4 + (64 - x.leading_zeros()).saturating_sub(1)
}

/// `Some(v as i64)` when the cast round-trips bit-exactly (which also
/// rejects -0.0 and anything non-integer or out of range).
fn exact_i64(v: f64) -> Option<i64> {
    let t = v as i64;
    ((t as f64).to_bits() == v.to_bits()).then_some(t)
}

/// A deterministic integer approximation of a predictor for the
/// int-delta mode. Any value works (it only shifts the stored delta);
/// both sides must agree.
fn pred_i64(p: f64) -> i64 {
    if p.is_finite() && p.abs() < 9.0e18 {
        p.round() as i64
    } else {
        0
    }
}

// ---------------------------------------------------------------------
// PMU extrapolation factors (the scaled-int mode)
// ---------------------------------------------------------------------

/// A `j`-fold running sum of `dt`, replicating the PMU's
/// `active_time`/`total_time` accumulation order bit-for-bit.
fn tick_sum(dt: f64, j: u32) -> f64 {
    let mut t = 0.0;
    for _ in 0..j {
        t += dt;
    }
    t
}

/// The extrapolation factor `T(total)/T(k)` for a slot observed `k` of
/// `total` sub-ticks.
fn scale_factor(dt: f64, k: u32, total: u32) -> f64 {
    tick_sum(dt, total) / tick_sum(dt, k)
}

const SCALE_TICKS: u32 = SAMPLES_PER_INTERVAL as u32;

/// Finds `(k, m)` with `v == m * T(total)/T(k)` reconstructing
/// bit-exactly, preferring fully-observed slots. Returns `None` when
/// no factor reproduces the value (the encoder then falls back).
fn try_scaled(v: f64, dt: f64) -> Option<(u8, u64)> {
    // `contains` is false for NaN, so this also rejects NaN inputs.
    if !(0.0..=9.0e15).contains(&v) {
        return None;
    }
    for k in (1..=SCALE_TICKS).rev() {
        let factor = scale_factor(dt, k, SCALE_TICKS);
        if !factor.is_finite() || factor <= 0.0 {
            continue;
        }
        let m = (v / factor).round();
        if !(0.0..=9.0e15).contains(&m) {
            continue;
        }
        let m_u = m as u64;
        if ((m_u as f64) * factor).to_bits() == v.to_bits() {
            return Some((k as u8, m_u));
        }
    }
    None
}

// ---------------------------------------------------------------------
// Per-value coding: three context-specific prefix trees
// ---------------------------------------------------------------------

/// Generic f64 context: optional second predictor, optional
/// trailing-zero stripping (for quantized sensor values).
///
/// Prefixes (LSB-first): `0` same-A · `10` xor-A · `110` same-B ·
/// `1110` xor-B · `11110` int-A · `111110` raw · `111111` xor-A with
/// trailing strip.
fn put_gen(bw: &mut BitWriter, v: f64, pred_a: f64, pred_b: Option<f64>, lens: &mut LenCtx) {
    let bv = v.to_bits();
    let xa = bv ^ pred_a.to_bits();
    if xa == 0 {
        bw.bit(0);
        return;
    }
    let xb = pred_b.map(|p| bv ^ p.to_bits());
    if xb == Some(0) {
        bw.bits(0b011, 3);
        return;
    }
    // Candidate costs (prefix + payload bits).
    let c_xor_a = 2 + xor_cost(xa);
    let c_xor_b = xb.map(|x| 4 + xor_cost(x));
    let c_int = exact_i64(v).and_then(|iv| {
        let delta = iv.wrapping_sub(pred_i64(pred_a));
        (delta != i64::MIN).then(|| (5 + 1 + umag_cost(delta.unsigned_abs()), delta))
    });
    let trail = xa.trailing_zeros();
    let c_xor_t = 6 + 6 + xor_cost(xa >> trail);
    let c_raw = 6 + 64;

    let mut best = c_xor_a;
    for c in [c_xor_b.unwrap_or(u32::MAX), c_int.map_or(u32::MAX, |c| c.0)] {
        best = best.min(c);
    }
    best = best.min(c_xor_t).min(c_raw);

    if best == c_xor_a {
        bw.bits(0b01, 2);
        put_xor(bw, xa, &mut lens.xor);
    } else if Some(best) == c_xor_b {
        bw.bits(0b0111, 4);
        put_xor(bw, xb.unwrap_or_default(), &mut lens.xor);
    } else if Some(best) == c_int.map(|c| c.0) {
        bw.bits(0b01111, 5);
        put_sdelta(bw, c_int.map(|c| c.1).unwrap_or_default(), &mut lens.mag);
    } else if best == c_xor_t {
        bw.bits(0b111111, 6);
        bw.bits(u64::from(trail), 6);
        put_xor(bw, xa >> trail, &mut lens.xor);
    } else {
        bw.bits(0b011111, 6);
        bw.bits(bv, 64);
    }
}

fn get_gen(br: &mut BitReader, pred_a: f64, pred_b: Option<f64>, lens: &mut LenCtx) -> Result<f64> {
    if br.bit()? == 0 {
        return Ok(pred_a);
    }
    if br.bit()? == 0 {
        return Ok(f64::from_bits(
            pred_a.to_bits() ^ get_xor(br, &mut lens.xor)?,
        ));
    }
    if br.bit()? == 0 {
        return pred_b.ok_or_else(|| {
            Error::InvalidInput("v2 trace: same-B mode with no second predictor".into())
        });
    }
    if br.bit()? == 0 {
        let pb = pred_b.ok_or_else(|| {
            Error::InvalidInput("v2 trace: xor-B mode with no second predictor".into())
        })?;
        return Ok(f64::from_bits(pb.to_bits() ^ get_xor(br, &mut lens.xor)?));
    }
    if br.bit()? == 0 {
        let delta = get_sdelta(br, &mut lens.mag)?;
        return Ok(pred_i64(pred_a).wrapping_add(delta) as f64);
    }
    if br.bit()? == 0 {
        return Ok(f64::from_bits(br.bits(64)?));
    }
    let trail = br.bits(6)? as u32;
    let x = get_xor(br, &mut lens.xor)?
        .checked_shl(trail)
        .ok_or_else(|| Error::InvalidInput("v2 trace: xor trailing shift overflow".into()))?;
    Ok(f64::from_bits(pred_a.to_bits() ^ x))
}

/// Per-slot state for the scaled-int sample mode: the `(k, m)` pair
/// last coded for this (core, event) counter.
#[derive(Debug, Clone, Copy)]
struct SlotState {
    k: u8,
    m: u64,
}

/// Sampled-counter context. Predictor A is the same slot's value in
/// the previous interval; the scaled-int modes encode the underlying
/// hardware count `m` against the slot state.
///
/// Prefixes: `0` same-A · `10` scaled-delta · `110` xor-A · `1110`
/// scaled-abs · `11110` int-A · `11111` raw.
fn put_sample(
    bw: &mut BitWriter,
    v: f64,
    pred_a: f64,
    dt: f64,
    slot: &mut Option<SlotState>,
    lens: &mut LenCtx,
) {
    let bv = v.to_bits();
    let xa = bv ^ pred_a.to_bits();
    if xa == 0 {
        bw.bit(0);
        return;
    }
    let scaled = try_scaled(v, dt);
    let c_delta = match (scaled, *slot) {
        (Some((k, m)), Some(prev)) => {
            let delta = (m as i64).wrapping_sub(prev.m as i64);
            (delta != i64::MIN).then(|| {
                let kbits = if k == prev.k { 1 } else { 5 };
                (2 + kbits + 1 + umag_cost(delta.unsigned_abs()), k, m, delta)
            })
        }
        _ => None,
    };
    let c_abs = scaled.map(|(k, m)| (4 + 4 + umag_cost(m), k, m));
    let c_xor = 3 + xor_cost(xa);
    let c_int = exact_i64(v).and_then(|iv| {
        let delta = iv.wrapping_sub(pred_i64(pred_a));
        (delta != i64::MIN).then(|| (5 + 1 + umag_cost(delta.unsigned_abs()), delta))
    });
    let c_raw = 5 + 64;

    let mut best = c_xor;
    for c in [
        c_delta.map_or(u32::MAX, |c| c.0),
        c_abs.map_or(u32::MAX, |c| c.0),
        c_int.map_or(u32::MAX, |c| c.0),
        c_raw,
    ] {
        best = best.min(c);
    }

    if Some(best) == c_delta.map(|c| c.0) {
        let (_, k, m, delta) = c_delta.unwrap_or((0, 0, 0, 0));
        bw.bits(0b01, 2);
        let same_k = slot.map(|s| s.k) == Some(k);
        bw.bit(u64::from(same_k));
        if !same_k {
            bw.bits(u64::from(k - 1), 4);
        }
        put_sdelta(bw, delta, &mut lens.mag);
        *slot = Some(SlotState { k, m });
    } else if Some(best) == c_abs.map(|c| c.0) {
        let (_, k, m) = c_abs.unwrap_or((0, 0, 0));
        bw.bits(0b0111, 4);
        bw.bits(u64::from(k - 1), 4);
        put_umag(bw, m, &mut lens.mag);
        *slot = Some(SlotState { k, m });
    } else if best == c_xor {
        bw.bits(0b011, 3);
        put_xor(bw, xa, &mut lens.xor);
    } else if Some(best) == c_int.map(|c| c.0) {
        bw.bits(0b01111, 5);
        put_sdelta(bw, c_int.map(|c| c.1).unwrap_or_default(), &mut lens.mag);
    } else {
        bw.bits(0b11111, 5);
        bw.bits(bv, 64);
    }
}

fn get_sample(
    br: &mut BitReader,
    pred_a: f64,
    dt: f64,
    slot: &mut Option<SlotState>,
    lens: &mut LenCtx,
) -> Result<f64> {
    if br.bit()? == 0 {
        return Ok(pred_a);
    }
    if br.bit()? == 0 {
        // scaled-delta
        let same_k = br.bit()? == 1;
        let k = if same_k {
            slot.map(|s| s.k).ok_or_else(|| {
                Error::InvalidInput("v2 trace: scaled-delta reuses k with no slot state".into())
            })?
        } else {
            br.bits(4)? as u8 + 1
        };
        let prev_m = slot.map(|s| s.m).ok_or_else(|| {
            Error::InvalidInput("v2 trace: scaled-delta with no slot state".into())
        })? as i64;
        let delta = get_sdelta(br, &mut lens.mag)?;
        let m = prev_m.wrapping_add(delta);
        let m_u = u64::try_from(m)
            .map_err(|_| Error::InvalidInput("v2 trace: negative scaled count".into()))?;
        *slot = Some(SlotState { k, m: m_u });
        return Ok((m_u as f64) * scale_factor(dt, u32::from(k), SCALE_TICKS));
    }
    if br.bit()? == 0 {
        return Ok(f64::from_bits(
            pred_a.to_bits() ^ get_xor(br, &mut lens.xor)?,
        ));
    }
    if br.bit()? == 0 {
        // scaled-abs
        let k = br.bits(4)? as u8 + 1;
        let m = get_umag(br, &mut lens.mag)?;
        *slot = Some(SlotState { k, m });
        return Ok((m as f64) * scale_factor(dt, u32::from(k), SCALE_TICKS));
    }
    if br.bit()? == 0 {
        let delta = get_sdelta(br, &mut lens.mag)?;
        return Ok(pred_i64(pred_a).wrapping_add(delta) as f64);
    }
    Ok(f64::from_bits(br.bits(64)?))
}

/// True-counter context: predictor A is the previous interval's value,
/// predictor B the *same interval's* sampled estimate (decoded just
/// before), which shares most high bits with the truth.
///
/// Prefixes: `0` same-A · `10` xor-B · `110` xor-A · `1110` same-B ·
/// `11110` int-A · `11111` raw.
fn put_true(bw: &mut BitWriter, v: f64, pred_a: f64, pred_b: f64, lens: &mut LenCtx) {
    let bv = v.to_bits();
    let xa = bv ^ pred_a.to_bits();
    let xb = bv ^ pred_b.to_bits();
    if xa == 0 {
        bw.bit(0);
        return;
    }
    if xb == 0 {
        bw.bits(0b0111, 4);
        return;
    }
    let c_xor_b = 2 + xor_cost(xb);
    let c_xor_a = 3 + xor_cost(xa);
    let c_int = exact_i64(v).and_then(|iv| {
        let delta = iv.wrapping_sub(pred_i64(pred_a));
        (delta != i64::MIN).then(|| (5 + 1 + umag_cost(delta.unsigned_abs()), delta))
    });
    let c_raw = 5 + 64;
    let mut best = c_xor_b.min(c_xor_a).min(c_raw);
    best = best.min(c_int.map_or(u32::MAX, |c| c.0));

    if best == c_xor_b {
        bw.bits(0b01, 2);
        put_xor(bw, xb, &mut lens.xor);
    } else if best == c_xor_a {
        bw.bits(0b011, 3);
        put_xor(bw, xa, &mut lens.xor);
    } else if Some(best) == c_int.map(|c| c.0) {
        bw.bits(0b01111, 5);
        put_sdelta(bw, c_int.map(|c| c.1).unwrap_or_default(), &mut lens.mag);
    } else {
        bw.bits(0b11111, 5);
        bw.bits(bv, 64);
    }
}

fn get_true(br: &mut BitReader, pred_a: f64, pred_b: f64, lens: &mut LenCtx) -> Result<f64> {
    if br.bit()? == 0 {
        return Ok(pred_a);
    }
    if br.bit()? == 0 {
        return Ok(f64::from_bits(
            pred_b.to_bits() ^ get_xor(br, &mut lens.xor)?,
        ));
    }
    if br.bit()? == 0 {
        return Ok(f64::from_bits(
            pred_a.to_bits() ^ get_xor(br, &mut lens.xor)?,
        ));
    }
    if br.bit()? == 0 {
        return Ok(pred_b);
    }
    if br.bit()? == 0 {
        let delta = get_sdelta(br, &mut lens.mag)?;
        return Ok(pred_i64(pred_a).wrapping_add(delta) as f64);
    }
    Ok(f64::from_bits(br.bits(64)?))
}

// ---------------------------------------------------------------------
// Codec state
// ---------------------------------------------------------------------

/// Shared encoder/decoder state: everything a predictor may reference.
/// Both sides update it under identical rules after each frame.
#[derive(Default)]
struct Codec {
    prev: Option<IntervalRecord>,
    prev2_temperature: Option<f64>,
    slots: Vec<Option<SlotState>>,
    prev_decision: Option<DecisionRecord>,
    // Length-run contexts, one per field family so the run flags don't
    // thrash between families with different noise floors.
    lens_duration: LenCtx,
    lens_measured: LenCtx,
    lens_temperature: LenCtx,
    // Counter residual magnitudes differ by binades *between events*
    // (a branch counter moves ~2²¹/interval, a cache-miss counter
    // ~2¹⁴), so each event gets its own run context.
    lens_sample: [LenCtx; EVENT_COUNT],
    lens_true: [LenCtx; EVENT_COUNT],
    lens_core_dyn: LenCtx,
    lens_cu_idle: LenCtx,
    lens_nb: LenCtx,
    lens_decision: LenCtx,
}

/// Bitwise equality of two count vectors (`==` would be wrong for NaN
/// and -0.0; the codec's contract is bit-exactness).
fn counts_equal(a: &EventCounts, b: &EventCounts) -> bool {
    a.as_array()
        .iter()
        .zip(b.as_array().iter())
        .all(|(x, y)| x.to_bits() == y.to_bits())
}

impl Codec {
    fn prev_f(&self, f: impl Fn(&IntervalRecord) -> f64) -> f64 {
        self.prev.as_ref().map(&f).unwrap_or_default()
    }

    /// Linear temperature extrapolation `2·T₋₁ − T₋₂` (thermal RC
    /// dynamics are smooth, so this matches more high bits than the
    /// previous value alone).
    fn temperature_trend(&self) -> Option<f64> {
        match (&self.prev, self.prev2_temperature) {
            (Some(p), Some(t2)) => Some(2.0 * p.temperature.as_kelvin() - t2),
            _ => None,
        }
    }

    fn lens_sample_get(&self, event: usize) -> LenCtx {
        self.lens_sample.get(event).copied().unwrap_or_default()
    }

    fn lens_sample_set(&mut self, event: usize, lens: LenCtx) {
        if let Some(slot) = self.lens_sample.get_mut(event) {
            *slot = lens;
        }
    }

    fn lens_true_get(&self, event: usize) -> LenCtx {
        self.lens_true.get(event).copied().unwrap_or_default()
    }

    fn lens_true_set(&mut self, event: usize, lens: LenCtx) {
        if let Some(slot) = self.lens_true.get_mut(event) {
            *slot = lens;
        }
    }

    fn slot_get(&self, core: usize, event: usize) -> Option<SlotState> {
        self.slots
            .get(core * EVENT_COUNT + event)
            .copied()
            .flatten()
    }

    fn slot_set(&mut self, core: usize, event: usize, state: Option<SlotState>) {
        let idx = core * EVENT_COUNT + event;
        if self.slots.len() <= idx {
            self.slots.resize(idx + 1, None);
        }
        if let Some(s) = self.slots.get_mut(idx) {
            *s = state;
        }
    }

    fn prev_sample(&self, core: usize, event: usize) -> f64 {
        self.prev
            .as_ref()
            .and_then(|p| p.samples.get(core))
            .map(|s| s.counts.as_array().get(event).copied().unwrap_or_default())
            .unwrap_or_default()
    }

    fn prev_true(&self, core: usize, event: usize) -> f64 {
        self.prev
            .as_ref()
            .and_then(|p| p.true_counts.get(core))
            .map(|c| c.as_array().get(event).copied().unwrap_or_default())
            .unwrap_or_default()
    }

    fn after_interval(&mut self, record: &IntervalRecord) {
        self.prev2_temperature = self
            .prev
            .as_ref()
            .map(|p| p.temperature.as_kelvin())
            .or(self.prev2_temperature);
        self.prev = Some(record.clone());
    }
}

fn vf_bits(table: &VfTable) -> u32 {
    let n = table.len().max(1) as u64;
    64 - (n - 1).leading_zeros().min(63)
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn meta_payload(topology: &Topology) -> Vec<u8> {
    let mut p = Vec::new();
    put_str(&mut p, topology.name());
    put_varint(&mut p, topology.cu_count() as u64);
    put_varint(&mut p, topology.cores_per_cu() as u64);
    p.push(u8::from(topology.supports_power_gating()));
    put_f64(&mut p, topology.issue_width());
    put_f64(&mut p, topology.mispredict_penalty_cycles());
    put_varint(&mut p, topology.vf_table().len() as u64);
    for (_, point) in topology.vf_table().iter() {
        put_f64(&mut p, point.voltage.as_volts());
        put_f64(&mut p, point.frequency.as_ghz());
    }
    p
}

/// The six vector lengths of an interval record, in payload order.
fn shape_of(r: &IntervalRecord) -> [usize; 6] {
    [
        r.cu_vf.len(),
        r.core_busy.len(),
        r.samples.len(),
        r.true_counts.len(),
        r.true_power.core_dynamic.len(),
        r.true_power.cu_idle.len(),
    ]
}

const SHAPE_SEQ_INDEX: u8 = 1;
const SHAPE_SAME_LENS: u8 = 2;

fn interval_payload(codec: &mut Codec, r: &IntervalRecord, table: &VfTable) -> Vec<u8> {
    let mut p = Vec::new();
    // Header: a shape byte elides the index (when sequential) and the
    // six vector lengths (when unchanged from the previous interval).
    let seq = codec
        .prev
        .as_ref()
        .is_some_and(|prev| prev.index.0.wrapping_add(1) == r.index.0);
    let same_shape = codec
        .prev
        .as_ref()
        .is_some_and(|prev| shape_of(prev) == shape_of(r));
    let mut flags = 0u8;
    if seq {
        flags |= SHAPE_SEQ_INDEX;
    }
    if same_shape {
        flags |= SHAPE_SAME_LENS;
    }
    p.push(flags);
    if !seq {
        put_varint(&mut p, r.index.0);
    }
    if !same_shape {
        for len in shape_of(r) {
            put_varint(&mut p, len as u64);
        }
    }

    let mut bw = BitWriter::default();
    let nbits = vf_bits(table);
    for vf in &r.cu_vf {
        bw.bits(vf.index() as u64, nbits);
    }
    bw.bit(u64::from(matches!(r.nb_state, NbVfState::High)));
    for b in &r.core_busy {
        bw.bit(u64::from(*b));
    }
    let duration = r.duration.as_secs();
    put_gen(
        &mut bw,
        duration,
        codec.prev_f(|p| p.duration.as_secs()),
        None,
        &mut codec.lens_duration,
    );
    put_gen(
        &mut bw,
        r.measured_power.as_watts(),
        codec.prev_f(|p| p.measured_power.as_watts()),
        None,
        &mut codec.lens_measured,
    );
    put_gen(
        &mut bw,
        r.temperature.as_kelvin(),
        codec.prev_f(|p| p.temperature.as_kelvin()),
        codec.temperature_trend(),
        &mut codec.lens_temperature,
    );
    for (core, s) in r.samples.iter().enumerate() {
        put_gen(
            &mut bw,
            s.duration.as_secs(),
            duration,
            None,
            &mut codec.lens_duration,
        );
        // Row flag: idle cores repeat the previous interval's counts
        // bit-for-bit, so the whole row collapses to one bit.
        let row_same = codec
            .prev
            .as_ref()
            .and_then(|prev| prev.samples.get(core))
            .is_some_and(|ps| counts_equal(&ps.counts, &s.counts));
        bw.bit(u64::from(row_same));
        if row_same {
            continue;
        }
        let dt = s.duration.as_secs() / f64::from(SCALE_TICKS);
        for (event, v) in s.counts.as_array().iter().enumerate() {
            let pred = codec.prev_sample(core, event);
            let mut slot = codec.slot_get(core, event);
            let mut lens = codec.lens_sample_get(event);
            put_sample(&mut bw, *v, pred, dt, &mut slot, &mut lens);
            codec.lens_sample_set(event, lens);
            codec.slot_set(core, event, slot);
        }
    }
    for (core, counts) in r.true_counts.iter().enumerate() {
        let row_same = codec
            .prev
            .as_ref()
            .and_then(|prev| prev.true_counts.get(core))
            .is_some_and(|pc| counts_equal(pc, counts));
        bw.bit(u64::from(row_same));
        if row_same {
            continue;
        }
        let sampled = r.samples.get(core).map(|s| s.counts);
        for (event, v) in counts.as_array().iter().enumerate() {
            let pred_a = codec.prev_true(core, event);
            let pred_b = sampled
                .as_ref()
                .and_then(|c| c.as_array().get(event).copied())
                .unwrap_or_default();
            let mut lens = codec.lens_true_get(event);
            put_true(&mut bw, *v, pred_a, pred_b, &mut lens);
            codec.lens_true_set(event, lens);
        }
    }
    let prev_core_dyn = codec.prev.as_ref().map_or_else(Vec::new, |p| {
        p.true_power
            .core_dynamic
            .iter()
            .map(|w| w.as_watts())
            .collect()
    });
    let prev_cu_idle = codec.prev.as_ref().map_or_else(Vec::new, |p| {
        p.true_power.cu_idle.iter().map(|w| w.as_watts()).collect()
    });
    let mut lens_core_dyn = codec.lens_core_dyn;
    let mut lens_cu_idle = codec.lens_cu_idle;
    {
        // Scoped so the closure's `&mut bw` borrow ends before the
        // writer is used again below.
        let mut chain = |values: &[Watts], prevs: Vec<f64>, lens: &mut LenCtx| {
            let mut last: Option<f64> = None;
            for (v, pa) in values
                .iter()
                .zip(prevs.into_iter().chain(std::iter::repeat(0.0)))
            {
                put_gen(&mut bw, v.as_watts(), pa, last, lens);
                last = Some(v.as_watts());
            }
        };
        chain(
            &r.true_power.core_dynamic,
            prev_core_dyn,
            &mut lens_core_dyn,
        );
        chain(&r.true_power.cu_idle, prev_cu_idle, &mut lens_cu_idle);
    }
    codec.lens_core_dyn = lens_core_dyn;
    codec.lens_cu_idle = lens_cu_idle;
    put_gen(
        &mut bw,
        r.true_power.nb_dynamic.as_watts(),
        codec.prev_f(|p| p.true_power.nb_dynamic.as_watts()),
        None,
        &mut codec.lens_nb,
    );
    put_gen(
        &mut bw,
        r.true_power.nb_idle.as_watts(),
        codec.prev_f(|p| p.true_power.nb_idle.as_watts()),
        None,
        &mut codec.lens_nb,
    );
    put_gen(
        &mut bw,
        r.true_power.base.as_watts(),
        codec.prev_f(|p| p.true_power.base.as_watts()),
        None,
        &mut codec.lens_nb,
    );
    p.extend_from_slice(&bw.finish());
    codec.after_interval(r);
    p
}

fn fault_payload(index: IntervalIndex, error: &Error) -> Vec<u8> {
    let mut p = Vec::new();
    put_varint(&mut p, index.0);
    match error {
        Error::SensorDropout { sensor } => {
            p.push(0);
            put_str(&mut p, sensor);
        }
        Error::SensorImplausible { sensor, value } => {
            p.push(1);
            put_str(&mut p, sensor);
            put_f64(&mut p, *value);
        }
        Error::MsrReadFailed { msr } => {
            p.push(2);
            put_varint(&mut p, u64::from(*msr));
        }
        Error::MissedInterval { missed } => {
            p.push(3);
            put_varint(&mut p, u64::from(*missed));
        }
        other => {
            p.push(4);
            put_str(&mut p, &other.to_string());
        }
    }
    p
}

fn apply_payload(codec: &Codec, assignment: &[VfStateId]) -> Vec<u8> {
    let mut p = Vec::new();
    let same = codec
        .prev_decision
        .as_ref()
        .is_some_and(|d| d.chosen == assignment);
    if same {
        p.push(1);
        return p;
    }
    p.push(0);
    put_varint(&mut p, assignment.len() as u64);
    for vf in assignment {
        put_varint(&mut p, vf.index() as u64);
    }
    p
}

const DEC_SEQ_INTERVAL: u8 = 1;
const DEC_SAME_LEN: u8 = 2;
const DEC_SAME_CHOSEN: u8 = 4;

fn decision_payload(codec: &mut Codec, d: &DecisionRecord, table: &VfTable) -> Vec<u8> {
    let mut p = Vec::new();
    let seq = codec
        .prev_decision
        .as_ref()
        .is_some_and(|pd| pd.interval.0.wrapping_add(1) == d.interval.0);
    let same_len = codec
        .prev_decision
        .as_ref()
        .is_some_and(|pd| pd.chosen.len() == d.chosen.len());
    let same_chosen = codec
        .prev_decision
        .as_ref()
        .is_some_and(|pd| pd.chosen == d.chosen);
    let mut flags = 0u8;
    if seq {
        flags |= DEC_SEQ_INTERVAL;
    }
    if same_len {
        flags |= DEC_SAME_LEN;
    }
    if same_chosen {
        flags |= DEC_SAME_CHOSEN;
    }
    p.push(flags);
    if !seq {
        put_varint(&mut p, d.interval.0);
    }
    if !same_len {
        put_varint(&mut p, d.chosen.len() as u64);
    }
    let mut bw = BitWriter::default();
    let nbits = vf_bits(table);
    if !same_chosen {
        for vf in &d.chosen {
            bw.bits(vf.index() as u64, nbits);
        }
    }
    bw.bit(u64::from(d.realized_power.is_some()));
    bw.bit(u64::from(d.predicted_power.is_some()));
    bw.bit(u64::from(d.cap.is_some()));
    bw.bits(
        match d.cap_violated {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        },
        2,
    );
    let measured = codec.prev_f(|p| p.measured_power.as_watts());
    if let Some(w) = d.realized_power {
        put_gen(
            &mut bw,
            w.as_watts(),
            measured,
            None,
            &mut codec.lens_decision,
        );
    }
    if let Some(w) = d.predicted_power {
        let anchor = d.realized_power.map_or(measured, |r| r.as_watts());
        put_gen(
            &mut bw,
            w.as_watts(),
            anchor,
            None,
            &mut codec.lens_decision,
        );
    }
    if let Some(w) = d.cap {
        let prev_cap = codec
            .prev_decision
            .as_ref()
            .and_then(|pd| pd.cap)
            .map_or(0.0, |c| c.as_watts());
        put_gen(
            &mut bw,
            w.as_watts(),
            prev_cap,
            None,
            &mut codec.lens_decision,
        );
    }
    p.extend_from_slice(&bw.finish());
    codec.prev_decision = Some(d.clone());
    p
}

fn push_frame(out: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    out.push(kind);
    put_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// Encodes a parsed trace as a v2 binary document.
pub fn encode(trace: &TraceReader) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.push(BINARY_VERSION);
    push_frame(&mut out, FRAME_META, &meta_payload(&trace.topology));
    let table = trace.topology.vf_table();
    let mut codec = Codec::default();
    for event in &trace.events {
        match event {
            TraceEvent::Interval(r) => {
                let payload = interval_payload(&mut codec, r, table);
                push_frame(&mut out, FRAME_INTERVAL, &payload);
            }
            TraceEvent::Fault { index, error } => {
                push_frame(&mut out, FRAME_FAULT, &fault_payload(*index, error));
            }
            TraceEvent::Apply(assignment) => {
                push_frame(&mut out, FRAME_APPLY, &apply_payload(&codec, assignment));
            }
            TraceEvent::Decision(d) => {
                let payload = decision_payload(&mut codec, d, table);
                push_frame(&mut out, FRAME_DECISION, &payload);
            }
        }
    }
    // Explicit end-of-document frame: without it a trace cut exactly
    // at a frame boundary would decode as a shorter valid document.
    push_frame(&mut out, FRAME_END, &[]);
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

fn parse_meta(payload: &[u8]) -> Result<Topology> {
    let mut r = ByteReader::new(payload);
    let name = r.str_("topology name")?.to_string();
    let cu_count = r.usize_capped("cu count", 4096)?;
    let cores_per_cu = r.usize_capped("cores per cu", 4096)?;
    let power_gating = r.u8("power gating flag")? != 0;
    let issue_width = r.f64("issue width")?;
    let mispredict = r.f64("mispredict penalty")?;
    let states = r.usize_capped("vf state count", r.remaining() / 16 + 1)?;
    let mut points = Vec::with_capacity(states);
    for _ in 0..states {
        let v = r.f64("vf voltage")?;
        let f = r.f64("vf frequency")?;
        points.push(VfPoint::new(Volts::new(v), Gigahertz::new(f)));
    }
    Topology::new(
        &name,
        cu_count,
        cores_per_cu,
        VfTable::new(points)?,
        power_gating,
        issue_width,
        mispredict,
    )
}

fn parse_interval(
    codec: &mut Codec,
    payload: &[u8],
    topology: &Topology,
) -> Result<IntervalRecord> {
    let table = topology.vf_table();
    let mut r = ByteReader::new(payload);
    let flags = r.u8("interval shape flags")?;
    let index = if flags & SHAPE_SEQ_INDEX != 0 {
        let prev = codec.prev.as_ref().ok_or_else(|| {
            Error::InvalidInput("v2 trace: sequential index with no previous interval".into())
        })?;
        IntervalIndex(prev.index.0.wrapping_add(1))
    } else {
        IntervalIndex(r.varint("interval index")?)
    };
    const LEN_CAP: usize = 65_536;
    let [cu_vf_len, busy_len, samples_len, true_len, core_dyn_len, cu_idle_len] =
        if flags & SHAPE_SAME_LENS != 0 {
            let prev = codec.prev.as_ref().ok_or_else(|| {
                Error::InvalidInput("v2 trace: same-shape flag with no previous interval".into())
            })?;
            shape_of(prev)
        } else {
            [
                r.usize_capped("cu_vf length", LEN_CAP)?,
                r.usize_capped("core_busy length", LEN_CAP)?,
                r.usize_capped("samples length", LEN_CAP)?,
                r.usize_capped("true_counts length", LEN_CAP)?,
                r.usize_capped("core_dynamic length", LEN_CAP)?,
                r.usize_capped("cu_idle length", LEN_CAP)?,
            ]
        };
    let bits = r.take(r.remaining(), "interval bit stream")?;
    let mut br = BitReader::new(bits);

    let nbits = vf_bits(table);
    let mut cu_vf = Vec::with_capacity(cu_vf_len);
    for _ in 0..cu_vf_len {
        let idx = br.bits(nbits)? as usize;
        cu_vf.push(table.state(idx)?);
    }
    let nb_state = if br.bit()? == 1 {
        NbVfState::High
    } else {
        NbVfState::Low
    };
    let mut core_busy = Vec::with_capacity(busy_len);
    for _ in 0..busy_len {
        core_busy.push(br.bit()? == 1);
    }
    let duration = get_gen(
        &mut br,
        codec.prev_f(|p| p.duration.as_secs()),
        None,
        &mut codec.lens_duration,
    )?;
    let measured_power = get_gen(
        &mut br,
        codec.prev_f(|p| p.measured_power.as_watts()),
        None,
        &mut codec.lens_measured,
    )?;
    let temperature = get_gen(
        &mut br,
        codec.prev_f(|p| p.temperature.as_kelvin()),
        codec.temperature_trend(),
        &mut codec.lens_temperature,
    )?;
    let mut samples = Vec::with_capacity(samples_len);
    for core in 0..samples_len {
        let s_duration = get_gen(&mut br, duration, None, &mut codec.lens_duration)?;
        let dt = s_duration / f64::from(SCALE_TICKS);
        let row_same = br.bit()? == 1;
        let counts = if row_same {
            codec
                .prev
                .as_ref()
                .and_then(|prev| prev.samples.get(core))
                .map(|s| s.counts)
                .ok_or_else(|| {
                    Error::InvalidInput("v2 trace: sample row reuse with no previous row".into())
                })?
        } else {
            let mut arr = [0.0; EVENT_COUNT];
            for (event, out) in arr.iter_mut().enumerate() {
                let pred = codec.prev_sample(core, event);
                let mut slot = codec.slot_get(core, event);
                let mut lens = codec.lens_sample_get(event);
                *out = get_sample(&mut br, pred, dt, &mut slot, &mut lens)?;
                codec.lens_sample_set(event, lens);
                codec.slot_set(core, event, slot);
            }
            EventCounts::from_array(arr)
        };
        samples.push(IntervalSample {
            counts,
            duration: Seconds::new(s_duration),
        });
    }
    let mut true_counts = Vec::with_capacity(true_len);
    for core in 0..true_len {
        let row_same = br.bit()? == 1;
        let counts = if row_same {
            codec
                .prev
                .as_ref()
                .and_then(|prev| prev.true_counts.get(core))
                .copied()
                .ok_or_else(|| {
                    Error::InvalidInput(
                        "v2 trace: true-count row reuse with no previous row".into(),
                    )
                })?
        } else {
            let sampled = samples.get(core).map(|s| s.counts);
            let mut arr = [0.0; EVENT_COUNT];
            for (event, out) in arr.iter_mut().enumerate() {
                let pred_a = codec.prev_true(core, event);
                let pred_b = sampled
                    .as_ref()
                    .and_then(|c| c.as_array().get(event).copied())
                    .unwrap_or_default();
                let mut lens = codec.lens_true_get(event);
                *out = get_true(&mut br, pred_a, pred_b, &mut lens)?;
                codec.lens_true_set(event, lens);
            }
            EventCounts::from_array(arr)
        };
        true_counts.push(counts);
    }
    let chain =
        |br: &mut BitReader, n: usize, prevs: Vec<f64>, lens: &mut LenCtx| -> Result<Vec<Watts>> {
            let mut out = Vec::with_capacity(n);
            let mut last: Option<f64> = None;
            let mut prev_iter = prevs.into_iter().chain(std::iter::repeat(0.0));
            for _ in 0..n {
                let pa = prev_iter.next().unwrap_or_default();
                let v = get_gen(br, pa, last, lens)?;
                last = Some(v);
                out.push(Watts::new(v));
            }
            Ok(out)
        };
    let prev_core_dyn = codec.prev.as_ref().map_or_else(Vec::new, |p| {
        p.true_power
            .core_dynamic
            .iter()
            .map(|w| w.as_watts())
            .collect()
    });
    let prev_cu_idle = codec.prev.as_ref().map_or_else(Vec::new, |p| {
        p.true_power.cu_idle.iter().map(|w| w.as_watts()).collect()
    });
    let mut lens_core_dyn = codec.lens_core_dyn;
    let mut lens_cu_idle = codec.lens_cu_idle;
    let core_dynamic = chain(&mut br, core_dyn_len, prev_core_dyn, &mut lens_core_dyn)?;
    let cu_idle = chain(&mut br, cu_idle_len, prev_cu_idle, &mut lens_cu_idle)?;
    codec.lens_core_dyn = lens_core_dyn;
    codec.lens_cu_idle = lens_cu_idle;
    let nb_dynamic = get_gen(
        &mut br,
        codec.prev_f(|p| p.true_power.nb_dynamic.as_watts()),
        None,
        &mut codec.lens_nb,
    )?;
    let nb_idle = get_gen(
        &mut br,
        codec.prev_f(|p| p.true_power.nb_idle.as_watts()),
        None,
        &mut codec.lens_nb,
    )?;
    let base = get_gen(
        &mut br,
        codec.prev_f(|p| p.true_power.base.as_watts()),
        None,
        &mut codec.lens_nb,
    )?;

    let record = IntervalRecord {
        index,
        duration: Seconds::new(duration),
        samples,
        true_counts,
        measured_power: Watts::new(measured_power),
        true_power: PowerBreakdown {
            core_dynamic,
            nb_dynamic: Watts::new(nb_dynamic),
            cu_idle,
            nb_idle: Watts::new(nb_idle),
            base: Watts::new(base),
        },
        temperature: Kelvin::new(temperature),
        cu_vf,
        nb_state,
        core_busy,
    };
    codec.after_interval(&record);
    Ok(record)
}

use crate::trace::static_sensor_name;

fn parse_fault(payload: &[u8]) -> Result<(IntervalIndex, Error)> {
    let mut r = ByteReader::new(payload);
    let index = IntervalIndex(r.varint("fault index")?);
    let error = match r.u8("fault kind")? {
        0 => Error::SensorDropout {
            sensor: static_sensor_name(r.str_("fault sensor")?),
        },
        1 => Error::SensorImplausible {
            sensor: static_sensor_name(r.str_("fault sensor")?),
            value: r.f64("fault value")?,
        },
        2 => Error::MsrReadFailed {
            msr: u32::try_from(r.varint("fault msr")?)
                .map_err(|_| Error::InvalidInput("v2 trace: msr address out of range".into()))?,
        },
        3 => Error::MissedInterval {
            missed: u32::try_from(r.varint("fault missed count")?)
                .map_err(|_| Error::InvalidInput("v2 trace: missed count out of range".into()))?,
        },
        4 => Error::Device(r.str_("fault message")?.to_string()),
        other => {
            return Err(Error::InvalidInput(format!(
                "v2 trace: unknown fault kind {other}"
            )))
        }
    };
    Ok((index, error))
}

fn parse_apply(codec: &Codec, payload: &[u8], table: &VfTable) -> Result<Vec<VfStateId>> {
    let mut r = ByteReader::new(payload);
    if r.u8("apply flag")? == 1 {
        return codec
            .prev_decision
            .as_ref()
            .map(|d| d.chosen.clone())
            .ok_or_else(|| {
                Error::InvalidInput("v2 trace: apply references a missing decision".into())
            });
    }
    let n = r.usize_capped("apply length", 65_536)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let idx = r.usize_capped("apply vf index", table.len().saturating_sub(1))?;
        out.push(table.state(idx)?);
    }
    Ok(out)
}

fn parse_decision(codec: &mut Codec, payload: &[u8], table: &VfTable) -> Result<DecisionRecord> {
    let mut r = ByteReader::new(payload);
    let flags = r.u8("decision flags")?;
    let prev_missing =
        || Error::InvalidInput("v2 trace: decision back-reference with no predecessor".into());
    let interval = if flags & DEC_SEQ_INTERVAL != 0 {
        let pd = codec.prev_decision.as_ref().ok_or_else(prev_missing)?;
        IntervalIndex(pd.interval.0.wrapping_add(1))
    } else {
        IntervalIndex(r.varint("decision interval")?)
    };
    let chosen_len = if flags & DEC_SAME_LEN != 0 {
        codec
            .prev_decision
            .as_ref()
            .ok_or_else(prev_missing)?
            .chosen
            .len()
    } else {
        r.usize_capped("decision length", 65_536)?
    };
    let bits = r.take(r.remaining(), "decision bit stream")?;
    let mut br = BitReader::new(bits);
    let nbits = vf_bits(table);
    let chosen = if flags & DEC_SAME_CHOSEN != 0 {
        codec
            .prev_decision
            .as_ref()
            .ok_or_else(prev_missing)?
            .chosen
            .clone()
    } else {
        let mut chosen = Vec::with_capacity(chosen_len);
        for _ in 0..chosen_len {
            let idx = br.bits(nbits)? as usize;
            chosen.push(table.state(idx)?);
        }
        chosen
    };
    let has_realized = br.bit()? == 1;
    let has_predicted = br.bit()? == 1;
    let has_cap = br.bit()? == 1;
    let cap_violated = match br.bits(2)? {
        0 => None,
        1 => Some(false),
        2 => Some(true),
        other => {
            return Err(Error::InvalidInput(format!(
                "v2 trace: bad cap verdict {other}"
            )))
        }
    };
    let measured = codec.prev_f(|p| p.measured_power.as_watts());
    let realized_power = if has_realized {
        Some(Watts::new(get_gen(
            &mut br,
            measured,
            None,
            &mut codec.lens_decision,
        )?))
    } else {
        None
    };
    let predicted_power = if has_predicted {
        let anchor = realized_power.map_or(measured, |w| w.as_watts());
        Some(Watts::new(get_gen(
            &mut br,
            anchor,
            None,
            &mut codec.lens_decision,
        )?))
    } else {
        None
    };
    let cap = if has_cap {
        let prev_cap = codec
            .prev_decision
            .as_ref()
            .and_then(|pd| pd.cap)
            .map_or(0.0, |c| c.as_watts());
        Some(Watts::new(get_gen(
            &mut br,
            prev_cap,
            None,
            &mut codec.lens_decision,
        )?))
    } else {
        None
    };
    let decision = DecisionRecord {
        interval,
        chosen,
        predicted_power,
        realized_power,
        cap,
        cap_violated,
    };
    codec.prev_decision = Some(decision.clone());
    Ok(decision)
}

/// Decodes a v2 binary trace document.
///
/// # Errors
///
/// Returns [`Error::InvalidInput`] on a bad magic or version, a
/// truncated document, a frame whose CRC does not match its payload,
/// or payload values inconsistent with the recorded topology.
pub fn decode(src: &[u8]) -> Result<TraceReader> {
    let mut r = ByteReader::new(src);
    if r.take(MAGIC.len(), "magic")? != MAGIC {
        return Err(Error::InvalidInput(
            "v2 trace: bad magic (not a binary trace)".into(),
        ));
    }
    let version = r.u8("version")?;
    if version != BINARY_VERSION {
        return Err(Error::InvalidInput(format!(
            "v2 trace: unsupported binary version {version} \
             (this reader speaks {BINARY_VERSION})"
        )));
    }
    let mut topology: Option<Topology> = None;
    let mut events = Vec::new();
    let mut codec = Codec::default();
    let mut saw_end = false;
    while r.remaining() > 0 {
        let kind = r.u8("frame kind")?;
        let len = r.usize_capped("frame length", r.remaining())?;
        let payload = r.take(len, "frame payload")?;
        let stored_crc = r.u32_le("frame crc")?;
        let actual = crc32(payload);
        if stored_crc != actual {
            return Err(Error::InvalidInput(format!(
                "v2 trace: frame crc mismatch (stored {stored_crc:#010x}, \
                 computed {actual:#010x})"
            )));
        }
        match (kind, &topology) {
            (FRAME_END, Some(_)) => {
                if !payload.is_empty() {
                    return Err(Error::InvalidInput(
                        "v2 trace: end frame carries a payload".into(),
                    ));
                }
                if r.remaining() > 0 {
                    return Err(Error::InvalidInput(
                        "v2 trace: trailing bytes after the end frame".into(),
                    ));
                }
                saw_end = true;
            }
            (FRAME_META, None) => topology = Some(parse_meta(payload)?),
            (FRAME_META, Some(_)) => {
                return Err(Error::InvalidInput("v2 trace: duplicate meta frame".into()))
            }
            (_, None) => {
                return Err(Error::InvalidInput(
                    "v2 trace: first frame must be the meta frame".into(),
                ))
            }
            (FRAME_INTERVAL, Some(topo)) => {
                events.push(TraceEvent::Interval(parse_interval(
                    &mut codec, payload, topo,
                )?));
            }
            (FRAME_FAULT, Some(_)) => {
                let (index, error) = parse_fault(payload)?;
                events.push(TraceEvent::Fault { index, error });
            }
            (FRAME_APPLY, Some(topo)) => {
                events.push(TraceEvent::Apply(parse_apply(
                    &codec,
                    payload,
                    topo.vf_table(),
                )?));
            }
            (FRAME_DECISION, Some(topo)) => {
                events.push(TraceEvent::Decision(parse_decision(
                    &mut codec,
                    payload,
                    topo.vf_table(),
                )?));
            }
            (other, Some(_)) => {
                return Err(Error::InvalidInput(format!(
                    "v2 trace: unknown frame kind {other}"
                )))
            }
        }
    }
    let topology = topology
        .ok_or_else(|| Error::InvalidInput("v2 trace: empty document (no meta frame)".into()))?;
    if !saw_end {
        return Err(Error::InvalidInput(
            "v2 trace: missing end frame (document truncated?)".into(),
        ));
    }
    Ok(TraceReader { topology, events })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppep_pmc::EventId;

    fn toy_topology() -> Topology {
        Topology::fx8320()
    }

    fn toy_record(index: u64, table: &VfTable) -> IntervalRecord {
        let mut counts = EventCounts::zero();
        counts.set(EventId::RetiredInstructions, 1.0e9 + index as f64 / 3.0);
        counts.set(EventId::RetiredUops, 1.25e9);
        IntervalRecord {
            index: IntervalIndex(index),
            duration: Seconds::new(0.2),
            samples: vec![
                IntervalSample {
                    counts,
                    duration: Seconds::new(0.2),
                };
                8
            ],
            true_counts: vec![counts; 8],
            measured_power: Watts::new(95.25 + index as f64 / 7.0),
            true_power: PowerBreakdown {
                core_dynamic: vec![Watts::new(5.5); 8],
                nb_dynamic: Watts::new(4.25),
                cu_idle: vec![Watts::new(6.125); 4],
                nb_idle: Watts::new(3.5),
                base: Watts::new(20.0),
            },
            temperature: Kelvin::new(330.0 + 2.0 / 3.0 + index as f64 * 0.001),
            cu_vf: vec![table.highest(); 4],
            nb_state: NbVfState::High,
            core_busy: vec![true, false, true, false, true, false, true, false],
        }
    }

    fn toy_trace() -> TraceReader {
        let topo = toy_topology();
        let table = topo.vf_table().clone();
        let mut events = Vec::new();
        for i in 0..4u64 {
            events.push(TraceEvent::Interval(toy_record(i, &table)));
            events.push(TraceEvent::Decision(DecisionRecord {
                interval: IntervalIndex(i),
                chosen: vec![table.lowest(); 4],
                predicted_power: Some(Watts::new(60.5 + i as f64 / 3.0)),
                realized_power: Some(Watts::new(95.25 + i as f64 / 7.0)),
                cap: Some(Watts::new(70.0)),
                cap_violated: Some(true),
            }));
            events.push(TraceEvent::Apply(vec![table.lowest(); 4]));
        }
        events.push(TraceEvent::Fault {
            index: IntervalIndex(4),
            error: Error::SensorImplausible {
                sensor: "thermal-diode",
                value: 1.0e9,
            },
        });
        TraceReader {
            topology: topo,
            events,
        }
    }

    #[test]
    fn round_trips_bit_identically() {
        let trace = toy_trace();
        let doc = encode(&trace);
        assert!(is_binary(&doc));
        let back = decode(&doc).unwrap();
        assert_eq!(back.topology, trace.topology);
        assert_eq!(back.events, trace.events);
    }

    #[test]
    fn beats_jsonl_on_repetitive_traces() {
        let trace = toy_trace();
        let v1 = trace.to_jsonl();
        let v2 = encode(&trace);
        assert!(
            v2.len() * 5 <= v1.len(),
            "v2 {} bytes should be >=5x smaller than v1 {} bytes",
            v2.len(),
            v1.len()
        );
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let doc = encode(&toy_trace());
        for cut in 0..doc.len().saturating_sub(1) {
            let sliced = doc.get(..cut).unwrap_or_default();
            assert!(
                decode(sliced).is_err(),
                "truncation at {cut}/{} must not decode",
                doc.len()
            );
        }
    }

    #[test]
    fn corrupted_bytes_never_round_trip_silently() {
        let trace = toy_trace();
        let doc = encode(&trace);
        // Flip one bit in every byte position: either the decoder
        // errors (crc/magic/structure) or — never — returns the
        // original events unchanged with no error.
        for pos in 0..doc.len() {
            let mut bad = doc.clone();
            if let Some(b) = bad.get_mut(pos) {
                *b ^= 0x10;
            }
            if let Ok(back) = decode(&bad) {
                assert_ne!(
                    (back.topology, back.events),
                    (trace.topology.clone(), trace.events.clone()),
                    "flipped bit at {pos} decoded back to the original"
                );
            }
        }
    }

    #[test]
    fn crc_matches_reference_vector() {
        // The classic IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn scaled_mode_reconstructs_extrapolated_counts() {
        let dt = 0.2 / f64::from(SCALE_TICKS);
        for k in 1..=SCALE_TICKS {
            let factor = scale_factor(dt, k, SCALE_TICKS);
            let v = 123_456_789.0 * factor;
            let (kk, m) = try_scaled(v, dt).expect("scaled form exists");
            assert_eq!(
                ((m as f64) * scale_factor(dt, u32::from(kk), SCALE_TICKS)).to_bits(),
                v.to_bits()
            );
        }
    }

    #[test]
    fn special_floats_survive() {
        let values = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            -1.0e-308,
        ];
        for v in values {
            for pred in [0.0, 1.0, f64::NAN, v] {
                let mut bw = BitWriter::default();
                let mut enc_lens = LenCtx::default();
                let mut dec_lens = LenCtx::default();
                put_gen(&mut bw, v, pred, None, &mut enc_lens);
                let bytes = bw.finish();
                let mut br = BitReader::new(&bytes);
                let back = get_gen(&mut br, pred, None, &mut dec_lens).unwrap();
                assert_eq!(back.to_bits(), v.to_bits(), "v={v}, pred={pred}");
            }
        }
    }
}
