//! Substrate-neutral telemetry for the PPEP framework.
//!
//! The paper runs PPEP as a user-level daemon over *whatever substrate
//! provides counters, temperature, and a VF actuator* (§IV-E). This
//! crate is that seam: it owns the per-interval measurement record
//! ([`IntervalRecord`]), the [`Platform`] port the daemon drives, and
//! a JSONL trace format with recording/replaying platform adapters —
//! so the prediction engine is decoupled from any one backend.
//!
//! Three pieces:
//!
//! - [`record`] — [`IntervalRecord`] and [`PowerBreakdown`], the
//!   measurement types every backend produces (moved here from
//!   `ppep-sim`, which re-exports them for compatibility).
//! - [`platform`] — the [`Platform`] trait: `sample` one decision
//!   interval, `apply` a per-CU VF assignment, expose the topology.
//! - [`trace`] — a line-oriented JSONL trace format plus
//!   [`RecordingPlatform`] (wraps any platform, logs every sample and
//!   apply) and [`ReplayPlatform`] (replays a recorded trace
//!   deterministically, with no live substrate at all).
//! - [`decision`] — the [`DecisionRecord`] annotation a recording
//!   daemon emits per decision, and [`binary`] — the compact v2
//!   binary trace framing (varint-delta counters, per-frame CRC);
//!   [`TraceReader::parse_any`] reads either format.
//! - [`session`] — the multi-tenant capping service's wire protocol
//!   ([`SessionFrame`]): handshake, per-interval submit/reply, and
//!   eviction frames riding the same v2 framing.
//! - [`snapshot`] — the [`MetricsSnapshot`] frame (kind 24):
//!   prediction-accuracy scorecards and per-tenant SLO aggregates
//!   exported over the same v2 framing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod decision;
pub mod json;
pub mod platform;
pub mod record;
pub mod session;
pub mod snapshot;
pub mod trace;

pub use decision::DecisionRecord;
pub use platform::Platform;
pub use record::{IntervalRecord, PowerBreakdown};
pub use session::SessionFrame;
pub use snapshot::{ErrorStat, MetricsSnapshot, SloSummary};
pub use trace::{RecordingPlatform, ReplayPlatform, TraceEvent, TraceReader, TraceWriter};
