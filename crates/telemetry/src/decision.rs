//! The per-interval controller-decision record.
//!
//! A [`DecisionRecord`] captures what the DVFS controller *chose* for
//! one decision interval and what the model said about that choice:
//! the per-CU VF assignment, the predicted chip power at that
//! assignment, the measured (realized) power of the interval the
//! decision was computed from, and — for capping controllers — the
//! enforced cap and whether the measured power violated it.
//!
//! Decision records ride alongside the measurement stream in a trace
//! (v1 JSONL `decision` lines, v2 binary decision frames). They are
//! pure annotations: replay ignores them for platform I/O, but the
//! policy-differential harness in `ppep-experiments` reads them back
//! so a recorded run can be diffed against *another* policy replayed
//! over the same counter trace — or against its own recorded self, as
//! a behaviour-drift tripwire.

use ppep_types::time::IntervalIndex;
use ppep_types::{VfStateId, Watts};

/// What one controller decision looked like, model-side and
/// measurement-side.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// The decision interval (the supervised interval counter for
    /// held/failsafe decisions whose measurement was lost).
    pub interval: IntervalIndex,
    /// The per-CU VF assignment the controller chose.
    pub chosen: Vec<VfStateId>,
    /// Predicted chip power at the chosen assignment, when a
    /// projection was available to price it.
    pub predicted_power: Option<Watts>,
    /// Measured power of the source interval the decision was computed
    /// from (`None` when the measurement was lost and the decision was
    /// held or failsafe-pinned).
    pub realized_power: Option<Watts>,
    /// The power cap the controller was enforcing, if any.
    pub cap: Option<Watts>,
    /// Whether the source interval's measured power exceeded the cap
    /// (`None` when the controller enforces no cap or no measurement
    /// exists).
    pub cap_violated: Option<bool>,
}

impl DecisionRecord {
    /// Prediction error of the source interval: predicted minus
    /// realized power, when both sides exist.
    pub fn power_error(&self) -> Option<Watts> {
        match (self.predicted_power, self.realized_power) {
            (Some(p), Some(r)) => Some(p - r),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_error_needs_both_sides() {
        let mut d = DecisionRecord {
            interval: IntervalIndex(3),
            chosen: Vec::new(),
            predicted_power: Some(Watts::new(60.0)),
            realized_power: Some(Watts::new(55.0)),
            cap: Some(Watts::new(70.0)),
            cap_violated: Some(false),
        };
        assert_eq!(d.power_error(), Some(Watts::new(5.0)));
        d.realized_power = None;
        assert_eq!(d.power_error(), None);
    }
}
