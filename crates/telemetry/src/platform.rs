//! The platform port: what the PPEP daemon needs from a substrate.
//!
//! The paper's daemon needs exactly three things from the machine it
//! runs on (§II, §IV-E): per-interval observables (counters, sensor
//! power, diode temperature), a way to set each CU's VF state, and the
//! chip's topology/VF ladder. [`Platform`] is that contract. The
//! daemon in `ppep-core` is generic over it; `ppep-sim` provides the
//! simulated adapter (`SimPlatform`), and [`crate::trace`] provides
//! record/replay adapters with no live substrate at all.

use crate::decision::DecisionRecord;
use crate::record::IntervalRecord;
use ppep_obs::RecorderHandle;
use ppep_types::time::IntervalIndex;
use ppep_types::{Result, Topology, VfStateId, VfTable};

/// A measurement-and-actuation substrate the PPEP daemon can drive.
///
/// Implementations must be deterministic given their construction
/// (same platform state + same applied assignments → same samples);
/// the record/replay and fleet-runner machinery rely on it.
pub trait Platform {
    /// Advances one decision interval and returns its measurements.
    ///
    /// # Errors
    ///
    /// Transient measurement faults ([`ppep_types::Error::is_transient`])
    /// mean *this* interval's observables are lost but the platform
    /// stays consistent and the next `sample` proceeds normally.
    /// Non-transient errors mean the substrate is gone.
    fn sample(&mut self) -> Result<IntervalRecord>;

    /// Attempts an in-interval re-read after a transient
    /// [`Platform::sample`] failure, after waiting out `backoff_us`
    /// microseconds of supervisor backoff.
    ///
    /// Returning `None` means the substrate cannot re-read within the
    /// interval (the default): the supervisor escalates immediately,
    /// exactly as before this hook existed. A live substrate would
    /// sleep for `backoff_us` and re-program the failed sensor/MSR
    /// slot; deterministic substrates (queues, simulators) account the
    /// backoff without sleeping. Recording platforms deliberately keep
    /// the default: the v1/v2 trace formats model one sample per
    /// interval, so retries are disabled while recording to keep
    /// traces replayable.
    fn resample(&mut self, backoff_us: u64) -> Option<Result<IntervalRecord>> {
        let _ = backoff_us;
        None
    }

    /// Applies a per-CU VF assignment, taking effect from the next
    /// interval.
    ///
    /// # Errors
    ///
    /// Returns an error when the assignment names more CUs than the
    /// chip has or a state outside its ladder.
    fn apply(&mut self, assignment: &[VfStateId]) -> Result<()>;

    /// The chip structure behind this platform.
    fn topology(&self) -> &Topology;

    /// The index of the interval the next [`Platform::sample`] call
    /// will measure.
    fn current_interval(&self) -> IntervalIndex;

    /// Routes the platform's internals through an observability
    /// recorder. Recording must never feed back into measurements: a
    /// traced run is bit-identical to an untraced one. The default
    /// implementation ignores the recorder.
    fn set_recorder(&mut self, recorder: RecorderHandle) {
        let _ = recorder;
    }

    /// Whether this platform wants [`Platform::record_decision`]
    /// calls. Daemons use this to skip building [`DecisionRecord`]s
    /// entirely when nobody is recording, so an untraced run does no
    /// extra work (and stays bit-identical to a traced one). The
    /// default is `false`.
    fn wants_decisions(&self) -> bool {
        false
    }

    /// Annotates the trace with a controller decision. Decisions are
    /// pure metadata: they must never influence measurements or
    /// actuation. The default implementation discards the record.
    fn record_decision(&mut self, decision: &DecisionRecord) {
        let _ = decision;
    }

    /// The platform's VF ladder (shorthand for the topology's table).
    fn vf_table(&self) -> &VfTable {
        self.topology().vf_table()
    }

    /// Pins every CU to one state — the failsafe path supervisors use.
    ///
    /// # Errors
    ///
    /// Propagates [`Platform::apply`] errors.
    fn apply_uniform(&mut self, vf: VfStateId) -> Result<()> {
        let assignment = vec![vf; self.topology().cu_count()];
        self.apply(&assignment)
    }
}
