//! JSONL trace record/replay.
//!
//! A trace turns any PPEP run into a reproducible offline artifact:
//! [`RecordingPlatform`] wraps a live platform and appends one JSON
//! line per event, and [`ReplayPlatform`] plays a recorded trace back
//! with no live substrate at all. A deterministic daemon + controller
//! driven over the replay reproduces the live run's decisions and
//! projections bit-for-bit — floating-point values are serialized via
//! Rust's shortest-exact `f64` formatting (see [`crate::json`]).
//!
//! Line types (one JSON object per line):
//!
//! - `meta` — format version and the full topology (name, CU/core
//!   structure, VF ladder, microarchitectural constants), written
//!   first.
//! - `interval` — one successful [`IntervalRecord`], everything
//!   included (observables and simulator ground truth).
//! - `fault` — a failed sample: the interval index it was measuring
//!   and the transient error, so fault storms replay faithfully.
//! - `apply` — a per-CU VF assignment the daemon applied.
//! - `decision` — a controller [`DecisionRecord`] annotation (chosen
//!   assignment, predicted-vs-realized power, cap verdict). Absent in
//!   traces recorded before decisions were captured; replay treats it
//!   as a comment.
//!
//! The compact binary v2 framing of the same event stream lives in
//! [`crate::binary`]; [`TraceReader::parse_any`] accepts either.

use crate::decision::DecisionRecord;
use crate::json::{push_f64, push_str, Json};
use crate::platform::Platform;
use crate::record::{IntervalRecord, PowerBreakdown};
use ppep_obs::RecorderHandle;
use ppep_pmc::events::EVENT_COUNT;
use ppep_pmc::sampler::IntervalSample;
use ppep_pmc::EventCounts;
use ppep_types::time::IntervalIndex;
use ppep_types::vf::{NbVfState, VfPoint};
use ppep_types::{
    Error, Gigahertz, Kelvin, Result, Seconds, Topology, VfStateId, VfTable, Volts, Watts,
};
use std::collections::VecDeque;

/// The JSONL (v1) trace format version this module writes.
pub const TRACE_VERSION: u64 = 1;

/// One recorded trace event, in daemon order.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A successful sample.
    Interval(IntervalRecord),
    /// A failed sample: the interval it was measuring and the error.
    Fault {
        /// Index of the lost interval.
        index: IntervalIndex,
        /// The (typically transient) measurement error.
        error: Error,
    },
    /// A VF assignment the daemon applied.
    Apply(Vec<VfStateId>),
    /// A controller decision annotation (never consumed by replay
    /// I/O; read back by the policy-differential harness).
    Decision(DecisionRecord),
}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

/// Serializes trace events to JSON Lines.
#[derive(Debug, Clone)]
pub struct TraceWriter {
    out: String,
}

impl TraceWriter {
    /// Starts a trace with its `meta` line.
    pub fn new(topology: &Topology) -> Self {
        let mut out = String::new();
        push_meta(&mut out, topology);
        Self { out }
    }

    /// Appends one successful sample.
    pub fn interval(&mut self, record: &IntervalRecord) {
        push_interval(&mut self.out, record);
    }

    /// Appends one failed sample.
    pub fn fault(&mut self, index: IntervalIndex, error: &Error) {
        push_fault(&mut self.out, index, error);
    }

    /// Appends one applied assignment.
    pub fn apply(&mut self, assignment: &[VfStateId]) {
        push_apply(&mut self.out, assignment);
    }

    /// Appends one controller decision annotation.
    pub fn decision(&mut self, decision: &DecisionRecord) {
        push_decision(&mut self.out, decision);
    }

    /// Appends any event (the transcoding entry point).
    pub fn event(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::Interval(r) => self.interval(r),
            TraceEvent::Fault { index, error } => self.fault(*index, error),
            TraceEvent::Apply(assignment) => self.apply(assignment),
            TraceEvent::Decision(d) => self.decision(d),
        }
    }

    /// The trace so far, as JSON Lines.
    pub fn as_jsonl(&self) -> &str {
        &self.out
    }

    /// Consumes the writer, returning the JSONL document.
    pub fn into_jsonl(self) -> String {
        self.out
    }
}

fn push_meta(out: &mut String, topology: &Topology) {
    use std::fmt::Write as _;
    out.push_str("{\"type\":\"meta\",\"version\":");
    let _ = write!(out, "{TRACE_VERSION}");
    out.push_str(",\"name\":");
    push_str(out, topology.name());
    let _ = write!(
        out,
        ",\"cu_count\":{},\"cores_per_cu\":{}",
        topology.cu_count(),
        topology.cores_per_cu()
    );
    let _ = write!(
        out,
        ",\"power_gating\":{}",
        topology.supports_power_gating()
    );
    out.push_str(",\"issue_width\":");
    push_f64(out, topology.issue_width());
    out.push_str(",\"mispredict_penalty_cycles\":");
    push_f64(out, topology.mispredict_penalty_cycles());
    out.push_str(",\"vf_table\":[");
    for (i, (_, point)) in topology.vf_table().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        push_f64(out, point.voltage.as_volts());
        out.push(',');
        push_f64(out, point.frequency.as_ghz());
        out.push(']');
    }
    out.push_str("]}\n");
}

fn push_counts(out: &mut String, counts: &EventCounts) {
    out.push('[');
    for (i, v) in counts.as_array().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_f64(out, *v);
    }
    out.push(']');
}

fn push_watts_vec(out: &mut String, values: &[Watts]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_f64(out, v.as_watts());
    }
    out.push(']');
}

pub(crate) fn push_interval(out: &mut String, r: &IntervalRecord) {
    use std::fmt::Write as _;
    let _ = write!(out, "{{\"type\":\"interval\",\"index\":{}", r.index.0);
    out.push_str(",\"duration\":");
    push_f64(out, r.duration.as_secs());
    out.push_str(",\"measured_power\":");
    push_f64(out, r.measured_power.as_watts());
    out.push_str(",\"temperature\":");
    push_f64(out, r.temperature.as_kelvin());
    let _ = write!(
        out,
        ",\"nb_state\":\"{}\"",
        match r.nb_state {
            NbVfState::High => "high",
            NbVfState::Low => "low",
        }
    );
    out.push_str(",\"cu_vf\":[");
    for (i, vf) in r.cu_vf.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", vf.index());
    }
    out.push_str("],\"core_busy\":[");
    for (i, b) in r.core_busy.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(if *b { "true" } else { "false" });
    }
    out.push_str("],\"samples\":[");
    for (i, s) in r.samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"counts\":");
        push_counts(out, &s.counts);
        out.push_str(",\"duration\":");
        push_f64(out, s.duration.as_secs());
        out.push('}');
    }
    out.push_str("],\"true_counts\":[");
    for (i, c) in r.true_counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_counts(out, c);
    }
    out.push_str("],\"true_power\":{\"core_dynamic\":");
    push_watts_vec(out, &r.true_power.core_dynamic);
    out.push_str(",\"nb_dynamic\":");
    push_f64(out, r.true_power.nb_dynamic.as_watts());
    out.push_str(",\"cu_idle\":");
    push_watts_vec(out, &r.true_power.cu_idle);
    out.push_str(",\"nb_idle\":");
    push_f64(out, r.true_power.nb_idle.as_watts());
    out.push_str(",\"base\":");
    push_f64(out, r.true_power.base.as_watts());
    out.push_str("}}\n");
}

pub(crate) fn push_fault(out: &mut String, index: IntervalIndex, error: &Error) {
    use std::fmt::Write as _;
    let _ = write!(out, "{{\"type\":\"fault\",\"index\":{},\"error\":", index.0);
    match error {
        Error::SensorDropout { sensor } => {
            out.push_str("{\"kind\":\"sensor-dropout\",\"sensor\":");
            push_str(out, sensor);
            out.push('}');
        }
        Error::SensorImplausible { sensor, value } => {
            out.push_str("{\"kind\":\"sensor-implausible\",\"sensor\":");
            push_str(out, sensor);
            out.push_str(",\"value\":");
            push_f64(out, *value);
            out.push('}');
        }
        Error::MsrReadFailed { msr } => {
            let _ = write!(out, "{{\"kind\":\"msr-read-failed\",\"msr\":{msr}}}");
        }
        Error::MissedInterval { missed } => {
            let _ = write!(out, "{{\"kind\":\"missed-interval\",\"missed\":{missed}}}");
        }
        other => {
            out.push_str("{\"kind\":\"other\",\"message\":");
            push_str(out, &other.to_string());
            out.push('}');
        }
    }
    out.push_str("}\n");
}

fn push_apply(out: &mut String, assignment: &[VfStateId]) {
    use std::fmt::Write as _;
    out.push_str("{\"type\":\"apply\",\"assignment\":[");
    for (i, vf) in assignment.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", vf.index());
    }
    out.push_str("]}\n");
}

fn push_opt_watts(out: &mut String, v: Option<Watts>) {
    match v {
        Some(w) => push_f64(out, w.as_watts()),
        None => out.push_str("null"),
    }
}

fn push_decision(out: &mut String, d: &DecisionRecord) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"type\":\"decision\",\"interval\":{},\"chosen\":[",
        d.interval.0
    );
    for (i, vf) in d.chosen.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", vf.index());
    }
    out.push_str("],\"predicted_power\":");
    push_opt_watts(out, d.predicted_power);
    out.push_str(",\"realized_power\":");
    push_opt_watts(out, d.realized_power);
    out.push_str(",\"cap\":");
    push_opt_watts(out, d.cap);
    out.push_str(",\"cap_violated\":");
    match d.cap_violated {
        Some(true) => out.push_str("true"),
        Some(false) => out.push_str("false"),
        None => out.push_str("null"),
    }
    out.push_str("}\n");
}

// ---------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------

/// A parsed trace: the recorded topology plus the event stream.
#[derive(Debug, Clone)]
pub struct TraceReader {
    /// The topology recorded in the `meta` line.
    pub topology: Topology,
    /// All events, in daemon order.
    pub events: Vec<TraceEvent>,
}

impl TraceReader {
    /// Parses a JSONL trace document.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] on malformed JSON, a missing or
    /// mis-versioned `meta` line, or values inconsistent with the
    /// recorded topology (e.g. a VF index outside the ladder).
    pub fn parse(src: &str) -> Result<Self> {
        let mut lines = src.lines().filter(|l| !l.trim().is_empty());
        let meta_line = lines
            .next()
            .ok_or_else(|| Error::InvalidInput("trace: empty document".into()))?;
        let meta = Json::parse(meta_line)?;
        if meta.get("type")?.as_str()? != "meta" {
            return Err(Error::InvalidInput(
                "trace: first line must be the meta line".into(),
            ));
        }
        let version = meta.get("version")?.as_u64()?;
        if version != TRACE_VERSION {
            return Err(Error::InvalidInput(format!(
                "trace: unsupported version {version} (this reader speaks {TRACE_VERSION})"
            )));
        }
        let topology = parse_topology(&meta)?;
        let mut events = Vec::new();
        for line in lines {
            let v = Json::parse(line)?;
            match v.get("type")?.as_str()? {
                "interval" => events.push(TraceEvent::Interval(parse_interval(&v, &topology)?)),
                "fault" => events.push(TraceEvent::Fault {
                    index: IntervalIndex(v.get("index")?.as_u64()?),
                    error: parse_error(v.get("error")?)?,
                }),
                "apply" => events.push(TraceEvent::Apply(parse_assignment(
                    v.get("assignment")?,
                    topology.vf_table(),
                )?)),
                "decision" => events.push(TraceEvent::Decision(parse_decision(
                    &v,
                    topology.vf_table(),
                )?)),
                other => {
                    return Err(Error::InvalidInput(format!(
                        "trace: unknown line type `{other}`"
                    )))
                }
            }
        }
        Ok(Self { topology, events })
    }

    /// Parses a trace in either format: the v2 binary framing when the
    /// document starts with the [`crate::binary::MAGIC`] header, v1
    /// JSONL otherwise (the fallback reader).
    ///
    /// # Errors
    ///
    /// Propagates the respective format's parse errors.
    pub fn parse_any(src: &[u8]) -> Result<Self> {
        if crate::binary::is_binary(src) {
            return crate::binary::decode(src);
        }
        let text = std::str::from_utf8(src)
            .map_err(|_| Error::InvalidInput("trace: neither v2 binary nor UTF-8 JSONL".into()))?;
        Self::parse(text)
    }

    /// Re-serializes the trace as v1 JSON Lines.
    pub fn to_jsonl(&self) -> String {
        let mut w = TraceWriter::new(&self.topology);
        for e in &self.events {
            w.event(e);
        }
        w.into_jsonl()
    }

    /// The number of successful samples in the trace.
    pub fn interval_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Interval(_)))
            .count()
    }

    /// The number of failed samples in the trace.
    pub fn fault_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Fault { .. }))
            .count()
    }

    /// The recorded controller decisions, in daemon order.
    pub fn decisions(&self) -> impl Iterator<Item = &DecisionRecord> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Decision(d) => Some(d),
            _ => None,
        })
    }
}

fn parse_topology(meta: &Json) -> Result<Topology> {
    let mut points = Vec::new();
    for entry in meta.get("vf_table")?.as_arr()? {
        match entry.as_arr()? {
            [v, f] => points.push(VfPoint::new(
                Volts::new(v.as_f64()?),
                Gigahertz::new(f.as_f64()?),
            )),
            _ => {
                return Err(Error::InvalidInput(
                    "trace: vf_table entries must be [voltage, frequency] pairs".into(),
                ))
            }
        }
    }
    Topology::new(
        meta.get("name")?.as_str()?,
        meta.get("cu_count")?.as_usize()?,
        meta.get("cores_per_cu")?.as_usize()?,
        VfTable::new(points)?,
        meta.get("power_gating")?.as_bool()?,
        meta.get("issue_width")?.as_f64()?,
        meta.get("mispredict_penalty_cycles")?.as_f64()?,
    )
}

fn parse_counts(v: &Json) -> Result<EventCounts> {
    let items = v.as_arr()?;
    if items.len() != EVENT_COUNT {
        return Err(Error::InvalidInput(format!(
            "trace: event-count vector has {} entries, expected {EVENT_COUNT}",
            items.len()
        )));
    }
    let mut arr = [0.0; EVENT_COUNT];
    for (slot, item) in arr.iter_mut().zip(items) {
        *slot = item.as_f64()?;
    }
    Ok(EventCounts::from_array(arr))
}

fn parse_watts_vec(v: &Json) -> Result<Vec<Watts>> {
    v.as_arr()?
        .iter()
        .map(|w| Ok(Watts::new(w.as_f64()?)))
        .collect()
}

fn parse_assignment(v: &Json, table: &VfTable) -> Result<Vec<VfStateId>> {
    v.as_arr()?
        .iter()
        .map(|idx| table.state(idx.as_usize()?))
        .collect()
}

fn parse_opt_watts(v: &Json) -> Result<Option<Watts>> {
    match v {
        Json::Null => Ok(None),
        other => Ok(Some(Watts::new(other.as_f64()?))),
    }
}

fn parse_decision(v: &Json, table: &VfTable) -> Result<DecisionRecord> {
    Ok(DecisionRecord {
        interval: IntervalIndex(v.get("interval")?.as_u64()?),
        chosen: parse_assignment(v.get("chosen")?, table)?,
        predicted_power: parse_opt_watts(v.get("predicted_power")?)?,
        realized_power: parse_opt_watts(v.get("realized_power")?)?,
        cap: parse_opt_watts(v.get("cap")?)?,
        cap_violated: match v.get("cap_violated")? {
            Json::Null => None,
            other => Some(other.as_bool()?),
        },
    })
}

pub(crate) fn parse_interval(v: &Json, topology: &Topology) -> Result<IntervalRecord> {
    let samples = v
        .get("samples")?
        .as_arr()?
        .iter()
        .map(|s| {
            Ok(IntervalSample {
                counts: parse_counts(s.get("counts")?)?,
                duration: Seconds::new(s.get("duration")?.as_f64()?),
            })
        })
        .collect::<Result<Vec<_>>>()?;
    let true_counts = v
        .get("true_counts")?
        .as_arr()?
        .iter()
        .map(parse_counts)
        .collect::<Result<Vec<_>>>()?;
    let core_busy = v
        .get("core_busy")?
        .as_arr()?
        .iter()
        .map(Json::as_bool)
        .collect::<Result<Vec<_>>>()?;
    let tp = v.get("true_power")?;
    Ok(IntervalRecord {
        index: IntervalIndex(v.get("index")?.as_u64()?),
        duration: Seconds::new(v.get("duration")?.as_f64()?),
        samples,
        true_counts,
        measured_power: Watts::new(v.get("measured_power")?.as_f64()?),
        true_power: PowerBreakdown {
            core_dynamic: parse_watts_vec(tp.get("core_dynamic")?)?,
            nb_dynamic: Watts::new(tp.get("nb_dynamic")?.as_f64()?),
            cu_idle: parse_watts_vec(tp.get("cu_idle")?)?,
            nb_idle: Watts::new(tp.get("nb_idle")?.as_f64()?),
            base: Watts::new(tp.get("base")?.as_f64()?),
        },
        temperature: Kelvin::new(v.get("temperature")?.as_f64()?),
        cu_vf: parse_assignment(v.get("cu_vf")?, topology.vf_table())?,
        nb_state: match v.get("nb_state")?.as_str()? {
            "high" => NbVfState::High,
            "low" => NbVfState::Low,
            other => {
                return Err(Error::InvalidInput(format!(
                    "trace: unknown nb_state `{other}`"
                )))
            }
        },
        core_busy,
    })
}

/// Reconstructs a recorded sensor name as the `&'static str` the
/// error variants require; unknown names map to a generic label.
pub(crate) fn static_sensor_name(name: &str) -> &'static str {
    match name {
        "hall-sensor" => "hall-sensor",
        "thermal-diode" => "thermal-diode",
        "projection" => "projection",
        _ => "replayed-sensor",
    }
}

pub(crate) fn parse_error(v: &Json) -> Result<Error> {
    match v.get("kind")?.as_str()? {
        "sensor-dropout" => Ok(Error::SensorDropout {
            sensor: static_sensor_name(v.get("sensor")?.as_str()?),
        }),
        "sensor-implausible" => Ok(Error::SensorImplausible {
            sensor: static_sensor_name(v.get("sensor")?.as_str()?),
            value: v.get("value")?.as_f64()?,
        }),
        "msr-read-failed" => Ok(Error::MsrReadFailed {
            msr: u32::try_from(v.get("msr")?.as_u64()?)
                .map_err(|_| Error::InvalidInput("trace: msr address out of range".into()))?,
        }),
        "missed-interval" => Ok(Error::MissedInterval {
            missed: u32::try_from(v.get("missed")?.as_u64()?)
                .map_err(|_| Error::InvalidInput("trace: missed count out of range".into()))?,
        }),
        "other" => Ok(Error::Device(v.get("message")?.as_str()?.to_string())),
        other => Err(Error::InvalidInput(format!(
            "trace: unknown error kind `{other}`"
        ))),
    }
}

// ---------------------------------------------------------------------
// Platform adapters
// ---------------------------------------------------------------------

/// Wraps a live platform and records every sample and apply.
#[derive(Debug)]
pub struct RecordingPlatform<P: Platform> {
    inner: P,
    writer: TraceWriter,
}

impl<P: Platform> RecordingPlatform<P> {
    /// Starts recording on top of `inner`.
    pub fn new(inner: P) -> Self {
        let writer = TraceWriter::new(inner.topology());
        Self { inner, writer }
    }

    /// The wrapped platform.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The wrapped platform, mutably (e.g. to load a workload before
    /// the run starts; mutations are not recorded).
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }

    /// The trace recorded so far, as JSON Lines.
    pub fn trace_jsonl(&self) -> &str {
        self.writer.as_jsonl()
    }

    /// Stops recording, returning the platform and the JSONL trace.
    pub fn finish(self) -> (P, String) {
        (self.inner, self.writer.into_jsonl())
    }
}

impl<P: Platform> Platform for RecordingPlatform<P> {
    fn sample(&mut self) -> Result<IntervalRecord> {
        let measuring = self.inner.current_interval();
        match self.inner.sample() {
            Ok(record) => {
                self.writer.interval(&record);
                Ok(record)
            }
            Err(e) => {
                self.writer.fault(measuring, &e);
                Err(e)
            }
        }
    }

    fn apply(&mut self, assignment: &[VfStateId]) -> Result<()> {
        self.inner.apply(assignment)?;
        self.writer.apply(assignment);
        Ok(())
    }

    fn topology(&self) -> &Topology {
        self.inner.topology()
    }

    fn current_interval(&self) -> IntervalIndex {
        self.inner.current_interval()
    }

    fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.inner.set_recorder(recorder);
    }

    fn wants_decisions(&self) -> bool {
        true
    }

    fn record_decision(&mut self, decision: &DecisionRecord) {
        self.writer.decision(decision);
        // Forward in case the wrapped platform records too (e.g. a
        // recorder stacked on another recorder).
        self.inner.record_decision(decision);
    }
}

/// Replays a recorded trace as a [`Platform`], with no live substrate.
///
/// In the default (tolerant) mode, `apply` calls are accepted and
/// ignored — the sampled stream is fixed, which makes counterfactual
/// runs (same trace, different controller) possible. In strict mode
/// ([`ReplayPlatform::strict`]), every `apply` must match the recorded
/// assignment at the same position in the stream, so a replayed run is
/// verified step-by-step against the original.
#[derive(Debug)]
pub struct ReplayPlatform {
    topology: Topology,
    events: VecDeque<TraceEvent>,
    strict: bool,
    next_index: IntervalIndex,
    last_sampled: Option<IntervalIndex>,
}

impl ReplayPlatform {
    /// Builds a replay platform from a parsed trace.
    pub fn new(trace: TraceReader) -> Self {
        let next_index = trace
            .events
            .iter()
            .find_map(|e| match e {
                TraceEvent::Interval(r) => Some(r.index),
                TraceEvent::Fault { index, .. } => Some(*index),
                TraceEvent::Apply(_) | TraceEvent::Decision(_) => None,
            })
            .unwrap_or_default();
        Self {
            topology: trace.topology,
            events: trace.events.into(),
            strict: false,
            next_index,
            last_sampled: None,
        }
    }

    /// Parses a JSONL document and builds a replay platform from it.
    ///
    /// # Errors
    ///
    /// Propagates [`TraceReader::parse`] errors.
    pub fn from_jsonl(src: &str) -> Result<Self> {
        Ok(Self::new(TraceReader::parse(src)?))
    }

    /// Enables strict mode: `apply` calls must replay the recorded
    /// assignments exactly, in order.
    #[must_use]
    pub fn strict(mut self) -> Self {
        self.strict = true;
        self
    }

    /// Events not yet replayed.
    pub fn remaining(&self) -> usize {
        self.events.len()
    }

    fn exhausted() -> Error {
        Error::Device("replay trace exhausted: no further recorded intervals".into())
    }

    /// The interval an `apply` call is deciding for: the last sampled
    /// (or faulted) interval, for error reporting.
    fn deciding_for(&self) -> u64 {
        self.last_sampled.unwrap_or(self.next_index).0
    }

    /// Drops decision annotations queued at the stream head: they are
    /// comments to replay I/O (the differential harness reads them from
    /// the [`TraceReader`] instead).
    fn skip_decisions(&mut self) {
        while matches!(self.events.front(), Some(TraceEvent::Decision(_))) {
            self.events.pop_front();
        }
    }
}

impl Platform for ReplayPlatform {
    fn sample(&mut self) -> Result<IntervalRecord> {
        loop {
            match self.events.pop_front() {
                Some(TraceEvent::Interval(record)) => {
                    self.next_index = record.index.next();
                    self.last_sampled = Some(record.index);
                    return Ok(record);
                }
                Some(TraceEvent::Fault { index, error }) => {
                    self.next_index = index.next();
                    self.last_sampled = Some(index);
                    return Err(error);
                }
                Some(TraceEvent::Apply(expected)) => {
                    if self.strict {
                        return Err(Error::InvalidInput(format!(
                            "strict replay: trace records an apply of {expected:?} \
                             before the next sample, but the daemon sampled instead"
                        )));
                    }
                    // Tolerant mode: a skipped apply just means the
                    // replaying controller diverged; the sampled
                    // stream is fixed regardless.
                }
                Some(TraceEvent::Decision(_)) => {}
                None => return Err(Self::exhausted()),
            }
        }
    }

    fn apply(&mut self, assignment: &[VfStateId]) -> Result<()> {
        self.skip_decisions();
        match self.events.front() {
            Some(TraceEvent::Apply(expected)) => {
                if self.strict && expected.as_slice() != assignment {
                    return Err(Error::InvalidInput(format!(
                        "strict replay diverged at interval {}: daemon applied \
                         {assignment:?} but the trace recorded {expected:?}",
                        self.deciding_for()
                    )));
                }
                self.events.pop_front();
                Ok(())
            }
            _ if self.strict => Err(Error::InvalidInput(format!(
                "strict replay diverged at interval {}: daemon applied \
                 {assignment:?} where the trace records no apply",
                self.deciding_for()
            ))),
            // Tolerant mode: accept and ignore — replayed samples are
            // immutable history.
            _ => Ok(()),
        }
    }

    fn topology(&self) -> &Topology {
        &self.topology
    }

    fn current_interval(&self) -> IntervalIndex {
        self.next_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppep_types::CuId;

    fn toy_topology() -> Topology {
        Topology::fx8320()
    }

    fn toy_record(index: u64, table: &VfTable) -> IntervalRecord {
        let mut counts = EventCounts::zero();
        counts.set(ppep_pmc::EventId::RetiredInstructions, 1.0e9 + index as f64);
        IntervalRecord {
            index: IntervalIndex(index),
            duration: Seconds::new(0.2),
            samples: vec![
                IntervalSample {
                    counts,
                    duration: Seconds::new(0.2),
                };
                8
            ],
            true_counts: vec![counts; 8],
            measured_power: Watts::new(95.25 + index as f64 / 3.0),
            true_power: PowerBreakdown {
                core_dynamic: vec![Watts::new(5.5); 8],
                nb_dynamic: Watts::new(4.25),
                cu_idle: vec![Watts::new(6.125); 4],
                nb_idle: Watts::new(3.5),
                base: Watts::new(20.0),
            },
            temperature: Kelvin::new(330.0 + 2.0 / 3.0),
            cu_vf: vec![table.highest(); 4],
            nb_state: NbVfState::High,
            core_busy: vec![true, true, false, false, true, false, true, false],
        }
    }

    #[test]
    fn record_round_trips_bit_exactly() {
        let topo = toy_topology();
        let table = topo.vf_table().clone();
        let mut w = TraceWriter::new(&topo);
        let r0 = toy_record(0, &table);
        let r1 = toy_record(1, &table);
        w.interval(&r0);
        w.apply(&[table.lowest(); 4]);
        w.fault(
            IntervalIndex(2),
            &Error::SensorImplausible {
                sensor: "thermal-diode",
                value: f64::NAN,
            },
        );
        w.interval(&r1);
        let doc = w.into_jsonl();

        let trace = TraceReader::parse(&doc).unwrap();
        assert_eq!(trace.topology, topo);
        assert_eq!(trace.interval_count(), 2);
        assert_eq!(trace.fault_count(), 1);
        let mut intervals = trace.events.iter().filter_map(|e| match e {
            TraceEvent::Interval(r) => Some(r),
            _ => None,
        });
        let back0 = intervals.next().unwrap();
        // Bit-exactness: every f64 survives the JSONL round trip.
        assert_eq!(back0.measured_power, r0.measured_power);
        assert_eq!(back0.temperature, r0.temperature);
        assert_eq!(back0.samples, r0.samples);
        assert_eq!(back0.true_counts, r0.true_counts);
        assert_eq!(back0.true_power, r0.true_power);
        assert_eq!(back0.cu_vf, r0.cu_vf);
        assert_eq!(back0.core_busy, r0.core_busy);
        match trace.events.get(2) {
            Some(TraceEvent::Fault { index, error }) => {
                assert_eq!(*index, IntervalIndex(2));
                assert!(error.is_transient());
                assert!(matches!(
                    error,
                    Error::SensorImplausible {
                        sensor: "thermal-diode",
                        ..
                    }
                ));
            }
            other => panic!("expected fault event, got {other:?}"),
        }
    }

    #[test]
    fn replay_platform_reproduces_the_stream() {
        let topo = toy_topology();
        let table = topo.vf_table().clone();
        let mut w = TraceWriter::new(&topo);
        w.interval(&toy_record(0, &table));
        w.apply(&[table.lowest(); 4]);
        w.fault(IntervalIndex(1), &Error::MsrReadFailed { msr: 0xC001_0201 });
        w.interval(&toy_record(2, &table));
        w.apply(&[table.highest(); 4]);
        let doc = w.into_jsonl();

        let mut replay = ReplayPlatform::from_jsonl(&doc).unwrap();
        assert_eq!(replay.current_interval(), IntervalIndex(0));
        let r0 = replay.sample().unwrap();
        assert_eq!(r0.index, IntervalIndex(0));
        replay.apply(&[table.lowest(); 4]).unwrap();
        assert_eq!(replay.current_interval(), IntervalIndex(1));
        let err = replay.sample().unwrap_err();
        assert_eq!(err, Error::MsrReadFailed { msr: 0xC001_0201 });
        let r2 = replay.sample().unwrap();
        assert_eq!(r2.index, IntervalIndex(2));
        replay.apply(&[table.highest(); 4]).unwrap();
        assert!(replay.sample().is_err(), "exhausted trace errors");
    }

    #[test]
    fn strict_replay_rejects_diverging_applies() {
        let topo = toy_topology();
        let table = topo.vf_table().clone();
        let mut w = TraceWriter::new(&topo);
        w.interval(&toy_record(0, &table));
        w.apply(&[table.lowest(); 4]);
        let doc = w.into_jsonl();

        let mut strict = ReplayPlatform::from_jsonl(&doc).unwrap().strict();
        strict.sample().unwrap();
        assert!(strict.apply(&[table.highest(); 4]).is_err());

        let mut tolerant = ReplayPlatform::from_jsonl(&doc).unwrap();
        tolerant.sample().unwrap();
        tolerant.apply(&[table.highest(); 4]).unwrap();
    }

    #[test]
    fn strict_divergence_error_names_the_interval_and_both_values() {
        let topo = toy_topology();
        let table = topo.vf_table().clone();
        let mut w = TraceWriter::new(&topo);
        w.interval(&toy_record(0, &table));
        w.apply(&[table.lowest(); 4]);
        w.interval(&toy_record(1, &table));
        w.apply(&[table.lowest(); 4]);
        let doc = w.into_jsonl();

        // Follow the trace for interval 0, diverge at interval 1.
        let mut strict = ReplayPlatform::from_jsonl(&doc).unwrap().strict();
        strict.sample().unwrap();
        strict.apply(&[table.lowest(); 4]).unwrap();
        strict.sample().unwrap();
        let err = strict.apply(&[table.highest(); 4]).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("diverged at interval 1"),
            "error must name the diverging interval: {msg}"
        );
        assert!(
            msg.contains(&format!("{:?}", vec![table.highest(); 4]))
                && msg.contains(&format!("{:?}", vec![table.lowest(); 4])),
            "error must show both the daemon's and the recorded assignment: {msg}"
        );
    }

    #[test]
    fn replay_treats_decision_lines_as_comments() {
        let topo = toy_topology();
        let table = topo.vf_table().clone();
        let mut w = TraceWriter::new(&topo);
        w.interval(&toy_record(0, &table));
        w.decision(&DecisionRecord {
            interval: IntervalIndex(0),
            chosen: vec![table.lowest(); 4],
            predicted_power: Some(Watts::new(61.5)),
            realized_power: Some(Watts::new(60.0)),
            cap: Some(Watts::new(70.0)),
            cap_violated: Some(false),
        });
        w.apply(&[table.lowest(); 4]);
        w.decision(&DecisionRecord {
            interval: IntervalIndex(1),
            chosen: vec![table.lowest(); 4],
            predicted_power: None,
            realized_power: None,
            cap: None,
            cap_violated: None,
        });
        w.interval(&toy_record(1, &table));
        let doc = w.into_jsonl();

        let trace = TraceReader::parse(&doc).unwrap();
        assert_eq!(trace.decisions().count(), 2);
        assert_eq!(
            trace.decisions().next().map(|d| d.power_error()),
            Some(Some(Watts::new(1.5)))
        );
        // Round trip: re-serializing the parsed trace is byte-lossless.
        assert_eq!(trace.to_jsonl(), doc);

        // Strict replay sails past the annotations.
        let mut strict = ReplayPlatform::new(trace).strict();
        strict.sample().unwrap();
        strict.apply(&[table.lowest(); 4]).unwrap();
        strict.sample().unwrap();
        assert_eq!(strict.remaining(), 0);
    }

    #[test]
    fn recording_platform_wraps_a_replay() {
        // Record a replay of a hand-written trace: the re-recorded
        // document must equal the original minus the divergence-free
        // apply lines it reproduces.
        let topo = toy_topology();
        let table = topo.vf_table().clone();
        let mut w = TraceWriter::new(&topo);
        w.interval(&toy_record(0, &table));
        w.apply(&[table.lowest(); 4]);
        w.interval(&toy_record(1, &table));
        w.apply(&[table.lowest(); 4]);
        let doc = w.into_jsonl();

        let replay = ReplayPlatform::from_jsonl(&doc).unwrap();
        let mut rec = RecordingPlatform::new(replay);
        for _ in 0..2 {
            let r = rec.sample().unwrap();
            rec.apply(&[table.lowest(); 4]).unwrap();
            assert!(r.duration.as_secs() > 0.0);
        }
        assert_eq!(rec.inner().remaining(), 0);
        let (_, redoc) = rec.finish();
        assert_eq!(redoc, doc, "re-recording a faithful replay is lossless");
    }

    #[test]
    fn apply_uniform_default_covers_every_cu() {
        let topo = toy_topology();
        let table = topo.vf_table().clone();
        let mut w = TraceWriter::new(&topo);
        w.interval(&toy_record(0, &table));
        let doc = w.into_jsonl();
        let mut replay = ReplayPlatform::from_jsonl(&doc).unwrap();
        replay.sample().unwrap();
        replay.apply_uniform(table.lowest()).unwrap();
        assert_eq!(replay.topology().cu_count(), 4);
        let _ = CuId(0);
    }
}
