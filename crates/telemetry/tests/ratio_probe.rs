//! Ad-hoc probe: measures the v2/v1 size ratio on a recorded trace.
//! Run manually with a recorded JSONL trace:
//! `PPEP_TRACE=/path/to/trace.jsonl cargo test -p ppep-telemetry --test ratio_probe -- --ignored --nocapture`

use ppep_telemetry::trace::TraceReader;

#[test]
#[ignore = "needs a recorded trace via PPEP_TRACE"]
fn measure_ratio() {
    let path = std::env::var("PPEP_TRACE").expect("set PPEP_TRACE");
    let src = std::fs::read(&path).expect("read trace");
    let trace = TraceReader::parse_any(&src).expect("parse");
    let v1 = trace.to_jsonl();
    let v2 = ppep_telemetry::binary::encode(&trace);
    let back = ppep_telemetry::binary::decode(&v2).expect("decode");
    assert_eq!(back.events, trace.events, "v2 round trip must be lossless");
    println!(
        "v1 {} bytes, v2 {} bytes, ratio {:.2}x",
        v1.len(),
        v2.len(),
        v1.len() as f64 / v2.len() as f64
    );
}

#[test]
#[ignore = "needs a recorded trace via PPEP_TRACE"]
fn decompose_cost() {
    let path = std::env::var("PPEP_TRACE").expect("set PPEP_TRACE");
    let src = std::fs::read(&path).expect("read trace");
    let trace = TraceReader::parse_any(&src).expect("parse");
    let base = ppep_telemetry::binary::encode(&trace).len();

    // Frame-type census.
    let doc = ppep_telemetry::binary::encode(&trace);
    let mut pos = 5usize;
    let mut by_kind = [0usize; 6];
    while pos < doc.len() {
        let kind = doc[pos] as usize;
        pos += 1;
        let mut len = 0u64;
        let mut shift = 0;
        loop {
            let b = doc[pos];
            pos += 1;
            len |= u64::from(b & 0x7F) << shift;
            shift += 7;
            if b & 0x80 == 0 {
                break;
            }
        }
        pos += len as usize + 4;
        if kind < 6 {
            by_kind[kind] += len as usize + 6;
        }
    }
    println!("frame bytes by kind (end,meta,interval,fault,apply,decision): {by_kind:?}");

    // Field-zeroing decomposition of interval cost.
    use ppep_telemetry::trace::TraceEvent;
    let zero = |f: &dyn Fn(&mut ppep_telemetry::IntervalRecord)| {
        let mut t = TraceReader {
            topology: trace.topology.clone(),
            events: trace.events.clone(),
        };
        for e in &mut t.events {
            if let TraceEvent::Interval(r) = e {
                f(r);
            }
        }
        base as i64 - ppep_telemetry::binary::encode(&t).len() as i64
    };
    println!(
        "samples cost ~{}",
        zero(&|r| for s in &mut r.samples {
            s.counts = Default::default();
        })
    );
    println!(
        "true_counts cost ~{}",
        zero(&|r| r
            .true_counts
            .iter_mut()
            .for_each(|c| *c = Default::default()))
    );
    println!(
        "true_power cost ~{}",
        zero(&|r| {
            r.true_power
                .core_dynamic
                .iter_mut()
                .for_each(|w| *w = Default::default());
            r.true_power
                .cu_idle
                .iter_mut()
                .for_each(|w| *w = Default::default());
            r.true_power.nb_dynamic = Default::default();
            r.true_power.nb_idle = Default::default();
            r.true_power.base = Default::default();
        })
    );
    println!(
        "measured+temp cost ~{}",
        zero(&|r| {
            r.measured_power = Default::default();
            r.temperature = Default::default();
        })
    );
}
