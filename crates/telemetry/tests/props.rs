//! Property-based round-trip suite for the v2 binary trace codec.
//!
//! Three invariants, over arbitrarily generated traces (interval
//! records, faults, applies, and decision frames, with special floats
//! — NaN, infinities, signed zero, subnormals, `f64::MAX` — salted
//! into every numeric field):
//!
//! 1. `decode(encode(t))` reproduces every event **bit-identically**
//!    (compared through `f64::to_bits`, not `==`, so NaN and `-0.0`
//!    are held to the same standard as ordinary values).
//! 2. Every strict prefix of an encoded document is rejected — a
//!    truncated trace never decodes.
//! 3. A corrupted frame body is rejected by its CRC — flipping a bit
//!    inside any non-header byte never yields the original events
//!    back without an error.

use ppep_pmc::events::EVENT_COUNT;
use ppep_pmc::sampler::IntervalSample;
use ppep_pmc::EventCounts;
use ppep_telemetry::binary::{decode, encode, is_binary};
use ppep_telemetry::trace::TraceEvent;
use ppep_telemetry::{DecisionRecord, IntervalRecord, PowerBreakdown, TraceReader};
use ppep_types::time::IntervalIndex;
use ppep_types::vf::NbVfState;
use ppep_types::{Error, Kelvin, Seconds, Topology, VfStateId, VfTable, Watts};
use proptest::prelude::*;

const SPECIALS: [f64; 8] = [
    f64::NAN,
    f64::INFINITY,
    f64::NEG_INFINITY,
    -0.0,
    0.0,
    f64::MIN_POSITIVE,
    f64::MAX,
    -1.0e-308,
];

/// Deterministically dispenses generated values into trace fields,
/// salting in special floats so the codec's escape paths are hit.
struct Feed {
    raw: Vec<f64>,
    picks: Vec<bool>,
    cursor: usize,
}

impl Feed {
    fn new(raw: Vec<f64>, picks: Vec<bool>) -> Self {
        Self {
            raw,
            picks,
            cursor: 0,
        }
    }

    fn next_f64(&mut self) -> f64 {
        let i = self.cursor;
        self.cursor += 1;
        if self.next_bool() && i.is_multiple_of(3) {
            SPECIALS[i % SPECIALS.len()]
        } else {
            self.raw[i % self.raw.len()] * 1.0e3
        }
    }

    fn next_bool(&mut self) -> bool {
        let i = self.cursor;
        self.cursor += 1;
        self.picks[i % self.picks.len()]
    }

    fn next_index(&mut self, n: usize) -> usize {
        let i = self.cursor;
        self.cursor += 1;
        (self.raw[i % self.raw.len()].abs().to_bits() as usize) % n.max(1)
    }

    fn counts(&mut self) -> EventCounts {
        let mut arr = [0.0; EVENT_COUNT];
        for slot in &mut arr {
            *slot = self.next_f64();
        }
        EventCounts::from_array(arr)
    }

    fn vf(&mut self, table: &VfTable) -> VfStateId {
        let states: Vec<VfStateId> = table.states().collect();
        states[self.next_index(states.len())]
    }

    fn assignment(&mut self, table: &VfTable, cus: usize) -> Vec<VfStateId> {
        (0..cus).map(|_| self.vf(table)).collect()
    }

    fn record(&mut self, index: u64, table: &VfTable, cores: usize, cus: usize) -> IntervalRecord {
        IntervalRecord {
            index: IntervalIndex(index),
            duration: Seconds::new(self.next_f64()),
            samples: (0..cores)
                .map(|_| IntervalSample {
                    counts: self.counts(),
                    duration: Seconds::new(self.next_f64()),
                })
                .collect(),
            true_counts: (0..cores).map(|_| self.counts()).collect(),
            measured_power: Watts::new(self.next_f64()),
            true_power: PowerBreakdown {
                core_dynamic: (0..cores).map(|_| Watts::new(self.next_f64())).collect(),
                nb_dynamic: Watts::new(self.next_f64()),
                cu_idle: (0..cus).map(|_| Watts::new(self.next_f64())).collect(),
                nb_idle: Watts::new(self.next_f64()),
                base: Watts::new(self.next_f64()),
            },
            temperature: Kelvin::new(self.next_f64()),
            cu_vf: self.assignment(table, cus),
            nb_state: if self.next_bool() {
                NbVfState::High
            } else {
                NbVfState::Low
            },
            core_busy: (0..cores).map(|_| self.next_bool()).collect(),
        }
    }

    fn fault(&mut self, index: u64) -> TraceEvent {
        let error = match self.next_index(4) {
            0 => Error::SensorDropout {
                sensor: "hall-sensor",
            },
            1 => Error::SensorImplausible {
                sensor: "thermal-diode",
                value: self.next_f64(),
            },
            2 => Error::MsrReadFailed { msr: 0xC001_0299 },
            _ => Error::MissedInterval { missed: 3 },
        };
        TraceEvent::Fault {
            index: IntervalIndex(index),
            error,
        }
    }

    fn decision(&mut self, index: u64, table: &VfTable, cus: usize) -> DecisionRecord {
        DecisionRecord {
            interval: IntervalIndex(index),
            chosen: self.assignment(table, cus),
            predicted_power: self.next_bool().then(|| Watts::new(self.next_f64())),
            realized_power: self.next_bool().then(|| Watts::new(self.next_f64())),
            cap: self.next_bool().then(|| Watts::new(self.next_f64())),
            cap_violated: self.next_bool().then(|| self.next_bool()),
        }
    }

    /// Builds a structurally plausible but numerically adversarial
    /// trace: `n` intervals (some replaced by faults), decisions, and
    /// applies that sometimes echo the previous decision (the v2
    /// apply fast path) and sometimes diverge.
    fn trace(&mut self, n: usize) -> TraceReader {
        let topology = Topology::fx8320();
        let table = topology.vf_table().clone();
        let (cores, cus) = (topology.core_count(), topology.cu_count());
        let mut events = Vec::new();
        for i in 0..n as u64 {
            if self.next_bool() && self.next_bool() {
                events.push(self.fault(i));
                continue;
            }
            events.push(TraceEvent::Interval(self.record(i, &table, cores, cus)));
            let decision = self.decision(i, &table, cus);
            let chosen = decision.chosen.clone();
            events.push(TraceEvent::Decision(decision));
            let apply = if self.next_bool() {
                chosen
            } else {
                self.assignment(&table, cus)
            };
            events.push(TraceEvent::Apply(apply));
        }
        TraceReader { topology, events }
    }
}

/// Bit-exact equality for `f64` fields: NaN equals NaN with the same
/// payload, `0.0` differs from `-0.0`.
fn bits_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

fn counts_eq(a: &EventCounts, b: &EventCounts) -> bool {
    a.iter()
        .zip(b.iter())
        .all(|((ea, va), (eb, vb))| ea == eb && bits_eq(va, vb))
}

fn records_eq(a: &IntervalRecord, b: &IntervalRecord) -> bool {
    a.index == b.index
        && bits_eq(a.duration.as_secs(), b.duration.as_secs())
        && a.samples.len() == b.samples.len()
        && a.samples.iter().zip(&b.samples).all(|(x, y)| {
            counts_eq(&x.counts, &y.counts) && bits_eq(x.duration.as_secs(), y.duration.as_secs())
        })
        && a.true_counts.len() == b.true_counts.len()
        && a.true_counts
            .iter()
            .zip(&b.true_counts)
            .all(|(x, y)| counts_eq(x, y))
        && bits_eq(a.measured_power.as_watts(), b.measured_power.as_watts())
        && watts_vec_eq(&a.true_power.core_dynamic, &b.true_power.core_dynamic)
        && bits_eq(
            a.true_power.nb_dynamic.as_watts(),
            b.true_power.nb_dynamic.as_watts(),
        )
        && watts_vec_eq(&a.true_power.cu_idle, &b.true_power.cu_idle)
        && bits_eq(
            a.true_power.nb_idle.as_watts(),
            b.true_power.nb_idle.as_watts(),
        )
        && bits_eq(a.true_power.base.as_watts(), b.true_power.base.as_watts())
        && bits_eq(a.temperature.as_kelvin(), b.temperature.as_kelvin())
        && a.cu_vf == b.cu_vf
        && a.nb_state == b.nb_state
        && a.core_busy == b.core_busy
}

fn watts_vec_eq(a: &[Watts], b: &[Watts]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| bits_eq(x.as_watts(), y.as_watts()))
}

fn opt_watts_eq(a: Option<Watts>, b: Option<Watts>) -> bool {
    match (a, b) {
        (Some(x), Some(y)) => bits_eq(x.as_watts(), y.as_watts()),
        (None, None) => true,
        _ => false,
    }
}

fn decisions_eq(a: &DecisionRecord, b: &DecisionRecord) -> bool {
    a.interval == b.interval
        && a.chosen == b.chosen
        && opt_watts_eq(a.predicted_power, b.predicted_power)
        && opt_watts_eq(a.realized_power, b.realized_power)
        && opt_watts_eq(a.cap, b.cap)
        && a.cap_violated == b.cap_violated
}

fn events_eq(a: &[TraceEvent], b: &[TraceEvent]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (TraceEvent::Interval(ra), TraceEvent::Interval(rb)) => records_eq(ra, rb),
            (TraceEvent::Apply(aa), TraceEvent::Apply(ab)) => aa == ab,
            (TraceEvent::Decision(da), TraceEvent::Decision(db)) => decisions_eq(da, db),
            (
                TraceEvent::Fault {
                    index: ia,
                    error: ea,
                },
                TraceEvent::Fault {
                    index: ib,
                    error: eb,
                },
            ) => {
                ia == ib
                    && match (ea, eb) {
                        (
                            Error::SensorImplausible {
                                sensor: sa,
                                value: va,
                            },
                            Error::SensorImplausible {
                                sensor: sb,
                                value: vb,
                            },
                        ) => sa == sb && bits_eq(*va, *vb),
                        _ => format!("{ea:?}") == format!("{eb:?}"),
                    }
            }
            _ => false,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariant 1: arbitrary traces round-trip bit-identically.
    #[test]
    fn v2_round_trips_bit_identically(
        raw in prop::collection::vec(prop::num::f64::NORMAL, 96),
        picks in prop::collection::vec(any::<bool>(), 64),
        n in 1usize..6,
    ) {
        let trace = Feed::new(raw, picks).trace(n);
        let doc = encode(&trace);
        prop_assert!(is_binary(&doc));
        let back = decode(&doc).expect("a just-encoded document must decode");
        prop_assert_eq!(&back.topology, &trace.topology);
        prop_assert!(
            events_eq(&back.events, &trace.events),
            "decoded events differ bit-wise from the originals"
        );
        // Determinism: re-encoding the decoded trace reproduces the
        // document byte-for-byte.
        prop_assert_eq!(encode(&back), doc);
    }

    /// Invariant 2: every truncation of an encoded document is
    /// rejected — no prefix parses as a complete trace.
    #[test]
    fn truncated_documents_never_decode(
        raw in prop::collection::vec(prop::num::f64::NORMAL, 48),
        picks in prop::collection::vec(any::<bool>(), 32),
        n in 1usize..4,
    ) {
        let doc = encode(&Feed::new(raw, picks).trace(n));
        for cut in 0..doc.len() - 1 {
            prop_assert!(
                decode(&doc[..cut]).is_err(),
                "truncation at {}/{} decoded",
                cut,
                doc.len()
            );
        }
    }

    /// Invariant 3: corrupting any byte never silently yields the
    /// original events — the per-frame CRC (or structural validation)
    /// catches it.
    #[test]
    fn corrupted_frames_are_rejected(
        raw in prop::collection::vec(prop::num::f64::NORMAL, 48),
        picks in prop::collection::vec(any::<bool>(), 32),
        n in 1usize..4,
        flip in 0usize..4096,
        bit in 0u8..8,
    ) {
        let trace = Feed::new(raw, picks).trace(n);
        let doc = encode(&trace);
        let pos = flip % doc.len();
        let mut bad = doc.clone();
        bad[pos] ^= 1u8 << bit;
        if let Ok(back) = decode(&bad) {
            prop_assert!(
                !(back.topology == trace.topology && events_eq(&back.events, &trace.events)),
                "bit {} of byte {} flipped yet the document decoded to the original",
                bit,
                pos
            );
        }
    }
}
