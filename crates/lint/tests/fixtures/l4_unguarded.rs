//! Intentionally-bad snippet: a public model output returning a unit
//! newtype without the `finite()` guard, plus a guarded sibling, a
//! trivial accessor, and a suppressed wrapper.

pub fn bad_output(x: f64) -> Result<Watts> {
    Ok(Watts::new(x * 2.0))
}

pub fn guarded_output(x: f64) -> Result<Watts> {
    Watts::new(x * 2.0).finite("guarded output")
}

pub fn accessor(&self) -> Watts {
    self.stored
}

// ppep-lint: allow(unguarded-output)
pub fn suppressed_wrapper(x: f64) -> Result<Watts> {
    helper(x)
}
