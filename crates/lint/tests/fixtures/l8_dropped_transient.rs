//! L8 fixture: transient-capable `Result`s discarded without triage.

/// BAD: both discards erase the fault taxonomy -- a transient sensor
/// glitch and a fatal MSR failure vanish identically, and the energy
/// accounting silently skips the interval.
pub fn bad_discards(platform: &mut Platform) {
    let _ = platform.sample();
    platform.resample().ok();
}

/// GOOD: the triage branch retries transients and surfaces the rest.
pub fn triaged(platform: &mut Platform) -> Result<IntervalRecord> {
    match platform.sample() {
        Ok(record) => Ok(record),
        Err(fault) if fault.is_transient() => platform.resample(),
        Err(fault) => Err(fault),
    }
}
