//! Intentionally-bad snippet: every L1 violation class, plus one
//! suppressed occurrence and one test-only occurrence.

pub fn bad_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn bad_expect(x: Option<u32>) -> u32 {
    x.expect("boom")
}

pub fn bad_panic(flag: bool) {
    if flag {
        panic!("the online path must degrade");
    }
}

pub fn bad_index(xs: &[u32], i: usize) -> u32 {
    xs[i + 1]
}

pub fn suppressed(x: Option<u32>) -> u32 {
    x.unwrap() // ppep-lint: allow(unwrap)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
