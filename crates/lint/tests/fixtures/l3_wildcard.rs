//! Intentionally-bad snippet: wildcard arms in matches on a domain
//! enum, one via `_` and one via a lone lowercase binding, plus a
//! suppressed arm and an exhaustive (clean) match.

pub fn bad_underscore(k: FaultKind) -> u32 {
    match k {
        FaultKind::SensorDropout => 1,
        _ => 0,
    }
}

pub fn bad_binding(k: FaultKind) -> u32 {
    match k {
        FaultKind::SensorStuck => 1,
        other => 0,
    }
}

pub fn suppressed(k: FaultKind) -> u32 {
    match k {
        FaultKind::ThermalNan => 1,
        _ => 0, // ppep-lint: allow(wildcard-match)
    }
}

pub fn fine(k: SmallKind) -> u32 {
    match k {
        SmallKind::A => 1,
        SmallKind::B => 2,
    }
}
