//! L7 fixture: a `MutexGuard` held across a frame/I-O boundary.

/// BAD: `handle_frame` runs under the service lock acquired on
/// line 5, so one slow frame stretches every other client's p99.
pub fn bad_hold(service: &Mutex<CappingService>, bytes: &[u8]) -> Result<Vec<u8>> {
    let guard = service.lock().unwrap();
    let (reply, cap) = guard.handle_frame(bytes)?;
    record_cap(cap);
    Ok(reply)
}

/// GOOD: the guard lives in an inner block that ends before the
/// socket write, so the lock hold time stays bounded.
pub fn scoped_hold(service: &Mutex<CappingService>, out: &mut TcpStream, bytes: &[u8]) -> Result<()> {
    let reply = {
        let guard = service.lock().unwrap();
        guard.admit(bytes)?
    };
    out.write_all(&reply)?;
    Ok(())
}
