//! Intentionally-bad snippet: bare `f64` crossing a public unit-typed
//! API, plus a suppressed dimensionless ratio and a fine signature.

pub fn bad_param(power: f64) -> Watts {
    Watts::new(power)
}

pub fn bad_return(w: Watts) -> f64 {
    w.as_watts()
}

pub fn suppressed_ratio(x: f64) -> f64 { // ppep-lint: allow(raw-f64)
    x * 2.0
}

pub fn fine(v: Volts, t: Kelvin) -> Watts {
    Watts::new(v.as_volts() * t.as_kelvin())
}
