//! L5 fixture: a `PpeProjection` consulted after actuation is stale.

/// BAD: the figure emitted on line 9 prices off a projection that
/// stopped modelling the platform when `apply` ran on line 8.
pub fn stale_report(ppep: &mut Ppep, platform: &mut Platform, record: &IntervalRecord) -> Result<Watts> {
    let projection = ppep.project(record)?;
    let decision = decide(&projection)?;
    platform.apply(&decision)?;
    Ok(projection.chip.power)
}

/// GOOD: re-projects after actuating, so the emitted figure prices
/// off the platform's *current* VF state (the Fig. 5 loop closes).
pub fn fresh_report(ppep: &mut Ppep, platform: &mut Platform, record: &IntervalRecord) -> Result<Watts> {
    let projection = ppep.project(record)?;
    let decision = decide(&projection)?;
    platform.apply(&decision)?;
    let projection = ppep.project(record)?;
    Ok(projection.chip.power)
}
