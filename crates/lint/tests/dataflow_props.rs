//! Property tests for the dataflow engine: random statement
//! sequences — straight-line, branching, looping, diverging — are
//! generated from an opcode stream, parsed, lowered to a CFG, and
//! solved twice. The worklist fixpoint ([`solve`]) must terminate
//! within its monotone bound and agree exactly with the deliberately
//! dumb round-robin reference solver ([`solve_naive`]).

use std::collections::BTreeSet;

use ppep_lint::ast::parse_block;
use ppep_lint::cfg::{build, Cfg, CfgNode};
use ppep_lint::dataflow::{solve, solve_naive, Analysis};
use ppep_lint::lexer::lex;
use proptest::prelude::*;

/// Reaching "live bindings": `let x = ..` generates `x`, a rebinding
/// regenerates it, `scope_end` kills it. The same gen/kill shape the
/// L5/L7 rules use, minus the rule-specific fact payloads.
struct LiveBindings;

impl Analysis for LiveBindings {
    type Fact = String;

    fn entry(&self) -> BTreeSet<String> {
        BTreeSet::new()
    }

    fn transfer(&self, node: &CfgNode, input: &BTreeSet<String>) -> BTreeSet<String> {
        let mut out = input.clone();
        for dead in &node.scope_end {
            out.remove(dead);
        }
        for b in &node.binds {
            out.insert(b.clone());
        }
        out
    }
}

/// Renders an opcode stream as a function body. Deterministic: the
/// same opcodes always yield the same source, so failures replay.
fn render_block(ops: &mut std::slice::Iter<'_, u8>, depth: usize, next_var: &mut usize) -> String {
    let mut out = String::new();
    while let Some(&op) = ops.next() {
        match op % 10 {
            0 | 1 => {
                out.push_str(&format!("let v{next_var} = src();\n"));
                *next_var += 1;
            }
            2 if *next_var > 0 => {
                let k = op as usize % *next_var;
                out.push_str(&format!("v{k} = step(v{k});\n"));
            }
            3 if *next_var > 0 => {
                let k = op as usize % *next_var;
                out.push_str(&format!("use_it(v{k});\n"));
            }
            4 if depth < 3 => {
                let then_arm = render_block(ops, depth + 1, next_var);
                let else_arm = render_block(ops, depth + 1, next_var);
                out.push_str(&format!(
                    "if cond() {{\n{then_arm}}} else {{\n{else_arm}}}\n"
                ));
            }
            5 if depth < 3 => {
                let body = render_block(ops, depth + 1, next_var);
                out.push_str(&format!("while go() {{\n{body}}}\n"));
            }
            6 if depth < 3 => {
                let ok_arm = render_block(ops, depth + 1, next_var);
                let err_arm = render_block(ops, depth + 1, next_var);
                out.push_str(&format!(
                    "match poll() {{\nOk(r) => {{\n{ok_arm}}}\nErr(e) => {{\n{err_arm}}}\n}}\n"
                ));
            }
            7 if depth < 3 => {
                let inner = render_block(ops, depth + 1, next_var);
                out.push_str(&format!("{{\n{inner}}}\n"));
            }
            8 => {
                // Diverging statements exercise the unreachable-node
                // guard: everything after them in this block is dead.
                out.push_str(if depth == 0 {
                    "return fin();\n"
                } else {
                    "break;\n"
                });
            }
            _ => out.push_str("tick();\n"),
        }
        // A sub-block consumed the rest of the stream; stop cleanly.
        if depth > 0 && op % 10 == 9 {
            break;
        }
    }
    out
}

fn cfg_for(src: &str) -> Cfg {
    let toks = lex(src).tokens;
    let n = toks.len();
    build(&parse_block(&toks, 0, n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The worklist solver terminates (within its monotone bound, no
    /// safety-valve bail) and computes exactly the naive fixpoint on
    /// arbitrary generated control flow.
    #[test]
    fn worklist_terminates_and_matches_naive(
        ops in proptest::collection::vec(any::<u8>(), 0..40),
    ) {
        let src = render_block(&mut ops.iter(), 0, &mut 0);
        let cfg = cfg_for(&src);
        let fast = solve(&cfg, &LiveBindings);
        let slow = solve_naive(&cfg, &LiveBindings);
        let cap = 100_000usize.max(cfg.nodes.len() * 64);
        prop_assert!(
            fast.iterations <= cap,
            "worklist hit the safety valve on:\n{src}"
        );
        prop_assert_eq!(&fast.inputs, &slow.inputs, "inputs diverge on:\n{}", src);
        prop_assert_eq!(&fast.outputs, &slow.outputs, "outputs diverge on:\n{}", src);
    }

    /// Straight-line programs (no branch opcodes) converge in one
    /// pass: every node is visited a bounded number of times.
    #[test]
    fn straight_line_is_linear(
        ops in proptest::collection::vec(0u8..4, 0..30),
    ) {
        let src = render_block(&mut ops.iter(), 0, &mut 0);
        let cfg = cfg_for(&src);
        let fast = solve(&cfg, &LiveBindings);
        prop_assert!(
            fast.iterations <= 2 * cfg.nodes.len() + 2,
            "straight-line run took {} visits for {} nodes:\n{}",
            fast.iterations,
            cfg.nodes.len(),
            src
        );
    }
}
