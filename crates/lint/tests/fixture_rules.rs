//! Integration tests: each rule against its intentionally-bad fixture
//! under `tests/fixtures/`, asserting the exact violations found and
//! that inline suppressions and allowlist entries are honoured.

use ppep_lint::{lint_source, Allowlist};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// `(rule, line)` pairs for one rule name, in file order.
fn hits(src: &str, crate_name: &str, rule: &str) -> Vec<u32> {
    lint_source("fixtures/test.rs", crate_name, src, &Allowlist::default())
        .into_iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

#[test]
fn l1_fixture_exact_violations() {
    let src = fixture("l1_panic_paths.rs");
    assert_eq!(hits(&src, "ppep-sim", "unwrap"), vec![5]);
    assert_eq!(hits(&src, "ppep-sim", "expect"), vec![9]);
    assert_eq!(hits(&src, "ppep-sim", "panic"), vec![14]);
    assert_eq!(hits(&src, "ppep-sim", "index-arith"), vec![19]);
}

#[test]
fn l1_suppression_and_test_code_are_exempt() {
    let src = fixture("l1_panic_paths.rs");
    // Only line 5 is flagged: the unwrap on line 23 carries a trailing
    // `// ppep-lint: allow(unwrap)` and the one in `mod tests` is test
    // code.
    assert_eq!(hits(&src, "ppep-sim", "unwrap"), vec![5]);
}

#[test]
fn l1_only_fires_in_runtime_crates() {
    let src = fixture("l1_panic_paths.rs");
    assert!(hits(&src, "ppep-experiments", "unwrap").is_empty());
    assert!(hits(&src, "ppep-lint", "panic").is_empty());
}

#[test]
fn l2_fixture_exact_violations() {
    let src = fixture("l2_raw_f64.rs");
    // Line 4: bare `f64` parameter. Line 8: bare `f64` return. The
    // signature on line 12 is suppressed inline; `fine` is unit-typed.
    assert_eq!(hits(&src, "ppep-models", "raw-f64"), vec![4, 8]);
}

#[test]
fn l2_only_fires_in_unit_api_crates() {
    let src = fixture("l2_raw_f64.rs");
    assert!(hits(&src, "ppep-sim", "raw-f64").is_empty());
}

#[test]
fn l2_allowlist_entry_exempts_named_item_only() {
    let src = fixture("l2_raw_f64.rs");
    let allow =
        Allowlist::parse("raw-f64 fixtures/test.rs bad_param -- dimensionless in this fixture")
            .expect("well-formed allowlist");
    let lines: Vec<u32> = lint_source("fixtures/test.rs", "ppep-models", &src, &allow)
        .into_iter()
        .filter(|d| d.rule == "raw-f64")
        .map(|d| d.line)
        .collect();
    assert_eq!(
        lines,
        vec![8],
        "bad_param exempted, bad_return still flagged"
    );
}

#[test]
fn allowlist_without_reason_is_rejected() {
    assert!(Allowlist::parse("raw-f64 fixtures/test.rs bad_param").is_err());
    assert!(Allowlist::parse("raw-f64 fixtures/test.rs bad_param --").is_err());
}

#[test]
fn l3_fixture_exact_violations() {
    let src = fixture("l3_wildcard.rs");
    // Line 8: `_` arm. Line 15: lone lowercase binding. Line 22 is
    // suppressed; the `SmallKind` match is not a domain enum.
    assert_eq!(hits(&src, "ppep-sim", "wildcard-match"), vec![8, 15]);
}

#[test]
fn l4_fixture_exact_violations() {
    let src = fixture("l4_unguarded.rs");
    // Line 5: unguarded `Result<Watts>`. The guarded sibling, the
    // trivial accessor, and the wrapper suppressed from the preceding
    // line are all exempt.
    assert_eq!(hits(&src, "ppep-models", "unguarded-output"), vec![5]);
}

#[test]
fn l4_only_fires_in_the_model_crate() {
    let src = fixture("l4_unguarded.rs");
    assert!(hits(&src, "ppep-core", "unguarded-output").is_empty());
}

#[test]
fn l5_fixture_catches_the_seeded_stale_projection_bug() {
    let src = fixture("l5_stale_projection.rs");
    let diags: Vec<_> = lint_source("fixtures/test.rs", "ppep-core", &src, &Allowlist::default())
        .into_iter()
        .filter(|d| d.rule == "stale-projection")
        .collect();
    // Exactly one firing: `stale_report` reads the projection on
    // line 9 after the line-8 apply; `fresh_report` re-projects.
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.group, "L5");
    assert_eq!(d.line, 9, "points at the stale read");
    // The rustc-style rendering names BOTH sites: the stale use
    // (primary span) and the killing apply() (the `= note:` line).
    let rendered = d.to_string();
    assert!(rendered.contains("--> fixtures/test.rs:9:"), "{rendered}");
    assert!(
        rendered.contains("= note: invalidated by the `apply(..)` at line 8"),
        "{rendered}"
    );
}

#[test]
fn l7_fixture_flags_the_held_guard_only() {
    let src = fixture("l7_lock_boundary.rs");
    // `bad_hold` carries the guard into `handle_frame` on line 7;
    // `scoped_hold` releases it at the inner scope end before the
    // `write_all` boundary.
    assert_eq!(hits(&src, "ppep-serve", "lock-across-boundary"), vec![7]);
}

#[test]
fn l8_fixture_flags_both_discard_shapes() {
    let src = fixture("l8_dropped_transient.rs");
    // Line 7: `let _ = platform.sample()`. Line 8: `.ok()` chained
    // onto `resample()`. The `is_transient()` triage match is clean.
    assert_eq!(hits(&src, "ppep-core", "dropped-transient"), vec![7, 8]);
}

#[test]
fn temporal_rules_only_fire_in_ppep_crates() {
    for name in [
        "l5_stale_projection.rs",
        "l7_lock_boundary.rs",
        "l8_dropped_transient.rs",
    ] {
        let src = fixture(name);
        let diags = lint_source("fixtures/test.rs", "proptest", &src, &Allowlist::default());
        assert!(
            diags.is_empty(),
            "{name} flagged outside ppep crates: {diags:?}"
        );
    }
}

/// Every `L*` group alias documented in the crate doc-comment's rule
/// table must expand to a non-empty subset of `ALL_RULES` — a table
/// row whose alias expands to nothing is dead documentation, and an
/// alias the table omits is an undocumented escape hatch.
#[test]
fn every_documented_group_alias_expands() {
    let doc = include_str!("../src/lib.rs");
    let mut groups = Vec::new();
    for line in doc.lines() {
        let Some(rest) = line.strip_prefix("//! | L") else {
            continue;
        };
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if !digits.is_empty() {
            groups.push(format!("L{digits}"));
        }
    }
    assert!(
        groups.len() >= 8,
        "doc table lists {} groups; expected the full L1..L8 set",
        groups.len()
    );
    let mut covered = std::collections::BTreeSet::new();
    for g in &groups {
        let expansion = ppep_lint::rules::expand_rule_alias(g);
        assert!(
            !expansion.is_empty(),
            "documented alias {g} expands to nothing"
        );
        for rule in expansion {
            assert!(
                ppep_lint::rules::ALL_RULES.contains(&rule.as_str()),
                "alias {g} expands to unknown rule {rule}"
            );
            covered.insert(rule);
        }
    }
    // And jointly the documented groups cover the whole rule set.
    assert_eq!(covered.len(), ppep_lint::rules::ALL_RULES.len());
}

#[test]
fn workspace_is_clean_under_the_checked_in_allowlist() {
    // The acceptance invariant for the whole PR: `cargo run -p
    // ppep-lint` exits 0 at the repo root.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let report = ppep_lint::lint_workspace(&root).expect("workspace walk succeeds");
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        report.diagnostics.is_empty(),
        "workspace has violations:\n{}",
        rendered.join("\n")
    );
    assert!(
        report.unused_allow.is_empty(),
        "stale allowlist entries: {:?}",
        report.unused_allow
    );
}
