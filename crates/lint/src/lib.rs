//! `ppep-lint`: a workspace static analyzer enforcing PPEP's domain
//! invariants — rules the compiler and clippy cannot express.
//!
//! | Group | Rule(s) | Invariant |
//! |-------|---------|-----------|
//! | L1 | `unwrap`, `expect`, `panic`, `index-arith`, `index-nonliteral` | the runtime crates (`ppep-core`, `ppep-dvfs`, `ppep-models`, `ppep-obs`, `ppep-pmc`, `ppep-rig`, `ppep-serve`, `ppep-sim`, `ppep-telemetry` — including the v2 binary trace codec and the session layer) never panic in non-test code; failures propagate as `ppep_types::Error`, and every non-literal index survives only with a recorded bounds invariant |
//! | L2 | `raw-f64` | public signatures of `ppep-models` / `ppep-core` use unit newtypes, never bare `f64` (dimensionless ratios are allowlisted with reasons) |
//! | L3 | `wildcard-match` | matches on domain enums are exhaustive with no wildcard arm |
//! | L4 | `unguarded-output` | public model outputs route through `ppep_types::units::finite` so NaN/∞ cannot enter projections |
//! | L5 | `stale-projection` | a `PpeProjection` is never read after an `apply(..)`/`set_vf(..)`/`set_enforced_cap(..)` boundary without re-projection — every DVFS decision prices off a fresh model of the *current* VF state (dataflow rule) |
//! | L6 | `unbound-span` | tracing span guards are bound to live bindings (`let _g = rec.span(..)`), never dropped on the spot by a bare statement or `let _ =` |
//! | L7 | `lock-across-boundary` | a `MutexGuard` is never live across `handle_frame`, the v2 frame codec (including `read_frame_bytes`), or socket/file I/O calls — lock hold times stay bounded so the sharded serve-path p99 does, with no allowlisted exceptions (dataflow rule) |
//! | L8 | `dropped-transient` | a `Result` from `sample()`/`resample()`/platform apply paths is never discarded via `let _ =` / `.ok()` without an `is_transient()` triage branch — faults either retry or surface, preserving the energy-accounting identity (dataflow rule) |
//!
//! Violations print as rustc-style diagnostics and make the binary
//! exit nonzero, so `cargo run -p ppep-lint` slots directly into CI.
//! Two escape hatches exist, both auditable:
//!
//! * a per-line `// ppep-lint: allow(rule)` suppression (trailing, or
//!   on the line above);
//! * the workspace allowlist `ppep-lint.allow`, whose entries require
//!   a recorded reason.
//!
//! The analyzer lexes Rust itself (see [`lexer`]) instead of using
//! `syn`, so it — like the rest of the workspace — builds with zero
//! registry access. L1–L4/L6 pattern-match the token stream; the
//! temporal rules (L5/L7/L8) parse each fn body into an AST
//! ([`ast`]), lower it to a statement-granularity CFG ([`cfg`]), and
//! run forward dataflow ([`dataflow`]) to track facts across
//! branches and loops.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod ast;
pub mod cfg;
pub mod context;
pub mod dataflow;
pub mod diag;
pub mod lexer;
pub mod rules;

pub use allow::Allowlist;
pub use diag::Diagnostic;

use context::SourceFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Name of the workspace allowlist file, resolved against the root.
pub const ALLOWLIST_FILE: &str = "ppep-lint.allow";

/// Maps a workspace-relative `.rs` path to the Cargo package it
/// belongs to, or `None` when the file is out of scope (fixtures,
/// integration tests, examples, build output).
pub fn crate_name_for(rel_path: &str) -> Option<String> {
    let parts: Vec<&str> = rel_path.split('/').collect();
    match parts.as_slice() {
        ["src", ..] => Some("ppep-repro".to_string()),
        ["crates", dir, "src", ..] => Some(match *dir {
            // The offline shims re-export under the real crates' names.
            "randshim" => "rand".to_string(),
            "proptestshim" => "proptest".to_string(),
            _ => format!("ppep-{dir}"),
        }),
        _ => None,
    }
}

/// Lints one in-memory source file under a given crate identity.
/// This is the entry point the fixture tests drive.
pub fn lint_source(path: &str, crate_name: &str, src: &str, allow: &Allowlist) -> Vec<Diagnostic> {
    let file = SourceFile::parse(path, crate_name, src);
    rules::check_file(&file, allow)
}

/// Result of a workspace run.
pub struct WorkspaceReport {
    /// All violations, sorted by path and position.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files analyzed.
    pub files: usize,
    /// Allowlist entries that matched nothing across the whole run —
    /// stale exemptions the binary turns into a nonzero exit.
    pub unused_allow: Vec<allow::AllowEntry>,
}

/// Walks the workspace at `root` and runs every rule. Reads the
/// allowlist from `<root>/ppep-lint.allow` when present.
///
/// # Errors
///
/// Returns `io::Error` for unreadable files, and
/// `io::ErrorKind::InvalidData` for a malformed allowlist.
pub fn lint_workspace(root: &Path) -> io::Result<WorkspaceReport> {
    let allow = match fs::read_to_string(root.join(ALLOWLIST_FILE)) {
        Ok(text) => {
            Allowlist::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Allowlist::default(),
        Err(e) => return Err(e),
    };
    let mut files_to_lint: Vec<PathBuf> = Vec::new();
    collect_rs_files(&root.join("src"), &mut files_to_lint)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            collect_rs_files(&dir.join("src"), &mut files_to_lint)?;
        }
    }
    files_to_lint.sort();

    let mut diagnostics = Vec::new();
    let mut files = 0usize;
    for path in files_to_lint {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(crate_name) = crate_name_for(&rel) else {
            continue;
        };
        let src = fs::read_to_string(&path)?;
        diagnostics.extend(lint_source(&rel, &crate_name, &src, &allow));
        files += 1;
    }
    diag::sort(&mut diagnostics);
    let unused_allow = allow.unused();
    Ok(WorkspaceReport {
        diagnostics,
        files,
        unused_allow,
    })
}

/// Recursively collects `.rs` files under `dir` (no-op when absent).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_name_mapping() {
        assert_eq!(
            crate_name_for("crates/core/src/daemon.rs").as_deref(),
            Some("ppep-core")
        );
        assert_eq!(crate_name_for("src/lib.rs").as_deref(), Some("ppep-repro"));
        assert_eq!(
            crate_name_for("crates/randshim/src/lib.rs").as_deref(),
            Some("rand")
        );
        assert_eq!(crate_name_for("tests/integration.rs"), None);
        assert_eq!(crate_name_for("crates/lint/tests/fixtures/bad.rs"), None);
    }

    /// The v2 binary trace codec must stay under L1 (panic-free)
    /// coverage: its path maps to `ppep-telemetry`, and that crate is
    /// in the runtime set. If either side of this pairing breaks, the
    /// codec silently drops out of the analyzer's scope.
    #[test]
    fn v2_codec_is_l1_covered() {
        let name = crate_name_for("crates/telemetry/src/binary.rs");
        assert_eq!(name.as_deref(), Some("ppep-telemetry"));
        assert!(rules::RUNTIME_CRATES.contains(&"ppep-telemetry"));
    }
}
