//! A lightweight statement/expression AST over the [`crate::lexer`]
//! token stream.
//!
//! The token-scanning rules (L1–L4, L6) pattern-match locally; the
//! temporal rules (L5 stale-projection, L7 lock-across-boundary, L8
//! dropped-transient) need to know *what happens between two program
//! points*, which requires statement structure: a recursive-descent
//! parse of each function body into `let` bindings, assignments,
//! `if`/`match`/loop control flow, and opaque expression statements.
//! [`crate::cfg`] lowers the result to a control-flow graph and
//! [`crate::dataflow`] runs fixpoint analyses over it.
//!
//! The parser is deliberately *approximate* where precision does not
//! pay for itself: an expression (including a block expression used as
//! a `let` initializer, or a closure body) is summarized as the flat
//! set of calls, identifier uses, and `drop(x)` releases it contains,
//! in token order. It is also *total*: confused input degrades to an
//! opaque expression statement, never a panic — the linter must
//! survive every file in the workspace plus arbitrary fixtures.

use crate::lexer::{Token, TokenKind};

/// One function/method call site inside an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// The called name (`apply`, `lock`, `project_nb`, …) — the last
    /// path segment for free calls, the method name for method calls.
    pub name: String,
    /// Whether the call is a method call (preceded by `.`).
    pub method: bool,
    /// 1-based source line of the name token.
    pub line: u32,
    /// 1-based source column of the name token.
    pub col: u32,
    /// Token index of the name token (orders events within one
    /// statement).
    pub idx: usize,
    /// Token index of the `)` closing the argument list — `idx <
    /// other.idx <= close` means `other` is nested in this call's
    /// arguments.
    pub close: usize,
}

/// One identifier use (expression position) inside an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Use {
    /// The identifier.
    pub name: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Token index (orders events within one statement).
    pub idx: usize,
}

/// Flat summary of one expression: calls, uses, and `drop(x)`
/// releases, in token order. Macros are recorded by name but their
/// invocations are *not* calls (a `write!` into a `String` is not
/// I/O).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExprInfo {
    /// Call sites, in token order.
    pub calls: Vec<Call>,
    /// Identifier uses, in token order.
    pub uses: Vec<Use>,
    /// Bindings explicitly released via `drop(x)` /
    /// `std::mem::drop(x)`.
    pub dropped: Vec<String>,
}

impl ExprInfo {
    /// True when any call matches `name`.
    pub fn calls_name(&self, name: &str) -> bool {
        self.calls.iter().any(|c| c.name == name)
    }

    /// The first call whose name is in `names`, if any.
    pub fn first_call_in<'a>(&'a self, names: &[&str]) -> Option<&'a Call> {
        self.calls.iter().find(|c| names.contains(&c.name.as_str()))
    }

    /// True when `call` sits inside another call's argument list.
    pub fn nested(&self, call: &Call) -> bool {
        self.calls
            .iter()
            .any(|c| c.idx < call.idx && call.idx <= c.close)
    }

    /// True when the expression's *result* comes from a call named in
    /// `names`: such a call exists outside any argument list, with no
    /// later non-nested call consuming it. `decide(&project(x))`
    /// produces a decision, not a projection.
    pub fn tail_call_in(&self, names: &[&str]) -> bool {
        self.calls.iter().any(|c| {
            names.contains(&c.name.as_str())
                && !self.nested(c)
                && !self
                    .calls
                    .iter()
                    .any(|c2| c2.idx > c.close && !self.nested(c2))
        })
    }
}

/// One match arm: its pattern bindings, guard expression, and body.
#[derive(Debug, Clone)]
pub struct Arm {
    /// Names bound by the arm pattern.
    pub binds: Vec<String>,
    /// The guard expression (`if …` after the pattern), empty when
    /// absent.
    pub guard: ExprInfo,
    /// The arm body.
    pub body: Block,
}

/// A `{ … }` statement sequence.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// The statements, in source order.
    pub stmts: Vec<Stmt>,
}

/// One statement.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// 1-based line the statement starts on.
    pub line: u32,
    /// The statement's shape.
    pub kind: StmtKind,
}

/// Statement shapes the temporal rules distinguish.
#[derive(Debug, Clone)]
pub enum StmtKind {
    /// `let <pat>(: <ty>)? = <init>;` (including `let … else`).
    Let {
        /// Names bound by the pattern.
        names: Vec<String>,
        /// True when the pattern is exactly `_` (the value is
        /// discarded on the spot).
        discard: bool,
        /// Identifiers appearing in the type annotation.
        ty: Vec<String>,
        /// The initializer summary (empty for `let x;`).
        init: ExprInfo,
    },
    /// `<ident> = <expr>;` — a rebinding of an existing local.
    Assign {
        /// The assigned local.
        name: String,
        /// The right-hand side summary.
        expr: ExprInfo,
    },
    /// An opaque expression statement (everything else).
    Expr {
        /// The expression summary.
        expr: ExprInfo,
    },
    /// `if <cond> { … } (else { … })?` — `else if` chains nest in
    /// `else_blk`.
    If {
        /// The condition summary.
        cond: ExprInfo,
        /// The `then` block.
        then_blk: Block,
        /// The `else` block, if any.
        else_blk: Option<Block>,
    },
    /// `loop` / `while` / `while let` / `for` — one loop shape.
    Loop {
        /// Header summary (condition or iterated expression).
        header: ExprInfo,
        /// Names bound per-iteration (`for` patterns, `while let`).
        binds: Vec<String>,
        /// The loop body.
        body: Block,
    },
    /// `match <scrutinee> { <arms> }`.
    Match {
        /// The scrutinee summary.
        scrutinee: ExprInfo,
        /// The arms.
        arms: Vec<Arm>,
    },
    /// `return <expr>?;` — diverges.
    Return {
        /// The returned expression summary.
        expr: ExprInfo,
    },
    /// `break <expr>?;` — jumps to the innermost loop exit.
    Break {
        /// The break-value summary.
        expr: ExprInfo,
    },
    /// `continue;` — jumps to the innermost loop header.
    Continue,
    /// A bare `{ … }` block statement.
    Block {
        /// The inner block.
        body: Block,
    },
}

/// Rust keywords (plus `self`/`Self`) excluded from identifier uses
/// and pattern bindings.
const KEYWORDS: [&str; 38] = [
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "unsafe", "use", "where",
];

/// Item-introducing keywords that can appear nested inside a function
/// body; their bodies are parsed separately (via their own `fn`
/// signatures) or are out of scope entirely.
const ITEM_KEYWORDS: [&str; 8] = [
    "fn", "struct", "enum", "impl", "mod", "trait", "use", "union",
];

/// Parses the token range `[lo, hi)` (a function body, braces
/// excluded) into a [`Block`].
pub fn parse_block(toks: &[Token], lo: usize, hi: usize) -> Block {
    let mut p = Parser { toks, hi };
    p.block(lo)
}

struct Parser<'a> {
    toks: &'a [Token],
    hi: usize,
}

/// What ends an expression consumed at depth 0.
#[derive(Clone, Copy, PartialEq)]
enum Term {
    /// `;` (ordinary statements).
    Semi,
    /// `,` (brace-less match-arm bodies).
    Comma,
}

impl<'a> Parser<'a> {
    fn tok(&self, i: usize) -> Option<&Token> {
        if i < self.hi {
            self.toks.get(i)
        } else {
            None
        }
    }

    fn is(&self, i: usize, text: &str) -> bool {
        self.tok(i).is_some_and(|t| t.text == text)
    }

    fn is_ident(&self, i: usize, text: &str) -> bool {
        self.tok(i).is_some_and(|t| t.is_ident(text))
    }

    fn line(&self, i: usize) -> u32 {
        self.tok(i).map_or(0, |t| t.line)
    }

    /// Index of the token matching the open bracket at `open`, clamped
    /// to the parse range.
    fn close_of(&self, open: usize) -> usize {
        crate::context::matching_bracket(self.toks, open).min(self.hi.saturating_sub(1))
    }

    /// Scans forward from `i` for `what` at bracket depth 0, stopping
    /// at `self.hi`. Returns the index, or `self.hi` when not found.
    /// An open bracket in `what` matches *before* it deepens; an
    /// unbalanced close ends the region.
    fn find_depth0(&self, mut i: usize, what: &[&str]) -> usize {
        let mut depth = 0i64;
        while i < self.hi {
            let text = self.toks[i].text.as_str();
            if depth == 0 && (what.contains(&text) || matches!(text, ")" | "]" | "}")) {
                return i;
            }
            match text {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                _ => {}
            }
            i += 1;
        }
        self.hi
    }

    /// Parses statements in `[lo, self.hi)`.
    fn block(&mut self, lo: usize) -> Block {
        let mut stmts = Vec::new();
        let mut i = lo;
        while i < self.hi {
            let before = i;
            if self.is(i, ";") {
                i += 1;
                continue;
            }
            // Attributes on statements: skip `#[…]`.
            if self.is(i, "#") && self.is(i + 1, "[") {
                i = self.close_of(i + 1) + 1;
                continue;
            }
            if let Some((stmt, next)) = self.stmt(i, Term::Semi) {
                stmts.push(stmt);
                i = next;
            } else {
                i += 1;
            }
            // Defensive: always make progress.
            if i <= before {
                i = before + 1;
            }
        }
        Block { stmts }
    }

    /// Parses the sub-block `[open+1, close)` where `open` is a `{`.
    fn braced_block(&mut self, open: usize) -> (Block, usize) {
        let close = self.close_of(open);
        let saved_hi = self.hi;
        self.hi = close;
        let blk = self.block(open + 1);
        self.hi = saved_hi;
        (blk, close + 1)
    }

    /// Parses one statement starting at `i`; returns it and the index
    /// just past it. `term` selects the expression terminator (`;` for
    /// ordinary statements, `,` for brace-less match arms).
    fn stmt(&mut self, i: usize, term: Term) -> Option<(Stmt, usize)> {
        let line = self.line(i);
        let t = self.tok(i)?;
        if t.kind == TokenKind::Ident {
            match t.text.as_str() {
                "let" => return self.let_stmt(i, line),
                "if" => return self.if_stmt(i, line),
                "while" | "for" | "loop" => return self.loop_stmt(i, line),
                "match" => return self.match_stmt(i, line),
                "return" => {
                    let end = self.expr_end(i + 1, term);
                    let expr = scan_expr(self.toks, i + 1, end);
                    return Some((
                        Stmt {
                            line,
                            kind: StmtKind::Return { expr },
                        },
                        end + 1,
                    ));
                }
                "break" => {
                    let end = self.expr_end(i + 1, term);
                    let expr = scan_expr(self.toks, i + 1, end);
                    return Some((
                        Stmt {
                            line,
                            kind: StmtKind::Break { expr },
                        },
                        end + 1,
                    ));
                }
                "continue" => {
                    let end = self.expr_end(i + 1, term);
                    return Some((
                        Stmt {
                            line,
                            kind: StmtKind::Continue,
                        },
                        end + 1,
                    ));
                }
                "unsafe" | "async" if self.is(i + 1, "{") => {
                    let (body, next) = self.braced_block(i + 1);
                    return Some((
                        Stmt {
                            line,
                            kind: StmtKind::Block { body },
                        },
                        next,
                    ));
                }
                kw if ITEM_KEYWORDS.contains(&kw) => {
                    // A nested item: skip to its end (`;` or matching
                    // `{…}`). Nested `fn` bodies are analyzed under
                    // their own signatures.
                    let stop = self.find_depth0(i, &["{", ";"]);
                    let next = if self.is(stop, "{") {
                        self.close_of(stop) + 1
                    } else {
                        stop + 1
                    };
                    return Some((
                        Stmt {
                            line,
                            kind: StmtKind::Expr {
                                expr: ExprInfo::default(),
                            },
                        },
                        next,
                    ));
                }
                _ => {}
            }
        }
        if t.is_punct("{") {
            let (body, next) = self.braced_block(i);
            return Some((
                Stmt {
                    line,
                    kind: StmtKind::Block { body },
                },
                next,
            ));
        }
        // Simple rebinding: `ident = expr` (not `==`, not `+=`).
        if t.kind == TokenKind::Ident
            && self.is(i + 1, "=")
            && !self.is(i + 2, "=")
            && !KEYWORDS.contains(&t.text.as_str())
        {
            let name = t.text.clone();
            let end = self.expr_end(i + 2, term);
            let expr = scan_expr(self.toks, i + 2, end);
            return Some((
                Stmt {
                    line,
                    kind: StmtKind::Assign { name, expr },
                },
                end + 1,
            ));
        }
        // Opaque expression statement.
        let end = self.expr_end(i, term);
        let expr = scan_expr(self.toks, i, end);
        Some((
            Stmt {
                line,
                kind: StmtKind::Expr { expr },
            },
            end + 1,
        ))
    }

    /// Index of the token ending the expression starting at `i` (the
    /// terminator itself, or `self.hi`).
    fn expr_end(&self, i: usize, term: Term) -> usize {
        match term {
            Term::Semi => self.find_depth0(i, &[";"]),
            Term::Comma => self.find_depth0(i, &[",", ";"]),
        }
    }

    fn let_stmt(&mut self, i: usize, line: u32) -> Option<(Stmt, usize)> {
        // Pattern (and optional type) run to the first depth-0 `=`
        // that is not `==`; a `let x;` declaration runs to the `;`.
        let mut eq = self.find_depth0(i + 1, &["=", ";"]);
        while self.is(eq, "=") && self.is(eq + 1, "=") {
            eq = self.find_depth0(eq + 2, &["=", ";"]);
        }
        let header_end = eq;
        let colon = {
            // Split pattern from type at a top-level `:` (`::` is a
            // distinct token, so a single `:` is the annotation).
            let c = self.find_depth0(i + 1, &[":"]);
            if c < header_end {
                c
            } else {
                header_end
            }
        };
        let (names, discard) = pattern_binds(self.toks, i + 1, colon);
        let ty: Vec<String> = if colon < header_end {
            self.toks[colon + 1..header_end]
                .iter()
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.clone())
                .collect()
        } else {
            Vec::new()
        };
        let (init, next) = if self.is(eq, "=") {
            let end = self.find_depth0(eq + 1, &[";"]);
            (scan_expr(self.toks, eq + 1, end), end + 1)
        } else {
            (ExprInfo::default(), eq + 1)
        };
        Some((
            Stmt {
                line,
                kind: StmtKind::Let {
                    names,
                    discard,
                    ty,
                    init,
                },
            },
            next,
        ))
    }

    fn if_stmt(&mut self, i: usize, line: u32) -> Option<(Stmt, usize)> {
        let open = self.find_depth0(i + 1, &["{"]);
        if !self.is(open, "{") {
            // Malformed; degrade to an opaque expression.
            let end = self.expr_end(i, Term::Semi);
            let expr = scan_expr(self.toks, i, end);
            return Some((
                Stmt {
                    line,
                    kind: StmtKind::Expr { expr },
                },
                end + 1,
            ));
        }
        let cond = scan_expr(self.toks, i + 1, open);
        let (then_blk, mut next) = self.braced_block(open);
        let mut else_blk = None;
        if self.is_ident(next, "else") {
            if self.is_ident(next + 1, "if") {
                // `else if …` nests as a one-statement else block.
                if let Some((stmt, after)) = self.if_stmt(next + 1, self.line(next + 1)) {
                    else_blk = Some(Block { stmts: vec![stmt] });
                    next = after;
                }
            } else if self.is(next + 1, "{") {
                let (blk, after) = self.braced_block(next + 1);
                else_blk = Some(blk);
                next = after;
            }
        }
        Some((
            Stmt {
                line,
                kind: StmtKind::If {
                    cond,
                    then_blk,
                    else_blk,
                },
            },
            next,
        ))
    }

    fn loop_stmt(&mut self, i: usize, line: u32) -> Option<(Stmt, usize)> {
        let open = self.find_depth0(i + 1, &["{"]);
        if !self.is(open, "{") {
            let end = self.expr_end(i, Term::Semi);
            let expr = scan_expr(self.toks, i, end);
            return Some((
                Stmt {
                    line,
                    kind: StmtKind::Expr { expr },
                },
                end + 1,
            ));
        }
        let (binds, header) = if self.is_ident(i, "for") {
            // `for <pat> in <expr>` — the pattern binds per iteration.
            let in_kw = {
                let mut j = i + 1;
                let mut depth = 0i64;
                loop {
                    if j >= open {
                        break open;
                    }
                    match self.toks[j].text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "in" if depth == 0 && self.toks[j].kind == TokenKind::Ident => break j,
                        _ => {}
                    }
                    j += 1;
                }
            };
            let (names, _) = pattern_binds(self.toks, i + 1, in_kw);
            (names, scan_expr(self.toks, in_kw + 1, open))
        } else if self.is_ident(i, "while") && self.is_ident(i + 1, "let") {
            // `while let <pat> = <expr>` — pattern binds per iteration.
            let eq = self.find_depth0(i + 2, &["="]);
            let (names, _) = pattern_binds(self.toks, i + 2, eq.min(open));
            (names, scan_expr(self.toks, (eq + 1).min(open), open))
        } else {
            (Vec::new(), scan_expr(self.toks, i + 1, open))
        };
        let (body, next) = self.braced_block(open);
        Some((
            Stmt {
                line,
                kind: StmtKind::Loop {
                    header,
                    binds,
                    body,
                },
            },
            next,
        ))
    }

    fn match_stmt(&mut self, i: usize, line: u32) -> Option<(Stmt, usize)> {
        let open = self.find_depth0(i + 1, &["{"]);
        if !self.is(open, "{") {
            let end = self.expr_end(i, Term::Semi);
            let expr = scan_expr(self.toks, i, end);
            return Some((
                Stmt {
                    line,
                    kind: StmtKind::Expr { expr },
                },
                end + 1,
            ));
        }
        let scrutinee = scan_expr(self.toks, i + 1, open);
        let close = self.close_of(open);
        let mut arms = Vec::new();
        let saved_hi = self.hi;
        self.hi = close;
        let mut k = open + 1;
        while k < close {
            if self.is(k, ",") {
                k += 1;
                continue;
            }
            let arrow = self.find_depth0(k, &["=>"]);
            if !self.is(arrow, "=>") {
                break;
            }
            // Pattern vs guard: split at a top-level `if`.
            let guard_at = {
                let mut j = k;
                let mut depth = 0i64;
                loop {
                    if j >= arrow {
                        break arrow;
                    }
                    match self.toks[j].text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "if" if depth == 0 && self.toks[j].kind == TokenKind::Ident => break j,
                        _ => {}
                    }
                    j += 1;
                }
            };
            let (binds, _) = pattern_binds(self.toks, k, guard_at);
            let guard = scan_expr(self.toks, guard_at, arrow);
            let (body, next) = if self.is(arrow + 1, "{") {
                self.braced_block(arrow + 1)
            } else if let Some((stmt, after)) = self.stmt(arrow + 1, Term::Comma) {
                (Block { stmts: vec![stmt] }, after)
            } else {
                (Block::default(), arrow + 2)
            };
            arms.push(Arm { binds, guard, body });
            k = next;
        }
        self.hi = saved_hi;
        Some((
            Stmt {
                line,
                kind: StmtKind::Match { scrutinee, arms },
            },
            close + 1,
        ))
    }
}

/// Names bound by a pattern in `[lo, hi)`, plus whether the pattern is
/// exactly `_`. Lowercase identifiers that are not keywords, path
/// segments (`Foo::…`), or struct-pattern field names (`f: pat`) are
/// bindings; everything else (variants, types, literals) is not.
pub fn pattern_binds(toks: &[Token], lo: usize, hi: usize) -> (Vec<String>, bool) {
    let hi = hi.min(toks.len());
    if lo >= hi {
        return (Vec::new(), false);
    }
    let slice = &toks[lo..hi];
    if let [t] = slice {
        if t.text == "_" {
            return (Vec::new(), true);
        }
    }
    let mut names = Vec::new();
    for (off, t) in slice.iter().enumerate() {
        let i = lo + off;
        if t.kind != TokenKind::Ident
            || t.text == "_"
            || KEYWORDS.contains(&t.text.as_str())
            || t.text.chars().next().is_some_and(|c| c.is_uppercase())
        {
            continue;
        }
        let prev_path = i > 0 && toks[i - 1].is_punct("::");
        // Only look *inside* the pattern slice: a `:` just past `hi`
        // is the `let`/param type annotation, not a struct-field name.
        let next = toks.get(i + 1).filter(|_| i + 1 < hi);
        let next_path = next.is_some_and(|n| n.is_punct("::"));
        let field_name = next.is_some_and(|n| n.is_punct(":"));
        if !prev_path && !next_path && !field_name {
            names.push(t.text.clone());
        }
    }
    names.dedup();
    (names, false)
}

/// Summarizes the expression tokens in `[lo, hi)`: calls, identifier
/// uses, and `drop(x)` releases, in token order.
pub fn scan_expr(toks: &[Token], lo: usize, hi: usize) -> ExprInfo {
    let hi = hi.min(toks.len());
    let mut out = ExprInfo::default();
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let prev = (i > lo).then(|| &toks[i - 1]);
        let next = toks.get(i + 1).filter(|_| i + 1 < hi);
        if KEYWORDS.contains(&t.text.as_str()) {
            i += 1;
            continue;
        }
        // Macro invocation: name recorded nowhere — `write!` into a
        // String is not a boundary call.
        if next.is_some_and(|n| n.is_punct("!")) {
            i += 2;
            continue;
        }
        if next.is_some_and(|n| n.is_punct("(")) {
            out.calls.push(Call {
                name: t.text.clone(),
                method: prev.is_some_and(|p| p.is_punct(".")),
                line: t.line,
                col: t.col,
                idx: i,
                close: crate::context::matching_bracket(toks, i + 1),
            });
            // `drop(x)` / `mem::drop(x)` releases a binding.
            if t.text == "drop" {
                if let (Some(arg), Some(close)) = (toks.get(i + 2), toks.get(i + 3)) {
                    if arg.kind == TokenKind::Ident && close.is_punct(")") {
                        out.dropped.push(arg.text.clone());
                    }
                }
            }
            i += 1;
            continue;
        }
        // Field access / path segment / struct-field name / type: not
        // an expression-position use of a local.
        let after_dot_or_path = prev.is_some_and(|p| p.is_punct(".") || p.is_punct("::"));
        let before_path = next.is_some_and(|n| n.is_punct("::"));
        let field_init = next.is_some_and(|n| n.is_punct(":"));
        let is_type = t.text.chars().next().is_some_and(|c| c.is_uppercase());
        if !after_dot_or_path && !before_path && !field_init && !is_type && t.text != "_" {
            out.uses.push(Use {
                name: t.text.clone(),
                line: t.line,
                col: t.col,
                idx: i,
            });
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Block {
        let toks = lex(src).tokens;
        let n = toks.len();
        parse_block(&toks, 0, n)
    }

    #[test]
    fn let_binds_and_init_calls() {
        let b = parse("let projection = self.ppep.project(&record)?;");
        let [Stmt {
            kind:
                StmtKind::Let {
                    names,
                    discard,
                    init,
                    ..
                },
            ..
        }] = &b.stmts[..]
        else {
            panic!("expected one let: {:?}", b.stmts);
        };
        assert_eq!(names, &["projection"]);
        assert!(!discard);
        assert!(init.calls_name("project"));
        assert!(init.uses.iter().any(|u| u.name == "record"));
    }

    #[test]
    fn discard_let_is_detected() {
        let b = parse("let _ = platform.sample();");
        let [Stmt {
            kind: StmtKind::Let { discard, init, .. },
            ..
        }] = &b.stmts[..]
        else {
            panic!("expected one let");
        };
        assert!(*discard);
        assert!(init.calls_name("sample"));
    }

    #[test]
    fn control_flow_nests() {
        let b = parse(
            "let p = project(&r); if hot { platform.apply(&d)?; } else { idle(); } use_it(&p);",
        );
        assert_eq!(b.stmts.len(), 3);
        let StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } = &b.stmts[1].kind
        else {
            panic!("expected if: {:?}", b.stmts[1]);
        };
        assert!(cond.uses.iter().any(|u| u.name == "hot"));
        assert_eq!(then_blk.stmts.len(), 1);
        assert_eq!(else_blk.as_ref().map(|e| e.stmts.len()), Some(1));
    }

    #[test]
    fn loops_and_breaks() {
        let b = parse("for (i, rec) in xs.iter().enumerate() { if bad { break; } work(rec); }");
        let StmtKind::Loop {
            binds,
            header,
            body,
        } = &b.stmts[0].kind
        else {
            panic!("expected loop");
        };
        assert_eq!(binds, &["i", "rec"]);
        assert!(header.uses.iter().any(|u| u.name == "xs"));
        assert_eq!(body.stmts.len(), 2);
    }

    #[test]
    fn match_arms_bind_and_guard() {
        let b = parse(
            "match measured { Ok(record) => consume(record), Err(e) if e.is_transient() => { degrade(); } Err(e) => return Err(e), }",
        );
        let StmtKind::Match { arms, scrutinee } = &b.stmts[0].kind else {
            panic!("expected match");
        };
        assert!(scrutinee.uses.iter().any(|u| u.name == "measured"));
        assert_eq!(arms.len(), 3);
        assert_eq!(arms[0].binds, &["record"]);
        assert_eq!(arms[1].binds, &["e"]);
        assert!(arms[1].guard.calls_name("is_transient"));
        assert!(matches!(
            arms[2].body.stmts[0].kind,
            StmtKind::Return { .. }
        ));
    }

    #[test]
    fn assignment_vs_equality() {
        let b = parse("measured = resample(); if a == b { t(); }");
        assert!(matches!(
            &b.stmts[0].kind,
            StmtKind::Assign { name, .. } if name == "measured"
        ));
        assert!(matches!(&b.stmts[1].kind, StmtKind::If { .. }));
    }

    #[test]
    fn drop_and_macros() {
        let b = parse("drop(guard); let _ = write!(out, \"{x}\");");
        let StmtKind::Expr { expr } = &b.stmts[0].kind else {
            panic!("expected expr");
        };
        assert_eq!(expr.dropped, &["guard"]);
        let StmtKind::Let { init, .. } = &b.stmts[1].kind else {
            panic!("expected let");
        };
        assert!(init.calls.is_empty(), "write! is a macro, not a call");
    }

    #[test]
    fn while_let_binds() {
        let b = parse("while let Some(x) = it.next() { use_it(x); }");
        let StmtKind::Loop { binds, .. } = &b.stmts[0].kind else {
            panic!("expected loop");
        };
        assert_eq!(binds, &["x"]);
    }

    #[test]
    fn let_else_folds_into_init() {
        let b = parse("let Some(rec) = queue.pop() else { return Err(e); };");
        let StmtKind::Let { names, init, .. } = &b.stmts[0].kind else {
            panic!("expected let");
        };
        assert_eq!(names, &["rec"]);
        assert!(init.calls_name("pop"));
    }

    #[test]
    fn struct_literal_fields_are_not_uses_but_shorthand_is() {
        let b = parse("let s = DaemonStep { record: r, projection, decision };");
        let StmtKind::Let { init, .. } = &b.stmts[0].kind else {
            panic!("expected let");
        };
        let used: Vec<&str> = init.uses.iter().map(|u| u.name.as_str()).collect();
        assert!(used.contains(&"r"));
        assert!(used.contains(&"projection"));
        assert!(!used.contains(&"record"), "field name, not a use: {used:?}");
    }

    #[test]
    fn nested_items_are_skipped() {
        let b = parse("fn helper() { x.apply(); } let a = mk();");
        assert!(matches!(&b.stmts[1].kind, StmtKind::Let { .. }));
        let StmtKind::Expr { expr } = &b.stmts[0].kind else {
            panic!("expected opaque item");
        };
        assert!(expr.calls.is_empty());
    }
}
