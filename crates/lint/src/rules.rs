//! The PPEP rule families.
//!
//! * **L1 no-panic** (`unwrap`, `expect`, `panic`, `index-arith`,
//!   `index-nonliteral`) — non-test code in the runtime crates must
//!   not contain `.unwrap()` / `.expect(..)` / `panic!`-family macros
//!   / slice indexing with an arithmetic index (the off-by-one panic
//!   class) / indexing with *any* non-literal expression (`xs[i]`),
//!   which can panic on a bad bound; survivors record their bounds
//!   invariant in the allowlist. Failures must propagate as
//!   `ppep_types::Error`.
//! * **L2 raw-f64** — public function signatures in `ppep-models` /
//!   `ppep-core` must not pass bare `f64` where a `ppep_types`
//!   unit newtype exists; genuine dimensionless ratios are recorded in
//!   the allowlist with a reason.
//! * **L3 wildcard-match** — a `match` whose arms name a domain enum
//!   (`FaultKind`, `HealthState`, …) must be exhaustive without a
//!   wildcard arm, so adding a variant is a compile error everywhere.
//! * **L4 unguarded-output** — public `ppep-models` functions
//!   returning a unit quantity must route the value through the
//!   `ppep_types::units::finite` guard so NaN/∞ cannot silently
//!   enter projections.
//! * **L6 unbound-span** — a `.span(..)` tracing guard must be bound
//!   to a live binding (`let _g = rec.span(..)`); a bare statement or
//!   `let _ = ..` drops the guard immediately, silently recording a
//!   zero-length span.
//!
//! The temporal rules run on the AST/CFG/dataflow stack
//! ([`crate::ast`] / [`crate::cfg`] / [`crate::dataflow`]) instead of
//! the raw token stream:
//!
//! * **L5 stale-projection** — a binding that traces to a
//!   `PpeProjection` (`project(..)` / `project_nb(..)` initializer,
//!   type annotation, or typed parameter) must not be read after an
//!   `apply(..)` / `set_vf(..)` / `set_enforced_cap(..)` boundary on
//!   any path without re-projection: the projection models the VF
//!   state *before* the actuation, so reading it afterwards prices
//!   the next interval with the previous interval's model.
//! * **L7 lock-across-boundary** — a `MutexGuard` (from `.lock()` or
//!   a `*Guard`-typed binding) must not be live across
//!   `handle_frame`, the v2 frame codec, or blocking I/O calls: lock
//!   hold time across those boundaries is the documented serve-path
//!   p99 amplifier.
//! * **L8 dropped-transient** — a `Result` from `sample()` /
//!   `resample()` / platform actuation must not be discarded via
//!   `let _ = ..` or a chained `.ok()` without an `is_transient()`
//!   triage branch: swallowing a non-transient fault breaks the
//!   energy-accounting identity the replay tests pin down.

use crate::allow::Allowlist;
use crate::ast;
use crate::cfg::{self, CfgNode, NodeKind};
use crate::context::{matching_bracket, SourceFile};
use crate::dataflow::{solve, Analysis};
use crate::diag::Diagnostic;
use crate::lexer::{Token, TokenKind};
use std::collections::BTreeSet;

/// Crates whose non-test code must be panic-free (L1).
pub const RUNTIME_CRATES: [&str; 9] = [
    "ppep-core",
    "ppep-dvfs",
    "ppep-models",
    "ppep-obs",
    "ppep-pmc",
    "ppep-rig",
    "ppep-serve",
    "ppep-sim",
    "ppep-telemetry",
];

/// Crates whose public signatures must be unit-typed (L2).
pub const UNIT_API_CRATES: [&str; 2] = ["ppep-models", "ppep-core"];

/// The crate whose model outputs must be finite-guarded (L4).
pub const MODEL_CRATE: &str = "ppep-models";

/// Domain enums that must always be matched exhaustively (L3).
/// `ppep_types::Error` is deliberately absent: it is
/// `#[non_exhaustive]`, so downstream crates *must* write a wildcard
/// arm for it.
pub const DOMAIN_ENUMS: [&str; 7] = [
    "FaultKind",
    "HealthState",
    "Action",
    "NbVfState",
    "MuxGroup",
    "EventId",
    "RejectReason",
];

/// The `ppep_types` unit newtypes (L2 alternatives, L4 triggers).
pub const UNIT_TYPES: [&str; 7] = [
    "Volts",
    "Gigahertz",
    "Watts",
    "Kelvin",
    "Joules",
    "Seconds",
    "Celsius",
];

/// Every individual rule name.
pub const ALL_RULES: [&str; 12] = [
    "unwrap",
    "expect",
    "panic",
    "index-arith",
    "index-nonliteral",
    "raw-f64",
    "wildcard-match",
    "unguarded-output",
    "stale-projection",
    "unbound-span",
    "lock-across-boundary",
    "dropped-transient",
];

/// Expands a rule name or `L1`…`L8` group alias (or `all`) to the
/// individual rule names it covers. Unknown names pass through
/// unchanged (they simply never match a diagnostic).
pub fn expand_rule_alias(name: &str) -> Vec<String> {
    match name {
        "L1" => vec![
            "unwrap".into(),
            "expect".into(),
            "panic".into(),
            "index-arith".into(),
            "index-nonliteral".into(),
        ],
        "L2" => vec!["raw-f64".into()],
        "L3" => vec!["wildcard-match".into()],
        "L4" => vec!["unguarded-output".into()],
        "L5" => vec!["stale-projection".into()],
        "L6" => vec!["unbound-span".into()],
        "L7" => vec!["lock-across-boundary".into()],
        "L8" => vec!["dropped-transient".into()],
        "all" => ALL_RULES.iter().map(|s| s.to_string()).collect(),
        other => vec![other.to_string()],
    }
}

/// Runs every applicable rule over one file.
pub fn check_file(file: &SourceFile, allow: &Allowlist) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let fns = parse_fns(file);
    if RUNTIME_CRATES.contains(&file.crate_name.as_str()) {
        l1_no_panic(file, &fns, allow, &mut diags);
    }
    if UNIT_API_CRATES.contains(&file.crate_name.as_str()) {
        l2_raw_f64(file, &fns, allow, &mut diags);
    }
    if file.crate_name.starts_with("ppep-") {
        l3_wildcard_match(file, allow, &mut diags);
        l6_unbound_span(file, &fns, allow, &mut diags);
        temporal_rules(file, &fns, allow, &mut diags);
    }
    if file.crate_name == MODEL_CRATE {
        l4_unguarded_output(file, &fns, allow, &mut diags);
    }
    diags
}

fn diag(
    file: &SourceFile,
    group: &'static str,
    rule: &'static str,
    tok: &Token,
    message: String,
) -> Diagnostic {
    Diagnostic {
        group,
        rule,
        path: file.path.clone(),
        line: tok.line,
        col: tok.col,
        message,
        note: None,
    }
}

/// True when the rule is disabled at `line` (test code or inline
/// suppression).
fn skipped(file: &SourceFile, rule: &str, line: u32) -> bool {
    file.is_test_line(line) || file.is_suppressed(rule, line)
}

// ---------------------------------------------------------------- L1

/// Identifiers that cannot precede an *indexing* `[` (they introduce
/// patterns, types, or control flow instead).
const NON_INDEX_PREFIX: [&str; 14] = [
    "let", "mut", "ref", "in", "return", "if", "else", "match", "as", "box", "move", "static",
    "const", "type",
];

/// The name of the innermost function whose body contains token
/// `idx`, or `""` for file-level positions — the allowlist item
/// bounds-invariant exemptions attach to.
fn containing_fn(fns: &[FnSig], idx: usize) -> &str {
    fns.iter()
        .filter(|f| f.body.is_some_and(|(s, e)| s <= idx && idx < e))
        .min_by_key(|f| f.body.map_or(usize::MAX, |(s, e)| e - s))
        .map_or("", |f| f.name.as_str())
}

fn l1_no_panic(file: &SourceFile, fns: &[FnSig], allow: &Allowlist, diags: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        // `.unwrap()`
        if t.is_punct(".")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("unwrap"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct("("))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(")"))
        {
            let at = &toks[i + 1];
            if !skipped(file, "unwrap", at.line) {
                diags.push(diag(
                    file,
                    "L1",
                    "unwrap",
                    at,
                    "`.unwrap()` in runtime crate; propagate `ppep_types::Error` instead".into(),
                ));
            }
        }
        // `.expect(..)`
        if t.is_punct(".")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("expect"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct("("))
        {
            let at = &toks[i + 1];
            if !skipped(file, "expect", at.line) {
                diags.push(diag(
                    file,
                    "L1",
                    "expect",
                    at,
                    "`.expect(..)` in runtime crate; propagate `ppep_types::Error` instead".into(),
                ));
            }
        }
        // panic!-family macros.
        if t.kind == TokenKind::Ident
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && toks.get(i + 1).is_some_and(|t| t.is_punct("!"))
            && !skipped(file, "panic", t.line)
        {
            diags.push(diag(
                file,
                "L1",
                "panic",
                t,
                format!(
                    "`{}!` in runtime crate; the online path must degrade, not abort",
                    t.text
                ),
            ));
        }
        // Indexing with an arithmetic index: `xs[a + b]`, `xs[n - 1]`…
        if t.is_punct("[") && i > 0 {
            let prev = &toks[i - 1];
            let is_index_pos = match prev.kind {
                TokenKind::Ident => !NON_INDEX_PREFIX.contains(&prev.text.as_str()),
                TokenKind::Punct => prev.text == ")" || prev.text == "]",
                _ => false,
            };
            if is_index_pos {
                let close = file.matching_bracket(i);
                let inner = &toks[i + 1..close];
                let mut depth = 0i64;
                let mut arith = false;
                for tok in inner {
                    match tok.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "+" | "-" | "*" | "/" | "%"
                            if depth == 0 && tok.kind == TokenKind::Punct =>
                        {
                            arith = true;
                        }
                        _ => {}
                    }
                }
                if arith {
                    if !skipped(file, "index-arith", t.line) {
                        diags.push(diag(
                            file,
                            "L1",
                            "index-arith",
                            t,
                            "indexing with an arithmetic index can panic; use iterators/chunks, \
                             `.get(..)`, or a checked helper"
                                .into(),
                        ));
                    }
                } else if !matches!(
                    inner,
                    [] | [Token {
                        kind: TokenKind::Literal,
                        ..
                    }]
                ) && !skipped(file, "index-nonliteral", t.line)
                    && !allow.allows("index-nonliteral", &file.path, containing_fn(fns, i))
                {
                    // Any non-literal index (`xs[i]`) can panic on a bad
                    // bound; index-arith already covers the arithmetic
                    // subclass, so it is excluded here.
                    diags.push(diag(
                        file,
                        "L1",
                        "index-nonliteral",
                        t,
                        "non-literal index can panic on a bad bound; use `.get(..)`, iterators, \
                         or allowlist the site with its bounds invariant"
                            .into(),
                    ));
                }
            }
        }
    }
}

// ------------------------------------------------- fn signature model

/// A parsed function signature (enough structure for L2/L4).
pub struct FnSig {
    /// The function name.
    pub name: String,
    /// Position of the name token.
    pub line: u32,
    /// Column of the name token.
    pub col: u32,
    /// Whether the function is unrestricted `pub`.
    pub is_pub: bool,
    /// Parameter type token ranges (skipping `self` receivers).
    pub param_types: Vec<(usize, usize)>,
    /// Parameter pattern names paired with their type ranges —
    /// entry facts for the temporal rules (a `projection:
    /// PpeProjection` parameter arrives fresh; a `guard: MutexGuard`
    /// parameter arrives held).
    pub params: Vec<(Vec<String>, (usize, usize))>,
    /// Return type token range, if any.
    pub ret: Option<(usize, usize)>,
    /// Body token range `{..}` (exclusive of braces), if any.
    pub body: Option<(usize, usize)>,
}

/// Extracts all function signatures from a file.
pub fn parse_fns(file: &SourceFile) -> Vec<FnSig> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident {
            continue; // `fn(..)` pointer type, not an item
        }
        // Visibility: walk back over modifiers to a possible `pub`.
        let mut j = i;
        while j > 0
            && (matches!(
                toks[j - 1].text.as_str(),
                "const" | "async" | "unsafe" | "extern"
            ) || toks[j - 1].kind == TokenKind::Literal)
        {
            j -= 1;
        }
        let is_pub =
            j > 0 && toks[j - 1].is_ident("pub") && !toks.get(j).is_some_and(|t| t.is_punct("("));
        // (A restricted `pub(crate) fn` leaves `)` before `fn`, so the
        // walk-back above lands on `)` and `is_pub` stays false.)

        // Generics.
        let mut k = i + 2;
        if toks.get(k).is_some_and(|t| t.is_punct("<")) {
            let mut angle = 0i64;
            while k < toks.len() {
                match toks[k].text.as_str() {
                    "<" => angle += 1,
                    ">" => {
                        angle -= 1;
                        if angle == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        // Parameters.
        if !toks.get(k).is_some_and(|t| t.is_punct("(")) {
            continue;
        }
        let params_open = k;
        let params_close = matching_bracket(toks, params_open);
        let mut param_types = Vec::new();
        let mut params = Vec::new();
        let mut start = params_open + 1;
        let mut depth = 0i64;
        let mut angle = 0i64;
        for idx in params_open + 1..=params_close {
            let text = toks[idx].text.as_str();
            let end_of_param = (text == "," && depth == 0 && angle == 0) || idx == params_close;
            match text {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" if idx != params_close => depth -= 1,
                "<" => angle += 1,
                ">" => angle -= 1,
                _ => {}
            }
            if end_of_param {
                if idx > start {
                    if let Some(ty) = param_type_range(toks, start, idx) {
                        param_types.push(ty);
                        let (names, _) = ast::pattern_binds(toks, start, ty.0 - 1);
                        params.push((names, ty));
                    }
                }
                start = idx + 1;
            }
        }
        // Return type.
        let mut r = params_close + 1;
        let mut ret = None;
        if toks.get(r).is_some_and(|t| t.is_punct("->")) {
            let ret_start = r + 1;
            let mut depth = 0i64;
            let mut angle = 0i64;
            r = ret_start;
            while r < toks.len() {
                let text = toks[r].text.as_str();
                if depth == 0 && angle <= 0 && (text == "{" || text == ";" || text == "where") {
                    break;
                }
                match text {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    _ => {}
                }
                r += 1;
            }
            if r > ret_start {
                ret = Some((ret_start, r));
            }
        }
        // Body (skipping any `where` clause).
        let mut body = None;
        let mut b = r;
        while b < toks.len() {
            let text = toks[b].text.as_str();
            if text == "{" {
                let close = matching_bracket(toks, b);
                body = Some((b + 1, close));
                break;
            }
            if text == ";" {
                break;
            }
            b += 1;
        }
        out.push(FnSig {
            name: name_tok.text.clone(),
            line: name_tok.line,
            col: name_tok.col,
            is_pub,
            param_types,
            params,
            ret,
            body,
        });
    }
    out
}

/// The type token range of one parameter (after its top-level `:`), or
/// `None` for `self` receivers / malformed input.
fn param_type_range(toks: &[Token], start: usize, end: usize) -> Option<(usize, usize)> {
    let mut depth = 0i64;
    for (idx, tok) in toks.iter().enumerate().take(end).skip(start) {
        match tok.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            ":" if depth == 0 => {
                if idx + 1 < end {
                    return Some((idx + 1, end));
                }
                return None;
            }
            _ => {}
        }
    }
    None
}

/// True when a type token range is "bare f64": built only from `f64`,
/// references, tuples, `Option` / `Result` wrappers — i.e. a raw
/// float crossing the API unprotected. Collection types
/// (`&[f64]`, `Vec<f64>`, `[f64; N]`) are *not* flagged: they carry
/// model-internal vectors, which L4 guards at the output instead.
fn is_bare_f64(toks: &[Token], range: (usize, usize)) -> bool {
    let slice = &toks[range.0..range.1];
    let mut saw_f64 = false;
    for t in slice {
        match t.kind {
            TokenKind::Ident => match t.text.as_str() {
                "f64" => saw_f64 = true,
                "Option" | "Result" => {}
                _ => return false,
            },
            TokenKind::Lifetime => {}
            TokenKind::Punct => {
                if !matches!(t.text.as_str(), "&" | "(" | ")" | "<" | ">" | ",") {
                    return false;
                }
            }
            TokenKind::Literal => return false,
        }
    }
    saw_f64
}

// ---------------------------------------------------------------- L2

fn l2_raw_f64(file: &SourceFile, fns: &[FnSig], allow: &Allowlist, diags: &mut Vec<Diagnostic>) {
    for f in fns {
        if !f.is_pub || skipped(file, "raw-f64", f.line) {
            continue;
        }
        for &range in &f.param_types {
            let tok = &file.tokens[range.0];
            if is_bare_f64(&file.tokens, range)
                && !skipped(file, "raw-f64", tok.line)
                // Fire-point check so unused-entry tracking stays
                // accurate: a clean fn must not mark its entry used.
                && !allow.allows("raw-f64", &file.path, &f.name)
            {
                diags.push(diag(
                    file,
                    "L2",
                    "raw-f64",
                    tok,
                    format!(
                        "bare `f64` parameter in public `fn {}`; use a `ppep_types` unit/vf \
                         newtype, or allowlist the genuinely dimensionless ratio",
                        f.name
                    ),
                ));
            }
        }
        if let Some(range) = f.ret {
            let tok = &file.tokens[range.0];
            if is_bare_f64(&file.tokens, range)
                && !skipped(file, "raw-f64", tok.line)
                && !allow.allows("raw-f64", &file.path, &f.name)
            {
                diags.push(diag(
                    file,
                    "L2",
                    "raw-f64",
                    tok,
                    format!(
                        "bare `f64` return in public `fn {}`; use a `ppep_types` unit/vf \
                         newtype, or allowlist the genuinely dimensionless ratio",
                        f.name
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------- L3

fn l3_wildcard_match(file: &SourceFile, allow: &Allowlist, diags: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if !toks[i].is_ident("match") {
            continue;
        }
        // Find the arms block: the first `{` at depth 0 after the
        // scrutinee (struct literals are not legal in scrutinee
        // position, so this is unambiguous).
        let mut depth = 0i64;
        let mut open = None;
        for (j, t) in toks.iter().enumerate().skip(i + 1) {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    open = Some(j);
                    break;
                }
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        let close = matching_bracket(toks, open);
        let mut k = open + 1;
        let mut mentioned: Option<&'static str> = None;
        let mut wildcards: Vec<usize> = Vec::new();
        while k < close {
            // Pattern: tokens until `=>` at relative depth 0.
            let pat_start = k;
            let mut depth = 0i64;
            let mut arrow = None;
            while k < close {
                match toks[k].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=>" if depth == 0 => {
                        arrow = Some(k);
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            let Some(arrow) = arrow else { break };
            let pattern = &toks[pat_start..arrow];
            // Domain-enum mention: `Enum ::` inside the pattern.
            for w in pattern.windows(2) {
                if w[1].is_punct("::") {
                    if let Some(name) = DOMAIN_ENUMS.iter().find(|e| w[0].is_ident(e)) {
                        mentioned = Some(name);
                    }
                }
            }
            // Wildcard: `_`, `_ if …`, or a lone binding `other` /
            // `other if …`.
            let before_guard_len = pattern
                .iter()
                .position(|t| t.is_ident("if"))
                .unwrap_or(pattern.len());
            let head = &pattern[..before_guard_len];
            // (`_` lexes as an identifier token.)
            let is_wild = match head {
                [t] if t.text == "_" => true,
                [t] if t.kind == TokenKind::Ident
                    && t.text.chars().next().is_some_and(|c| c.is_lowercase())
                    && !matches!(t.text.as_str(), "true" | "false") =>
                {
                    true
                }
                _ => false,
            };
            if is_wild {
                wildcards.push(pat_start);
            }
            // Arm body: a block, or an expression up to `,`/end.
            k = arrow + 1;
            if k < close && toks[k].is_punct("{") {
                k = matching_bracket(toks, k) + 1;
                if k < close && toks[k].is_punct(",") {
                    k += 1;
                }
            } else {
                let mut depth = 0i64;
                while k < close {
                    match toks[k].text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth == 0 => {
                            k += 1;
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
        }
        if let Some(enum_name) = mentioned {
            for w in wildcards {
                let tok = &toks[w];
                if skipped(file, "wildcard-match", tok.line)
                    || allow.allows("wildcard-match", &file.path, enum_name)
                {
                    continue;
                }
                diags.push(diag(
                    file,
                    "L3",
                    "wildcard-match",
                    tok,
                    format!(
                        "wildcard arm in `match` involving `{enum_name}`; name every variant \
                         so a new variant is a compile error, not a silent fall-through"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------- L4

fn l4_unguarded_output(
    file: &SourceFile,
    fns: &[FnSig],
    allow: &Allowlist,
    diags: &mut Vec<Diagnostic>,
) {
    for f in fns {
        let Some(ret) = f.ret else { continue };
        let Some(body) = f.body else { continue };
        if !f.is_pub || skipped(file, "unguarded-output", f.line) {
            continue;
        }
        let returns_unit = file.tokens[ret.0..ret.1]
            .iter()
            .any(|t| UNIT_TYPES.iter().any(|u| t.is_ident(u)));
        if !returns_unit {
            continue;
        }
        let body_toks = &file.tokens[body.0..body.1];
        // Trivial accessors (`self.field` / `&self.field`) return an
        // already-guarded stored value; re-guarding them would be noise.
        let accessor_toks = match body_toks {
            [amp, rest @ ..] if amp.is_punct("&") => rest,
            rest => rest,
        };
        if let [a, b, c] = accessor_toks {
            if a.is_ident("self") && b.is_punct(".") && c.kind == TokenKind::Ident {
                continue;
            }
        }
        let guarded = body_toks
            .windows(2)
            .any(|w| w[0].is_ident("finite") && w[1].is_punct("("));
        if !guarded && !allow.allows("unguarded-output", &file.path, &f.name) {
            let tok = &file.tokens[ret.0];
            diags.push(Diagnostic {
                group: "L4",
                rule: "unguarded-output",
                path: file.path.clone(),
                line: f.line,
                col: f.col,
                message: format!(
                    "public model output `fn {}` returns `{}` without routing through the \
                     `ppep_types::units::finite` guard; NaN/∞ could silently enter projections",
                    f.name, tok.text
                ),
                note: None,
            });
        }
    }
}

// ---------------------------------------------------------------- L6

fn l6_unbound_span(
    file: &SourceFile,
    fns: &[FnSig],
    allow: &Allowlist,
    diags: &mut Vec<Diagnostic>,
) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if !(toks[i].is_punct(".")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("span"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct("(")))
        {
            continue;
        }
        let at = &toks[i + 1];
        if skipped(file, "unbound-span", at.line) {
            continue;
        }
        // Statement start: just past the nearest `;` / `{` / `}`.
        let stmt = toks[..i]
            .iter()
            .rposition(|t| t.kind == TokenKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}"))
            .map_or(0, |p| p + 1);
        let bound = if toks.get(stmt).is_some_and(|t| t.is_ident("let")) {
            let mut b = stmt + 1;
            if toks.get(b).is_some_and(|t| t.is_ident("mut")) {
                b += 1;
            }
            // `let _ = ..` drops the guard immediately; `let _g = ..`
            // (or any named binding) keeps it alive for the scope.
            toks.get(b)
                .is_some_and(|t| t.kind == TokenKind::Ident && t.text != "_")
        } else {
            // An assignment into an existing binding also keeps the
            // guard alive; anything else is a bare statement whose
            // temporary dies at the `;`, recording a near-zero span.
            toks[stmt..i].iter().any(|t| t.is_punct("="))
        };
        if !bound && allow.allows("unbound-span", &file.path, containing_fn(fns, i)) {
            continue;
        }
        if !bound {
            diags.push(diag(
                file,
                "L6",
                "unbound-span",
                at,
                "span guard must be bound (`let _g = rec.span(..)`); a bare statement or \
                 `let _ = ..` drops it immediately and records a zero-length span"
                    .into(),
            ));
        }
    }
}

// ------------------------------------- L5 / L7 / L8 (dataflow rules)

/// Calls that mint a fresh `PpeProjection` (L5 gen set).
const PROJECTION_SOURCES: [&str; 2] = ["project", "project_nb"];

/// Actuation calls that change VF/cap state and so invalidate every
/// live projection (L5 kill set).
const PROJECTION_KILLS: [&str; 5] = [
    "apply",
    "apply_uniform",
    "set_vf",
    "set_cu_vf",
    "set_enforced_cap",
];

/// The guard-producing method call (L7 gen set).
const LOCK_CALL: &str = "lock";

/// Method adapters that keep a `.lock()` chain a guard —
/// `lock().map_err(..)?` still binds the guard itself. Any other
/// trailing method call extracts a value *under* a temporary guard
/// instead, and the binding is not tracked.
const GUARD_CHAIN_OK: [&str; 4] = ["map_err", "unwrap", "expect", "unwrap_or_else"];

/// Guard type names recognized in `let` annotations and parameters.
const GUARD_TYPES: [&str; 3] = ["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"];

/// Calls a held guard must not cross (L7 boundary set): the serve
/// frame handler, the v2 frame codec, and blocking I/O / platform
/// sampling. Macros (`write!` into a `String`) are never calls, so
/// in-memory formatting does not trip this.
const LOCK_BOUNDARIES: [&str; 15] = [
    "handle_frame",
    "frame_to_bytes",
    "decode_frame",
    "encode_frame",
    "parse_any",
    "read_frame_bytes",
    "write_all",
    "flush",
    "read_exact",
    "read_to_string",
    "read_line",
    "send",
    "recv",
    "sample",
    "resample",
];

/// Fallible measurement/actuation calls whose `Result` carries the
/// transient-vs-fatal fault taxonomy (L8 source set).
const TRANSIENT_RESULTS: [&str; 4] = ["sample", "resample", "apply", "apply_uniform"];

/// Runs the dataflow-backed rules over every parsed fn body. Each
/// body is parsed once ([`ast::parse_block`]), lowered once
/// ([`cfg::build`]), and each rule solves its own analysis over the
/// shared graph.
fn temporal_rules(
    file: &SourceFile,
    fns: &[FnSig],
    allow: &Allowlist,
    diags: &mut Vec<Diagnostic>,
) {
    for f in fns {
        let Some((lo, hi)) = f.body else { continue };
        let block = ast::parse_block(&file.tokens, lo, hi);
        let graph = cfg::build(&block);
        l5_stale_projection(file, f, &graph, allow, diags);
        l7_lock_across_boundary(file, f, &graph, allow, diags);
        l8_dropped_transient(file, f, &graph, allow, diags);
    }
}

// ---------------------------------------------------------------- L5

/// L5 fact: what a projection-holding binding currently models.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
enum ProjFact {
    /// The binding holds a projection of the *current* platform state.
    Fresh(String),
    /// The binding's projection was invalidated by an actuation.
    Stale {
        /// The binding.
        var: String,
        /// The actuation call name.
        killed_by: String,
        /// The actuation call line.
        kill_line: u32,
    },
}

impl ProjFact {
    fn var(&self) -> &str {
        match self {
            ProjFact::Fresh(v) => v,
            ProjFact::Stale { var, .. } => var,
        }
    }
}

/// True when `node` binds a projection: the initializer's *result*
/// comes from `project`/`project_nb`, or the `let` type annotation
/// names `PpeProjection`. An initializer that merely contains a
/// projection consumed further in (`decide(&ppep.project(..)?)`, or a
/// block that projects, decides, and yields the decision) binds the
/// *consumer's* result, not a projection.
fn binds_projection(node: &CfgNode) -> bool {
    !node.binds.is_empty()
        && (node.expr.tail_call_in(&PROJECTION_SOURCES)
            || node.ty.iter().any(|t| t == "PpeProjection"))
}

struct ProjAnalysis {
    entry: BTreeSet<ProjFact>,
}

impl Analysis for ProjAnalysis {
    type Fact = ProjFact;

    fn entry(&self) -> BTreeSet<ProjFact> {
        self.entry.clone()
    }

    fn transfer(&self, node: &CfgNode, input: &BTreeSet<ProjFact>) -> BTreeSet<ProjFact> {
        // Scope ends, `drop(x)`, and rebinding retire old facts.
        let mut out: BTreeSet<ProjFact> = input
            .iter()
            .filter(|fact| {
                let v = fact.var();
                !node.scope_end.iter().any(|s| s == v)
                    && !node.expr.dropped.iter().any(|d| d == v)
                    && !node.binds.iter().any(|b| b == v)
            })
            .cloned()
            .collect();
        // An actuation call turns every surviving fresh fact stale.
        if let Some(kill) = node.expr.first_call_in(&PROJECTION_KILLS) {
            out = out
                .into_iter()
                .map(|fact| match fact {
                    ProjFact::Fresh(var) => ProjFact::Stale {
                        var,
                        killed_by: kill.name.clone(),
                        kill_line: kill.line,
                    },
                    stale => stale,
                })
                .collect();
        }
        if binds_projection(node) {
            for b in &node.binds {
                out.insert(ProjFact::Fresh(b.clone()));
            }
        } else if let [bind] = &node.binds[..] {
            // A plain move or `.clone()` of one binding inherits its
            // fact: `let held = projection.clone();` goes stale
            // together with `projection`. Multi-use initializers
            // (struct literals archiving the projection for
            // reporting) deliberately do not propagate — the archive
            // is a report of the completed cycle, not a pricing
            // input.
            if node.expr.uses.len() == 1 && node.expr.calls.iter().all(|c| c.name == "clone") {
                let inherited: Vec<ProjFact> = node
                    .expr
                    .uses
                    .iter()
                    .filter_map(|u| {
                        out.iter()
                            .find(|fact| fact.var() == u.name)
                            .map(|fact| match fact {
                                ProjFact::Fresh(_) => ProjFact::Fresh(bind.clone()),
                                ProjFact::Stale {
                                    killed_by,
                                    kill_line,
                                    ..
                                } => ProjFact::Stale {
                                    var: bind.clone(),
                                    killed_by: killed_by.clone(),
                                    kill_line: *kill_line,
                                },
                            })
                    })
                    .collect();
                out.extend(inherited);
            }
        }
        out
    }
}

fn l5_stale_projection(
    file: &SourceFile,
    f: &FnSig,
    graph: &cfg::Cfg,
    allow: &Allowlist,
    diags: &mut Vec<Diagnostic>,
) {
    let mut entry = BTreeSet::new();
    for (names, ty) in &f.params {
        if file.tokens[ty.0..ty.1]
            .iter()
            .any(|t| t.is_ident("PpeProjection"))
        {
            for n in names {
                entry.insert(ProjFact::Fresh(n.clone()));
            }
        }
    }
    // Cheap pre-pass: without both a projection and an actuation the
    // rule can never fire, and most fn bodies have neither.
    let has_kill = graph
        .nodes
        .iter()
        .any(|n| n.expr.first_call_in(&PROJECTION_KILLS).is_some());
    let has_proj = !entry.is_empty() || graph.nodes.iter().any(binds_projection);
    if !has_kill || !has_proj {
        return;
    }
    let sol = solve(graph, &ProjAnalysis { entry });
    let mut seen: BTreeSet<(u32, u32)> = BTreeSet::new();
    for (id, node) in graph.nodes.iter().enumerate() {
        for u in &node.expr.uses {
            let flowed_stale = sol.inputs[id].iter().find_map(|fact| match fact {
                ProjFact::Stale {
                    var,
                    killed_by,
                    kill_line,
                } if var == &u.name => Some((killed_by.clone(), *kill_line)),
                _ => None,
            });
            // Same-statement refinement: fresh on entry, but an
            // actuation earlier in this statement already invalidated
            // it. Uses inside the actuation's own argument list are
            // fine — the projection is consumed *by* the actuation.
            let same_stmt = || {
                if !sol.inputs[id].contains(&ProjFact::Fresh(u.name.clone())) {
                    return None;
                }
                node.expr
                    .calls
                    .iter()
                    .filter(|c| PROJECTION_KILLS.contains(&c.name.as_str()))
                    .find(|c| c.close < u.idx)
                    .map(|c| (c.name.clone(), c.line))
            };
            let Some((killed_by, kill_line)) = flowed_stale.or_else(same_stmt) else {
                continue;
            };
            if !seen.insert((u.line, u.col))
                || skipped(file, "stale-projection", u.line)
                || allow.allows("stale-projection", &file.path, &f.name)
            {
                continue;
            }
            diags.push(Diagnostic {
                group: "L5",
                rule: "stale-projection",
                path: file.path.clone(),
                line: u.line,
                col: u.col,
                message: format!(
                    "`{}` holds a projection of the pre-`{}` platform state; re-project after \
                     actuation instead of reading the stale one",
                    u.name, killed_by
                ),
                note: Some(format!(
                    "invalidated by the `{killed_by}(..)` at line {kill_line}; every DVFS \
                     decision must price off a projection of the current VF state (Fig. 5 loop)"
                )),
            });
        }
    }
}

// ---------------------------------------------------------------- L7

/// L7 fact: a live lock guard and where it was acquired.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
struct GuardFact {
    var: String,
    line: u32,
}

/// True when `node` binds a lock guard: a `.lock()` chain whose
/// trailing method calls are all guard-preserving adapters, or a
/// `*Guard` type annotation.
fn binds_guard(node: &CfgNode) -> bool {
    if node.binds.is_empty() {
        return false;
    }
    if node.ty.iter().any(|t| GUARD_TYPES.contains(&t.as_str())) {
        return true;
    }
    let Some(lock) = node
        .expr
        .calls
        .iter()
        .find(|c| c.name == LOCK_CALL && c.method && !node.expr.nested(c))
    else {
        return false;
    };
    // Only the chain's own method calls matter; calls nested in an
    // adapter's arguments (`map_err(|_| Error::X("..".into()))`) do
    // not unwrap the guard.
    node.expr
        .calls
        .iter()
        .filter(|c| c.idx > lock.close && c.method && !node.expr.nested(c))
        .all(|c| GUARD_CHAIN_OK.contains(&c.name.as_str()))
}

struct GuardAnalysis {
    entry: BTreeSet<GuardFact>,
}

impl Analysis for GuardAnalysis {
    type Fact = GuardFact;

    fn entry(&self) -> BTreeSet<GuardFact> {
        self.entry.clone()
    }

    fn transfer(&self, node: &CfgNode, input: &BTreeSet<GuardFact>) -> BTreeSet<GuardFact> {
        let mut out: BTreeSet<GuardFact> = input
            .iter()
            .filter(|g| {
                !node.scope_end.contains(&g.var)
                    && !node.expr.dropped.contains(&g.var)
                    && !node.binds.contains(&g.var)
            })
            .cloned()
            .collect();
        if binds_guard(node) {
            let line = node
                .expr
                .calls
                .iter()
                .find(|c| c.name == LOCK_CALL)
                .map_or(node.line, |c| c.line);
            for b in &node.binds {
                out.insert(GuardFact {
                    var: b.clone(),
                    line,
                });
            }
        }
        out
    }
}

fn l7_lock_across_boundary(
    file: &SourceFile,
    f: &FnSig,
    graph: &cfg::Cfg,
    allow: &Allowlist,
    diags: &mut Vec<Diagnostic>,
) {
    let has_boundary = graph
        .nodes
        .iter()
        .any(|n| n.expr.first_call_in(&LOCK_BOUNDARIES).is_some());
    if !has_boundary {
        return;
    }
    let mut entry = BTreeSet::new();
    for (names, ty) in &f.params {
        if file.tokens[ty.0..ty.1]
            .iter()
            .any(|t| GUARD_TYPES.iter().any(|g| t.is_ident(g)))
        {
            for n in names {
                entry.insert(GuardFact {
                    var: n.clone(),
                    line: f.line,
                });
            }
        }
    }
    let sol = solve(graph, &GuardAnalysis { entry });
    let mut seen: BTreeSet<(u32, u32)> = BTreeSet::new();
    for (id, node) in graph.nodes.iter().enumerate() {
        for b in node
            .expr
            .calls
            .iter()
            .filter(|c| LOCK_BOUNDARIES.contains(&c.name.as_str()))
        {
            // A guard flowing in from an earlier statement…
            let flowed = sol.inputs[id]
                .iter()
                .next()
                .map(|g| (format!("the guard `{}`", g.var), g.line));
            // …or a `.lock()` earlier in this very statement (the
            // guard temporary lives until the statement ends, so the
            // boundary call still runs under it).
            let same_stmt = || {
                node.expr
                    .calls
                    .iter()
                    .find(|c| c.name == LOCK_CALL && c.method && c.idx < b.idx)
                    .map(|c| ("the guard temporary".to_string(), c.line))
            };
            let Some((what, line)) = flowed.or_else(same_stmt) else {
                continue;
            };
            if !seen.insert((b.line, b.col))
                || skipped(file, "lock-across-boundary", b.line)
                || allow.allows("lock-across-boundary", &file.path, &f.name)
            {
                continue;
            }
            diags.push(Diagnostic {
                group: "L7",
                rule: "lock-across-boundary",
                path: file.path.clone(),
                line: b.line,
                col: b.col,
                message: format!(
                    "`{}(..)` runs while {} (acquired at line {}) is still held",
                    b.name, what, line
                ),
                note: Some(format!(
                    "lock hold time across `{}` is what amplifies the serve-path p99; drop \
                     the guard (scope it or `drop(..)` it) before the boundary call",
                    b.name
                )),
            });
        }
    }
}

// ---------------------------------------------------------------- L8

fn l8_dropped_transient(
    file: &SourceFile,
    f: &FnSig,
    graph: &cfg::Cfg,
    allow: &Allowlist,
    diags: &mut Vec<Diagnostic>,
) {
    let mut seen: BTreeSet<(u32, u32)> = BTreeSet::new();
    for node in &graph.nodes {
        if node.kind != NodeKind::Stmt {
            // `match platform.sample() { .. }` scrutinees and `if let`
            // conditions consume the Result — those are the compliant
            // shapes.
            continue;
        }
        // Any `is_transient()` in the statement means the fault is
        // being triaged (including flattened `let r = match .. {..};`
        // forms).
        if node.expr.calls_name("is_transient") {
            continue;
        }
        for c in node
            .expr
            .calls
            .iter()
            .filter(|c| TRANSIENT_RESULTS.contains(&c.name.as_str()))
        {
            // Shape 1: `let _ = platform.sample();` — the whole Result
            // is discarded on the spot.
            let discarded = node.bind_discard;
            // Shape 2: a directly chained `.ok()` silently converts
            // the Error away: `platform.sample().ok()`.
            let close = c.close;
            let ok_chained = file.tokens.get(close + 1).is_some_and(|t| t.is_punct("."))
                && file.tokens.get(close + 2).is_some_and(|t| t.is_ident("ok"))
                && file.tokens.get(close + 3).is_some_and(|t| t.is_punct("("));
            if !discarded && !ok_chained {
                continue;
            }
            if !seen.insert((c.line, c.col))
                || skipped(file, "dropped-transient", c.line)
                || allow.allows("dropped-transient", &file.path, &f.name)
            {
                continue;
            }
            let via = if discarded { "`let _ = ..`" } else { "`.ok()`" };
            diags.push(Diagnostic {
                group: "L8",
                rule: "dropped-transient",
                path: file.path.clone(),
                line: c.line,
                col: c.col,
                message: format!(
                    "the `Result` of `{}(..)` is discarded via {via} without fault triage",
                    c.name
                ),
                note: Some(
                    "branch on `Error::is_transient()` — retry/hold on transients, surface \
                     everything else — so the energy-accounting identity survives faults"
                        .into(),
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(crate_name: &str, src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse("crates/x/src/lib.rs", crate_name, src);
        check_file(&file, &Allowlist::default())
    }

    #[test]
    fn alias_expansion() {
        assert_eq!(expand_rule_alias("L2"), vec!["raw-f64".to_string()]);
        assert_eq!(expand_rule_alias("all").len(), ALL_RULES.len());
        assert_eq!(expand_rule_alias("unwrap"), vec!["unwrap".to_string()]);
    }

    #[test]
    fn unwrap_or_variants_do_not_trip_l1() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }";
        assert!(check("ppep-core", src).is_empty());
    }

    #[test]
    fn l1_only_applies_to_runtime_crates() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(check("ppep-core", src).len(), 1);
        assert!(check("ppep-experiments", src).is_empty());
        assert!(check("ppep-lint", src).is_empty());
    }

    #[test]
    fn index_arith_ignores_plain_and_literal_indices() {
        // Literal indices stay clean; a plain variable index now trips
        // index-nonliteral (but not index-arith).
        let src = "fn f(v: &[u32], i: usize) -> u32 { v[i] + v[0] }";
        let d = check("ppep-sim", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "index-nonliteral");
        let bad = "fn f(v: &[u32], i: usize) -> u32 { v[i + 1] }";
        let d = check("ppep-sim", bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "index-arith");
        // Method calls inside the index are non-literal, not arithmetic.
        let ok = "fn f(v: &[u32], i: usize) -> u32 { v[i.min(v.len())] }";
        let d = check("ppep-sim", ok);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "index-nonliteral");
    }

    #[test]
    fn index_nonliteral_allowlisted_by_containing_fn() {
        let src =
            "fn f(v: &[u32], i: usize) -> u32 { v[i] }\nfn g(v: &[u32], i: usize) -> u32 { v[i] }";
        let allow = Allowlist::parse(
            "index-nonliteral crates/x/src/lib.rs f -- i is clamped by the caller\n",
        )
        .unwrap();
        let file = SourceFile::parse("crates/x/src/lib.rs", "ppep-sim", src);
        let d = check_file(&file, &allow);
        assert_eq!(d.len(), 1, "only the unallowed fn g remains: {d:?}");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn index_nonliteral_skips_literals_types_and_macros() {
        // Array types, attribute brackets, slice patterns, and macro
        // brackets are not index positions.
        let src = "#[derive(Debug)]\nstruct S { a: [u64; 8] }\nfn f() -> Vec<u32> { vec![1, 2] }";
        assert!(check("ppep-sim", src).is_empty());
        let lit = "fn f(v: &[u32]) -> u32 { v[0] + v[1] }";
        assert!(check("ppep-sim", lit).is_empty());
    }

    #[test]
    fn unbound_span_requires_a_live_binding() {
        let ok = "fn f(&self) { let _g = self.rec.span(Stage::Decide, 0); work(); }";
        assert!(check("ppep-core", ok).is_empty());
        let bare = "fn f(&self) { self.rec.span(Stage::Decide, 0); work(); }";
        let d = check("ppep-core", bare);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "unbound-span");
        let dropped = "fn f(&self) { let _ = self.rec.span(Stage::Decide, 0); work(); }";
        assert_eq!(check("ppep-core", dropped).len(), 1);
        // Reassignment into an existing binding keeps the guard alive.
        let assigned = "fn f(&self) { self.guard = self.rec.span(Stage::Decide, 0); }";
        assert!(check("ppep-core", assigned).is_empty());
        // Applies across all ppep- crates, but not to test code.
        let test_code =
            "#[cfg(test)]\nmod tests {\n    fn t(r: &R) { r.rec.span(Stage::Decide, 0); }\n}\n";
        assert!(check("ppep-experiments", test_code).is_empty());
        assert_eq!(check("ppep-experiments", bare).len(), 1);
    }

    #[test]
    fn l2_flags_bare_f64_but_not_collections() {
        let src = "pub fn eval(x: f64) -> f64 { x }";
        assert_eq!(check("ppep-models", src).len(), 2);
        let ok = "pub fn eval(xs: &[f64]) -> Vec<f64> { xs.to_vec() }";
        assert!(check("ppep-models", ok).is_empty());
        // Non-pub and non-unit-API crates are out of scope.
        assert!(check("ppep-sim", src).is_empty());
        let private = "fn eval(x: f64) -> f64 { x }";
        assert!(check("ppep-models", private).is_empty());
    }

    #[test]
    fn l3_flags_wildcards_only_with_domain_enums() {
        let bad = "fn f(k: FaultKind) -> u32 { match k { FaultKind::SensorDropout => 1, _ => 0 } }";
        let d = check("ppep-sim", bad);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("FaultKind"));
        let binding = "fn f(k: FaultKind) -> u32 { match k { FaultKind::SensorDropout => 1, other => other.cost() } }";
        assert_eq!(check("ppep-sim", binding).len(), 1);
        let ok = "fn f(k: FaultKind) -> u32 { match k { FaultKind::SensorDropout => 1, FaultKind::ThermalNan => 2 } }";
        assert!(check("ppep-sim", ok).is_empty());
        let unrelated = "fn f(x: Option<u32>) -> u32 { match x { Some(v) => v, _ => 0 } }";
        assert!(check("ppep-sim", unrelated).is_empty());
    }

    #[test]
    fn l4_requires_finite_guard_on_unit_outputs() {
        let bad = "pub fn power(&self) -> Watts { Watts::new(self.raw) }";
        assert_eq!(check("ppep-models", bad).len(), 1);
        let ok = "pub fn power(&self) -> Result<Watts> { Watts::new(self.raw).finite(\"p\") }";
        assert!(check("ppep-models", ok).is_empty());
        let accessor = "pub fn power(&self) -> Watts { self.power }";
        assert!(check("ppep-models", accessor).is_empty());
        let ref_accessor = "pub fn table(&self) -> &[Watts] { &self.table }";
        assert!(check("ppep-models", ref_accessor).is_empty());
        // Only the models crate is in scope.
        assert!(check("ppep-core", bad).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
        assert!(check("ppep-core", src).is_empty());
    }

    #[test]
    fn suppression_comments_silence_a_line() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // ppep-lint: allow(unwrap)\n";
        assert!(check("ppep-core", src).is_empty());
    }

    #[test]
    fn fn_signature_parse_handles_generics_and_where() {
        let src = "pub fn f<T: Into<f64>>(x: T, y: f64) -> f64 where T: Copy { y }";
        let file = SourceFile::parse("x.rs", "ppep-models", src);
        let fns = parse_fns(&file);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "f");
        assert!(fns[0].is_pub);
        assert_eq!(fns[0].param_types.len(), 2);
        assert!(fns[0].ret.is_some());
        assert!(fns[0].body.is_some());
    }

    #[test]
    fn restricted_pub_is_not_public_api() {
        let src = "pub(crate) fn f(x: f64) -> f64 { x }";
        assert!(check("ppep-models", src).is_empty());
    }

    #[test]
    fn l5_catches_projection_reuse_after_apply() {
        let src = "fn react(&mut self) -> Result<Step> {\n\
                   \x20   let record = self.platform.sample()?;\n\
                   \x20   let projection = self.ppep.project(&record)?;\n\
                   \x20   let decision = self.governor.decide(&projection);\n\
                   \x20   self.platform.apply(&decision)?;\n\
                   \x20   self.note(&projection);\n\
                   \x20   Ok(Step { record })\n\
                   }";
        let d = check("ppep-core", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "stale-projection");
        assert_eq!(d[0].line, 6, "points at the stale read");
        let note = d[0].note.as_deref().expect("note names the kill site");
        assert!(note.contains("`apply(..)` at line 5"), "{note}");
    }

    #[test]
    fn l5_reprojection_clears_the_fact() {
        let src = "fn react(&mut self) -> Result<()> {\n\
                   \x20   let mut projection = self.ppep.project(&record)?;\n\
                   \x20   self.platform.apply(&decision)?;\n\
                   \x20   projection = self.ppep.project_nb(&record)?;\n\
                   \x20   self.note(&projection);\n\
                   \x20   Ok(())\n\
                   }";
        assert!(check("ppep-core", src).is_empty());
    }

    #[test]
    fn l5_flags_staleness_from_one_branch_only() {
        let src = "fn f(&mut self) -> Result<()> {\n\
                   \x20   let projection = self.ppep.project(&record)?;\n\
                   \x20   if hot {\n\
                   \x20       self.platform.apply(&decision)?;\n\
                   \x20   }\n\
                   \x20   self.note(&projection);\n\
                   \x20   Ok(())\n\
                   }";
        let d = check("ppep-core", src);
        assert_eq!(d.len(), 1, "stale on the hot path: {d:?}");
        assert_eq!(d[0].line, 6);
    }

    #[test]
    fn l5_consuming_the_projection_in_the_actuation_is_fine() {
        let src = "fn f(&mut self) -> Result<()> {\n\
                   \x20   let projection = self.ppep.project(&record)?;\n\
                   \x20   self.platform.apply(&decide(&projection))?;\n\
                   \x20   Ok(())\n\
                   }";
        assert!(check("ppep-core", src).is_empty());
    }

    #[test]
    fn l5_tracks_typed_params_and_clones() {
        let src = "fn f(&mut self, projection: &PpeProjection) -> Result<()> {\n\
                   \x20   let held = projection.clone();\n\
                   \x20   self.platform.set_vf(0, vf)?;\n\
                   \x20   self.note(&held);\n\
                   \x20   Ok(())\n\
                   }";
        let d = check("ppep-core", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 4);
        assert!(d[0].message.contains("`held`"));
    }

    #[test]
    fn l7_guard_live_across_handle_frame() {
        let src = "fn f(&self) -> Result<Vec<u8>> {\n\
                   \x20   let mut service = self.service.lock().map_err(|_| err())?;\n\
                   \x20   let reply = service.handle_frame(&bytes)?;\n\
                   \x20   Ok(reply)\n\
                   }";
        let d = check("ppep-serve", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "lock-across-boundary");
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("`service`"), "{}", d[0].message);
    }

    #[test]
    fn l7_same_statement_lock_then_boundary() {
        let src = "fn f(&self) -> Result<Vec<u8>> {\n\
                   \x20   let reply = { self.service.lock().map_err(|_| err())?.handle_frame(&bytes)? };\n\
                   \x20   Ok(reply)\n\
                   }";
        let d = check("ppep-serve", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "lock-across-boundary");
    }

    #[test]
    fn l7_scoped_guard_released_before_io_is_clean() {
        let src = "fn f(&self) -> Result<()> {\n\
                   \x20   let reply = {\n\
                   \x20       let mut service = self.service.lock().map_err(|_| err())?;\n\
                   \x20       service.quick_op()\n\
                   \x20   };\n\
                   \x20   out.write_all(&reply)?;\n\
                   \x20   Ok(())\n\
                   }";
        assert!(check("ppep-serve", src).is_empty());
    }

    #[test]
    fn l7_drop_releases_the_guard() {
        let src = "fn f(&self) -> Result<()> {\n\
                   \x20   let guard = self.state.lock().map_err(|_| err())?;\n\
                   \x20   drop(guard);\n\
                   \x20   out.flush()?;\n\
                   \x20   Ok(())\n\
                   }";
        assert!(check("ppep-serve", src).is_empty());
    }

    #[test]
    fn l7_value_extracted_under_temporary_guard_is_not_a_guard() {
        let src = "fn f(&self) -> Result<()> {\n\
                   \x20   let total = self.state.lock().map_err(|_| err())?.total_granted();\n\
                   \x20   out.write_all(&enc(total))?;\n\
                   \x20   Ok(())\n\
                   }";
        assert!(check("ppep-serve", src).is_empty());
    }

    #[test]
    fn l8_flags_discarded_and_ok_chained_results() {
        let discarded = "fn f(&mut self) { let _ = self.platform.sample(); }";
        let d = check("ppep-core", discarded);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "dropped-transient");
        let ok_chained = "fn f(&mut self) { self.platform.resample().ok(); }";
        let d = check("ppep-core", ok_chained);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`.ok()`"));
    }

    #[test]
    fn l8_triage_shapes_are_clean() {
        let matched = "fn f(&mut self) -> Result<()> {\n\
                       \x20   match self.platform.sample() {\n\
                       \x20       Ok(record) => self.consume(record),\n\
                       \x20       Err(e) if e.is_transient() => self.hold(),\n\
                       \x20       Err(e) => return Err(e),\n\
                       \x20   }\n\
                       \x20   Ok(())\n\
                       }";
        assert!(check("ppep-core", matched).is_empty());
        let propagated = "fn f(&mut self) -> Result<()> { self.platform.apply(&d)?; Ok(()) }";
        assert!(check("ppep-core", propagated).is_empty());
        let flattened = "fn f(&mut self) {\n\
                         \x20   let ok = matches!(self.platform.sample(), Err(e) if e.is_transient());\n\
                         \x20   self.record(ok);\n\
                         }";
        assert!(check("ppep-core", flattened).is_empty());
    }

    #[test]
    fn temporal_rules_respect_inline_suppression_and_test_code() {
        let suppressed = "fn f(&mut self) {\n\
                          \x20   // ppep-lint: allow(dropped-transient)\n\
                          \x20   let _ = self.platform.sample();\n\
                          }";
        assert!(check("ppep-core", suppressed).is_empty());
        let test_code = "#[cfg(test)]\nmod tests {\n\
                         \x20   fn t(p: &mut P) { let _ = p.sample(); }\n\
                         }";
        assert!(check("ppep-core", test_code).is_empty());
    }

    #[test]
    fn temporal_rules_honor_the_allowlist_by_fn() {
        let src = "fn f(&mut self) { let _ = self.platform.sample(); }";
        let allow = Allowlist::parse(
            "dropped-transient crates/x/src/lib.rs f -- best-effort failsafe pin\n",
        )
        .unwrap();
        let file = SourceFile::parse("crates/x/src/lib.rs", "ppep-core", src);
        assert!(check_file(&file, &allow).is_empty());
        assert!(
            allow.unused().is_empty(),
            "the entry was consulted and used"
        );
    }
}
