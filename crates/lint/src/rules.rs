//! The PPEP rule families.
//!
//! * **L1 no-panic** (`unwrap`, `expect`, `panic`, `index-arith`,
//!   `index-nonliteral`) — non-test code in the runtime crates must
//!   not contain `.unwrap()` / `.expect(..)` / `panic!`-family macros
//!   / slice indexing with an arithmetic index (the off-by-one panic
//!   class) / indexing with *any* non-literal expression (`xs[i]`),
//!   which can panic on a bad bound; survivors record their bounds
//!   invariant in the allowlist. Failures must propagate as
//!   `ppep_types::Error`.
//! * **L2 raw-f64** — public function signatures in `ppep-models` /
//!   `ppep-core` must not pass bare `f64` where a `ppep_types`
//!   unit newtype exists; genuine dimensionless ratios are recorded in
//!   the allowlist with a reason.
//! * **L3 wildcard-match** — a `match` whose arms name a domain enum
//!   (`FaultKind`, `HealthState`, …) must be exhaustive without a
//!   wildcard arm, so adding a variant is a compile error everywhere.
//! * **L4 unguarded-output** — public `ppep-models` functions
//!   returning a unit quantity must route the value through the
//!   `ppep_types::units::finite` guard so NaN/∞ cannot silently
//!   enter projections.
//! * **L6 unbound-span** — a `.span(..)` tracing guard must be bound
//!   to a live binding (`let _g = rec.span(..)`); a bare statement or
//!   `let _ = ..` drops the guard immediately, silently recording a
//!   zero-length span.

use crate::allow::Allowlist;
use crate::context::{matching_bracket, SourceFile};
use crate::diag::Diagnostic;
use crate::lexer::{Token, TokenKind};

/// Crates whose non-test code must be panic-free (L1).
pub const RUNTIME_CRATES: [&str; 9] = [
    "ppep-core",
    "ppep-dvfs",
    "ppep-models",
    "ppep-obs",
    "ppep-pmc",
    "ppep-rig",
    "ppep-serve",
    "ppep-sim",
    "ppep-telemetry",
];

/// Crates whose public signatures must be unit-typed (L2).
pub const UNIT_API_CRATES: [&str; 2] = ["ppep-models", "ppep-core"];

/// The crate whose model outputs must be finite-guarded (L4).
pub const MODEL_CRATE: &str = "ppep-models";

/// Domain enums that must always be matched exhaustively (L3).
/// `ppep_types::Error` is deliberately absent: it is
/// `#[non_exhaustive]`, so downstream crates *must* write a wildcard
/// arm for it.
pub const DOMAIN_ENUMS: [&str; 7] = [
    "FaultKind",
    "HealthState",
    "Action",
    "NbVfState",
    "MuxGroup",
    "EventId",
    "RejectReason",
];

/// The `ppep_types` unit newtypes (L2 alternatives, L4 triggers).
pub const UNIT_TYPES: [&str; 7] = [
    "Volts",
    "Gigahertz",
    "Watts",
    "Kelvin",
    "Joules",
    "Seconds",
    "Celsius",
];

/// Every individual rule name.
pub const ALL_RULES: [&str; 9] = [
    "unwrap",
    "expect",
    "panic",
    "index-arith",
    "index-nonliteral",
    "raw-f64",
    "wildcard-match",
    "unguarded-output",
    "unbound-span",
];

/// Expands a rule name or `L1`…`L6` group alias (or `all`) to the
/// individual rule names it covers. Unknown names pass through
/// unchanged (they simply never match a diagnostic).
pub fn expand_rule_alias(name: &str) -> Vec<String> {
    match name {
        "L1" => vec![
            "unwrap".into(),
            "expect".into(),
            "panic".into(),
            "index-arith".into(),
            "index-nonliteral".into(),
        ],
        "L2" => vec!["raw-f64".into()],
        "L3" => vec!["wildcard-match".into()],
        "L4" => vec!["unguarded-output".into()],
        "L6" => vec!["unbound-span".into()],
        "all" => ALL_RULES.iter().map(|s| s.to_string()).collect(),
        other => vec![other.to_string()],
    }
}

/// Runs every applicable rule over one file.
pub fn check_file(file: &SourceFile, allow: &Allowlist) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let fns = parse_fns(file);
    if RUNTIME_CRATES.contains(&file.crate_name.as_str()) {
        l1_no_panic(file, &fns, allow, &mut diags);
    }
    if UNIT_API_CRATES.contains(&file.crate_name.as_str()) {
        l2_raw_f64(file, &fns, allow, &mut diags);
    }
    if file.crate_name.starts_with("ppep-") {
        l3_wildcard_match(file, allow, &mut diags);
        l6_unbound_span(file, &fns, allow, &mut diags);
    }
    if file.crate_name == MODEL_CRATE {
        l4_unguarded_output(file, &fns, allow, &mut diags);
    }
    diags
}

fn diag(
    file: &SourceFile,
    group: &'static str,
    rule: &'static str,
    tok: &Token,
    message: String,
) -> Diagnostic {
    Diagnostic {
        group,
        rule,
        path: file.path.clone(),
        line: tok.line,
        col: tok.col,
        message,
    }
}

/// True when the rule is disabled at `line` (test code or inline
/// suppression).
fn skipped(file: &SourceFile, rule: &str, line: u32) -> bool {
    file.is_test_line(line) || file.is_suppressed(rule, line)
}

// ---------------------------------------------------------------- L1

/// Identifiers that cannot precede an *indexing* `[` (they introduce
/// patterns, types, or control flow instead).
const NON_INDEX_PREFIX: [&str; 14] = [
    "let", "mut", "ref", "in", "return", "if", "else", "match", "as", "box", "move", "static",
    "const", "type",
];

/// The name of the innermost function whose body contains token
/// `idx`, or `""` for file-level positions — the allowlist item
/// bounds-invariant exemptions attach to.
fn containing_fn(fns: &[FnSig], idx: usize) -> &str {
    fns.iter()
        .filter(|f| f.body.is_some_and(|(s, e)| s <= idx && idx < e))
        .min_by_key(|f| f.body.map_or(usize::MAX, |(s, e)| e - s))
        .map_or("", |f| f.name.as_str())
}

fn l1_no_panic(file: &SourceFile, fns: &[FnSig], allow: &Allowlist, diags: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        // `.unwrap()`
        if t.is_punct(".")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("unwrap"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct("("))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(")"))
        {
            let at = &toks[i + 1];
            if !skipped(file, "unwrap", at.line) {
                diags.push(diag(
                    file,
                    "L1",
                    "unwrap",
                    at,
                    "`.unwrap()` in runtime crate; propagate `ppep_types::Error` instead".into(),
                ));
            }
        }
        // `.expect(..)`
        if t.is_punct(".")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("expect"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct("("))
        {
            let at = &toks[i + 1];
            if !skipped(file, "expect", at.line) {
                diags.push(diag(
                    file,
                    "L1",
                    "expect",
                    at,
                    "`.expect(..)` in runtime crate; propagate `ppep_types::Error` instead".into(),
                ));
            }
        }
        // panic!-family macros.
        if t.kind == TokenKind::Ident
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && toks.get(i + 1).is_some_and(|t| t.is_punct("!"))
            && !skipped(file, "panic", t.line)
        {
            diags.push(diag(
                file,
                "L1",
                "panic",
                t,
                format!(
                    "`{}!` in runtime crate; the online path must degrade, not abort",
                    t.text
                ),
            ));
        }
        // Indexing with an arithmetic index: `xs[a + b]`, `xs[n - 1]`…
        if t.is_punct("[") && i > 0 {
            let prev = &toks[i - 1];
            let is_index_pos = match prev.kind {
                TokenKind::Ident => !NON_INDEX_PREFIX.contains(&prev.text.as_str()),
                TokenKind::Punct => prev.text == ")" || prev.text == "]",
                _ => false,
            };
            if is_index_pos {
                let close = file.matching_bracket(i);
                let inner = &toks[i + 1..close];
                let mut depth = 0i64;
                let mut arith = false;
                for tok in inner {
                    match tok.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "+" | "-" | "*" | "/" | "%"
                            if depth == 0 && tok.kind == TokenKind::Punct =>
                        {
                            arith = true;
                        }
                        _ => {}
                    }
                }
                if arith {
                    if !skipped(file, "index-arith", t.line) {
                        diags.push(diag(
                            file,
                            "L1",
                            "index-arith",
                            t,
                            "indexing with an arithmetic index can panic; use iterators/chunks, \
                             `.get(..)`, or a checked helper"
                                .into(),
                        ));
                    }
                } else if !matches!(
                    inner,
                    [] | [Token {
                        kind: TokenKind::Literal,
                        ..
                    }]
                ) && !skipped(file, "index-nonliteral", t.line)
                    && !allow.allows("index-nonliteral", &file.path, containing_fn(fns, i))
                {
                    // Any non-literal index (`xs[i]`) can panic on a bad
                    // bound; index-arith already covers the arithmetic
                    // subclass, so it is excluded here.
                    diags.push(diag(
                        file,
                        "L1",
                        "index-nonliteral",
                        t,
                        "non-literal index can panic on a bad bound; use `.get(..)`, iterators, \
                         or allowlist the site with its bounds invariant"
                            .into(),
                    ));
                }
            }
        }
    }
}

// ------------------------------------------------- fn signature model

/// A parsed function signature (enough structure for L2/L4).
pub struct FnSig {
    /// The function name.
    pub name: String,
    /// Position of the name token.
    pub line: u32,
    /// Column of the name token.
    pub col: u32,
    /// Whether the function is unrestricted `pub`.
    pub is_pub: bool,
    /// Parameter type token ranges (skipping `self` receivers).
    pub param_types: Vec<(usize, usize)>,
    /// Return type token range, if any.
    pub ret: Option<(usize, usize)>,
    /// Body token range `{..}` (exclusive of braces), if any.
    pub body: Option<(usize, usize)>,
}

/// Extracts all function signatures from a file.
pub fn parse_fns(file: &SourceFile) -> Vec<FnSig> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident {
            continue; // `fn(..)` pointer type, not an item
        }
        // Visibility: walk back over modifiers to a possible `pub`.
        let mut j = i;
        while j > 0
            && (matches!(
                toks[j - 1].text.as_str(),
                "const" | "async" | "unsafe" | "extern"
            ) || toks[j - 1].kind == TokenKind::Literal)
        {
            j -= 1;
        }
        let is_pub =
            j > 0 && toks[j - 1].is_ident("pub") && !toks.get(j).is_some_and(|t| t.is_punct("("));
        // (A restricted `pub(crate) fn` leaves `)` before `fn`, so the
        // walk-back above lands on `)` and `is_pub` stays false.)

        // Generics.
        let mut k = i + 2;
        if toks.get(k).is_some_and(|t| t.is_punct("<")) {
            let mut angle = 0i64;
            while k < toks.len() {
                match toks[k].text.as_str() {
                    "<" => angle += 1,
                    ">" => {
                        angle -= 1;
                        if angle == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        // Parameters.
        if !toks.get(k).is_some_and(|t| t.is_punct("(")) {
            continue;
        }
        let params_open = k;
        let params_close = matching_bracket(toks, params_open);
        let mut param_types = Vec::new();
        let mut start = params_open + 1;
        let mut depth = 0i64;
        let mut angle = 0i64;
        for idx in params_open + 1..=params_close {
            let text = toks[idx].text.as_str();
            let end_of_param = (text == "," && depth == 0 && angle == 0) || idx == params_close;
            match text {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" if idx != params_close => depth -= 1,
                "<" => angle += 1,
                ">" => angle -= 1,
                _ => {}
            }
            if end_of_param {
                if idx > start {
                    if let Some(ty) = param_type_range(toks, start, idx) {
                        param_types.push(ty);
                    }
                }
                start = idx + 1;
            }
        }
        // Return type.
        let mut r = params_close + 1;
        let mut ret = None;
        if toks.get(r).is_some_and(|t| t.is_punct("->")) {
            let ret_start = r + 1;
            let mut depth = 0i64;
            let mut angle = 0i64;
            r = ret_start;
            while r < toks.len() {
                let text = toks[r].text.as_str();
                if depth == 0 && angle <= 0 && (text == "{" || text == ";" || text == "where") {
                    break;
                }
                match text {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    _ => {}
                }
                r += 1;
            }
            if r > ret_start {
                ret = Some((ret_start, r));
            }
        }
        // Body (skipping any `where` clause).
        let mut body = None;
        let mut b = r;
        while b < toks.len() {
            let text = toks[b].text.as_str();
            if text == "{" {
                let close = matching_bracket(toks, b);
                body = Some((b + 1, close));
                break;
            }
            if text == ";" {
                break;
            }
            b += 1;
        }
        out.push(FnSig {
            name: name_tok.text.clone(),
            line: name_tok.line,
            col: name_tok.col,
            is_pub,
            param_types,
            ret,
            body,
        });
    }
    out
}

/// The type token range of one parameter (after its top-level `:`), or
/// `None` for `self` receivers / malformed input.
fn param_type_range(toks: &[Token], start: usize, end: usize) -> Option<(usize, usize)> {
    let mut depth = 0i64;
    for (idx, tok) in toks.iter().enumerate().take(end).skip(start) {
        match tok.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            ":" if depth == 0 => {
                if idx + 1 < end {
                    return Some((idx + 1, end));
                }
                return None;
            }
            _ => {}
        }
    }
    None
}

/// True when a type token range is "bare f64": built only from `f64`,
/// references, tuples, `Option` / `Result` wrappers — i.e. a raw
/// float crossing the API unprotected. Collection types
/// (`&[f64]`, `Vec<f64>`, `[f64; N]`) are *not* flagged: they carry
/// model-internal vectors, which L4 guards at the output instead.
fn is_bare_f64(toks: &[Token], range: (usize, usize)) -> bool {
    let slice = &toks[range.0..range.1];
    let mut saw_f64 = false;
    for t in slice {
        match t.kind {
            TokenKind::Ident => match t.text.as_str() {
                "f64" => saw_f64 = true,
                "Option" | "Result" => {}
                _ => return false,
            },
            TokenKind::Lifetime => {}
            TokenKind::Punct => {
                if !matches!(t.text.as_str(), "&" | "(" | ")" | "<" | ">" | ",") {
                    return false;
                }
            }
            TokenKind::Literal => return false,
        }
    }
    saw_f64
}

// ---------------------------------------------------------------- L2

fn l2_raw_f64(file: &SourceFile, fns: &[FnSig], allow: &Allowlist, diags: &mut Vec<Diagnostic>) {
    for f in fns {
        if !f.is_pub
            || skipped(file, "raw-f64", f.line)
            || allow.allows("raw-f64", &file.path, &f.name)
        {
            continue;
        }
        for &range in &f.param_types {
            let tok = &file.tokens[range.0];
            if is_bare_f64(&file.tokens, range) && !skipped(file, "raw-f64", tok.line) {
                diags.push(diag(
                    file,
                    "L2",
                    "raw-f64",
                    tok,
                    format!(
                        "bare `f64` parameter in public `fn {}`; use a `ppep_types` unit/vf \
                         newtype, or allowlist the genuinely dimensionless ratio",
                        f.name
                    ),
                ));
            }
        }
        if let Some(range) = f.ret {
            let tok = &file.tokens[range.0];
            if is_bare_f64(&file.tokens, range) && !skipped(file, "raw-f64", tok.line) {
                diags.push(diag(
                    file,
                    "L2",
                    "raw-f64",
                    tok,
                    format!(
                        "bare `f64` return in public `fn {}`; use a `ppep_types` unit/vf \
                         newtype, or allowlist the genuinely dimensionless ratio",
                        f.name
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------- L3

fn l3_wildcard_match(file: &SourceFile, allow: &Allowlist, diags: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if !toks[i].is_ident("match") {
            continue;
        }
        // Find the arms block: the first `{` at depth 0 after the
        // scrutinee (struct literals are not legal in scrutinee
        // position, so this is unambiguous).
        let mut depth = 0i64;
        let mut open = None;
        for (j, t) in toks.iter().enumerate().skip(i + 1) {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    open = Some(j);
                    break;
                }
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        let close = matching_bracket(toks, open);
        let mut k = open + 1;
        let mut mentioned: Option<&'static str> = None;
        let mut wildcards: Vec<usize> = Vec::new();
        while k < close {
            // Pattern: tokens until `=>` at relative depth 0.
            let pat_start = k;
            let mut depth = 0i64;
            let mut arrow = None;
            while k < close {
                match toks[k].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=>" if depth == 0 => {
                        arrow = Some(k);
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            let Some(arrow) = arrow else { break };
            let pattern = &toks[pat_start..arrow];
            // Domain-enum mention: `Enum ::` inside the pattern.
            for w in pattern.windows(2) {
                if w[1].is_punct("::") {
                    if let Some(name) = DOMAIN_ENUMS.iter().find(|e| w[0].is_ident(e)) {
                        mentioned = Some(name);
                    }
                }
            }
            // Wildcard: `_`, `_ if …`, or a lone binding `other` /
            // `other if …`.
            let before_guard_len = pattern
                .iter()
                .position(|t| t.is_ident("if"))
                .unwrap_or(pattern.len());
            let head = &pattern[..before_guard_len];
            // (`_` lexes as an identifier token.)
            let is_wild = match head {
                [t] if t.text == "_" => true,
                [t] if t.kind == TokenKind::Ident
                    && t.text.chars().next().is_some_and(|c| c.is_lowercase())
                    && !matches!(t.text.as_str(), "true" | "false") =>
                {
                    true
                }
                _ => false,
            };
            if is_wild {
                wildcards.push(pat_start);
            }
            // Arm body: a block, or an expression up to `,`/end.
            k = arrow + 1;
            if k < close && toks[k].is_punct("{") {
                k = matching_bracket(toks, k) + 1;
                if k < close && toks[k].is_punct(",") {
                    k += 1;
                }
            } else {
                let mut depth = 0i64;
                while k < close {
                    match toks[k].text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth == 0 => {
                            k += 1;
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
        }
        if let Some(enum_name) = mentioned {
            for w in wildcards {
                let tok = &toks[w];
                if skipped(file, "wildcard-match", tok.line)
                    || allow.allows("wildcard-match", &file.path, enum_name)
                {
                    continue;
                }
                diags.push(diag(
                    file,
                    "L3",
                    "wildcard-match",
                    tok,
                    format!(
                        "wildcard arm in `match` involving `{enum_name}`; name every variant \
                         so a new variant is a compile error, not a silent fall-through"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------- L4

fn l4_unguarded_output(
    file: &SourceFile,
    fns: &[FnSig],
    allow: &Allowlist,
    diags: &mut Vec<Diagnostic>,
) {
    for f in fns {
        let Some(ret) = f.ret else { continue };
        let Some(body) = f.body else { continue };
        if !f.is_pub
            || skipped(file, "unguarded-output", f.line)
            || allow.allows("unguarded-output", &file.path, &f.name)
        {
            continue;
        }
        let returns_unit = file.tokens[ret.0..ret.1]
            .iter()
            .any(|t| UNIT_TYPES.iter().any(|u| t.is_ident(u)));
        if !returns_unit {
            continue;
        }
        let body_toks = &file.tokens[body.0..body.1];
        // Trivial accessors (`self.field` / `&self.field`) return an
        // already-guarded stored value; re-guarding them would be noise.
        let accessor_toks = match body_toks {
            [amp, rest @ ..] if amp.is_punct("&") => rest,
            rest => rest,
        };
        if let [a, b, c] = accessor_toks {
            if a.is_ident("self") && b.is_punct(".") && c.kind == TokenKind::Ident {
                continue;
            }
        }
        let guarded = body_toks
            .windows(2)
            .any(|w| w[0].is_ident("finite") && w[1].is_punct("("));
        if !guarded {
            let tok = &file.tokens[ret.0];
            diags.push(Diagnostic {
                group: "L4",
                rule: "unguarded-output",
                path: file.path.clone(),
                line: f.line,
                col: f.col,
                message: format!(
                    "public model output `fn {}` returns `{}` without routing through the \
                     `ppep_types::units::finite` guard; NaN/∞ could silently enter projections",
                    f.name, tok.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------- L6

fn l6_unbound_span(
    file: &SourceFile,
    fns: &[FnSig],
    allow: &Allowlist,
    diags: &mut Vec<Diagnostic>,
) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if !(toks[i].is_punct(".")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("span"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct("(")))
        {
            continue;
        }
        let at = &toks[i + 1];
        if skipped(file, "unbound-span", at.line)
            || allow.allows("unbound-span", &file.path, containing_fn(fns, i))
        {
            continue;
        }
        // Statement start: just past the nearest `;` / `{` / `}`.
        let stmt = toks[..i]
            .iter()
            .rposition(|t| t.kind == TokenKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}"))
            .map_or(0, |p| p + 1);
        let bound = if toks.get(stmt).is_some_and(|t| t.is_ident("let")) {
            let mut b = stmt + 1;
            if toks.get(b).is_some_and(|t| t.is_ident("mut")) {
                b += 1;
            }
            // `let _ = ..` drops the guard immediately; `let _g = ..`
            // (or any named binding) keeps it alive for the scope.
            toks.get(b)
                .is_some_and(|t| t.kind == TokenKind::Ident && t.text != "_")
        } else {
            // An assignment into an existing binding also keeps the
            // guard alive; anything else is a bare statement whose
            // temporary dies at the `;`, recording a near-zero span.
            toks[stmt..i].iter().any(|t| t.is_punct("="))
        };
        if !bound {
            diags.push(diag(
                file,
                "L6",
                "unbound-span",
                at,
                "span guard must be bound (`let _g = rec.span(..)`); a bare statement or \
                 `let _ = ..` drops it immediately and records a zero-length span"
                    .into(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(crate_name: &str, src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse("crates/x/src/lib.rs", crate_name, src);
        check_file(&file, &Allowlist::default())
    }

    #[test]
    fn alias_expansion() {
        assert_eq!(expand_rule_alias("L2"), vec!["raw-f64".to_string()]);
        assert_eq!(expand_rule_alias("all").len(), ALL_RULES.len());
        assert_eq!(expand_rule_alias("unwrap"), vec!["unwrap".to_string()]);
    }

    #[test]
    fn unwrap_or_variants_do_not_trip_l1() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }";
        assert!(check("ppep-core", src).is_empty());
    }

    #[test]
    fn l1_only_applies_to_runtime_crates() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(check("ppep-core", src).len(), 1);
        assert!(check("ppep-experiments", src).is_empty());
        assert!(check("ppep-lint", src).is_empty());
    }

    #[test]
    fn index_arith_ignores_plain_and_literal_indices() {
        // Literal indices stay clean; a plain variable index now trips
        // index-nonliteral (but not index-arith).
        let src = "fn f(v: &[u32], i: usize) -> u32 { v[i] + v[0] }";
        let d = check("ppep-sim", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "index-nonliteral");
        let bad = "fn f(v: &[u32], i: usize) -> u32 { v[i + 1] }";
        let d = check("ppep-sim", bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "index-arith");
        // Method calls inside the index are non-literal, not arithmetic.
        let ok = "fn f(v: &[u32], i: usize) -> u32 { v[i.min(v.len())] }";
        let d = check("ppep-sim", ok);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "index-nonliteral");
    }

    #[test]
    fn index_nonliteral_allowlisted_by_containing_fn() {
        let src =
            "fn f(v: &[u32], i: usize) -> u32 { v[i] }\nfn g(v: &[u32], i: usize) -> u32 { v[i] }";
        let allow = Allowlist::parse(
            "index-nonliteral crates/x/src/lib.rs f -- i is clamped by the caller\n",
        )
        .unwrap();
        let file = SourceFile::parse("crates/x/src/lib.rs", "ppep-sim", src);
        let d = check_file(&file, &allow);
        assert_eq!(d.len(), 1, "only the unallowed fn g remains: {d:?}");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn index_nonliteral_skips_literals_types_and_macros() {
        // Array types, attribute brackets, slice patterns, and macro
        // brackets are not index positions.
        let src = "#[derive(Debug)]\nstruct S { a: [u64; 8] }\nfn f() -> Vec<u32> { vec![1, 2] }";
        assert!(check("ppep-sim", src).is_empty());
        let lit = "fn f(v: &[u32]) -> u32 { v[0] + v[1] }";
        assert!(check("ppep-sim", lit).is_empty());
    }

    #[test]
    fn unbound_span_requires_a_live_binding() {
        let ok = "fn f(&self) { let _g = self.rec.span(Stage::Decide, 0); work(); }";
        assert!(check("ppep-core", ok).is_empty());
        let bare = "fn f(&self) { self.rec.span(Stage::Decide, 0); work(); }";
        let d = check("ppep-core", bare);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "unbound-span");
        let dropped = "fn f(&self) { let _ = self.rec.span(Stage::Decide, 0); work(); }";
        assert_eq!(check("ppep-core", dropped).len(), 1);
        // Reassignment into an existing binding keeps the guard alive.
        let assigned = "fn f(&self) { self.guard = self.rec.span(Stage::Decide, 0); }";
        assert!(check("ppep-core", assigned).is_empty());
        // Applies across all ppep- crates, but not to test code.
        let test_code =
            "#[cfg(test)]\nmod tests {\n    fn t(r: &R) { r.rec.span(Stage::Decide, 0); }\n}\n";
        assert!(check("ppep-experiments", test_code).is_empty());
        assert_eq!(check("ppep-experiments", bare).len(), 1);
    }

    #[test]
    fn l2_flags_bare_f64_but_not_collections() {
        let src = "pub fn eval(x: f64) -> f64 { x }";
        assert_eq!(check("ppep-models", src).len(), 2);
        let ok = "pub fn eval(xs: &[f64]) -> Vec<f64> { xs.to_vec() }";
        assert!(check("ppep-models", ok).is_empty());
        // Non-pub and non-unit-API crates are out of scope.
        assert!(check("ppep-sim", src).is_empty());
        let private = "fn eval(x: f64) -> f64 { x }";
        assert!(check("ppep-models", private).is_empty());
    }

    #[test]
    fn l3_flags_wildcards_only_with_domain_enums() {
        let bad = "fn f(k: FaultKind) -> u32 { match k { FaultKind::SensorDropout => 1, _ => 0 } }";
        let d = check("ppep-sim", bad);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("FaultKind"));
        let binding = "fn f(k: FaultKind) -> u32 { match k { FaultKind::SensorDropout => 1, other => other.cost() } }";
        assert_eq!(check("ppep-sim", binding).len(), 1);
        let ok = "fn f(k: FaultKind) -> u32 { match k { FaultKind::SensorDropout => 1, FaultKind::ThermalNan => 2 } }";
        assert!(check("ppep-sim", ok).is_empty());
        let unrelated = "fn f(x: Option<u32>) -> u32 { match x { Some(v) => v, _ => 0 } }";
        assert!(check("ppep-sim", unrelated).is_empty());
    }

    #[test]
    fn l4_requires_finite_guard_on_unit_outputs() {
        let bad = "pub fn power(&self) -> Watts { Watts::new(self.raw) }";
        assert_eq!(check("ppep-models", bad).len(), 1);
        let ok = "pub fn power(&self) -> Result<Watts> { Watts::new(self.raw).finite(\"p\") }";
        assert!(check("ppep-models", ok).is_empty());
        let accessor = "pub fn power(&self) -> Watts { self.power }";
        assert!(check("ppep-models", accessor).is_empty());
        let ref_accessor = "pub fn table(&self) -> &[Watts] { &self.table }";
        assert!(check("ppep-models", ref_accessor).is_empty());
        // Only the models crate is in scope.
        assert!(check("ppep-core", bad).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
        assert!(check("ppep-core", src).is_empty());
    }

    #[test]
    fn suppression_comments_silence_a_line() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // ppep-lint: allow(unwrap)\n";
        assert!(check("ppep-core", src).is_empty());
    }

    #[test]
    fn fn_signature_parse_handles_generics_and_where() {
        let src = "pub fn f<T: Into<f64>>(x: T, y: f64) -> f64 where T: Copy { y }";
        let file = SourceFile::parse("x.rs", "ppep-models", src);
        let fns = parse_fns(&file);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "f");
        assert!(fns[0].is_pub);
        assert_eq!(fns[0].param_types.len(), 2);
        assert!(fns[0].ret.is_some());
        assert!(fns[0].body.is_some());
    }

    #[test]
    fn restricted_pub_is_not_public_api() {
        let src = "pub(crate) fn f(x: f64) -> f64 { x }";
        assert!(check("ppep-models", src).is_empty());
    }
}
