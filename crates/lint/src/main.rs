//! The `ppep-lint` binary: lints the workspace, prints rustc-style
//! diagnostics, exits nonzero on violations.
//!
//! ```text
//! cargo run -p ppep-lint            # lint the enclosing workspace
//! cargo run -p ppep-lint -- --root /path/to/ws
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: ppep-lint [--root WORKSPACE_DIR]");
                println!("rules: {}", ppep_lint::rules::ALL_RULES.join(", "));
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ppep-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    // `cargo run` sets CARGO_MANIFEST_DIR to crates/lint; the
    // workspace root is two levels up. Fall back to the current
    // directory for a standalone binary.
    let root = root
        .or_else(|| {
            std::env::var_os("CARGO_MANIFEST_DIR")
                .map(|d| PathBuf::from(d).join("../..").canonicalize().ok())?
        })
        .unwrap_or_else(|| PathBuf::from("."));

    match ppep_lint::lint_workspace(&root) {
        Ok(report) => {
            for d in &report.diagnostics {
                eprintln!("{d}");
                eprintln!();
            }
            if report.diagnostics.is_empty() {
                println!("ppep-lint: clean ({} files analyzed)", report.files);
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "ppep-lint: {} violation(s) across {} files",
                    report.diagnostics.len(),
                    report.files
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("ppep-lint: {e}");
            ExitCode::from(2)
        }
    }
}
