//! The `ppep-lint` binary: lints the workspace, prints rustc-style
//! diagnostics, exits nonzero on violations.
//!
//! ```text
//! cargo run -p ppep-lint                      # lint the enclosing workspace
//! cargo run -p ppep-lint -- --root /path/to/ws
//! cargo run -p ppep-lint -- --format json     # machine-readable findings on stdout
//! cargo run -p ppep-lint -- --bench-out BENCH_lint.json
//! ```
//!
//! Exit codes: `0` clean, `1` violations (or stale allowlist entries),
//! `2` usage/IO error, `3` the `--bench-out` wall-clock budget was
//! exceeded on an otherwise clean run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use ppep_lint::Diagnostic;

/// Wall-clock budget for a full workspace run under `--bench-out`.
/// The lint gate rides in front of every CI job, so a slow analyzer
/// is a regression in its own right.
const BENCH_BUDGET_MS: u128 = 30_000;

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Human;
    let mut bench_out: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--format" => match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("human") => format = Format::Human,
                other => {
                    eprintln!("ppep-lint: --format expects `human` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--bench-out" => bench_out = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "usage: ppep-lint [--root WORKSPACE_DIR] [--format human|json] \
                     [--bench-out FILE]"
                );
                println!("rules: {}", ppep_lint::rules::ALL_RULES.join(", "));
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ppep-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    // `cargo run` sets CARGO_MANIFEST_DIR to crates/lint; the
    // workspace root is two levels up. Fall back to the current
    // directory for a standalone binary.
    let root = root
        .or_else(|| {
            std::env::var_os("CARGO_MANIFEST_DIR")
                .map(|d| PathBuf::from(d).join("../..").canonicalize().ok())?
        })
        .unwrap_or_else(|| PathBuf::from("."));

    let started = Instant::now();
    let report = match ppep_lint::lint_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("ppep-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let wall_ms = started.elapsed().as_millis();

    if format == Format::Json {
        println!("{}", findings_json(&report.diagnostics));
    }
    for d in &report.diagnostics {
        eprintln!("{d}");
        eprintln!();
    }
    // A stale exemption is a finding too: an allowlist entry whose
    // target was renamed, fixed, or deleted must be pruned, or the
    // next violation at that (path, item) slips through silently.
    for e in &report.unused_allow {
        eprintln!(
            "error[allow/stale-entry]: allowlist entry matched nothing: \
             `{} {} {}` ({})",
            e.rules.join(","),
            e.path_suffix,
            e.item,
            e.reason
        );
        eprintln!();
    }

    if let Some(path) = &bench_out {
        let over = wall_ms > BENCH_BUDGET_MS;
        let bench = format!(
            "{{\n  \"bench\": \"lint_workspace\",\n  \"files\": {},\n  \
             \"diagnostics\": {},\n  \"wall_ms\": {},\n  \"budget_ms\": {},\n  \
             \"within_budget\": {}\n}}\n",
            report.files,
            report.diagnostics.len(),
            wall_ms,
            BENCH_BUDGET_MS,
            !over
        );
        if let Err(e) = std::fs::write(path, bench) {
            eprintln!("ppep-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        if over && report.diagnostics.is_empty() && report.unused_allow.is_empty() {
            eprintln!("ppep-lint: clean, but {wall_ms} ms exceeds the {BENCH_BUDGET_MS} ms budget");
            return ExitCode::from(3);
        }
    }

    if report.diagnostics.is_empty() && report.unused_allow.is_empty() {
        if format == Format::Human {
            println!("ppep-lint: clean ({} files analyzed)", report.files);
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "ppep-lint: {} violation(s), {} stale allowlist entr{} across {} files",
            report.diagnostics.len(),
            report.unused_allow.len(),
            if report.unused_allow.len() == 1 {
                "y"
            } else {
                "ies"
            },
            report.files
        );
        ExitCode::FAILURE
    }
}

/// Renders diagnostics as a JSON array — one object per finding with
/// `rule`, `group`, `file`, `line`, `col`, `message`, and (for the
/// temporal rules) `note`. Hand-rolled like the rest of the crate:
/// no serde in an offline workspace.
fn findings_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!("\"rule\": {}, ", json_str(d.rule)));
        out.push_str(&format!("\"group\": {}, ", json_str(d.group)));
        out.push_str(&format!("\"file\": {}, ", json_str(&d.path)));
        out.push_str(&format!("\"line\": {}, ", d.line));
        out.push_str(&format!("\"col\": {}, ", d.col));
        out.push_str(&format!("\"message\": {}", json_str(&d.message)));
        if let Some(note) = &d.note {
            out.push_str(&format!(", \"note\": {}", json_str(note)));
        }
        out.push('}');
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("plain"), "\"plain\"");
    }

    #[test]
    fn findings_json_shape() {
        let diags = vec![Diagnostic {
            group: "L5",
            rule: "stale-projection",
            path: "crates/core/src/daemon.rs".into(),
            line: 7,
            col: 9,
            message: "projection `p` is stale here".into(),
            note: Some("invalidated by `apply(..)` at line 5".into()),
        }];
        let json = findings_json(&diags);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"rule\": \"stale-projection\""));
        assert!(json.contains("\"line\": 7"));
        assert!(json.contains("\"note\": \"invalidated by `apply(..)` at line 5\""));
        assert_eq!(findings_json(&[]), "[]");
    }
}
