//! Intraprocedural control-flow graph at statement granularity.
//!
//! [`build`] lowers a parsed [`Block`](crate::ast::Block) into a
//! [`Cfg`]: one node per simple statement, plus synthetic nodes for
//! branch conditions, loop headers, match scrutinees/arm patterns,
//! and block-scope ends (so an analysis can kill a binding exactly
//! where it is dropped). Edges follow Rust's structured control flow:
//! `if` forks and rejoins, loops carry a back edge from the body to
//! the header plus exits through the header and every `break`,
//! `return` jumps to the function exit, `continue` to the innermost
//! header. The graph is small (one function body) and acyclic except
//! for loop back edges, so a worklist fixpoint over it converges in a
//! handful of passes.

use crate::ast::{Block, ExprInfo, Stmt, StmtKind};

/// What a node represents, for diagnostics and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Synthetic function entry (no statement).
    Entry,
    /// Synthetic function exit (no statement).
    Exit,
    /// A simple statement (`let`, assignment, expression, `return`
    /// value, `break` value).
    Stmt,
    /// A branch condition / loop header / match scrutinee.
    Branch,
    /// A match-arm pattern (binds the arm's names, evaluates its
    /// guard).
    ArmPattern,
    /// End of a lexical block: the names in `scope_end` go out of
    /// scope here.
    ScopeEnd,
}

/// One CFG node. Every field an analysis transfer function needs is
/// here — analyses never look back at the AST.
#[derive(Debug, Clone)]
pub struct CfgNode {
    /// 1-based source line (0 for synthetic entry/exit).
    pub line: u32,
    /// What the node represents.
    pub kind: NodeKind,
    /// Names bound at this node (`let` patterns, loop patterns, arm
    /// patterns). Binding kills any prior fact about the same name.
    pub binds: Vec<String>,
    /// True when the node is a `let _ = …` (value discarded on the
    /// spot).
    pub bind_discard: bool,
    /// Identifiers in the `let` type annotation, when present.
    pub ty: Vec<String>,
    /// The node's expression summary (initializer, condition,
    /// scrutinee, or statement expression).
    pub expr: ExprInfo,
    /// Names whose lexical scope ends at this node.
    pub scope_end: Vec<String>,
}

impl CfgNode {
    fn synthetic(kind: NodeKind) -> Self {
        CfgNode {
            line: 0,
            kind,
            binds: Vec::new(),
            bind_discard: false,
            ty: Vec::new(),
            expr: ExprInfo::default(),
            scope_end: Vec::new(),
        }
    }
}

/// The control-flow graph of one function body.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// All nodes; indices are stable node IDs.
    pub nodes: Vec<CfgNode>,
    /// Successor lists, parallel to `nodes`.
    pub succs: Vec<Vec<usize>>,
    /// The entry node ID.
    pub entry: usize,
    /// The exit node ID.
    pub exit: usize,
}

impl Cfg {
    /// Predecessor lists (computed on demand; the builder only stores
    /// successors).
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.nodes.len()];
        for (from, succs) in self.succs.iter().enumerate() {
            for &to in succs {
                preds[to].push(from);
            }
        }
        preds
    }
}

/// Lowers a block into a [`Cfg`].
pub fn build(block: &Block) -> Cfg {
    let mut b = Builder {
        nodes: vec![
            CfgNode::synthetic(NodeKind::Entry),
            CfgNode::synthetic(NodeKind::Exit),
        ],
        succs: vec![Vec::new(), Vec::new()],
        loops: Vec::new(),
    };
    let tails = b.lower_block(block, vec![ENTRY]);
    for t in tails {
        b.edge(t, EXIT);
    }
    Cfg {
        nodes: b.nodes,
        succs: b.succs,
        entry: ENTRY,
        exit: EXIT,
    }
}

const ENTRY: usize = 0;
const EXIT: usize = 1;

/// Innermost-loop context for `break`/`continue`.
struct LoopCtx {
    header: usize,
    breaks: Vec<usize>,
}

struct Builder {
    nodes: Vec<CfgNode>,
    succs: Vec<Vec<usize>>,
    loops: Vec<LoopCtx>,
}

impl Builder {
    fn add(&mut self, node: CfgNode) -> usize {
        self.nodes.push(node);
        self.succs.push(Vec::new());
        self.nodes.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.succs[from].contains(&to) {
            self.succs[from].push(to);
        }
    }

    fn connect(&mut self, preds: &[usize], to: usize) {
        for &p in preds {
            self.edge(p, to);
        }
    }

    /// Lowers `block` with the given predecessors; returns the tail
    /// nodes control falls out of (empty when every path diverges).
    /// A synthetic [`NodeKind::ScopeEnd`] node closing the block's
    /// `let` bindings is appended when any exist.
    fn lower_block(&mut self, block: &Block, mut preds: Vec<usize>) -> Vec<usize> {
        let mut scoped: Vec<String> = Vec::new();
        for stmt in &block.stmts {
            if preds.is_empty() {
                // Unreachable remainder (after return/break/continue):
                // still lower it so in-node token-order checks run,
                // but with no incoming flow.
                preds = Vec::new();
            }
            if let StmtKind::Let { names, .. } = &stmt.kind {
                scoped.extend(names.iter().cloned());
            }
            preds = self.lower_stmt(stmt, preds);
        }
        scoped.dedup();
        if !scoped.is_empty() && !preds.is_empty() {
            let end = self.add(CfgNode {
                line: block.stmts.last().map_or(0, |s| s.line),
                kind: NodeKind::ScopeEnd,
                binds: Vec::new(),
                bind_discard: false,
                ty: Vec::new(),
                expr: ExprInfo::default(),
                scope_end: scoped,
            });
            self.connect(&preds, end);
            preds = vec![end];
        }
        preds
    }

    fn stmt_node(&mut self, stmt: &Stmt, kind: NodeKind, expr: ExprInfo) -> usize {
        self.add(CfgNode {
            line: stmt.line,
            kind,
            binds: Vec::new(),
            bind_discard: false,
            ty: Vec::new(),
            expr,
            scope_end: Vec::new(),
        })
    }

    fn lower_stmt(&mut self, stmt: &Stmt, preds: Vec<usize>) -> Vec<usize> {
        match &stmt.kind {
            StmtKind::Let {
                names,
                discard,
                ty,
                init,
            } => {
                let id = self.add(CfgNode {
                    line: stmt.line,
                    kind: NodeKind::Stmt,
                    binds: names.clone(),
                    bind_discard: *discard,
                    ty: ty.clone(),
                    expr: init.clone(),
                    scope_end: Vec::new(),
                });
                self.connect(&preds, id);
                vec![id]
            }
            StmtKind::Assign { name, expr } => {
                let id = self.add(CfgNode {
                    line: stmt.line,
                    kind: NodeKind::Stmt,
                    binds: vec![name.clone()],
                    bind_discard: false,
                    ty: Vec::new(),
                    expr: expr.clone(),
                    scope_end: Vec::new(),
                });
                self.connect(&preds, id);
                vec![id]
            }
            StmtKind::Expr { expr } => {
                let id = self.stmt_node(stmt, NodeKind::Stmt, expr.clone());
                self.connect(&preds, id);
                vec![id]
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self.stmt_node(stmt, NodeKind::Branch, cond.clone());
                self.connect(&preds, c);
                let mut tails = self.lower_block(then_blk, vec![c]);
                match else_blk {
                    Some(blk) => tails.extend(self.lower_block(blk, vec![c])),
                    // No else: the false edge falls through.
                    None => tails.push(c),
                }
                tails
            }
            StmtKind::Loop {
                header,
                binds,
                body,
            } => {
                let h = self.add(CfgNode {
                    line: stmt.line,
                    kind: NodeKind::Branch,
                    binds: binds.clone(),
                    bind_discard: false,
                    ty: Vec::new(),
                    expr: header.clone(),
                    scope_end: Vec::new(),
                });
                self.connect(&preds, h);
                self.loops.push(LoopCtx {
                    header: h,
                    breaks: Vec::new(),
                });
                let body_tails = self.lower_block(body, vec![h]);
                for t in body_tails {
                    self.edge(t, h); // back edge
                }
                let ctx = self.loops.pop().expect("loop context pushed above");
                // Exits: the header's false/exhausted edge plus breaks.
                let mut tails = vec![h];
                tails.extend(ctx.breaks);
                tails
            }
            StmtKind::Match { scrutinee, arms } => {
                let s = self.stmt_node(stmt, NodeKind::Branch, scrutinee.clone());
                self.connect(&preds, s);
                let mut tails = Vec::new();
                for arm in arms {
                    let pat = self.add(CfgNode {
                        line: arm.body.stmts.first().map_or(stmt.line, |st| st.line),
                        kind: NodeKind::ArmPattern,
                        binds: arm.binds.clone(),
                        bind_discard: false,
                        ty: Vec::new(),
                        expr: arm.guard.clone(),
                        scope_end: Vec::new(),
                    });
                    self.edge(s, pat);
                    tails.extend(self.lower_block(&arm.body, vec![pat]));
                }
                if arms.is_empty() {
                    tails.push(s);
                }
                tails
            }
            StmtKind::Return { expr } => {
                let id = self.stmt_node(stmt, NodeKind::Stmt, expr.clone());
                self.connect(&preds, id);
                self.edge(id, EXIT);
                Vec::new() // diverges
            }
            StmtKind::Break { expr } => {
                let id = self.stmt_node(stmt, NodeKind::Stmt, expr.clone());
                self.connect(&preds, id);
                if let Some(ctx) = self.loops.last_mut() {
                    ctx.breaks.push(id);
                } else {
                    // `break` outside a loop (parser confusion): treat
                    // as divergence to the exit.
                    self.edge(id, EXIT);
                }
                Vec::new()
            }
            StmtKind::Continue => {
                let id = self.stmt_node(stmt, NodeKind::Stmt, ExprInfo::default());
                self.connect(&preds, id);
                let header = self.loops.last().map(|c| c.header);
                match header {
                    Some(h) => self.edge(id, h),
                    None => self.edge(id, EXIT),
                }
                Vec::new()
            }
            StmtKind::Block { body } => self.lower_block(body, preds),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_block;
    use crate::lexer::lex;

    fn cfg_of(src: &str) -> Cfg {
        let toks = lex(src).tokens;
        let n = toks.len();
        build(&parse_block(&toks, 0, n))
    }

    /// Every non-exit node reachable from entry has a path onward.
    fn assert_well_formed(cfg: &Cfg) {
        assert!(cfg.nodes.len() >= 2);
        assert_eq!(cfg.succs.len(), cfg.nodes.len());
        for succs in &cfg.succs {
            for &s in succs {
                assert!(s < cfg.nodes.len());
            }
        }
    }

    #[test]
    fn straight_line_chains() {
        let cfg = cfg_of("let a = one(); let b = two(a); use_it(b);");
        assert_well_formed(&cfg);
        // entry → let a → let b → expr → scope-end → exit
        let mut at = cfg.entry;
        let mut hops = 0;
        while at != cfg.exit {
            assert_eq!(cfg.succs[at].len(), 1, "straight line at node {at}");
            at = cfg.succs[at][0];
            hops += 1;
            assert!(hops < 10);
        }
        assert_eq!(hops, 5);
    }

    #[test]
    fn if_forks_and_rejoins() {
        let cfg = cfg_of("if c { a(); } else { b(); } after();");
        assert_well_formed(&cfg);
        let branch = cfg
            .nodes
            .iter()
            .position(|n| n.kind == NodeKind::Branch)
            .expect("branch node");
        assert_eq!(cfg.succs[branch].len(), 2);
    }

    #[test]
    fn if_without_else_falls_through() {
        let cfg = cfg_of("if c { a(); } after();");
        let branch = cfg
            .nodes
            .iter()
            .position(|n| n.kind == NodeKind::Branch)
            .expect("branch node");
        // True edge into the block, false edge to `after()`.
        assert_eq!(cfg.succs[branch].len(), 2);
    }

    #[test]
    fn loop_has_back_edge_and_break_exit() {
        let cfg = cfg_of("while go() { if done { break; } step(); } after();");
        assert_well_formed(&cfg);
        let header = cfg
            .nodes
            .iter()
            .position(|n| n.kind == NodeKind::Branch && n.expr.calls_name("go"))
            .expect("loop header");
        // Some node inside the body points back at the header.
        let has_back_edge = cfg
            .succs
            .iter()
            .enumerate()
            .any(|(i, s)| i != cfg.entry && i > header && s.contains(&header));
        assert!(has_back_edge, "loop body must re-enter the header");
        // The break node reaches `after()` without passing the header.
        let after = cfg
            .nodes
            .iter()
            .position(|n| n.expr.calls_name("after"))
            .expect("after node");
        let brk = cfg.nodes.iter().position(i_am_break).expect("break node");
        assert!(cfg.succs[brk].contains(&after));
    }

    fn i_am_break(n: &CfgNode) -> bool {
        n.kind == NodeKind::Stmt
            && n.expr.calls.is_empty()
            && n.expr.uses.is_empty()
            && n.binds.is_empty()
            && n.line > 0
            && n.scope_end.is_empty()
    }

    #[test]
    fn return_diverges_to_exit() {
        let cfg = cfg_of("if c { return err(); } ok();");
        let ret = cfg
            .nodes
            .iter()
            .position(|n| n.expr.calls_name("err"))
            .expect("return node");
        assert_eq!(cfg.succs[ret], vec![cfg.exit]);
    }

    #[test]
    fn match_fans_out_per_arm() {
        let cfg = cfg_of("match r { Ok(v) => good(v), Err(e) => bad(e), } after();");
        let arms = cfg
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::ArmPattern)
            .count();
        assert_eq!(arms, 2);
        let scrut = cfg
            .nodes
            .iter()
            .position(|n| n.kind == NodeKind::Branch)
            .expect("scrutinee");
        assert_eq!(cfg.succs[scrut].len(), 2);
    }

    #[test]
    fn scope_end_kills_block_locals() {
        let cfg = cfg_of("{ let g = m.lock(); use_it(&g); } after();");
        let end = cfg
            .nodes
            .iter()
            .find(|n| n.kind == NodeKind::ScopeEnd)
            .expect("scope end");
        assert_eq!(end.scope_end, vec!["g".to_string()]);
    }

    #[test]
    fn preds_invert_succs() {
        let cfg = cfg_of("if c { a(); } b();");
        let preds = cfg.preds();
        for (from, succs) in cfg.succs.iter().enumerate() {
            for &to in succs {
                assert!(preds[to].contains(&from));
            }
        }
    }
}
