//! Per-file analysis context: which lines are test code, which lines
//! carry `// ppep-lint: allow(...)` suppressions, and bracket-matching
//! over the token stream.

use crate::lexer::{lex, LexOutput, Token};
use crate::rules::expand_rule_alias;
use std::collections::{BTreeMap, BTreeSet};

/// A lexed source file plus the line classifications rules need.
pub struct SourceFile {
    /// Workspace-relative path, used in diagnostics and allowlists.
    pub path: String,
    /// Cargo package name the file belongs to (e.g. `ppep-core`).
    pub crate_name: String,
    /// All code tokens.
    pub tokens: Vec<Token>,
    /// Inclusive line ranges that are test-only code.
    test_spans: Vec<(u32, u32)>,
    /// Per-line suppressed rule names.
    suppressed: BTreeMap<u32, BTreeSet<String>>,
}

impl SourceFile {
    /// Lexes and classifies one file.
    pub fn parse(path: &str, crate_name: &str, src: &str) -> Self {
        let LexOutput { tokens, comments } = lex(src);
        let test_spans = test_spans(&tokens);
        let mut suppressed: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
        for c in &comments {
            let Some(rules) = parse_allow_directive(&c.text) else {
                continue;
            };
            // A trailing directive suppresses its own line; a directive
            // on a line of its own suppresses the next code line.
            let target = if tokens.iter().any(|t| t.line == c.line) {
                c.line
            } else {
                tokens
                    .iter()
                    .map(|t| t.line)
                    .find(|l| *l > c.line)
                    .unwrap_or(c.line)
            };
            suppressed.entry(target).or_default().extend(rules);
        }
        Self {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            tokens,
            test_spans,
            suppressed,
        }
    }

    /// True when `line` is inside `#[cfg(test)]` / `#[test]` code.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_spans
            .iter()
            .any(|(a, b)| (*a..=*b).contains(&line))
    }

    /// True when `rule` is suppressed on `line` by an inline directive.
    pub fn is_suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressed
            .get(&line)
            .is_some_and(|set| set.contains(rule))
    }

    /// Index of the token matching the opening bracket at `open`
    /// (which must be `(`, `[` or `{`). Returns the last token index
    /// on unbalanced input rather than panicking.
    pub fn matching_bracket(&self, open: usize) -> usize {
        matching_bracket(&self.tokens, open)
    }
}

/// See [`SourceFile::matching_bracket`].
pub fn matching_bracket(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

/// Parses `ppep-lint: allow(rule, rule, ...)` from a comment body.
/// Returns the expanded rule-name set, or `None` when the comment is
/// not a directive.
fn parse_allow_directive(text: &str) -> Option<Vec<String>> {
    let rest = text.trim().strip_prefix("ppep-lint:")?.trim();
    let inner = rest.strip_prefix("allow(")?;
    let inner = inner.split(')').next()?;
    let mut out = Vec::new();
    for raw in inner.split(',') {
        let name = raw.trim();
        if !name.is_empty() {
            out.extend(expand_rule_alias(name));
        }
    }
    Some(out)
}

/// Finds inclusive line spans of items marked `#[cfg(test)]` or
/// `#[test]` (the attribute line through the item's closing brace or
/// semicolon).
fn test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))) {
            i += 1;
            continue;
        }
        let attr_open = i + 1;
        let attr_close = matching_bracket(tokens, attr_open);
        let body = &tokens[attr_open + 1..attr_close];
        let is_test_attr = match body.first() {
            Some(t) if t.is_ident("test") => true,
            Some(t) if t.is_ident("cfg") => body.iter().any(|t| t.is_ident("test")),
            _ => false,
        };
        if !is_test_attr {
            i = attr_close + 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Skip any further attributes, then find the end of the item:
        // the matching `}` of its first top-level `{`, or a `;`.
        let mut j = attr_close + 1;
        while j + 1 < tokens.len() && tokens[j].is_punct("#") && tokens[j + 1].is_punct("[") {
            j = matching_bracket(tokens, j + 1) + 1;
        }
        let mut end = tokens.len().saturating_sub(1);
        while j < tokens.len() {
            if tokens[j].is_punct(";") {
                end = j;
                break;
            }
            if tokens[j].is_punct("{") {
                end = matching_bracket(tokens, j);
                break;
            }
            j += 1;
        }
        let end_line = tokens.get(end).map_or(start_line, |t| t.line);
        spans.push((start_line, end_line));
        i = end + 1;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_span_covers_the_module() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = SourceFile::parse("x.rs", "ppep-core", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn test_fn_with_extra_attributes() {
        let src = "#[test]\n#[should_panic(expected = \"boom\")]\nfn t() {\n    boom();\n}\nfn live() {}\n";
        let f = SourceFile::parse("x.rs", "ppep-core", src);
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn trailing_and_standalone_suppressions() {
        let src = "let a = x.unwrap(); // ppep-lint: allow(unwrap)\n// ppep-lint: allow(expect, panic)\nlet b = y.expect(\"z\");\n";
        let f = SourceFile::parse("x.rs", "ppep-core", src);
        assert!(f.is_suppressed("unwrap", 1));
        assert!(!f.is_suppressed("expect", 1));
        assert!(f.is_suppressed("expect", 3));
        assert!(f.is_suppressed("panic", 3));
    }

    #[test]
    fn group_alias_expands() {
        let src = "// ppep-lint: allow(L1)\nlet a = x.unwrap();\n";
        let f = SourceFile::parse("x.rs", "ppep-core", src);
        assert!(f.is_suppressed("unwrap", 2));
        assert!(f.is_suppressed("index-arith", 2));
        assert!(!f.is_suppressed("raw-f64", 2));
    }
}
