//! A minimal Rust lexer: just enough token structure for the lint
//! rules, with exact line/column positions.
//!
//! The lexer understands everything that can *hide* code from a naive
//! scanner — line and (nested) block comments, doc comments, string /
//! raw-string / char / byte literals, lifetimes — so that a
//! `.unwrap()` inside a doc example or a string never produces a
//! false positive, and one in real code is never missed.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `match`, `unwrap`, …).
    Ident,
    /// A lifetime such as `'a` (including `'_` and `'static`).
    Lifetime,
    /// Any literal: number, string, raw string, char, byte string.
    Literal,
    /// Punctuation. Multi-character operators that matter to parsing
    /// (`->`, `=>`, `::`, `..`, `..=`) are single tokens; everything
    /// else is one character per token.
    Punct,
}

/// One lexed token with its position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token class.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in chars).
    pub col: u32,
}

impl Token {
    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True when this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// A comment, kept out-of-band (rules never see comments as tokens,
/// but suppression directives live in them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the `//` / `/*` delimiters, trimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The output of [`lex`]: code tokens plus out-of-band comments.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// All code tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators lexed as single tokens, longest first.
const COMBINED: [&str; 5] = ["..=", "->", "=>", "::", ".."];

/// Lexes Rust source. Unterminated constructs (strings, comments) are
/// tolerated by consuming to end-of-file — the lint must never panic
/// on weird input, fixture or otherwise.
pub fn lex(src: &str) -> LexOutput {
    let chars: Vec<char> = src.chars().collect();
    let mut out = LexOutput::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    // Advances past `n` chars, tracking line/col.
    macro_rules! bump {
        ($n:expr) => {
            for _ in 0..$n {
                if i < chars.len() {
                    if chars[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);

        // Whitespace.
        if c.is_whitespace() {
            bump!(1);
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < chars.len() {
            if chars[i + 1] == '/' {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    bump!(1);
                }
                let text: String = chars[start..i].iter().collect();
                out.comments.push(Comment {
                    text: text.trim_start_matches('/').trim().to_string(),
                    line: tline,
                });
                continue;
            }
            if chars[i + 1] == '*' {
                let start = i;
                let mut depth = 0usize;
                while i < chars.len() {
                    if chars[i] == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                        depth += 1;
                        bump!(2);
                    } else if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                        depth -= 1;
                        bump!(2);
                        if depth == 0 {
                            break;
                        }
                    } else {
                        bump!(1);
                    }
                }
                let text: String = chars[start..i].iter().collect();
                out.comments.push(Comment {
                    text: text
                        .trim_start_matches("/*")
                        .trim_end_matches("*/")
                        .trim()
                        .to_string(),
                    line: tline,
                });
                continue;
            }
        }

        // String-ish literals, including r"", r#""#, b"", br#""#.
        if c == '"' || starts_string_prefix(&chars, i) {
            let start = i;
            // Skip the b / r / br prefix.
            while i < chars.len() && (chars[i] == 'b' || chars[i] == 'r') {
                bump!(1);
            }
            let mut hashes = 0usize;
            while i < chars.len() && chars[i] == '#' {
                hashes += 1;
                bump!(1);
            }
            // Opening quote.
            bump!(1);
            if hashes == 0 {
                // Ordinary (possibly escaped) string.
                while i < chars.len() {
                    if chars[i] == '\\' {
                        bump!(2);
                    } else if chars[i] == '"' {
                        bump!(1);
                        break;
                    } else {
                        bump!(1);
                    }
                }
            } else {
                // Raw string: ends at `"` followed by `hashes` hashes.
                while i < chars.len() {
                    if chars[i] == '"' {
                        let mut ok = true;
                        for k in 0..hashes {
                            if chars.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            bump!(1 + hashes);
                            break;
                        }
                    }
                    bump!(1);
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text: chars[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            // `'\...'` or `'x'` are char literals; otherwise a lifetime.
            let is_char = chars.get(i + 1) == Some(&'\\')
                || (chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\''));
            if is_char {
                let start = i;
                bump!(1); // opening quote
                while i < chars.len() {
                    if chars[i] == '\\' {
                        bump!(2);
                    } else if chars[i] == '\'' {
                        bump!(1);
                        break;
                    } else {
                        bump!(1);
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: chars[start..i].iter().collect(),
                    line: tline,
                    col: tcol,
                });
            } else {
                let start = i;
                bump!(1);
                while i < chars.len() && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                    bump!(1);
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line: tline,
                    col: tcol,
                });
            }
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() {
                let d = chars[i];
                if d.is_alphanumeric() || d == '_' {
                    bump!(1);
                } else if d == '.' {
                    // `1..n` is a range, not a float continuation.
                    if chars.get(i + 1) == Some(&'.') {
                        break;
                    }
                    bump!(1);
                } else if (d == '+' || d == '-')
                    && matches!(chars.get(i.wrapping_sub(1)), Some('e') | Some('E'))
                {
                    bump!(1);
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text: chars[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Identifiers / keywords (incl. raw identifiers `r#match`).
        if c == '_' || c.is_alphabetic() {
            let start = i;
            // Raw identifier prefix.
            if c == 'r' && chars.get(i + 1) == Some(&'#') && is_ident_start(chars.get(i + 2)) {
                bump!(2);
            }
            while i < chars.len() && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                bump!(1);
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: chars[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Combined punctuation, longest first.
        let mut matched = false;
        for op in COMBINED {
            let oplen = op.len();
            if chars[i..].starts_with(&op.chars().collect::<Vec<_>>()[..]) {
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: op.to_string(),
                    line: tline,
                    col: tcol,
                });
                bump!(oplen);
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }

        // Single-char punctuation.
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line: tline,
            col: tcol,
        });
        bump!(1);
    }

    out
}

fn starts_string_prefix(chars: &[char], i: usize) -> bool {
    // b" | br" | br#" | r" | r#"
    match chars[i] {
        'b' => match chars.get(i + 1) {
            Some('"') => true,
            Some('r') => matches!(chars.get(i + 2), Some('"') | Some('#')),
            _ => false,
        },
        'r' => match chars.get(i + 1) {
            Some('"') => true,
            // `r#"` is a raw string; `r#ident` is a raw identifier.
            Some('#') => chars.get(i + 2) == Some(&'"'),
            _ => false,
        },
        _ => false,
    }
}

fn is_ident_start(c: Option<&char>) -> bool {
    matches!(c, Some(c) if *c == '_' || c.is_alphabetic())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_hide_code() {
        let out = lex("let a = \"x.unwrap()\"; // .unwrap()\n/* .unwrap() */ b");
        assert!(out.tokens.iter().all(|t| t.text != "unwrap"));
        assert_eq!(out.comments.len(), 2);
        assert_eq!(out.comments[0].text, ".unwrap()");
    }

    #[test]
    fn raw_strings_and_chars() {
        let t = texts("r#\"panic!(\"x\")\"# '\\n' 'a' b\"z\" next");
        assert_eq!(t.last().unwrap(), "next");
        assert!(!t.contains(&"panic".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let out = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        let lifetimes: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 3);
        assert!(lifetimes.iter().all(|t| t.text == "'a"));
    }

    #[test]
    fn combined_operators() {
        let t = texts("a -> b => c::d 0..n 0..=n x >= y");
        assert!(t.contains(&"->".to_string()));
        assert!(t.contains(&"=>".to_string()));
        assert!(t.contains(&"::".to_string()));
        assert!(t.contains(&"..".to_string()));
        assert!(t.contains(&"..=".to_string()));
        // `>=` must not lex as `=>`.
        assert_eq!(t.iter().filter(|s| *s == "=>").count(), 1);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let t = texts("for i in 0..width { a[i - 1] = 1.0e-9; }");
        assert!(t.contains(&"0".to_string()));
        assert!(t.contains(&"..".to_string()));
        assert!(t.contains(&"1.0e-9".to_string()));
    }

    #[test]
    fn positions_are_tracked() {
        let out = lex("a\n  b");
        assert_eq!(out.tokens[0].line, 1);
        assert_eq!(out.tokens[1].line, 2);
        assert_eq!(out.tokens[1].col, 3);
    }

    #[test]
    fn nested_block_comments() {
        let out = lex("/* outer /* inner */ still */ token");
        assert_eq!(out.tokens.len(), 1);
        assert_eq!(out.tokens[0].text, "token");
    }
}
