//! Rustc-style diagnostics.

use std::fmt;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule group id, e.g. `L1`.
    pub group: &'static str,
    /// Rule name, e.g. `unwrap` (the name `allow(...)` accepts).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line of the violation.
    pub line: u32,
    /// 1-based column of the violation.
    pub col: u32,
    /// Human message.
    pub message: String,
    /// Secondary note (e.g. the L5 killing `apply()` site), rendered
    /// as a rustc `= note:` line.
    pub note: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[{}/{}]: {}", self.group, self.rule, self.message)?;
        write!(f, "  --> {}:{}:{}", self.path, self.line, self.col)?;
        if let Some(note) = &self.note {
            write!(f, "\n  = note: {note}")?;
        }
        Ok(())
    }
}

/// Orders diagnostics for stable output: by path, then position.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rustc_style() {
        let d = Diagnostic {
            group: "L1",
            rule: "unwrap",
            path: "crates/core/src/ppe.rs".into(),
            line: 117,
            col: 14,
            message: "`.unwrap()` in runtime crate".into(),
            note: None,
        };
        let s = d.to_string();
        assert!(s.starts_with("error[L1/unwrap]:"));
        assert!(s.contains("--> crates/core/src/ppe.rs:117:14"));
        assert!(!s.contains("= note:"));
    }

    #[test]
    fn renders_note_line() {
        let d = Diagnostic {
            group: "L5",
            rule: "stale-projection",
            path: "crates/core/src/daemon.rs".into(),
            line: 230,
            col: 9,
            message: "projection read after apply".into(),
            note: Some("invalidated by `apply(..)` at line 224".into()),
        };
        let s = d.to_string();
        assert!(
            s.contains("\n  = note: invalidated by `apply(..)` at line 224"),
            "{s}"
        );
    }
}
