//! Forward dataflow over a [`Cfg`](crate::cfg::Cfg).
//!
//! The engine is the classic monotone framework specialized to what
//! the temporal rules need: facts are elements of a finite set,
//! joined by set union, propagated by a per-node transfer function.
//! Because node inputs only ever grow (union join) and transfer
//! functions are recomputed from scratch on each visit, the worklist
//! fixpoint terminates for any transfer function that is a pure
//! function of its input — a property the proptest in
//! `tests/dataflow_props.rs` checks against [`solve_naive`], a
//! deliberately dumb round-robin solver used as reference semantics.

use std::collections::{BTreeSet, VecDeque};

use crate::cfg::{Cfg, CfgNode};

/// A forward dataflow analysis: entry facts plus a transfer function.
pub trait Analysis {
    /// The fact domain. `Ord` so facts live in deterministic
    /// [`BTreeSet`]s.
    type Fact: Clone + Ord;

    /// Facts holding at function entry (e.g. parameter-derived).
    fn entry(&self) -> BTreeSet<Self::Fact>;

    /// Facts after `node` executes, given the facts before it.
    fn transfer(&self, node: &CfgNode, input: &BTreeSet<Self::Fact>) -> BTreeSet<Self::Fact>;
}

/// Per-node fixpoint results.
pub struct Solution<F> {
    /// Facts on entry to each node (union over predecessors' outputs).
    pub inputs: Vec<BTreeSet<F>>,
    /// Facts on exit from each node.
    pub outputs: Vec<BTreeSet<F>>,
    /// Node visits performed before convergence (for the bench and
    /// the termination proptest).
    pub iterations: usize,
}

/// Worklist fixpoint. Nodes unreachable from entry are never visited
/// and keep empty in/out sets, so rules never diagnose dead code from
/// flow facts.
pub fn solve<A: Analysis>(cfg: &Cfg, analysis: &A) -> Solution<A::Fact> {
    let n = cfg.nodes.len();
    let mut inputs: Vec<BTreeSet<A::Fact>> = vec![BTreeSet::new(); n];
    let mut outputs: Vec<BTreeSet<A::Fact>> = vec![BTreeSet::new(); n];
    let mut visited = vec![false; n];
    inputs[cfg.entry] = analysis.entry();

    let mut on_list = vec![false; n];
    let mut worklist = VecDeque::with_capacity(n);
    worklist.push_back(cfg.entry);
    on_list[cfg.entry] = true;

    let mut iterations = 0usize;
    // Safety valve: |nodes| × |fact universe| bounds a monotone run;
    // anything past this indicates a non-monotone transfer function,
    // and bailing out with the facts accumulated so far is better
    // than hanging CI.
    let cap = 100_000usize.max(n * 64);

    while let Some(id) = worklist.pop_front() {
        on_list[id] = false;
        iterations += 1;
        if iterations > cap {
            break;
        }
        let first_visit = !visited[id];
        visited[id] = true;
        let out = analysis.transfer(&cfg.nodes[id], &inputs[id]);
        if out == outputs[id] && !first_visit {
            continue;
        }
        outputs[id] = out;
        for &succ in &cfg.succs[id] {
            let before = inputs[succ].len();
            inputs[succ].extend(outputs[id].iter().cloned());
            let grew = inputs[succ].len() != before;
            if (grew || !visited[succ]) && !on_list[succ] {
                on_list[succ] = true;
                worklist.push_back(succ);
            }
        }
    }
    Solution {
        inputs,
        outputs,
        iterations,
    }
}

/// Reference solver: round-robin over all nodes until nothing
/// changes. Quadratic and proudly so — it exists to give the proptest
/// independently-derived expected results. Inputs are recomputed from
/// predecessor outputs each sweep, with a reachability guard so
/// unreachable nodes stay empty like in [`solve`].
pub fn solve_naive<A: Analysis>(cfg: &Cfg, analysis: &A) -> Solution<A::Fact> {
    let n = cfg.nodes.len();
    let mut inputs: Vec<BTreeSet<A::Fact>> = vec![BTreeSet::new(); n];
    let mut outputs: Vec<BTreeSet<A::Fact>> = vec![BTreeSet::new(); n];
    let preds = cfg.preds();
    let reachable = reachability(cfg);
    let mut iterations = 0usize;
    let cap = 100_000usize.max(n * 64);
    loop {
        let mut changed = false;
        for id in 0..n {
            if !reachable[id] {
                continue;
            }
            iterations += 1;
            let mut input: BTreeSet<A::Fact> = if id == cfg.entry {
                analysis.entry()
            } else {
                BTreeSet::new()
            };
            for &p in &preds[id] {
                input.extend(outputs[p].iter().cloned());
            }
            let out = analysis.transfer(&cfg.nodes[id], &input);
            if input != inputs[id] || out != outputs[id] {
                inputs[id] = input;
                outputs[id] = out;
                changed = true;
            }
        }
        if !changed || iterations > cap {
            break;
        }
    }
    Solution {
        inputs,
        outputs,
        iterations,
    }
}

/// Nodes reachable from the entry by following successor edges.
fn reachability(cfg: &Cfg) -> Vec<bool> {
    let mut seen = vec![false; cfg.nodes.len()];
    let mut stack = vec![cfg.entry];
    seen[cfg.entry] = true;
    while let Some(id) = stack.pop() {
        for &s in &cfg.succs[id] {
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_block;
    use crate::cfg::build;
    use crate::lexer::lex;

    /// Reaching "live bindings": a `let x = …` generates `x`; a
    /// rebinding regenerates it; `scope_end` kills it.
    struct LiveBindings;

    impl Analysis for LiveBindings {
        type Fact = String;

        fn entry(&self) -> BTreeSet<String> {
            BTreeSet::new()
        }

        fn transfer(&self, node: &CfgNode, input: &BTreeSet<String>) -> BTreeSet<String> {
            let mut out = input.clone();
            for dead in &node.scope_end {
                out.remove(dead);
            }
            for b in &node.binds {
                out.insert(b.clone());
            }
            out
        }
    }

    fn solve_src(src: &str) -> (Cfg, Solution<String>) {
        let toks = lex(src).tokens;
        let n = toks.len();
        let cfg = build(&parse_block(&toks, 0, n));
        let sol = solve(&cfg, &LiveBindings);
        (cfg, sol)
    }

    #[test]
    fn facts_flow_down_straight_line() {
        let (cfg, sol) = solve_src("let a = one(); let b = two(); use_it(a, b);");
        let use_node = cfg
            .nodes
            .iter()
            .position(|n| n.expr.calls_name("use_it"))
            .expect("use node");
        assert!(sol.inputs[use_node].contains("a"));
        assert!(sol.inputs[use_node].contains("b"));
    }

    #[test]
    fn branch_facts_stay_in_branch_and_die_at_scope_end() {
        let (cfg, sol) =
            solve_src("if c { let x = mk(); tag(x); } else { let y = mk(); tag(y); } after();");
        let after = cfg
            .nodes
            .iter()
            .position(|n| n.expr.calls_name("after"))
            .expect("after node");
        // Block-scoped lets die at their scope ends before the join.
        assert!(!sol.inputs[after].contains("x"));
        assert!(!sol.inputs[after].contains("y"));
        let tags: Vec<usize> = cfg
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.expr.calls_name("tag"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(tags.len(), 2);
        let both: BTreeSet<&String> = sol.inputs[tags[0]]
            .iter()
            .chain(sol.inputs[tags[1]].iter())
            .collect();
        assert!(both.iter().any(|s| *s == "x"));
        assert!(both.iter().any(|s| *s == "y"));
    }

    #[test]
    fn loop_facts_reach_header_via_back_edge() {
        let (cfg, sol) =
            solve_src("let mut acc = start(); while go() { acc = step(acc); } done(acc);");
        let header = cfg
            .nodes
            .iter()
            .position(|n| n.expr.calls_name("go"))
            .expect("header");
        assert!(sol.inputs[header].contains("acc"));
        assert!(sol.iterations < 1000);
    }

    #[test]
    fn worklist_matches_naive() {
        for src in [
            "let a = x(); if c { let b = y(); } else { a = z(); } w(a);",
            "for i in xs { if p(i) { continue; } if q(i) { break; } body(i); } tail();",
            "match r { Ok(v) => { let t = f(v); g(t); } Err(e) => return h(e), } tail();",
            "loop { let s = poll(); if fin(s) { break; } }",
        ] {
            let toks = lex(src).tokens;
            let n = toks.len();
            let cfg = build(&parse_block(&toks, 0, n));
            let fast = solve(&cfg, &LiveBindings);
            let slow = solve_naive(&cfg, &LiveBindings);
            assert_eq!(fast.inputs, slow.inputs, "inputs diverge on: {src}");
            assert_eq!(fast.outputs, slow.outputs, "outputs diverge on: {src}");
        }
    }
}
