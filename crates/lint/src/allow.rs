//! The workspace allowlist (`ppep-lint.allow` at the repo root).
//!
//! One entry per line:
//!
//! ```text
//! rule  path-suffix  item -- reason
//! ```
//!
//! e.g.
//!
//! ```text
//! raw-f64 crates/models/src/cpi.rs predict_cpi -- CPI is a dimensionless ratio
//! ```
//!
//! `rule` is a rule name (or `L1`…`L8` group alias), `path-suffix`
//! matches the end of the diagnostic's path, `item` is the function
//! name the rule attaches to. Blank lines and `#` comments are
//! ignored. The `-- reason` tail is mandatory: an exemption without a
//! recorded justification is itself a parse error, so the allowlist
//! stays auditable.
//!
//! The list also tracks *usage*: every [`Allowlist::allows`] hit marks
//! the matching entries, and [`Allowlist::unused`] reports entries
//! that suppressed nothing across a whole run — a stale exemption is a
//! lint failure in its own right, so dead entries cannot accumulate.

use std::cell::RefCell;
use std::collections::BTreeSet;

use crate::rules::expand_rule_alias;

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Expanded rule names this entry exempts.
    pub rules: Vec<String>,
    /// Path suffix the entry applies to.
    pub path_suffix: String,
    /// Item (function) name the entry applies to.
    pub item: String,
    /// Why the exemption is sound.
    pub reason: String,
}

/// The parsed allowlist.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
    /// Indices of entries that matched at least one would-be
    /// diagnostic. Interior mutability because rule code only holds
    /// `&Allowlist`.
    used: RefCell<BTreeSet<usize>>,
}

impl Allowlist {
    /// Parses allowlist text. Returns `Err` with a message naming the
    /// offending line on malformed entries.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (spec, reason) = line
                .split_once("--")
                .ok_or_else(|| format!("allowlist line {}: missing `-- reason`", idx + 1))?;
            let fields: Vec<&str> = spec.split_whitespace().collect();
            let [rule, path_suffix, item] = fields[..] else {
                return Err(format!(
                    "allowlist line {}: expected `rule path item -- reason`, got {:?}",
                    idx + 1,
                    spec.trim()
                ));
            };
            let reason = reason.trim();
            if reason.is_empty() {
                return Err(format!("allowlist line {}: empty reason", idx + 1));
            }
            entries.push(AllowEntry {
                rules: expand_rule_alias(rule),
                path_suffix: path_suffix.to_string(),
                item: item.to_string(),
                reason: reason.to_string(),
            });
        }
        Ok(Self {
            entries,
            used: RefCell::new(BTreeSet::new()),
        })
    }

    /// True when `rule` is exempted for `item` in `path`. Call this
    /// only at the point a diagnostic would otherwise fire: a hit
    /// marks the entry as *used*, and entries that stay unused across
    /// a whole workspace run are themselves reported stale.
    pub fn allows(&self, rule: &str, path: &str, item: &str) -> bool {
        let mut hit = false;
        for (idx, e) in self.entries.iter().enumerate() {
            if e.rules.iter().any(|r| r == rule) && path.ends_with(&e.path_suffix) && e.item == item
            {
                self.used.borrow_mut().insert(idx);
                hit = true;
            }
        }
        hit
    }

    /// All parsed entries (for reporting / docs).
    pub fn entries(&self) -> &[AllowEntry] {
        &self.entries
    }

    /// Entries that never matched a would-be diagnostic — stale
    /// exemptions whose target was renamed, fixed, or deleted.
    pub fn unused(&self) -> Vec<AllowEntry> {
        let used = self.used.borrow();
        self.entries
            .iter()
            .enumerate()
            .filter(|(idx, _)| !used.contains(idx))
            .map(|(_, e)| e.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_matches() {
        let a = Allowlist::parse(
            "# comment\n\nraw-f64 crates/models/src/cpi.rs predict_cpi -- CPI is dimensionless\n",
        )
        .unwrap();
        assert!(a.allows("raw-f64", "crates/models/src/cpi.rs", "predict_cpi"));
        assert!(!a.allows("raw-f64", "crates/models/src/cpi.rs", "other_fn"));
        assert!(!a.allows("unwrap", "crates/models/src/cpi.rs", "predict_cpi"));
        assert_eq!(a.entries().len(), 1);
    }

    #[test]
    fn usage_is_tracked_per_entry() {
        let a = Allowlist::parse(
            "raw-f64 crates/models/src/cpi.rs predict_cpi -- CPI is dimensionless\n\
             unwrap crates/core/src/ppe.rs never_hit -- stale entry\n",
        )
        .unwrap();
        assert_eq!(a.unused().len(), 2, "nothing consulted yet");
        assert!(a.allows("raw-f64", "crates/models/src/cpi.rs", "predict_cpi"));
        assert!(!a.allows("unwrap", "crates/core/src/ppe.rs", "other_fn"));
        let unused = a.unused();
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].item, "never_hit");
    }

    #[test]
    fn reason_is_mandatory() {
        assert!(Allowlist::parse("raw-f64 a.rs f\n").is_err());
        assert!(Allowlist::parse("raw-f64 a.rs f --   \n").is_err());
        assert!(Allowlist::parse("raw-f64 a.rs -- why\n").is_err());
    }
}
