//! The workspace allowlist (`ppep-lint.allow` at the repo root).
//!
//! One entry per line:
//!
//! ```text
//! rule  path-suffix  item -- reason
//! ```
//!
//! e.g.
//!
//! ```text
//! raw-f64 crates/models/src/cpi.rs predict_cpi -- CPI is a dimensionless ratio
//! ```
//!
//! `rule` is a rule name (or `L1`…`L4` group alias), `path-suffix`
//! matches the end of the diagnostic's path, `item` is the function
//! name the rule attaches to. Blank lines and `#` comments are
//! ignored. The `-- reason` tail is mandatory: an exemption without a
//! recorded justification is itself a parse error, so the allowlist
//! stays auditable.

use crate::rules::expand_rule_alias;

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Expanded rule names this entry exempts.
    pub rules: Vec<String>,
    /// Path suffix the entry applies to.
    pub path_suffix: String,
    /// Item (function) name the entry applies to.
    pub item: String,
    /// Why the exemption is sound.
    pub reason: String,
}

/// The parsed allowlist.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses allowlist text. Returns `Err` with a message naming the
    /// offending line on malformed entries.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (spec, reason) = line
                .split_once("--")
                .ok_or_else(|| format!("allowlist line {}: missing `-- reason`", idx + 1))?;
            let fields: Vec<&str> = spec.split_whitespace().collect();
            let [rule, path_suffix, item] = fields[..] else {
                return Err(format!(
                    "allowlist line {}: expected `rule path item -- reason`, got {:?}",
                    idx + 1,
                    spec.trim()
                ));
            };
            let reason = reason.trim();
            if reason.is_empty() {
                return Err(format!("allowlist line {}: empty reason", idx + 1));
            }
            entries.push(AllowEntry {
                rules: expand_rule_alias(rule),
                path_suffix: path_suffix.to_string(),
                item: item.to_string(),
                reason: reason.to_string(),
            });
        }
        Ok(Self { entries })
    }

    /// True when `rule` is exempted for `item` in `path`.
    pub fn allows(&self, rule: &str, path: &str, item: &str) -> bool {
        self.entries.iter().any(|e| {
            e.rules.iter().any(|r| r == rule) && path.ends_with(&e.path_suffix) && e.item == item
        })
    }

    /// All parsed entries (for reporting / docs).
    pub fn entries(&self) -> &[AllowEntry] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_matches() {
        let a = Allowlist::parse(
            "# comment\n\nraw-f64 crates/models/src/cpi.rs predict_cpi -- CPI is dimensionless\n",
        )
        .unwrap();
        assert!(a.allows("raw-f64", "crates/models/src/cpi.rs", "predict_cpi"));
        assert!(!a.allows("raw-f64", "crates/models/src/cpi.rs", "other_fn"));
        assert!(!a.allows("unwrap", "crates/models/src/cpi.rs", "predict_cpi"));
        assert_eq!(a.entries().len(), 1);
    }

    #[test]
    fn reason_is_mandatory() {
        assert!(Allowlist::parse("raw-f64 a.rs f\n").is_err());
        assert!(Allowlist::parse("raw-f64 a.rs f --   \n").is_err());
        assert!(Allowlist::parse("raw-f64 a.rs -- why\n").is_err());
    }
}
