//! Property: the fleet-sharded sweeps are invariant under the worker
//! count — `--jobs 1`, `--jobs 2`, and `--jobs N` must produce
//! identical traces and byte-identical derived CSVs — and under the
//! projection kernel (`--kernel scalar|batch`), since the kernels are
//! contractually bit-identical.

use ppep_core::ProjectionKernel;
use ppep_experiments::common::{Context, Scale, TraceStore, DEFAULT_SEED};
use ppep_experiments::{fig02_model_error, fleet, report};
use ppep_models::trainer::TrainingBudget;
use ppep_types::VfStateId;
use ppep_workloads::combos::instances;
use proptest::prelude::*;

/// A tiny sweep (2 combos x 2 states, short budget) so the property
/// can afford many cases.
fn tiny_sweep(seed: u64, jobs: usize) -> TraceStore {
    let ctx = Context::fx8320(Scale::Quick, seed);
    let table = ctx.rig.config().topology.vf_table().clone();
    let roster = vec![
        instances("403.gcc", 1, seed),
        instances("458.sjeng", 2, seed),
    ];
    let vfs = [table.lowest(), table.highest()];
    let mut budget = TrainingBudget::quick();
    budget.warmup_intervals = 1;
    budget.record_intervals = 2;
    TraceStore::collect_sharded(&ctx.rig, &roster, &vfs, &budget, jobs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sharded_collection_is_worker_count_invariant(
        seed in 1u64..500,
        jobs in 2usize..9,
    ) {
        let serial = tiny_sweep(seed, 1);
        let sharded = tiny_sweep(seed, jobs);
        prop_assert_eq!(serial.traces(), sharded.traces());
    }

    #[test]
    fn map_indexed_preserves_order_under_any_worker_count(
        items in 0usize..120,
        jobs in 1usize..17,
    ) {
        let expected: Vec<usize> = (0..items).map(|i| i.wrapping_mul(7)).collect();
        let (got, _) = fleet::map_indexed(items, jobs, |i, _| i.wrapping_mul(7));
        prop_assert_eq!(got, expected);
    }

    /// Projections of collected sweep records are bit-identical under
    /// both kernels, for any seed and worker count: the fleet layer
    /// introduces no nondeterminism the kernel swap could expose.
    #[test]
    fn collected_records_project_identically_under_both_kernels(
        seed in 1u64..500,
        jobs in 1usize..5,
    ) {
        let store = tiny_sweep(seed, jobs);
        let mut rig = ppep_rig::TrainingRig::fx8320(seed);
        let models = rig.train_quick().expect("training succeeds");
        let engine = ppep_core::Ppep::new(models);
        for trace in store.traces() {
            for record in &trace.records {
                let batch = engine.project(record).expect("batch projects");
                let scalar = engine
                    .project_nb_scalar(record, ppep_types::vf::NbVfState::High)
                    .expect("scalar projects");
                for (b, s) in batch.cores.iter().zip(&scalar.cores) {
                    for (bc, sc) in b.per_vf.iter().zip(&s.per_vf) {
                        prop_assert_eq!(bc.ips.to_bits(), sc.ips.to_bits());
                        prop_assert_eq!(bc.cpi.to_bits(), sc.cpi.to_bits());
                        prop_assert_eq!(
                            bc.dynamic_power.as_watts().to_bits(),
                            sc.dynamic_power.as_watts().to_bits()
                        );
                    }
                }
                for (b, s) in batch.chip.iter().zip(&scalar.chip) {
                    prop_assert_eq!(b.power.as_watts().to_bits(), s.power.as_watts().to_bits());
                    prop_assert_eq!(b.energy.as_joules().to_bits(), s.energy.as_joules().to_bits());
                }
            }
        }
    }
}

/// The headline acceptance check: a figure CSV derived from a sharded
/// store is byte-identical to the serial one — for every combination
/// of worker count and projection kernel.
#[test]
fn fig02_csv_is_byte_identical_across_worker_counts_and_kernels() {
    let table = Context::fx8320(Scale::Quick, DEFAULT_SEED)
        .rig
        .config()
        .topology
        .vf_table()
        .clone();
    let vfs: Vec<VfStateId> = table.states().collect();

    let mut baseline: Option<String> = None;
    for (jobs, kernel) in [
        (1, ProjectionKernel::Batch),
        (4, ProjectionKernel::Batch),
        (1, ProjectionKernel::Scalar),
        (4, ProjectionKernel::Scalar),
    ] {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED)
            .with_jobs(jobs)
            .with_kernel(kernel);
        let store = TraceStore::collect_sharded(
            &ctx.rig,
            &ctx.scale.roster(ctx.seed),
            &vfs,
            &ctx.scale.budget(),
            ctx.jobs,
        );
        let csv = report::fig02_csv(&fig02_model_error::run_with_store(&ctx, &store).unwrap());
        assert!(!csv.is_empty());
        match &baseline {
            None => baseline = Some(csv),
            Some(b) => assert_eq!(
                b.as_bytes(),
                csv.as_bytes(),
                "fig2.csv drifted at jobs={jobs} kernel={kernel}"
            ),
        }
    }
}
