//! Property: the fleet-sharded sweeps are invariant under the worker
//! count — `--jobs 1`, `--jobs 2`, and `--jobs N` must produce
//! identical traces and byte-identical derived CSVs.

use ppep_experiments::common::{Context, Scale, TraceStore, DEFAULT_SEED};
use ppep_experiments::{fig02_model_error, fleet, report};
use ppep_models::trainer::TrainingBudget;
use ppep_types::VfStateId;
use ppep_workloads::combos::instances;
use proptest::prelude::*;

/// A tiny sweep (2 combos x 2 states, short budget) so the property
/// can afford many cases.
fn tiny_sweep(seed: u64, jobs: usize) -> TraceStore {
    let ctx = Context::fx8320(Scale::Quick, seed);
    let table = ctx.rig.config().topology.vf_table().clone();
    let roster = vec![
        instances("403.gcc", 1, seed),
        instances("458.sjeng", 2, seed),
    ];
    let vfs = [table.lowest(), table.highest()];
    let mut budget = TrainingBudget::quick();
    budget.warmup_intervals = 1;
    budget.record_intervals = 2;
    TraceStore::collect_sharded(&ctx.rig, &roster, &vfs, &budget, jobs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sharded_collection_is_worker_count_invariant(
        seed in 1u64..500,
        jobs in 2usize..9,
    ) {
        let serial = tiny_sweep(seed, 1);
        let sharded = tiny_sweep(seed, jobs);
        prop_assert_eq!(serial.traces(), sharded.traces());
    }

    #[test]
    fn map_indexed_preserves_order_under_any_worker_count(
        items in 0usize..120,
        jobs in 1usize..17,
    ) {
        let expected: Vec<usize> = (0..items).map(|i| i.wrapping_mul(7)).collect();
        let (got, _) = fleet::map_indexed(items, jobs, |i, _| i.wrapping_mul(7));
        prop_assert_eq!(got, expected);
    }
}

/// The headline acceptance check: a figure CSV derived from a sharded
/// store is byte-identical to the serial one.
#[test]
fn fig02_csv_is_byte_identical_across_worker_counts() {
    let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
    let table = ctx.rig.config().topology.vf_table().clone();
    let vfs: Vec<VfStateId> = table.states().collect();
    let roster = ctx.scale.roster(ctx.seed);
    let budget = ctx.scale.budget();

    let serial = TraceStore::collect_sharded(&ctx.rig, &roster, &vfs, &budget, 1);
    let sharded = TraceStore::collect_sharded(&ctx.rig, &roster, &vfs, &budget, 4);

    let csv_serial = report::fig02_csv(&fig02_model_error::run_with_store(&ctx, &serial).unwrap());
    let csv_sharded =
        report::fig02_csv(&fig02_model_error::run_with_store(&ctx, &sharded).unwrap());
    assert!(!csv_serial.is_empty());
    assert_eq!(csv_serial.as_bytes(), csv_sharded.as_bytes());
}
