//! Integration tests for the `ppep-experiments` binary itself:
//! argument parsing, exit codes, and output shape, exercised through
//! the compiled executable exactly as a user would run it.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ppep-experiments"))
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = bin().output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
    assert!(
        stderr.contains("summary"),
        "usage must list every subcommand"
    );
}

#[test]
fn unknown_subcommand_fails_cleanly() {
    let out = bin().arg("figNaN").output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn dangling_seed_flag_fails() {
    let out = bin().args(["--seed"]).output().expect("binary runs");
    assert!(!out.status.success());
    let out = bin()
        .args(["--seed", "not-a-number", "fig4"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn quick_fig4_succeeds_with_table_output() {
    let out = bin()
        .args(["--quick", "fig4"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Fig. 4"));
    assert!(stdout.contains("Pidle(CU)"));
    // 5 VF × 5 busy counts × 2 gating settings of sweep rows.
    assert!(stdout.lines().filter(|l| l.starts_with("VF")).count() >= 50);
}

#[test]
fn seed_changes_the_numbers_deterministically() {
    let run = |seed: &str| {
        let out = bin()
            .args(["--quick", "--seed", seed, "fig4"])
            .output()
            .expect("binary runs");
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let a1 = run("7");
    let a2 = run("7");
    assert_eq!(a1, a2, "same seed must reproduce byte-identical output");
    let b = run("8");
    assert_ne!(a1, b, "different seeds must change the measurements");
}

#[test]
fn out_dir_writes_csv() {
    let dir = std::env::temp_dir().join(format!("ppep_cli_test_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = bin()
        .args(["--quick", "--out", dir.to_str().unwrap(), "fig11"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let csv = std::fs::read_to_string(dir.join("fig11.csv")).expect("CSV written");
    assert!(csv.starts_with("benchmark,instances,energy_saving,speedup"));
    assert!(
        csv.lines().count() == 9,
        "8 sweep rows + header: {}",
        csv.lines().count()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unwritable_out_dir_warns_but_succeeds() {
    let out = bin()
        .args(["--quick", "--out", "/proc/definitely/not/writable", "fig11"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "experiment itself succeeded");
    assert!(String::from_utf8_lossy(&out.stderr).contains("could not write"));
}
