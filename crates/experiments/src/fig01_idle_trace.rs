//! Fig. 1 — idle power and temperature at VF5 as the workload changes.
//!
//! The chip is heated with a heavy workload, then left idle (active,
//! not power gated) while it cools. The plot shows normalised chip
//! power and temperature per 200 ms step; its purpose in the paper is
//! to motivate the near-linear idle-power/temperature relationship the
//! Eq. 2 model exploits.

use crate::common::Context;
use ppep_types::Result;

/// One plotted step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Step index (200 ms each).
    pub step: usize,
    /// Chip power normalised to the run's peak.
    pub normalized_power: f64,
    /// Diode temperature in kelvin.
    pub temperature_k: f64,
}

/// The experiment's result.
#[derive(Debug, Clone)]
pub struct Fig01Result {
    /// The full power/temperature series.
    pub series: Vec<TracePoint>,
    /// Step at which the workload was removed (heating → cooling).
    pub cooling_start: usize,
    /// Peak chip power (the normalisation base), watts.
    pub peak_power_w: f64,
    /// Temperature span of the cooling portion, kelvin.
    pub cooling_span_k: f64,
    /// R² of a straight-line fit of idle power against temperature
    /// over the cooling portion — the linearity Eq. 2 relies on.
    pub linearity_r2: f64,
}

/// Runs the Fig. 1 experiment.
///
/// # Errors
///
/// Propagates regression errors from the linearity check.
pub fn run(ctx: &Context) -> Result<Fig01Result> {
    let budget = ctx.scale.budget();
    let vf5 = ctx.rig.config().topology.vf_table().highest();
    let (idle_samples, records) = ctx.rig.collect_idle_trace_at(vf5, &budget);

    let peak_power_w =
        crate::common::series_max(records.iter().map(|r| r.measured_power.as_watts()))
            .unwrap_or(1.0);
    let series: Vec<TracePoint> = records
        .iter()
        .enumerate()
        .map(|(step, r)| TracePoint {
            step,
            normalized_power: r.measured_power.as_watts() / peak_power_w,
            temperature_k: r.temperature.as_kelvin(),
        })
        .collect();
    let cooling_start = records.len() - idle_samples.len();

    let temps: Vec<f64> = idle_samples
        .iter()
        .map(|s| s.temperature.as_kelvin())
        .collect();
    let span = crate::common::series_range(&temps).map_or(0.0, |(lo, hi)| hi - lo);

    let xs: Vec<Vec<f64>> = temps.iter().map(|t| vec![*t]).collect();
    let ys: Vec<f64> = idle_samples.iter().map(|s| s.power.as_watts()).collect();
    let line = ppep_regress::LinearRegression::fit(&xs, &ys, true)?;
    let linearity_r2 = line.r_squared(&xs, &ys);

    Ok(Fig01Result {
        series,
        cooling_start,
        peak_power_w,
        cooling_span_k: span,
        linearity_r2,
    })
}

/// Prints the Fig. 1 summary and a coarse series.
pub fn print(result: &Fig01Result) {
    println!("== Fig. 1: idle power & temperature at VF5 (heat → cool) ==");
    println!("peak power           : {:.1} W", result.peak_power_w);
    println!("cooling starts at    : step {}", result.cooling_start);
    println!("cooling temp span    : {:.1} K", result.cooling_span_k);
    println!("idle P(T) linearity  : R² = {:.4}", result.linearity_r2);
    let power: Vec<f64> = result.series.iter().map(|p| p.normalized_power).collect();
    let temp: Vec<f64> = result.series.iter().map(|p| p.temperature_k).collect();
    println!("{}", crate::ascii::chart_row("power", &power, 60));
    println!("{}", crate::ascii::chart_row("temperature", &temp, 60));
    println!("step  norm.power  temperature");
    for p in result
        .series
        .iter()
        .step_by(result.series.len().max(20) / 20)
    {
        println!(
            "{:>4}  {:>10.3}  {:>9.1} K",
            p.step, p.normalized_power, p.temperature_k
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{Scale, DEFAULT_SEED};

    #[test]
    fn fig1_shape_matches_paper() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let r = run(&ctx).unwrap();
        // Power drops sharply when the load is removed.
        let heating_p = r.series[r.cooling_start - 2].normalized_power;
        let cooling_p = r.series[r.cooling_start + 1].normalized_power;
        assert!(cooling_p < 0.6 * heating_p, "{heating_p} -> {cooling_p}");
        // Temperature keeps falling during cooling.
        let t_begin = r.series[r.cooling_start].temperature_k;
        let t_end = r.series.last().unwrap().temperature_k;
        assert!(t_end < t_begin - 2.0, "{t_begin} -> {t_end}");
        // Idle power vs temperature is near-linear (Eq. 2's premise);
        // sensor noise keeps R² well below 1 at quick scale.
        assert!(r.linearity_r2 > 0.5, "R² {}", r.linearity_r2);
        // Temperatures stay within Fig. 1's plausible 300-345 K band.
        for p in &r.series {
            assert!((295.0..350.0).contains(&p.temperature_k));
        }
    }
}
