//! Ablation studies: where does PPEP's error actually come from?
//!
//! The paper names its error sources — counter multiplexing (§IV-B2),
//! sensor limitations (§II), the single-α voltage scaling (§IV-B1) —
//! but cannot isolate them on real hardware. The simulator can: each
//! ablation disables one non-ideality and re-measures the chip-power
//! estimation error, attributing the error budget.
//!
//! | Ablation | What changes |
//! |---|---|
//! | `ideal_pmu` | all 12 events observed continuously (no ×2 multiplexing extrapolation) |
//! | `ideal_sensor` | noise-free power measurements (training + validation) |
//! | `both` | both of the above |
//!
//! The residual error under `both` is the structural model error:
//! per-event voltage exponents vs. one α, the omitted temperature
//! dependence of dynamic power, and data-dependent switching.

use crate::common::{Context, Scale};
use ppep_models::idle::IdlePowerModel;
use ppep_models::trainer::TrainedModels;
use ppep_rig::TrainingRig;
use ppep_sim::chip::SimConfig;
use ppep_types::Result;
use ppep_workloads::WorkloadSpec;

/// One ablation configuration's measured error.
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// Configuration label.
    pub label: &'static str,
    /// Chip-power estimation AAE over the validation runs.
    pub chip_aae: f64,
    /// Dynamic-power estimation AAE.
    pub dynamic_aae: f64,
}

/// The experiment's result.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Errors per configuration, realistic first.
    pub points: Vec<AblationPoint>,
}

fn config_for(label: &str, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::fx8320(seed);
    match label {
        "realistic" => {}
        "ideal_pmu" => cfg.ideal_pmu = true,
        "ideal_sensor" => cfg.ideal_sensor = true,
        "both" => {
            cfg.ideal_pmu = true;
            cfg.ideal_sensor = true;
        }
        other => unreachable!("unknown ablation label {other}"),
    }
    cfg
}

fn validate(
    rig: &TrainingRig,
    models: &TrainedModels,
    idle: &IdlePowerModel,
    specs: &[WorkloadSpec],
    budget: &ppep_models::trainer::TrainingBudget,
) -> Result<(f64, f64)> {
    let table = models.vf_table().clone();
    let mut chip_errs = Vec::new();
    let mut dyn_errs = Vec::new();
    for spec in specs {
        for vf in table.states() {
            let trace = rig.collect_run(spec, vf, budget);
            let voltage = table.point(vf).voltage;
            for r in &trace.records {
                let idle_w = idle.estimate(voltage, r.temperature)?.as_watts();
                let sample = TrainingRig::dyn_sample_from(r, idle, &table)?;
                let est_dyn = models
                    .dynamic_model()
                    .estimate_core(&sample.rates, voltage)?
                    .as_watts();
                let measured = r.measured_power.as_watts();
                let measured_dyn = measured - idle_w;
                if measured_dyn > 0.5 {
                    dyn_errs.push((est_dyn - measured_dyn).abs() / measured_dyn);
                }
                chip_errs.push((idle_w + est_dyn - measured).abs() / measured);
            }
        }
    }
    Ok((
        ppep_regress::stats::mean(&chip_errs),
        ppep_regress::stats::mean(&dyn_errs),
    ))
}

/// Runs all four ablation configurations.
///
/// Training happens at the top VF state; validation re-runs the same
/// workloads at **every** VF state. Keeping the workload mix fixed
/// isolates the instrument and voltage-scaling error contributions
/// from workload-generalisation effects (which Fig. 2's
/// cross-validation measures instead).
///
/// # Errors
///
/// Propagates training errors.
pub fn run(ctx: &Context) -> Result<AblationResult> {
    let budget = ctx.scale.budget();
    let roster = ctx.scale.roster(ctx.seed);
    let train: Vec<WorkloadSpec> = match ctx.scale {
        Scale::Full => roster.iter().step_by(4).cloned().collect(),
        Scale::Quick => roster.iter().take(8).cloned().collect(),
    };

    let mut points = Vec::new();
    for label in ["realistic", "ideal_pmu", "ideal_sensor", "both"] {
        let rig = TrainingRig::with_config(config_for(label, ctx.seed), ctx.seed);
        let models = rig.train(&train, &budget)?;
        let idle = models.idle_model().clone();
        let (chip_aae, dynamic_aae) = validate(&rig, &models, &idle, &train, &budget)?;
        points.push(AblationPoint {
            label,
            chip_aae,
            dynamic_aae,
        });
    }
    Ok(AblationResult { points })
}

/// Prints the ablation table.
pub fn print(result: &AblationResult) {
    println!("== Ablations: error attribution for the chip power model ==");
    let rows: Vec<Vec<String>> = result
        .points
        .iter()
        .map(|p| {
            vec![
                p.label.to_string(),
                crate::common::pct(p.chip_aae),
                crate::common::pct(p.dynamic_aae),
            ]
        })
        .collect();
    crate::common::print_table(&["configuration", "chip AAE", "dynamic AAE"], &rows);
    if let (Some(real), Some(both)) = (
        result.points.iter().find(|p| p.label == "realistic"),
        result.points.iter().find(|p| p.label == "both"),
    ) {
        println!(
            "structural (model-form) error floor: {} of the {} total",
            crate::common::pct(both.chip_aae),
            crate::common::pct(real.chip_aae)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::DEFAULT_SEED;

    #[test]
    fn ideal_instruments_reduce_error() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let r = run(&ctx).unwrap();
        assert_eq!(r.points.len(), 4);
        let get = |label: &str| {
            r.points
                .iter()
                .find(|p| p.label == label)
                .unwrap_or_else(|| panic!("missing {label}"))
        };
        let realistic = get("realistic");
        let both = get("both");
        // Removing both instrument non-idealities must not hurt.
        assert!(
            both.chip_aae <= realistic.chip_aae * 1.05,
            "both {} vs realistic {}",
            both.chip_aae,
            realistic.chip_aae
        );
        // But a structural floor remains (switching factors, beta
        // spread, temperature term): the error does not collapse to 0.
        assert!(
            both.chip_aae > 0.002,
            "structural floor missing: {}",
            both.chip_aae
        );
        for p in &r.points {
            assert!(
                p.chip_aae < p.dynamic_aae,
                "{}: chip must beat dynamic",
                p.label
            );
        }
    }
}
