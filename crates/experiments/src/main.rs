//! The `ppep-experiments` binary: one subcommand per table/figure.
//!
//! ```text
//! ppep-experiments [--quick] [--seed N] [--out DIR] [--jobs N] \
//!     [--kernel scalar|batch] [--policy-a P] [--policy-b P] [--trace PATH] \
//!     [--shards N] [--tenants N] [--transport unix|tcp] \
//!     <fig1|cpi|idle|obs|fig2|fig3|fig4|fig6|fig7|fig8|fig9|fig10|fig11|phenom|ablations|resilience|overhead|replay|diff-policies|bench-parallel|kernel-bench|serve|serve-chaos|load-gen|serve-bench|accuracy-watch|summary|all>
//! ```
//!
//! With `--out DIR`, figure commands additionally write their data as
//! CSV (one file per figure, columns mirroring the paper's axes).
//!
//! `--quick` uses the reduced rosters and interval counts (the
//! configuration the test suite and benches run); the default is the
//! paper-sized full configuration.
//!
//! `--jobs N` shards the sweep collections (Figs. 2/3/6, phenom,
//! summary) across `N` worker threads; `--jobs 0` means "all cores".
//! Results are identical for every worker count.
//!
//! `--kernel scalar|batch` selects the projection kernel every
//! experiment engine routes through (default: batch). The kernels are
//! bit-identical — `kernel-bench` times them against each other and
//! gates on that equality plus the batch speedup, writing
//! `BENCH_kernel.json` under `--out`.
//!
//! `--policy-a` / `--policy-b` pick the two sides of `diff-policies`
//! (`one-step`, `iterative`, `steepest-drop`, `energy-optimal`, or
//! `recorded`); the default pairing `one-step` vs `recorded` is a
//! self-replay and must report zero divergence.
//!
//! `--shards N` / `--tenants N` / `--transport unix|tcp` tune the
//! serving subcommands: shard count, fleet size, and a real
//! Unix-socket (or localhost-TCP) transport instead of in-process
//! calls. `serve-bench` compares single-lock vs sharded replays and
//! gates on byte-identical transcripts plus a lower sharded p99.
//!
//! `--trace PATH` feeds `accuracy-watch` a recorded trace (JSONL or
//! binary v2); without it the watch scores a synthesized clean run.
//! On a clean trace the accuracy gate is the exit code.

use ppep_experiments::common::{Context, Scale, DEFAULT_SEED};
use ppep_experiments::diff_policies::PolicyKind;
use ppep_experiments::*;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ppep-experiments [--quick] [--seed N] [--out DIR] [--jobs N] \
         [--kernel scalar|batch] [--policy-a P] [--policy-b P] [--trace PATH] \
         [--shards N] [--tenants N] [--transport unix|tcp] \
         <fig1|cpi|idle|obs|fig2|fig3|fig4|fig6|fig7|fig8|fig9|fig10|fig11|phenom|ablations|\
         resilience|overhead|replay|diff-policies|bench-parallel|kernel-bench|serve|serve-chaos|\
         load-gen|serve-bench|accuracy-watch|summary|all>\n\
         policies: one-step | iterative | steepest-drop | energy-optimal | recorded"
    );
    ExitCode::FAILURE
}

/// Writes one CSV file under the `--out` directory, creating it on
/// first use. Returns the path written.
fn write_csv(dir: &std::path::Path, name: &str, contents: &str) -> std::io::Result<String> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, contents)?;
    Ok(path.display().to_string())
}

fn main() -> ExitCode {
    let mut scale = Scale::Full;
    let mut seed = DEFAULT_SEED;
    let mut jobs = 1usize;
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut command: Option<String> = None;
    let mut policy_a = PolicyKind::OneStep;
    let mut policy_b = PolicyKind::Recorded;
    let mut trace_path: Option<std::path::PathBuf> = None;
    let mut serve_opts = serve::ServeOpts::default();
    let mut kernel = ppep_core::ProjectionKernel::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--policy-a" => {
                let Some(p) = args.next().as_deref().and_then(PolicyKind::parse) else {
                    return usage();
                };
                policy_a = p;
            }
            "--policy-b" => {
                let Some(p) = args.next().as_deref().and_then(PolicyKind::parse) else {
                    return usage();
                };
                policy_b = p;
            }
            "--seed" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                seed = v;
            }
            "--jobs" => {
                let Some(v) = args.next().and_then(|s| s.parse::<usize>().ok()) else {
                    return usage();
                };
                jobs = if v == 0 { fleet::default_jobs() } else { v };
            }
            "--kernel" => {
                let Some(k) = args.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                kernel = k;
            }
            "--out" => {
                let Some(dir) = args.next() else {
                    return usage();
                };
                out_dir = Some(std::path::PathBuf::from(dir));
            }
            "--trace" => {
                let Some(path) = args.next() else {
                    return usage();
                };
                trace_path = Some(std::path::PathBuf::from(path));
            }
            "--shards" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                serve_opts.shards = v;
            }
            "--tenants" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                serve_opts.tenants = v;
            }
            "--transport" => {
                let Some(kind) = args
                    .next()
                    .and_then(|s| ppep_serve::TransportKind::parse(&s).ok())
                else {
                    return usage();
                };
                serve_opts.transport = Some(kind);
            }
            cmd if !cmd.starts_with('-') && command.is_none() => {
                command = Some(cmd.to_string());
            }
            _ => return usage(),
        }
    }
    let Some(command) = command else {
        return usage();
    };
    let ctx = Context::fx8320(scale, seed)
        .with_jobs(jobs)
        .with_kernel(kernel);

    let result = dispatch(
        &ctx,
        &command,
        out_dir.as_deref(),
        (policy_a, policy_b),
        trace_path.as_deref(),
        serve_opts,
    );
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => usage(),
        Err(e) => {
            eprintln!("experiment failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(
    ctx: &Context,
    command: &str,
    out: Option<&std::path::Path>,
    policies: (PolicyKind, PolicyKind),
    trace_path: Option<&std::path::Path>,
    serve_opts: serve::ServeOpts,
) -> ppep_types::Result<bool> {
    let table = ctx.rig.config().topology.vf_table().clone();
    let mut written: Vec<String> = Vec::new();
    let mut save = |out: Option<&std::path::Path>, name: &str, contents: String| {
        if let Some(dir) = out {
            match write_csv(dir, name, &contents) {
                Ok(path) => written.push(path),
                Err(e) => eprintln!("could not write {name}: {e}"),
            }
        }
    };
    match command {
        "fig1" => {
            let r = fig01_idle_trace::run(ctx)?;
            fig01_idle_trace::print(&r);
            save(out, "fig1.csv", report::fig01_csv(&r));
        }
        "cpi" => {
            let r = cpi_accuracy::run(ctx)?;
            cpi_accuracy::print(&r);
            save(out, "cpi.csv", report::cpi_csv(&r));
        }
        "idle" => idle_accuracy::print(&idle_accuracy::run(ctx)?),
        "obs" => observations::print(&observations::run(ctx)?),
        "fig2" => {
            let r = fig02_model_error::run(ctx)?;
            fig02_model_error::print(&r);
            save(out, "fig2.csv", report::fig02_csv(&r));
        }
        "fig3" => {
            let r = fig03_cross_vf::run(ctx)?;
            fig03_cross_vf::print(&r);
            save(out, "fig3.csv", report::fig03_csv(&r));
        }
        "fig4" => fig04_pg_sweep::print(&fig04_pg_sweep::run(ctx)?, &table),
        "fig6" => {
            let r = fig06_energy::run(ctx)?;
            fig06_energy::print(&r);
            save(out, "fig6.csv", report::fig06_csv(&r));
        }
        "fig7" => {
            let r = fig07_capping::run(ctx)?;
            fig07_capping::print(&r);
            save(out, "fig7.csv", report::fig07_csv(&r));
        }
        "fig8" | "fig9" => {
            let r = fig08_09_background::run(ctx)?;
            fig08_09_background::print(&r);
            save(out, "fig8_9.csv", report::fig08_09_csv(&r));
        }
        "fig10" => {
            let r = fig10_nb_share::run(ctx)?;
            fig10_nb_share::print(&r);
            save(out, "fig10.csv", report::fig10_csv(&r));
        }
        "fig11" => {
            let r = fig11_nb_dvfs::run(ctx)?;
            fig11_nb_dvfs::print(&r);
            save(out, "fig11.csv", report::fig11_csv(&r));
        }
        "phenom" => phenom::print(&phenom::run(ctx)?),
        "resilience" => resilience::print(&resilience::run(ctx)?),
        "overhead" => {
            let r = overhead::run(ctx)?;
            overhead::print(&r);
            save(out, "overhead.csv", report::overhead_csv(&r));
            save(out, "overhead_spans.jsonl", overhead::spans_export(&r));
            save(out, "overhead_trace.json", overhead::trace_export(&r));
            save(out, "overhead_metrics.jsonl", overhead::metrics_export(&r));
            save(out, "BENCH_overhead.json", report::overhead_bench_json(&r));
            if !r.identical {
                return Err(ppep_types::Error::InvalidInput(
                    "trace-on and trace-off runs diverged".into(),
                ));
            }
            if r.mean_fraction > 0.10 {
                return Err(ppep_types::Error::InvalidInput(format!(
                    "mean framework overhead {:.2}% exceeds 10% of the 200 ms budget",
                    r.mean_fraction * 100.0
                )));
            }
        }
        "replay" => {
            let r = replay::run(ctx)?;
            replay::print(&r);
            save(out, "replay_trace.jsonl", r.trace_jsonl.clone());
            if !r.identical {
                return Err(ppep_types::Error::InvalidInput(
                    "replayed decisions diverged from the live run".into(),
                ));
            }
        }
        "diff-policies" => {
            let (a, b) = policies;
            let r = diff_policies::run(ctx, a, b)?;
            diff_policies::print(&r);
            save(out, "policy_diff.csv", r.report.to_csv());
            save(out, "policy_diff.jsonl", r.report.to_jsonl());
            if r.self_replay && r.report.diverged_intervals > 0 {
                return Err(ppep_types::Error::InvalidInput(
                    "self-replay diff diverged: the replayed policy no longer \
                     reproduces its recorded decisions"
                        .into(),
                ));
            }
        }
        "kernel-bench" => {
            let r = kernel_bench::run(ctx)?;
            kernel_bench::print(&r);
            save(out, "BENCH_kernel.json", kernel_bench::bench_json(&r));
            // Bit equality + the speedup floor ARE the exit code: CI
            // relies on them.
            r.gate()?;
        }
        "bench-parallel" => {
            let r = bench_parallel::run(ctx)?;
            bench_parallel::print(&r);
            save(out, "BENCH_parallel.json", bench_parallel::bench_json(&r));
            if !r.identical {
                return Err(ppep_types::Error::InvalidInput(
                    "sharded sweep traces diverged from the serial ones".into(),
                ));
            }
        }
        "serve" => {
            let r = serve::run_demo(ctx, serve_opts)?;
            serve::print_demo(&r);
            save(out, "serve_health.jsonl", r.health_jsonl.clone());
        }
        "serve-chaos" => {
            let r = serve::run_chaos(ctx, serve_opts)?;
            serve::print_chaos(&r);
            save(out, "serve_health.jsonl", r.health_jsonl.clone());
            // The containment gate IS the exit code: CI relies on it.
            r.gate()?;
        }
        "load-gen" => {
            let r = serve::run_loadgen(ctx, serve_opts)?;
            serve::print_loadgen(&r);
            save(out, "BENCH_serve.json", r.to_json());
        }
        "serve-bench" => {
            let r = serve::run_serve_bench(ctx, serve_opts)?;
            serve::print_serve_bench(&r);
            save(out, "BENCH_serve_shard.json", r.to_json());
            // The sharding gate IS the exit code: CI relies on it.
            r.gate()?;
        }
        "accuracy-watch" => {
            let loaded: Option<(String, Vec<u8>)> = match trace_path {
                Some(path) => {
                    let bytes = std::fs::read(path).map_err(|e| {
                        ppep_types::Error::InvalidInput(format!(
                            "could not read trace {}: {e}",
                            path.display()
                        ))
                    })?;
                    Some((path.display().to_string(), bytes))
                }
                None => None,
            };
            let trace = loaded
                .as_ref()
                .map(|(name, bytes)| (name.as_str(), &bytes[..]));
            let r = accuracy_watch::run(ctx, trace)?;
            accuracy_watch::print(&r);
            save(out, "accuracy_scorecard.jsonl", r.scorecard_jsonl());
            save(out, "BENCH_accuracy.json", r.bench_json());
            // The clean-trace accuracy gate IS the exit code: CI
            // relies on it.
            r.gate()?;
        }
        "summary" => summary::print(&summary::run(ctx)?),
        "ablations" => {
            let r = ablations::run(ctx)?;
            ablations::print(&r);
            save(out, "ablations.csv", report::ablations_csv(&r));
        }
        "all" => {
            let r1 = fig01_idle_trace::run(ctx)?;
            fig01_idle_trace::print(&r1);
            save(out, "fig1.csv", report::fig01_csv(&r1));
            println!();
            let rc = cpi_accuracy::run(ctx)?;
            cpi_accuracy::print(&rc);
            save(out, "cpi.csv", report::cpi_csv(&rc));
            println!();
            idle_accuracy::print(&idle_accuracy::run(ctx)?);
            println!();
            observations::print(&observations::run(ctx)?);
            println!();
            // Figs. 2 and 3 share one trace store.
            let vfs: Vec<ppep_types::VfStateId> = table.states().collect();
            let store = common::TraceStore::collect_sharded(
                &ctx.rig,
                &ctx.scale.roster(ctx.seed),
                &vfs,
                &ctx.scale.budget(),
                ctx.jobs,
            );
            let r2 = fig02_model_error::run_with_store(ctx, &store)?;
            fig02_model_error::print(&r2);
            save(out, "fig2.csv", report::fig02_csv(&r2));
            println!();
            let r3 = fig03_cross_vf::run_with_store(ctx, &store)?;
            fig03_cross_vf::print(&r3);
            save(out, "fig3.csv", report::fig03_csv(&r3));
            println!();
            fig04_pg_sweep::print(&fig04_pg_sweep::run(ctx)?, &table);
            println!();
            let r6 = fig06_energy::run(ctx)?;
            fig06_energy::print(&r6);
            save(out, "fig6.csv", report::fig06_csv(&r6));
            println!();
            let r7 = fig07_capping::run(ctx)?;
            fig07_capping::print(&r7);
            save(out, "fig7.csv", report::fig07_csv(&r7));
            println!();
            // §V studies share one trained engine.
            let engine = ctx.engine(ctx.train_models()?);
            let r89 = fig08_09_background::run_with_engine(ctx, &engine)?;
            fig08_09_background::print(&r89);
            save(out, "fig8_9.csv", report::fig08_09_csv(&r89));
            println!();
            let r10 = fig10_nb_share::run_with_engine(ctx, &engine)?;
            fig10_nb_share::print(&r10);
            save(out, "fig10.csv", report::fig10_csv(&r10));
            println!();
            let r11 = fig11_nb_dvfs::run_with_engine(ctx, &engine)?;
            fig11_nb_dvfs::print(&r11);
            save(out, "fig11.csv", report::fig11_csv(&r11));
            println!();
            phenom::print(&phenom::run(ctx)?);
            println!();
            let ra = ablations::run(ctx)?;
            ablations::print(&ra);
            save(out, "ablations.csv", report::ablations_csv(&ra));
            println!();
            resilience::print(&resilience::run(ctx)?);
        }
        _ => return Ok(false),
    }
    if !written.is_empty() {
        println!("{}", report::written_summary(&written));
    }
    Ok(true)
}
