//! Fig. 4 — chip power with power gating disabled and enabled, as the
//! number of busy CUs sweeps 0–4, per VF state.
//!
//! The paper uses this sweep to decompose idle power into
//! `Pidle(CU)`, `Pidle(NB)`, and `Pidle(Base)` (§IV-D).

use crate::common::Context;
use ppep_models::pg::{PgIdleModel, PgSweepPoint};
use ppep_types::{Result, VfStateId};

/// The experiment's result.
#[derive(Debug, Clone)]
pub struct Fig04Result {
    /// The raw sweep measurements (both gating settings).
    pub sweep: Vec<PgSweepPoint>,
    /// The fitted decomposition.
    pub model: PgIdleModel,
    /// Chip power normalisation base (max of the sweep), watts.
    pub peak_w: f64,
}

/// Runs the Fig. 4 sweep and fits the PG model.
///
/// # Errors
///
/// Propagates fitting errors.
pub fn run(ctx: &Context) -> Result<Fig04Result> {
    let budget = ctx.scale.budget();
    let sweep = ctx.rig.collect_pg_sweep(&budget);
    let model = PgIdleModel::fit(&sweep, ctx.rig.config().topology.cu_count())?;
    let peak_w = sweep.iter().map(|p| p.power.as_watts()).fold(0.0, f64::max);
    Ok(Fig04Result {
        sweep,
        model,
        peak_w,
    })
}

/// Per-VF decomposition row for printing.
fn decomposition_rows(result: &Fig04Result, vfs: &[VfStateId]) -> Vec<Vec<String>> {
    vfs.iter()
        .map(|&vf| {
            vec![
                vf.to_string(),
                result
                    .model
                    .pidle_cu(vf)
                    .map(crate::common::w)
                    .unwrap_or_else(|_| "n/a".into()),
                result
                    .model
                    .pidle_nb(vf)
                    .map(crate::common::w)
                    .unwrap_or_else(|_| "n/a".into()),
            ]
        })
        .collect()
}

/// Prints the sweep and decomposition.
pub fn print(result: &Fig04Result, table: &ppep_types::VfTable) {
    println!("== Fig. 4: chip power vs busy CUs, PG disabled/enabled ==");
    let rows: Vec<Vec<String>> = result
        .sweep
        .iter()
        .map(|p| {
            vec![
                p.vf.to_string(),
                p.busy_cus.to_string(),
                if p.pg_enabled {
                    "on".into()
                } else {
                    "off".into()
                },
                format!("{:.3}", p.power.as_watts() / result.peak_w),
                crate::common::w(p.power),
            ]
        })
        .collect();
    crate::common::print_table(&["VF", "busy CUs", "PG", "norm", "power"], &rows);
    println!();
    println!(
        "fitted decomposition (Pidle(Base) = {}):",
        crate::common::w(result.model.pidle_base())
    );
    let vfs: Vec<VfStateId> = table.states().collect();
    crate::common::print_table(
        &["VF", "Pidle(CU)", "Pidle(NB)"],
        &decomposition_rows(result, &vfs),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{Scale, DEFAULT_SEED};

    #[test]
    fn fig4_shape_matches_paper() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let r = run(&ctx).unwrap();
        let table = ctx.rig.config().topology.vf_table().clone();
        // 5 VF × 5 busy counts × 2 gating settings.
        assert_eq!(r.sweep.len(), 50);
        // Decomposed components are positive and ordered: CU idle at
        // VF5 exceeds CU idle at VF1.
        let cu5 = r.model.pidle_cu(table.highest()).unwrap().as_watts();
        let cu1 = r.model.pidle_cu(table.lowest()).unwrap().as_watts();
        assert!(cu5 > cu1, "CU idle: VF5 {cu5} vs VF1 {cu1}");
        assert!(r.model.pidle_nb(table.highest()).unwrap().as_watts() > 1.0);
        assert!(r.model.pidle_base().as_watts() > 0.5);
        // With everything busy the two gating settings agree.
        let full_off = r
            .sweep
            .iter()
            .find(|p| p.vf == table.highest() && p.busy_cus == 4 && !p.pg_enabled)
            .unwrap()
            .power
            .as_watts();
        let full_on = r
            .sweep
            .iter()
            .find(|p| p.vf == table.highest() && p.busy_cus == 4 && p.pg_enabled)
            .unwrap()
            .power
            .as_watts();
        assert!((full_off - full_on).abs() / full_off < 0.05);
    }
}
