//! Scalar-versus-batch projection kernel wall clock and bit-equality
//! check — the artifact behind `BENCH_kernel.json`.
//!
//! Projects a simulated interval stream through both kernels on the
//! 8-core FX-8320 preset: the scalar reference grid walk and the
//! struct-of-arrays batch kernel (`ppep_core::batch`). The batch
//! kernel's contract is *bit-identical output, materially faster* —
//! so this benchmark re-verifies `to_bits()` equality on every cell
//! of every interval while it times the two, and [`gate`] turns both
//! requirements into an exit code for CI.

use crate::common::{Context, Scale};
use ppep_core::{PpeProjection, Ppep, ProjectionKernel};
use ppep_types::vf::NbVfState;
use ppep_types::{Error, Result};
use std::time::Instant;

/// Speedup the batch kernel must clear on the 8-core preset.
pub const MIN_SPEEDUP: f64 = 1.5;

/// The benchmark's result.
#[derive(Debug, Clone)]
pub struct KernelBenchResult {
    /// Intervals projected per repetition.
    pub intervals: usize,
    /// Cores per interval (grid rows).
    pub cores: usize,
    /// VF states per core (grid columns).
    pub vf_states: usize,
    /// Timed repetitions over the interval stream.
    pub reps: usize,
    /// Scalar-kernel wall clock, milliseconds.
    pub scalar_ms: f64,
    /// Batch-kernel wall clock, milliseconds.
    pub batch_ms: f64,
    /// Whether every projected cell matched bit for bit.
    pub bit_identical: bool,
}

impl KernelBenchResult {
    /// Scalar over batch wall clock.
    pub fn speedup(&self) -> f64 {
        if self.batch_ms > 0.0 {
            self.scalar_ms / self.batch_ms
        } else {
            0.0
        }
    }

    /// The CI gate: bit equality is mandatory, and the batch kernel
    /// must clear [`MIN_SPEEDUP`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] describing the failed
    /// requirement.
    pub fn gate(&self) -> Result<()> {
        if !self.bit_identical {
            return Err(Error::InvalidInput(
                "batch kernel output is not bit-identical to the scalar reference".into(),
            ));
        }
        if self.speedup() < MIN_SPEEDUP {
            return Err(Error::InvalidInput(format!(
                "batch kernel speedup {:.2}x is below the {MIN_SPEEDUP}x gate \
                 (scalar {:.1} ms vs batch {:.1} ms)",
                self.speedup(),
                self.scalar_ms,
                self.batch_ms
            )));
        }
        Ok(())
    }
}

/// Every float of two projections compared through `to_bits()`.
fn bits_identical(a: &PpeProjection, b: &PpeProjection) -> bool {
    if a.cores.len() != b.cores.len() || a.chip.len() != b.chip.len() {
        return false;
    }
    if a.work_instructions.to_bits() != b.work_instructions.to_bits() {
        return false;
    }
    let cores_match = a.cores.iter().zip(&b.cores).all(|(x, y)| {
        x.busy == y.busy
            && x.per_vf.len() == y.per_vf.len()
            && x.per_vf.iter().zip(&y.per_vf).all(|(c, d)| {
                c.ips.to_bits() == d.ips.to_bits()
                    && c.cpi.to_bits() == d.cpi.to_bits()
                    && c.dynamic_power.as_watts().to_bits() == d.dynamic_power.as_watts().to_bits()
            })
    });
    cores_match
        && a.chip.iter().zip(&b.chip).all(|(x, y)| {
            x.power.as_watts().to_bits() == y.power.as_watts().to_bits()
                && x.nb_power.as_watts().to_bits() == y.nb_power.as_watts().to_bits()
                && x.ips.to_bits() == y.ips.to_bits()
                && x.energy.as_joules().to_bits() == y.energy.as_joules().to_bits()
                && x.edp.to_bits() == y.edp.to_bits()
        })
}

/// Times both kernels over a simulated mixed-workload interval
/// stream, verifying bit equality on every interval and NB point.
///
/// # Errors
///
/// Propagates training and projection errors.
pub fn run(ctx: &Context) -> Result<KernelBenchResult> {
    let models = ctx.train_models()?;
    let engine = Ppep::new(models);
    // Enough repetitions that each side's wall clock is tens of
    // milliseconds — a CI-stable base for the speedup ratio.
    let (intervals, reps) = match ctx.scale {
        Scale::Quick => (24, 400),
        Scale::Full => (48, 800),
    };

    let mut sim = ppep_sim::ChipSimulator::new(ppep_sim::chip::SimConfig::fx8320(ctx.seed));
    sim.load_workload(&ppep_workloads::combos::fig7_workload(ctx.seed));
    let records = sim.run_intervals(intervals);

    // Correctness first: every interval, both NB points, all cells.
    let mut bit_identical = true;
    for record in &records {
        for nb in [NbVfState::High, NbVfState::Low] {
            // `Ppep::new` defaults to the batch kernel.
            let batch = engine.project_nb(record, nb)?;
            let scalar = engine.project_nb_scalar(record, nb)?;
            bit_identical &= bits_identical(&batch, &scalar);
        }
    }

    // Then the clock: the same stream, `reps` times through each
    // kernel (batch second so cache warming favours the baseline).
    let scalar_engine = engine.clone().with_kernel(ProjectionKernel::Scalar);
    let t = Instant::now();
    for _ in 0..reps {
        for record in &records {
            let p = scalar_engine.project(record)?;
            std::hint::black_box(&p);
        }
    }
    let scalar_ms = t.elapsed().as_secs_f64() * 1e3;

    let batch_engine = engine.with_kernel(ProjectionKernel::Batch);
    let t = Instant::now();
    for _ in 0..reps {
        for record in &records {
            let p = batch_engine.project(record)?;
            std::hint::black_box(&p);
        }
    }
    let batch_ms = t.elapsed().as_secs_f64() * 1e3;

    let topo = ctx.rig.config().topology.clone();
    Ok(KernelBenchResult {
        intervals,
        cores: topo.core_count(),
        vf_states: topo.vf_table().len(),
        reps,
        scalar_ms,
        batch_ms,
        bit_identical,
    })
}

/// The `BENCH_kernel.json` document.
pub fn bench_json(r: &KernelBenchResult) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"kernel\",");
    let _ = writeln!(s, "  \"intervals\": {},", r.intervals);
    let _ = writeln!(s, "  \"cores\": {},", r.cores);
    let _ = writeln!(s, "  \"vf_states\": {},", r.vf_states);
    let _ = writeln!(s, "  \"reps\": {},", r.reps);
    let _ = writeln!(s, "  \"scalar_ms\": {:.1},", r.scalar_ms);
    let _ = writeln!(s, "  \"batch_ms\": {:.1},", r.batch_ms);
    let _ = writeln!(s, "  \"speedup\": {:.2},", r.speedup());
    let _ = writeln!(s, "  \"min_speedup\": {MIN_SPEEDUP},");
    let _ = writeln!(s, "  \"bit_identical\": {}", r.bit_identical);
    s.push_str("}\n");
    s
}

/// Prints the comparison table.
pub fn print(r: &KernelBenchResult) {
    println!(
        "== Projection kernel benchmark: scalar vs batch ({} cores x {} VF states) ==",
        r.cores, r.vf_states
    );
    crate::common::print_table(
        &["kernel", "grid cells", "wall clock", "per interval"],
        &[
            vec![
                "scalar".into(),
                (r.cores * r.vf_states).to_string(),
                format!("{:.0} ms", r.scalar_ms),
                format!("{:.3} ms", r.scalar_ms / (r.reps * r.intervals) as f64),
            ],
            vec![
                "batch".into(),
                (r.cores * r.vf_states).to_string(),
                format!("{:.0} ms", r.batch_ms),
                format!("{:.3} ms", r.batch_ms / (r.reps * r.intervals) as f64),
            ],
        ],
    );
    println!(
        "speedup {:.2}x (gate {MIN_SPEEDUP}x); outputs {}",
        r.speedup(),
        if r.bit_identical {
            "bit-identical"
        } else {
            "DIVERGE"
        }
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::DEFAULT_SEED;

    #[test]
    fn kernels_stay_bit_identical_over_the_bench_stream() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let r = run(&ctx).unwrap();
        assert!(r.bit_identical, "batch kernel diverged from scalar");
        assert_eq!(r.cores, 8);
        assert_eq!(r.vf_states, 5);
        // The speedup gate itself is only meaningful under --release;
        // here we only pin the artifact's shape.
        let json = bench_json(&r);
        assert!(json.contains("\"bench\": \"kernel\""));
        assert!(json.contains("\"bit_identical\": true"));
        assert!(json.contains("\"speedup\""));
    }
}
