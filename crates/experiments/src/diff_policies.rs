//! Policy-differential replay — one recorded counter trace, two DVFS
//! controllers, a per-interval divergence report.
//!
//! A recorded trace fixes the measurement stream, so replaying it
//! under two different controllers is a *controlled* counterfactual:
//! both see bit-identical interval records (and therefore identical
//! PPE projections — a projection depends only on the measurement,
//! never on the decision) and differ only in what they decide. The
//! [`ReplayDiff`] harness replays a trace under policy A and policy B
//! — either side can be the trace's own recorded decision stream
//! ([`PolicyKind::Recorded`]) — and reports where and by how much
//! they diverge:
//!
//! - the first diverging interval and the diverging-interval count,
//! - per-policy VF-transition counts (DVFS actuation churn),
//! - model-priced energy and EDP for the recorded work,
//! - model-side cap adherence (predicted power vs the enforced cap).
//!
//! Because the sampled stream is immutable history, *measured* power
//! is the same under both policies; energy, EDP, and cap adherence
//! are therefore priced through the PPEP model at each policy's
//! chosen assignment ([`Ppep::chip_power_with_assignment`]) — the
//! same oracle the capping controllers search over.
//!
//! Diffing a policy against its own recorded decisions doubles as a
//! behaviour-drift tripwire: a recorded trace is a regression test,
//! and any nonzero divergence on self-replay means the controller or
//! the model changed underneath it.

use crate::common::Context;
use crate::fig07_capping::cap_schedule;
use crate::replay;
use ppep_core::daemon::{DvfsController, PpepDaemon};
use ppep_core::resilient::{ResilientDaemon, SupervisorConfig};
use ppep_core::{PpeProjection, Ppep};
use ppep_dvfs::capping::{IterativeCapping, OneStepCapping, SteepestDrop};
use ppep_telemetry::{ReplayPlatform, TraceReader};
use ppep_types::{Error, Joules, Result, Seconds, VfStateId, Watts};

/// Which decision source drives one side of a diff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// PPEP one-step capping (the Fig. 7 scheme).
    OneStep,
    /// The reactive iterative-capping baseline (no model).
    Iterative,
    /// Steepest Drop (Winter et al.) driven by PPEP projections.
    SteepestDrop,
    /// Uncapped energy-optimal: chase `best_energy_vf` every interval.
    EnergyOptimal,
    /// The trace's own recorded decision stream (no live controller).
    Recorded,
}

impl PolicyKind {
    /// Parses a CLI policy name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "one-step" => Some(Self::OneStep),
            "iterative" => Some(Self::Iterative),
            "steepest-drop" => Some(Self::SteepestDrop),
            "energy-optimal" => Some(Self::EnergyOptimal),
            "recorded" => Some(Self::Recorded),
            _ => None,
        }
    }

    /// The CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            Self::OneStep => "one-step",
            Self::Iterative => "iterative",
            Self::SteepestDrop => "steepest-drop",
            Self::EnergyOptimal => "energy-optimal",
            Self::Recorded => "recorded",
        }
    }
}

/// A live controller for any replayable [`PolicyKind`].
enum PolicyController {
    OneStep(OneStepCapping),
    Iterative(IterativeCapping),
    Steepest(SteepestDrop),
    EnergyOptimal,
}

impl PolicyController {
    fn build(kind: PolicyKind, ppep: &Ppep, cap: Watts) -> Result<Self> {
        match kind {
            PolicyKind::OneStep => Ok(Self::OneStep(OneStepCapping::new(ppep.clone(), cap))),
            PolicyKind::Iterative => Ok(Self::Iterative(IterativeCapping::new(
                cap,
                ppep.models().vf_table(),
            ))),
            PolicyKind::SteepestDrop => Ok(Self::Steepest(SteepestDrop::new(ppep.clone(), cap))),
            PolicyKind::EnergyOptimal => Ok(Self::EnergyOptimal),
            PolicyKind::Recorded => Err(Error::InvalidInput(
                "the recorded decision stream cannot drive a live replay".into(),
            )),
        }
    }

    /// Tracks the cap schedule; the uncapped policy ignores it.
    fn set_cap(&mut self, cap: Watts) {
        match self {
            Self::OneStep(c) => c.set_cap(cap),
            Self::Iterative(c) => c.set_cap(cap),
            Self::Steepest(c) => c.set_cap(cap),
            Self::EnergyOptimal => {}
        }
    }
}

impl DvfsController for PolicyController {
    fn decide(&mut self, projection: &PpeProjection) -> Result<Vec<VfStateId>> {
        match self {
            Self::OneStep(c) => c.decide(projection),
            Self::Iterative(c) => c.decide(projection),
            Self::Steepest(c) => c.decide(projection),
            Self::EnergyOptimal => Ok(vec![
                projection.best_energy_vf();
                projection.source_vf.len()
            ]),
        }
    }

    fn enforced_cap(&self) -> Option<Watts> {
        match self {
            Self::OneStep(c) => c.enforced_cap(),
            Self::Iterative(c) => c.enforced_cap(),
            Self::Steepest(c) => c.enforced_cap(),
            Self::EnergyOptimal => None,
        }
    }
}

/// One interval of a side-by-side comparison.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Supervised interval counter (position in the replay).
    pub interval: u64,
    /// Policy A's per-CU assignment.
    pub decision_a: Vec<VfStateId>,
    /// Policy B's per-CU assignment.
    pub decision_b: Vec<VfStateId>,
    /// Whether the assignments differ.
    pub diverged: bool,
    /// Per-CU changes from A's previous assignment.
    pub transitions_a: usize,
    /// Per-CU changes from B's previous assignment.
    pub transitions_b: usize,
    /// Model-predicted chip power at A's assignment.
    pub predicted_a: Option<Watts>,
    /// Model-predicted chip power at B's assignment.
    pub predicted_b: Option<Watts>,
    /// Model-priced energy for the interval's work at A's assignment.
    pub energy_a: Option<Joules>,
    /// Model-priced energy at B's assignment.
    pub energy_b: Option<Joules>,
    /// Model-priced EDP (J·s) at A's assignment.
    pub edp_a: Option<f64>,
    /// Model-priced EDP (J·s) at B's assignment.
    pub edp_b: Option<f64>,
    /// The cap policy A enforced this interval, if any.
    pub cap_a: Option<Watts>,
    /// The cap policy B enforced this interval, if any.
    pub cap_b: Option<Watts>,
    /// Whether A's predicted power exceeds its cap.
    pub cap_violated_a: Option<bool>,
    /// Whether B's predicted power exceeds its cap.
    pub cap_violated_b: Option<bool>,
}

/// The divergence report of one policy-vs-policy replay.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Display name of policy A.
    pub policy_a: String,
    /// Display name of policy B.
    pub policy_b: String,
    /// Intervals compared (the shorter of the two decision streams).
    pub intervals: usize,
    /// First interval where the assignments differ.
    pub first_divergence: Option<u64>,
    /// Number of intervals with differing assignments.
    pub diverged_intervals: usize,
    /// Intervals both sides could be model-priced at.
    pub priced_intervals: usize,
    /// Total VF transitions under policy A.
    pub transitions_a: usize,
    /// Total VF transitions under policy B.
    pub transitions_b: usize,
    /// Total model-priced energy under policy A (priced intervals).
    pub energy_a: Joules,
    /// Total model-priced energy under policy B (priced intervals).
    pub energy_b: Joules,
    /// Total model-priced EDP under policy A (J·s).
    pub edp_a: f64,
    /// Total model-priced EDP under policy B (J·s).
    pub edp_b: f64,
    /// Intervals where A's predicted power exceeded its cap.
    pub cap_violations_a: usize,
    /// Intervals where B's predicted power exceeded its cap.
    pub cap_violations_b: usize,
    /// The per-interval comparison.
    pub rows: Vec<DiffRow>,
}

impl DiffReport {
    /// VF-transition delta (A minus B): positive means A churns more.
    pub fn vf_transition_delta(&self) -> i64 {
        self.transitions_a as i64 - self.transitions_b as i64
    }

    /// Energy delta (A minus B) over the priced intervals.
    pub fn energy_delta(&self) -> Joules {
        self.energy_a - self.energy_b
    }

    /// EDP delta (A minus B) over the priced intervals.
    pub fn edp_delta(&self) -> f64 {
        self.edp_a - self.edp_b
    }

    /// Cap-adherence delta (A minus B violation counts): positive
    /// means A violates its cap more often.
    pub fn cap_adherence_delta(&self) -> i64 {
        self.cap_violations_a as i64 - self.cap_violations_b as i64
    }

    /// The per-interval report as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "interval,diverged,vf_a,vf_b,transitions_a,transitions_b,\
             predicted_w_a,predicted_w_b,energy_j_a,energy_j_b,edp_a,edp_b,\
             cap_w_a,cap_w_b,cap_violated_a,cap_violated_b\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                r.interval,
                r.diverged,
                vf_label(&r.decision_a),
                vf_label(&r.decision_b),
                r.transitions_a,
                r.transitions_b,
                csv_opt(r.predicted_a.map(Watts::as_watts)),
                csv_opt(r.predicted_b.map(Watts::as_watts)),
                csv_opt(r.energy_a.map(Joules::as_joules)),
                csv_opt(r.energy_b.map(Joules::as_joules)),
                csv_opt(r.edp_a),
                csv_opt(r.edp_b),
                csv_opt(r.cap_a.map(Watts::as_watts)),
                csv_opt(r.cap_b.map(Watts::as_watts)),
                csv_opt(r.cap_violated_a),
                csv_opt(r.cap_violated_b),
            ));
        }
        out
    }

    /// The report as JSON Lines: one summary line, then one line per
    /// interval.
    pub fn to_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"kind\":\"summary\",\"policy_a\":\"{}\",\"policy_b\":\"{}\",\
             \"intervals\":{},\"first_divergence\":{},\"diverged_intervals\":{},\
             \"transitions_a\":{},\"transitions_b\":{},\
             \"energy_j_a\":{},\"energy_j_b\":{},\"edp_a\":{},\"edp_b\":{},\
             \"cap_violations_a\":{},\"cap_violations_b\":{}}}\n",
            self.policy_a,
            self.policy_b,
            self.intervals,
            json_opt(self.first_divergence),
            self.diverged_intervals,
            self.transitions_a,
            self.transitions_b,
            self.energy_a.as_joules(),
            self.energy_b.as_joules(),
            self.edp_a,
            self.edp_b,
            self.cap_violations_a,
            self.cap_violations_b,
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{{\"kind\":\"interval\",\"interval\":{},\"diverged\":{},\
                 \"vf_a\":\"{}\",\"vf_b\":\"{}\",\
                 \"transitions_a\":{},\"transitions_b\":{},\
                 \"predicted_w_a\":{},\"predicted_w_b\":{},\
                 \"energy_j_a\":{},\"energy_j_b\":{},\"edp_a\":{},\"edp_b\":{},\
                 \"cap_w_a\":{},\"cap_w_b\":{},\
                 \"cap_violated_a\":{},\"cap_violated_b\":{}}}\n",
                r.interval,
                r.diverged,
                vf_label(&r.decision_a),
                vf_label(&r.decision_b),
                r.transitions_a,
                r.transitions_b,
                json_opt(r.predicted_a.map(Watts::as_watts)),
                json_opt(r.predicted_b.map(Watts::as_watts)),
                json_opt(r.energy_a.map(Joules::as_joules)),
                json_opt(r.energy_b.map(Joules::as_joules)),
                json_opt(r.edp_a),
                json_opt(r.edp_b),
                json_opt(r.cap_a.map(Watts::as_watts)),
                json_opt(r.cap_b.map(Watts::as_watts)),
                json_opt(r.cap_violated_a),
                json_opt(r.cap_violated_b),
            ));
        }
        out
    }
}

/// A per-CU assignment as a compact `|`-joined VF-index label.
fn vf_label(decision: &[VfStateId]) -> String {
    decision
        .iter()
        .map(|vf| vf.index().to_string())
        .collect::<Vec<_>>()
        .join("|")
}

fn csv_opt<T: std::fmt::Display>(v: Option<T>) -> String {
    v.map(|x| x.to_string()).unwrap_or_default()
}

fn json_opt<T: std::fmt::Display>(v: Option<T>) -> String {
    v.map_or_else(|| "null".to_string(), |x| x.to_string())
}

/// Per-CU changes between consecutive assignments of one policy.
fn transitions(prev: Option<&Vec<VfStateId>>, cur: &[VfStateId]) -> usize {
    match prev {
        Some(p) => p.iter().zip(cur).filter(|(a, b)| a != b).count(),
        None => 0,
    }
}

/// One side's decision stream over the replay.
struct Track {
    decisions: Vec<Vec<VfStateId>>,
    caps: Vec<Option<Watts>>,
    /// Last-good projection at each step — only live drives have them;
    /// they are policy-independent (the stream is fixed), so either
    /// side's serve both.
    projections: Option<Vec<Option<PpeProjection>>>,
}

/// The reusable policy-differential replay harness.
#[derive(Debug, Clone)]
pub struct ReplayDiff {
    ppep: Ppep,
    period: usize,
}

impl ReplayDiff {
    /// Builds a differ around a trained engine and the cap-schedule
    /// period the trace was recorded with.
    pub fn new(ppep: Ppep, period: usize) -> Self {
        Self { ppep, period }
    }

    /// Replays `trace` under policies `a` and `b` and diffs them.
    ///
    /// # Errors
    ///
    /// Propagates non-transient replay errors; diffing against
    /// [`PolicyKind::Recorded`] requires the trace to carry decision
    /// lines.
    pub fn diff(&self, trace: &TraceReader, a: PolicyKind, b: PolicyKind) -> Result<DiffReport> {
        let track_a = self.track(trace, a)?;
        let track_b = self.track(trace, b)?;
        let projections = match (&track_a.projections, &track_b.projections) {
            (Some(p), _) | (None, Some(p)) => p.clone(),
            // Both sides recorded: drive once just to harvest the
            // (policy-independent) projections for pricing.
            (None, None) => self
                .drive_policy(trace, PolicyKind::OneStep)?
                .projections
                .unwrap_or_default(),
        };
        Ok(self.report(a, track_a, b, track_b, &projections))
    }

    /// Diffs a live policy against the trace's own recorded decision
    /// stream — the "traces as regression tests" mode.
    ///
    /// # Errors
    ///
    /// As [`ReplayDiff::diff`].
    pub fn vs_recorded(&self, trace: &TraceReader, policy: PolicyKind) -> Result<DiffReport> {
        self.diff(trace, policy, PolicyKind::Recorded)
    }

    fn track(&self, trace: &TraceReader, kind: PolicyKind) -> Result<Track> {
        if kind == PolicyKind::Recorded {
            let decisions: Vec<_> = trace.decisions().collect();
            if decisions.is_empty() {
                return Err(Error::InvalidInput(
                    "trace carries no recorded decision lines to diff against".into(),
                ));
            }
            Ok(Track {
                caps: decisions.iter().map(|d| d.cap).collect(),
                decisions: decisions.iter().map(|d| d.chosen.clone()).collect(),
                projections: None,
            })
        } else {
            self.drive_policy(trace, kind)
        }
    }

    /// Replays the trace tolerantly under one live policy, following
    /// the recorded cap schedule.
    fn drive_policy(&self, trace: &TraceReader, kind: PolicyKind) -> Result<Track> {
        let steps = trace.interval_count() + trace.fault_count();
        let table = self.ppep.models().vf_table().clone();
        let controller = PolicyController::build(kind, &self.ppep, cap_schedule(0, self.period))?;
        let replay = ReplayPlatform::new(trace.clone());
        let inner = PpepDaemon::new(self.ppep.clone(), replay, controller);
        let mut daemon = ResilientDaemon::new(inner, SupervisorConfig::new(table.lowest()));
        let mut track = Track {
            decisions: Vec::with_capacity(steps),
            caps: Vec::with_capacity(steps),
            projections: Some(Vec::with_capacity(steps)),
        };
        let mut last_projection: Option<PpeProjection> = None;
        for step in 0..steps {
            daemon
                .inner_mut()
                .controller_mut()
                .set_cap(cap_schedule(step, self.period));
            let s = daemon.step()?;
            if let Some(p) = &s.projection {
                last_projection = Some(p.clone());
            }
            track
                .caps
                .push(daemon.inner_mut().controller_mut().enforced_cap());
            if let Some(projections) = &mut track.projections {
                projections.push(last_projection.clone());
            }
            track.decisions.push(s.decision);
        }
        Ok(track)
    }

    /// Prices one assignment against a projection: predicted chip
    /// power, and energy/EDP for the interval's recorded work.
    fn price(
        &self,
        projection: &PpeProjection,
        decision: &[VfStateId],
    ) -> Option<(Watts, Joules, f64)> {
        let power = self
            .ppep
            .chip_power_with_assignment(projection, decision)
            .ok()?;
        if decision.is_empty() {
            return None;
        }
        let cores_per_cu = projection.cores.len() / decision.len();
        if cores_per_cu == 0 {
            return None;
        }
        let ips: f64 = projection
            .cores
            .iter()
            .enumerate()
            .filter(|(_, c)| c.busy)
            .filter_map(|(i, c)| decision.get(i / cores_per_cu).map(|vf| c.at(*vf).ips))
            .sum();
        let time = if ips > 0.0 {
            projection.work_instructions / ips
        } else {
            0.0
        };
        let energy = power * Seconds::new(time);
        let edp = energy.as_joules() * time;
        Some((power, energy, edp))
    }

    #[allow(clippy::too_many_arguments)]
    fn report(
        &self,
        a: PolicyKind,
        track_a: Track,
        b: PolicyKind,
        track_b: Track,
        projections: &[Option<PpeProjection>],
    ) -> DiffReport {
        let intervals = track_a.decisions.len().min(track_b.decisions.len());
        let mut report = DiffReport {
            policy_a: a.name().to_string(),
            policy_b: b.name().to_string(),
            intervals,
            first_divergence: None,
            diverged_intervals: 0,
            priced_intervals: 0,
            transitions_a: 0,
            transitions_b: 0,
            energy_a: Joules::new(0.0),
            energy_b: Joules::new(0.0),
            edp_a: 0.0,
            edp_b: 0.0,
            cap_violations_a: 0,
            cap_violations_b: 0,
            rows: Vec::with_capacity(intervals),
        };
        let mut prev_a: Option<&Vec<VfStateId>> = None;
        let mut prev_b: Option<&Vec<VfStateId>> = None;
        for (i, (da, db)) in track_a.decisions.iter().zip(&track_b.decisions).enumerate() {
            let interval = i as u64;
            let diverged = da != db;
            if diverged {
                report.first_divergence.get_or_insert(interval);
                report.diverged_intervals += 1;
            }
            let transitions_a = transitions(prev_a, da);
            let transitions_b = transitions(prev_b, db);
            report.transitions_a += transitions_a;
            report.transitions_b += transitions_b;
            let projection = projections.get(i).and_then(Option::as_ref);
            let priced_a = projection.and_then(|p| self.price(p, da));
            let priced_b = projection.and_then(|p| self.price(p, db));
            if let (Some((_, ea, da_edp)), Some((_, eb, db_edp))) = (priced_a, priced_b) {
                report.priced_intervals += 1;
                report.energy_a += ea;
                report.energy_b += eb;
                report.edp_a += da_edp;
                report.edp_b += db_edp;
            }
            let cap_a = track_a.caps.get(i).copied().flatten();
            let cap_b = track_b.caps.get(i).copied().flatten();
            let cap_violated_a = violates(cap_a, priced_a.map(|(p, _, _)| p));
            let cap_violated_b = violates(cap_b, priced_b.map(|(p, _, _)| p));
            if cap_violated_a == Some(true) {
                report.cap_violations_a += 1;
            }
            if cap_violated_b == Some(true) {
                report.cap_violations_b += 1;
            }
            report.rows.push(DiffRow {
                interval,
                decision_a: da.clone(),
                decision_b: db.clone(),
                diverged,
                transitions_a,
                transitions_b,
                predicted_a: priced_a.map(|(p, _, _)| p),
                predicted_b: priced_b.map(|(p, _, _)| p),
                energy_a: priced_a.map(|(_, e, _)| e),
                energy_b: priced_b.map(|(_, e, _)| e),
                edp_a: priced_a.map(|(_, _, e)| e),
                edp_b: priced_b.map(|(_, _, e)| e),
                cap_a,
                cap_b,
                cap_violated_a,
                cap_violated_b,
            });
            prev_a = Some(da);
            prev_b = Some(db);
        }
        report
    }
}

/// Model-side cap verdict: does predicted power exceed the cap?
fn violates(cap: Option<Watts>, predicted: Option<Watts>) -> Option<bool> {
    match (cap, predicted) {
        (Some(c), Some(p)) => Some(p > c),
        _ => None,
    }
}

/// The `diff-policies` experiment's result.
#[derive(Debug, Clone)]
pub struct DiffResult {
    /// The divergence report.
    pub report: DiffReport,
    /// The recorded trace the diff ran over (JSON Lines).
    pub trace_jsonl: String,
    /// Whether the pairing is a self-replay (identical policies, or
    /// the recording policy vs its own recorded stream) and must
    /// therefore show zero divergence.
    pub self_replay: bool,
}

/// Whether a policy pairing must reproduce itself exactly. The
/// recording path drives [`OneStepCapping`], so one-step vs the
/// recorded stream is a self-replay too.
pub fn is_self_replay(a: PolicyKind, b: PolicyKind) -> bool {
    use PolicyKind::{OneStep, Recorded};
    a == b || matches!((a, b), (OneStep, Recorded) | (Recorded, OneStep))
}

/// Records a supervised capping run and diffs two policies over it.
///
/// # Errors
///
/// Propagates training, recording, and replay errors.
pub fn run(ctx: &Context, a: PolicyKind, b: PolicyKind) -> Result<DiffResult> {
    let ppep = ctx.engine(ctx.train_models()?);
    let recorded = replay::record(ctx, &ppep)?;
    let trace = TraceReader::parse(&recorded.trace_jsonl)?;
    let differ = ReplayDiff::new(ppep, recorded.period);
    let report = differ.diff(&trace, a, b)?;
    Ok(DiffResult {
        report,
        trace_jsonl: recorded.trace_jsonl,
        self_replay: is_self_replay(a, b),
    })
}

/// Prints the divergence summary.
pub fn print(result: &DiffResult) {
    let r = &result.report;
    println!(
        "== Policy-differential replay: {} (A) vs {} (B) ==",
        r.policy_a, r.policy_b
    );
    println!(
        "{} intervals compared, {} priced by the model",
        r.intervals, r.priced_intervals
    );
    match r.first_divergence {
        Some(first) => println!(
            "first divergence at interval {first}; {}/{} intervals diverge",
            r.diverged_intervals, r.intervals
        ),
        None => println!("no divergence: both policies chose identically at every interval"),
    }
    println!(
        "VF transitions: {} vs {} (delta {:+})",
        r.transitions_a,
        r.transitions_b,
        r.vf_transition_delta()
    );
    println!(
        "model-priced energy: {:.1} J vs {:.1} J (delta {:+.1} J)",
        r.energy_a.as_joules(),
        r.energy_b.as_joules(),
        r.energy_delta().as_joules()
    );
    println!(
        "model-priced EDP: {:.1} J*s vs {:.1} J*s (delta {:+.1})",
        r.edp_a,
        r.edp_b,
        r.edp_delta()
    );
    println!(
        "cap adherence (predicted vs cap): {} vs {} violating intervals (delta {:+})",
        r.cap_violations_a,
        r.cap_violations_b,
        r.cap_adherence_delta()
    );
    if result.self_replay {
        println!(
            "self-replay check: {}",
            if r.diverged_intervals == 0 {
                "PASS (zero divergence)"
            } else {
                "FAIL (the replayed policy no longer reproduces the recording)"
            }
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_round_trip() {
        for kind in [
            PolicyKind::OneStep,
            PolicyKind::Iterative,
            PolicyKind::SteepestDrop,
            PolicyKind::EnergyOptimal,
            PolicyKind::Recorded,
        ] {
            assert_eq!(PolicyKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(PolicyKind::parse("nope"), None);
    }

    #[test]
    fn self_replay_pairings() {
        assert!(is_self_replay(PolicyKind::OneStep, PolicyKind::OneStep));
        assert!(is_self_replay(PolicyKind::OneStep, PolicyKind::Recorded));
        assert!(is_self_replay(PolicyKind::Recorded, PolicyKind::OneStep));
        assert!(!is_self_replay(
            PolicyKind::OneStep,
            PolicyKind::EnergyOptimal
        ));
    }
}
