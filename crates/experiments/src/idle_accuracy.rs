//! §IV-A — idle-power model accuracy per VF state.
//!
//! The paper reports the chip idle power model's AAE per VF state:
//! 2/3/4/3/3% from VF5 down to VF1 on the FX-8320 and 3/2/2/2% on the
//! Phenom II. We fit on one set of heat/cool traces and validate on a
//! freshly collected set (different noise realisation), per VF state.

use crate::common::Context;
use ppep_models::idle::IdlePowerModel;
use ppep_rig::TrainingRig;
use ppep_types::{Result, VfStateId};

/// The experiment's result.
#[derive(Debug, Clone)]
pub struct IdleAccuracyResult {
    /// `(state, AAE)` per VF state, slowest first.
    pub per_vf: Vec<(VfStateId, f64)>,
    /// Mean AAE across states.
    pub mean: f64,
}

/// Runs the idle-model validation.
///
/// # Errors
///
/// Propagates fitting errors.
pub fn run(ctx: &Context) -> Result<IdleAccuracyResult> {
    let budget = ctx.scale.budget();
    // Fit on the context seed…
    let train_samples = ctx.rig.collect_idle_traces(&budget);
    let model = IdlePowerModel::fit(&train_samples)?;
    // …validate on an independent noise realisation.
    let test_rig = match ctx.rig.config().topology.cores_per_cu() {
        2 => TrainingRig::fx8320(ctx.seed ^ 0xDEAD),
        _ => TrainingRig::phenom_ii_x6(ctx.seed ^ 0xDEAD),
    };
    let table = ctx.rig.config().topology.vf_table().clone();
    let mut per_vf = Vec::with_capacity(table.len());
    for vf in table.states() {
        let (samples, _) = test_rig.collect_idle_trace_at(vf, &budget);
        let mut errors = Vec::with_capacity(samples.len());
        for s in &samples {
            let est = model.estimate(s.voltage, s.temperature)?.as_watts();
            errors.push((est - s.power.as_watts()).abs() / s.power.as_watts());
        }
        per_vf.push((vf, ppep_regress::stats::mean(&errors)));
    }
    let mean = ppep_regress::stats::mean(&per_vf.iter().map(|(_, e)| *e).collect::<Vec<_>>());
    Ok(IdleAccuracyResult { per_vf, mean })
}

/// Prints the §IV-A numbers (paper: 2/3/4/3/3% for VF5..VF1).
pub fn print(result: &IdleAccuracyResult) {
    println!("== §IV-A: chip idle power model AAE per VF state ==");
    for (vf, e) in result.per_vf.iter().rev() {
        println!("{vf}: {:.1}%", e * 100.0);
    }
    println!("mean: {:.1}%", result.mean * 100.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{Scale, DEFAULT_SEED};

    #[test]
    fn idle_model_holds_on_fresh_traces() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let r = run(&ctx).unwrap();
        assert_eq!(r.per_vf.len(), 5);
        // Paper band is 2-4%; allow some slack for the quick budget's
        // shorter cooling traces.
        assert!(r.mean < 0.08, "idle AAE {}", r.mean);
        for (vf, e) in &r.per_vf {
            assert!(*e < 0.12, "{vf} AAE {e}");
        }
    }
}
