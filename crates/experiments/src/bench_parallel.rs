//! Serial-versus-parallel wall clock for the sweep collections — the
//! artifact behind `BENCH_parallel.json`.
//!
//! Times the two sweep shapes the fleet runner shards: the Fig. 2/3
//! trace-store collection (`roster x VF states` cells) and the Fig. 6
//! energy sweep (`roster` cells at VF5), each once at `--jobs 1` and
//! once at the requested worker count. The sharded sweeps must also
//! produce the same traces as the serial ones — the benchmark
//! re-checks that on every run.

use crate::common::{Context, TraceStore};
use ppep_types::{Result, VfStateId};
use std::time::Instant;

/// One sweep's serial/parallel timing pair.
#[derive(Debug, Clone)]
pub struct SweepTiming {
    /// Which sweep ("fig02_store" or "fig06_energy").
    pub name: &'static str,
    /// `(combo, vf)` cells executed.
    pub cells: usize,
    /// Serial wall clock, milliseconds.
    pub serial_ms: f64,
    /// Parallel wall clock, milliseconds.
    pub parallel_ms: f64,
}

impl SweepTiming {
    /// Serial over parallel wall clock.
    pub fn speedup(&self) -> f64 {
        if self.parallel_ms > 0.0 {
            self.serial_ms / self.parallel_ms
        } else {
            0.0
        }
    }
}

/// The benchmark's result.
#[derive(Debug, Clone)]
pub struct BenchParallelResult {
    /// Worker count the parallel runs used.
    pub jobs: usize,
    /// Per-sweep timings.
    pub sweeps: Vec<SweepTiming>,
    /// Whether every sharded sweep reproduced the serial traces.
    pub identical: bool,
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// Runs both sweeps serially and sharded, timing each.
///
/// # Errors
///
/// This benchmark only collects traces; collection itself is
/// infallible, so errors can only come from future extensions.
pub fn run(ctx: &Context) -> Result<BenchParallelResult> {
    let jobs = ctx.jobs.max(2);
    let table = ctx.rig.config().topology.vf_table().clone();
    let budget = ctx.scale.budget();
    let roster = ctx.scale.roster(ctx.seed);
    let vfs: Vec<VfStateId> = table.states().collect();
    let mut identical = true;
    let mut sweeps = Vec::new();

    // Fig. 2/3 shape: the full roster x VF-ladder trace store.
    let t = Instant::now();
    let serial = TraceStore::collect_sharded(&ctx.rig, &roster, &vfs, &budget, 1);
    let serial_ms = ms(t);
    let t = Instant::now();
    let parallel = TraceStore::collect_sharded(&ctx.rig, &roster, &vfs, &budget, jobs);
    let parallel_ms = ms(t);
    identical &= serial.traces() == parallel.traces();
    sweeps.push(SweepTiming {
        name: "fig02_store",
        cells: roster.len() * vfs.len(),
        serial_ms,
        parallel_ms,
    });

    // Fig. 6 shape: the energy sweep's VF5 roster pass.
    let vf5 = [table.highest()];
    let t = Instant::now();
    let serial = TraceStore::collect_sharded(&ctx.rig, &roster, &vf5, &budget, 1);
    let serial_ms = ms(t);
    let t = Instant::now();
    let parallel = TraceStore::collect_sharded(&ctx.rig, &roster, &vf5, &budget, jobs);
    let parallel_ms = ms(t);
    identical &= serial.traces() == parallel.traces();
    sweeps.push(SweepTiming {
        name: "fig06_energy",
        cells: roster.len(),
        serial_ms,
        parallel_ms,
    });

    Ok(BenchParallelResult {
        jobs,
        sweeps,
        identical,
    })
}

/// The `BENCH_parallel.json` document.
pub fn bench_json(r: &BenchParallelResult) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"parallel\",");
    let _ = writeln!(s, "  \"jobs\": {},", r.jobs);
    let _ = writeln!(s, "  \"identical\": {},", r.identical);
    s.push_str("  \"sweeps\": [\n");
    for (i, sw) in r.sweeps.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"sweep\": \"{}\", \"cells\": {}, \"serial_ms\": {:.1}, \
             \"parallel_ms\": {:.1}, \"speedup\": {:.2}}}",
            sw.name,
            sw.cells,
            sw.serial_ms,
            sw.parallel_ms,
            sw.speedup()
        );
        s.push_str(if i + 1 < r.sweeps.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Prints the timing table.
pub fn print(r: &BenchParallelResult) {
    println!(
        "== Parallel sweep benchmark: serial vs {} workers ==",
        r.jobs
    );
    let rows: Vec<Vec<String>> = r
        .sweeps
        .iter()
        .map(|sw| {
            vec![
                sw.name.to_string(),
                sw.cells.to_string(),
                format!("{:.0} ms", sw.serial_ms),
                format!("{:.0} ms", sw.parallel_ms),
                format!("{:.2}x", sw.speedup()),
            ]
        })
        .collect();
    crate::common::print_table(&["sweep", "cells", "serial", "parallel", "speedup"], &rows);
    println!(
        "sharded traces {} the serial ones",
        if r.identical { "match" } else { "DIVERGE from" }
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{Scale, DEFAULT_SEED};

    #[test]
    fn sharded_sweeps_match_serial() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED).with_jobs(3);
        let r = run(&ctx).unwrap();
        assert!(r.identical);
        assert_eq!(r.jobs, 3);
        assert_eq!(r.sweeps.len(), 2);
        let json = bench_json(&r);
        assert!(json.contains("\"bench\": \"parallel\""));
        assert!(json.contains("fig02_store"));
        assert!(json.contains("fig06_energy"));
    }
}
