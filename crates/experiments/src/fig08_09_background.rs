//! Figs. 8 and 9 — how background workloads impact per-thread energy
//! and EDP (§V-C1).
//!
//! 433.milc (memory-bound) and 458.sjeng (CPU-bound) run with 1–4
//! concurrent instances at VF5 (power gating enabled); PPEP projects
//! per-thread energy and EDP at every VF state. The paper's three
//! observations:
//!
//! 1. the lowest VF state minimises energy regardless of background
//!    load (so static policies suffice for energy — dynamic policies
//!    gain < 2%);
//! 2. at high VF states a lone memory-bound instance uses *less*
//!    per-thread energy than a multi-programmed run (NB contention
//!    stretches execution);
//! 3. a lone CPU-bound instance uses *more* per-thread energy than a
//!    multi-programmed run (no one to share the chip's static power).
//!
//! Fig. 9's extra observation: the best-EDP state shifts down from
//! VF5 as instances are added.

use crate::common::Context;
use ppep_core::Ppep;
use ppep_dvfs::optimal::{best_edp_state, per_thread_ppe, PerThreadPpe};
use ppep_sim::chip::ChipSimulator;
use ppep_types::{Result, VfStateId};
use ppep_workloads::combos::instances;

/// One workload × instance-count sweep entry.
#[derive(Debug, Clone)]
pub struct SweepEntry {
    /// Benchmark name.
    pub benchmark: String,
    /// Number of concurrent instances.
    pub instances: usize,
    /// Per-thread PPE at each VF state, slowest first.
    pub per_thread: Vec<PerThreadPpe>,
    /// The state with the lowest per-thread energy.
    pub best_energy: VfStateId,
    /// The state with the lowest per-thread EDP.
    pub best_edp: VfStateId,
}

/// The experiment's result (Figs. 8 and 9 share the sweep).
#[derive(Debug, Clone)]
pub struct Fig0809Result {
    /// All sweep entries (two benchmarks × four instance counts).
    pub entries: Vec<SweepEntry>,
    /// Relative energy gain of an oracle dynamic policy over the best
    /// static policy across the sweep (paper: < 2%).
    pub dynamic_policy_gain: f64,
}

/// Projects one workload's sweep entry.
fn project_entry(ctx: &Context, ppep: &Ppep, benchmark: &str, n: usize) -> Result<SweepEntry> {
    let mut sim = ChipSimulator::new(ppep_sim::chip::SimConfig::fx8320_pg(ctx.seed));
    sim.load_workload(&instances(benchmark, n, ctx.seed));
    let warmup = match ctx.scale {
        crate::common::Scale::Full => 20,
        crate::common::Scale::Quick => 8,
    };
    let record = sim
        .run_intervals(warmup)
        .pop()
        .ok_or_else(|| ppep_types::Error::InvalidInput("warmup produced no intervals".into()))?;
    let projection = ppep.project(&record)?;
    let per_thread = per_thread_ppe(&projection, n)?;
    let best_energy = per_thread
        .iter()
        .min_by(|a, b| a.energy.total_cmp(&b.energy))
        .map(|p| p.vf)
        .unwrap_or_default();
    Ok(SweepEntry {
        benchmark: benchmark.to_string(),
        instances: n,
        best_edp: best_edp_state(&per_thread),
        per_thread,
        best_energy,
    })
}

/// Runs the Figs. 8/9 sweep.
///
/// # Errors
///
/// Propagates training and projection errors.
pub fn run(ctx: &Context) -> Result<Fig0809Result> {
    let models = ctx.train_models()?;
    let ppep = ctx.engine(models);
    run_with_engine(ctx, &ppep)
}

/// Runs the sweep with an already-trained engine (shared with the
/// Fig. 10/11 studies).
///
/// # Errors
///
/// Propagates projection errors.
pub fn run_with_engine(ctx: &Context, ppep: &Ppep) -> Result<Fig0809Result> {
    let mut entries = Vec::new();
    for benchmark in ["433.milc", "458.sjeng"] {
        for n in 1..=4 {
            entries.push(project_entry(ctx, ppep, benchmark, n)?);
        }
    }
    // Oracle dynamic policy vs best static: since every entry's
    // energy-vs-VF curve has one minimiser, the gain of switching
    // states per phase is bounded by the spread between the best
    // static state's energy and the per-entry minima.
    let mut static_total = [0.0; 8];
    let mut oracle_total = 0.0;
    for (i, e) in entries.iter().enumerate() {
        let _ = i;
        for (s, slot) in static_total.iter_mut().enumerate().take(e.per_thread.len()) {
            *slot += e.per_thread[s].energy;
        }
        oracle_total +=
            crate::common::series_min(e.per_thread.iter().map(|p| p.energy)).unwrap_or(0.0);
    }
    let threads = entries.first().map_or(0, |e| e.per_thread.len());
    let best_static =
        crate::common::series_min(static_total.iter().take(threads).copied()).unwrap_or(0.0);
    let dynamic_policy_gain = if best_static > 0.0 {
        (best_static - oracle_total) / best_static
    } else {
        0.0
    };

    Ok(Fig0809Result {
        entries,
        dynamic_policy_gain,
    })
}

/// Prints the Figs. 8/9 tables (normalised per benchmark to its
/// maximum, matching the paper's normalised plots).
pub fn print(result: &Fig0809Result) {
    println!("== Fig. 8: per-thread energy (normalised) ==");
    print_metric(result, |p| p.energy);
    println!();
    println!("== Fig. 9: per-thread EDP (normalised) ==");
    print_metric(result, |p| p.edp);
    println!();
    for e in &result.entries {
        println!(
            "{} x{}: best energy at {}, best EDP at {}",
            e.benchmark, e.instances, e.best_energy, e.best_edp
        );
    }
    println!(
        "oracle dynamic policy gain over best static: {} (paper: < 2%)",
        crate::common::pct(result.dynamic_policy_gain)
    );
}

fn print_metric(result: &Fig0809Result, pick: impl Fn(&PerThreadPpe) -> f64) {
    let mut rows = Vec::new();
    for e in &result.entries {
        let max = e.per_thread.iter().map(&pick).fold(0.0, f64::max);
        let mut row = vec![format!("{} x{}", e.benchmark, e.instances)];
        for p in e.per_thread.iter().rev() {
            row.push(format!("{:.2}", pick(p) / max));
        }
        rows.push(row);
    }
    crate::common::print_table(&["workload", "VF5", "VF4", "VF3", "VF2", "VF1"], &rows);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{Scale, DEFAULT_SEED};

    #[test]
    fn fig8_9_observations_hold() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let r = run(&ctx).unwrap();
        assert_eq!(r.entries.len(), 8);
        let table = ppep_types::VfTable::fx8320();
        // Observation 1: lowest VF minimises per-thread energy.
        for e in &r.entries {
            assert_eq!(
                e.best_energy,
                table.lowest(),
                "{} x{} energy-optimal at {}",
                e.benchmark,
                e.instances,
                e.best_energy
            );
        }
        let vf5 = table.highest().index();
        let energy_at = |bench: &str, n: usize, vf: usize| {
            r.entries
                .iter()
                .find(|e| e.benchmark == bench && e.instances == n)
                .unwrap()
                .per_thread[vf]
                .energy
        };
        // Observation 2: NB contention stretches multi-instance
        // memory-bound runs. Between x2 and x4 static-power sharing
        // only improves, so a per-thread energy *rise* isolates the
        // contention effect (x1 vs x4 mixes in the obs-3 sharing
        // effect, which power gating nearly cancels here).
        assert!(
            energy_at("433.milc", 2, vf5) < energy_at("433.milc", 4, vf5),
            "NB contention must penalise multi-instance memory-bound work"
        );
        // The execution-time stretch behind observation 2 shows even
        // more strongly in EDP: milc's per-thread EDP grows with
        // every added instance.
        let edp_at = |bench: &str, n: usize, vf: usize| {
            r.entries
                .iter()
                .find(|e| e.benchmark == bench && e.instances == n)
                .unwrap()
                .per_thread[vf]
                .edp
        };
        assert!(
            edp_at("433.milc", 1, vf5) < edp_at("433.milc", 4, vf5),
            "contention must stretch milc's per-thread EDP"
        );
        // Observation 3: at VF5, sjeng x1 per-thread energy > sjeng x4.
        assert!(
            energy_at("458.sjeng", 1, vf5) > energy_at("458.sjeng", 4, vf5),
            "CPU-bound instances share static power"
        );
        // Static policies are near-optimal for energy.
        assert!(
            r.dynamic_policy_gain < 0.05,
            "dynamic policy gain {} (paper < 2%)",
            r.dynamic_policy_gain
        );
    }

    #[test]
    fn fig9_best_edp_shifts_down_with_instances() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let r = run(&ctx).unwrap();
        let best = |bench: &str, n: usize| {
            r.entries
                .iter()
                .find(|e| e.benchmark == bench && e.instances == n)
                .unwrap()
                .best_edp
        };
        // With more background instances the best-EDP state must not
        // move up, and for milc it must strictly drop below VF5.
        for bench in ["433.milc", "458.sjeng"] {
            assert!(best(bench, 4) <= best(bench, 1), "{bench}");
        }
        let table = ppep_types::VfTable::fx8320();
        assert!(best("433.milc", 4) < table.highest());
    }
}
