//! One-shot reproduction summary: runs the headline experiments and
//! prints a paper-vs-measured table with automatic shape verdicts —
//! the machine-checked core of `EXPERIMENTS.md`.

use crate::common::{Context, TraceStore};
use crate::{
    cpi_accuracy, fig02_model_error, fig03_cross_vf, fig06_energy, fig07_capping,
    fig08_09_background, fig10_nb_share, fig11_nb_dvfs,
};
use ppep_types::{Result, VfStateId};

/// One summary row.
#[derive(Debug, Clone)]
pub struct SummaryRow {
    /// What is being compared.
    pub metric: String,
    /// The paper's number, as printed in the text.
    pub paper: String,
    /// This run's number.
    pub measured: String,
    /// Whether the shape criterion held.
    pub shape_holds: bool,
}

/// The collected summary.
#[derive(Debug, Clone)]
pub struct SummaryResult {
    /// All rows, in paper order.
    pub rows: Vec<SummaryRow>,
}

impl SummaryResult {
    /// Number of rows whose shape criterion held.
    pub fn holding(&self) -> usize {
        self.rows.iter().filter(|r| r.shape_holds).count()
    }
}

fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Runs the headline experiments and assembles the table.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn run(ctx: &Context) -> Result<SummaryResult> {
    let mut rows = Vec::new();
    let mut push = |metric: &str, paper: &str, measured: String, holds: bool| {
        rows.push(SummaryRow {
            metric: metric.to_string(),
            paper: paper.to_string(),
            measured,
            shape_holds: holds,
        });
    };

    // §III CPI predictor.
    let cpi = cpi_accuracy::run(ctx)?;
    push(
        "CPI predictor, VF5->VF2 (SS III)",
        "3.4%",
        pct(cpi.down.0),
        cpi.down.0 < 0.08,
    );
    push(
        "CPI predictor, VF2->VF5 (SS III)",
        "3.0%",
        pct(cpi.up.0),
        cpi.up.0 < 0.08,
    );

    // Figs. 2-3 share traces.
    let table = ctx.rig.config().topology.vf_table().clone();
    let vfs: Vec<VfStateId> = table.states().collect();
    let store = TraceStore::collect_sharded(
        &ctx.rig,
        &ctx.scale.roster(ctx.seed),
        &vfs,
        &ctx.scale.budget(),
        ctx.jobs,
    );
    let f2 = fig02_model_error::run_with_store(ctx, &store)?;
    push(
        "dynamic power model AAE (Fig. 2a)",
        "10.6%",
        pct(f2.dynamic_overall),
        f2.dynamic_overall < 0.20,
    );
    push(
        "chip power model AAE (Fig. 2b)",
        "4.6%",
        pct(f2.chip_overall),
        f2.chip_overall < f2.dynamic_overall && f2.chip_overall < 0.10,
    );
    let f3 = fig03_cross_vf::run_with_store(ctx, &store)?;
    push(
        "cross-VF chip prediction AAE (Fig. 3b)",
        "4.2%",
        pct(f3.chip_overall),
        f3.chip_overall < 0.10,
    );

    // Fig. 6 energy prediction.
    let f6 = fig06_energy::run(ctx)?;
    push(
        "energy prediction, PPEP (Fig. 6)",
        "3.6%",
        pct(f6.ppep_avg),
        f6.ppep_avg < f6.gg_avg,
    );
    push(
        "energy prediction, Green Governors (Fig. 6)",
        "~7%",
        pct(f6.gg_avg),
        f6.gg_avg > f6.ppep_avg,
    );

    // Fig. 7 capping.
    let f7 = fig07_capping::run(ctx)?;
    push(
        "one-step capping settle (Fig. 7)",
        "0.2 s",
        format!("{:.1} s", f7.ppep.worst_settle_intervals as f64 * 0.2),
        f7.ppep.worst_settle_intervals <= 2,
    );
    push(
        "capping convergence speedup (Fig. 7)",
        "14x",
        format!("{:.1}x", f7.speedup),
        f7.speedup >= 2.0,
    );

    // §V studies share one engine.
    let engine = ctx.engine(ctx.train_models()?);
    let f89 = fig08_09_background::run_with_engine(ctx, &engine)?;
    let all_vf1 = f89.entries.iter().all(|e| e.best_energy == table.lowest());
    push(
        "energy-optimal VF state (Fig. 8)",
        "VF1 always",
        if all_vf1 {
            "VF1 always".into()
        } else {
            "mixed".into()
        },
        all_vf1,
    );
    push(
        "dynamic-vs-static policy gain (SS V-C1)",
        "< 2%",
        pct(f89.dynamic_policy_gain),
        f89.dynamic_policy_gain < 0.05,
    );
    let f10 = fig10_nb_share::run_with_engine(ctx, &engine)?;
    push(
        "NB share, memory-bound (Fig. 10)",
        "~60%",
        pct(f10.memory_bound_avg),
        f10.memory_bound_avg > f10.cpu_bound_avg,
    );
    let f11 = fig11_nb_dvfs::run_with_engine(ctx, &engine)?;
    push(
        "NB-DVFS energy saving (Fig. 11a)",
        "20.4%",
        pct(f11.average_saving),
        f11.average_saving > 0.05,
    );
    push(
        "NB-DVFS speedup (Fig. 11b)",
        "1.37x",
        format!("{:.2}x", f11.average_speedup),
        f11.average_speedup > 1.05,
    );

    Ok(SummaryResult { rows })
}

/// Prints the table.
pub fn print(result: &SummaryResult) {
    println!("== Reproduction summary (paper vs. this run) ==");
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.metric.clone(),
                r.paper.clone(),
                r.measured.clone(),
                if r.shape_holds {
                    "ok".into()
                } else {
                    "DIVERGES".into()
                },
            ]
        })
        .collect();
    crate::common::print_table(&["metric", "paper", "measured", "shape"], &rows);
    println!(
        "{} of {} shape criteria hold",
        result.holding(),
        result.rows.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{Scale, DEFAULT_SEED};

    #[test]
    fn every_headline_shape_holds_at_quick_scale() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let r = run(&ctx).unwrap();
        assert!(r.rows.len() >= 12);
        let failing: Vec<&SummaryRow> = r.rows.iter().filter(|row| !row.shape_holds).collect();
        assert!(
            failing.is_empty(),
            "diverging rows: {:?}",
            failing
                .iter()
                .map(|r| (&r.metric, &r.measured))
                .collect::<Vec<_>>()
        );
    }
}
