//! §III — accuracy of the LL-MAB online CPI predictor.
//!
//! The paper runs 52 single-threaded benchmarks at VF5 and VF2,
//! divides the counter traces into instruction-aligned segments, and
//! compares predicted versus measured cycles per segment. It reports
//! 3.4% average error predicting VF5→VF2 (SD 4.6%) and 3.0% for
//! VF2→VF5 (SD 3.2%).

use crate::common::Context;
use ppep_models::cpi::{segment_aligned_errors, CpiObservation};
use ppep_models::trainer::ComboTrace;
use ppep_pmc::EventId;
use ppep_types::{Gigahertz, Result, VfStateId};
use ppep_workloads::combos::single_threaded_52;

/// Per-benchmark CPI prediction error.
#[derive(Debug, Clone)]
pub struct BenchCpiError {
    /// Benchmark name.
    pub name: String,
    /// Mean segment error predicting high→low frequency.
    pub down_error: f64,
    /// Mean segment error predicting low→high frequency.
    pub up_error: f64,
}

/// The experiment's result.
#[derive(Debug, Clone)]
pub struct CpiAccuracyResult {
    /// Per-benchmark errors.
    pub benchmarks: Vec<BenchCpiError>,
    /// Mean / SD of the down-prediction errors.
    pub down: (f64, f64),
    /// Mean / SD of the up-prediction errors.
    pub up: (f64, f64),
}

fn trace_tuples(trace: &ComboTrace, frequency: Gigahertz) -> Vec<(f64, CpiObservation)> {
    trace
        .records
        .iter()
        .filter_map(|r| {
            let s = &r.samples[0]; // single-threaded: core 0
            let inst = s.counts.get(EventId::RetiredInstructions);
            if inst <= 0.0 {
                return None;
            }
            CpiObservation::from_sample(s, frequency)
                .ok()
                .map(|obs| (inst, obs))
        })
        .collect()
}

/// Runs the CPI-accuracy study between `hi` (VF5) and `lo` (VF2).
///
/// # Errors
///
/// Propagates segment-alignment errors for degenerate traces.
pub fn run_between(ctx: &Context, hi: VfStateId, lo: VfStateId) -> Result<CpiAccuracyResult> {
    let table = ctx.rig.config().topology.vf_table().clone();
    let f_hi = table.point(hi).frequency;
    let f_lo = table.point(lo).frequency;
    let budget = {
        let mut b = ctx.scale.budget();
        // CPI segments need longer traces than power fitting does.
        b.record_intervals = b.record_intervals.max(12) * 2;
        b
    };
    let roster = match ctx.scale {
        crate::common::Scale::Full => single_threaded_52(ctx.seed),
        crate::common::Scale::Quick => single_threaded_52(ctx.seed)
            .into_iter()
            .step_by(5)
            .take(8)
            .collect(),
    };

    let mut benchmarks = Vec::new();
    for spec in &roster {
        let hi_trace = ctx.rig.collect_run(spec, hi, &budget);
        let lo_trace = ctx.rig.collect_run(spec, lo, &budget);
        let hi_tuples = trace_tuples(&hi_trace, f_hi);
        let lo_tuples = trace_tuples(&lo_trace, f_lo);
        if hi_tuples.len() < 2 || lo_tuples.len() < 2 {
            continue; // a short benchmark finished during warm-up
        }
        // Segment length: a few intervals' worth of the slower run.
        let seg = lo_tuples.iter().map(|(n, _)| n).sum::<f64>() / lo_tuples.len() as f64;
        let down = segment_aligned_errors(&hi_tuples, &lo_tuples, f_lo, seg)?;
        let up = segment_aligned_errors(&lo_tuples, &hi_tuples, f_hi, seg)?;
        benchmarks.push(BenchCpiError {
            name: spec.name().to_string(),
            down_error: ppep_regress::stats::mean(&down),
            up_error: ppep_regress::stats::mean(&up),
        });
    }

    let downs: Vec<f64> = benchmarks.iter().map(|b| b.down_error).collect();
    let ups: Vec<f64> = benchmarks.iter().map(|b| b.up_error).collect();
    Ok(CpiAccuracyResult {
        down: (
            ppep_regress::stats::mean(&downs),
            ppep_regress::stats::std_dev(&downs),
        ),
        up: (
            ppep_regress::stats::mean(&ups),
            ppep_regress::stats::std_dev(&ups),
        ),
        benchmarks,
    })
}

/// Runs with the paper's VF5↔VF2 pairing.
///
/// # Errors
///
/// See [`run_between`].
pub fn run(ctx: &Context) -> Result<CpiAccuracyResult> {
    let table = ctx.rig.config().topology.vf_table().clone();
    let vf5 = table.highest();
    let vf2 = table.state(1)?;
    run_between(ctx, vf5, vf2)
}

/// Prints the §III numbers.
pub fn print(result: &CpiAccuracyResult) {
    println!("== §III: LL-MAB CPI predictor accuracy (paper: 3.4%/3.0%, SD 4.6%/3.2%) ==");
    println!(
        "VF5 -> VF2: mean {:.1}%  SD {:.1}%",
        result.down.0 * 100.0,
        result.down.1 * 100.0
    );
    println!(
        "VF2 -> VF5: mean {:.1}%  SD {:.1}%",
        result.up.0 * 100.0,
        result.up.1 * 100.0
    );
    let rows: Vec<Vec<String>> = result
        .benchmarks
        .iter()
        .map(|b| {
            vec![
                b.name.clone(),
                format!("{:.2}%", b.down_error * 100.0),
                format!("{:.2}%", b.up_error * 100.0),
            ]
        })
        .collect();
    crate::common::print_table(&["benchmark", "VF5->VF2", "VF2->VF5"], &rows);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{Scale, DEFAULT_SEED};

    #[test]
    fn cpi_predictor_is_accurate_in_both_directions() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let r = run(&ctx).unwrap();
        assert!(!r.benchmarks.is_empty());
        // The paper reports ~3%; the simulated substrate (multiplexed
        // counters + phase noise) should stay in the same regime.
        assert!(r.down.0 < 0.10, "down error {}", r.down.0);
        assert!(r.up.0 < 0.10, "up error {}", r.up.0);
        for b in &r.benchmarks {
            assert!(b.down_error.is_finite() && b.down_error >= 0.0);
        }
    }
}
