//! Regeneration harnesses for every table and figure in the paper's
//! evaluation.
//!
//! Each module owns one experiment: it runs the simulation pipeline,
//! returns a structured result, and can print the same rows/series the
//! paper reports. The `ppep-experiments` binary exposes one subcommand
//! per experiment; `EXPERIMENTS.md` records paper-versus-measured for
//! each.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`fig01_idle_trace`] | Fig. 1 — idle power & temperature, heat/cool |
//! | [`cpi_accuracy`] | §III — LL-MAB CPI predictor error |
//! | [`idle_accuracy`] | §IV-A — idle model AAE per VF state |
//! | [`observations`] | §IV-C1 — Observations 1 and 2 |
//! | [`fig02_model_error`] | Fig. 2 — dynamic & chip model validation |
//! | [`fig03_cross_vf`] | Fig. 3 — cross-VF power prediction |
//! | [`fig04_pg_sweep`] | Fig. 4 — power gating sweep |
//! | [`fig06_energy`] | Fig. 6 — energy prediction vs Green Governors |
//! | [`fig07_capping`] | Fig. 7 — one-step vs iterative power capping |
//! | [`fig08_09_background`] | Figs. 8–9 — per-thread energy/EDP vs background load |
//! | [`fig10_nb_share`] | Fig. 10 — NB energy share |
//! | [`fig11_nb_dvfs`] | Fig. 11 — NB DVFS energy saving & speedup |
//! | [`phenom`] | §IV-B2/§IV-C2 — Phenom II validation |
//! | [`ablations`] | error attribution (beyond the paper: ideal PMU/sensor) |
//! | [`resilience`] | Fig. 7 capping under a fault storm (beyond the paper) |
//! | [`overhead`] | §V — per-stage latency and framework overhead of the 200 ms loop |
//! | [`replay`] | trace record → JSONL → strict replay round trip (beyond the paper) |
//! | [`diff_policies`] | policy-differential replay: two controllers over one recorded trace (beyond the paper) |
//! | [`bench_parallel`] | serial vs sharded sweep wall clock (`BENCH_parallel.json`) |
//! | [`serve`] | multi-tenant capping service: clean hosting, chaos containment gate, concurrent load generation (beyond the paper) |
//! | [`accuracy_watch`] | prediction-accuracy scorecard, drift trip-wires, and the clean-trace error gate (beyond the paper) |
//!
//! The paper-scale sweeps shard across cores through [`fleet`]
//! (`--jobs N` on the binary); results are identical for any worker
//! count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod accuracy_watch;
pub mod ascii;
pub mod bench_parallel;
pub mod common;
pub mod cpi_accuracy;
pub mod diff_policies;
pub mod fig01_idle_trace;
pub mod fig02_model_error;
pub mod fig03_cross_vf;
pub mod fig04_pg_sweep;
pub mod fig06_energy;
pub mod fig07_capping;
pub mod fig08_09_background;
pub mod fig10_nb_share;
pub mod fig11_nb_dvfs;
pub mod fleet;
pub mod idle_accuracy;
pub mod kernel_bench;
pub mod observations;
pub mod overhead;
pub mod phenom;
pub mod replay;
pub mod report;
pub mod resilience;
pub mod serve;
pub mod summary;

pub use common::{Context, Scale};
