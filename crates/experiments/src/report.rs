//! CSV export of experiment results, for external plotting.
//!
//! Every figure's result type gets a `*_csv` function returning the
//! file contents; the binary's `--out DIR` flag writes them to disk.
//! The column layouts mirror the paper's figure axes so a plotting
//! script can regenerate each chart directly.

use crate::{
    ablations, cpi_accuracy, fig01_idle_trace, fig02_model_error, fig03_cross_vf, fig06_energy,
    fig07_capping, fig08_09_background, fig10_nb_share, fig11_nb_dvfs, overhead,
};
use std::fmt::Write as _;

/// Escapes one CSV cell (quotes fields containing separators).
fn cell(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders rows of cells into CSV text.
pub fn to_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| cell(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Fig. 1 series: step, normalised power, temperature.
pub fn fig01_csv(r: &fig01_idle_trace::Fig01Result) -> String {
    let rows: Vec<Vec<String>> = r
        .series
        .iter()
        .map(|p| {
            vec![
                p.step.to_string(),
                format!("{:.6}", p.normalized_power),
                format!("{:.3}", p.temperature_k),
            ]
        })
        .collect();
    to_csv(&["step", "normalized_power", "temperature_k"], &rows)
}

/// §III per-benchmark CPI errors.
pub fn cpi_csv(r: &cpi_accuracy::CpiAccuracyResult) -> String {
    let rows: Vec<Vec<String>> = r
        .benchmarks
        .iter()
        .map(|b| {
            vec![
                b.name.clone(),
                format!("{:.6}", b.down_error),
                format!("{:.6}", b.up_error),
            ]
        })
        .collect();
    to_csv(&["benchmark", "down_error", "up_error"], &rows)
}

/// Fig. 2 cells: vf, suite, dynamic/chip mean and SD.
pub fn fig02_csv(r: &fig02_model_error::Fig02Result) -> String {
    let rows: Vec<Vec<String>> = r
        .cells
        .iter()
        .map(|c| {
            vec![
                c.vf.to_string(),
                c.suite.map_or("ALL".into(), |s| s.abbrev().to_string()),
                format!("{:.6}", c.dynamic.mean),
                format!("{:.6}", c.dynamic.std_dev),
                format!("{:.6}", c.chip.mean),
                format!("{:.6}", c.chip.std_dev),
                c.dynamic.count.to_string(),
            ]
        })
        .collect();
    to_csv(
        &[
            "vf",
            "suite",
            "dyn_mean",
            "dyn_sd",
            "chip_mean",
            "chip_sd",
            "n",
        ],
        &rows,
    )
}

/// Fig. 3 pairs: from, to, dynamic/chip mean and SD.
pub fn fig03_csv(r: &fig03_cross_vf::Fig03Result) -> String {
    let rows: Vec<Vec<String>> = r
        .pairs
        .iter()
        .map(|p| {
            vec![
                p.from.to_string(),
                p.to.to_string(),
                format!("{:.6}", p.dynamic.mean),
                format!("{:.6}", p.dynamic.std_dev),
                format!("{:.6}", p.chip.mean),
                format!("{:.6}", p.chip.std_dev),
            ]
        })
        .collect();
    to_csv(
        &["from", "to", "dyn_mean", "dyn_sd", "chip_mean", "chip_sd"],
        &rows,
    )
}

/// Fig. 6 per-combination energy-prediction errors.
pub fn fig06_csv(r: &fig06_energy::Fig06Result) -> String {
    let rows: Vec<Vec<String>> = r
        .combos
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                format!("{:.6}", c.ppep),
                format!("{:.6}", c.green_governors),
            ]
        })
        .collect();
    to_csv(&["combination", "ppep_aae", "green_governors_aae"], &rows)
}

/// Fig. 7 traces: step, cap, both policies' measured power.
pub fn fig07_csv(r: &fig07_capping::Fig07Result) -> String {
    let rows: Vec<Vec<String>> = (0..r.ppep.power.len())
        .map(|i| {
            vec![
                i.to_string(),
                format!("{:.3}", r.ppep.cap[i].as_watts()),
                format!("{:.3}", r.ppep.power[i].as_watts()),
                format!("{:.3}", r.iterative.power[i].as_watts()),
            ]
        })
        .collect();
    to_csv(&["step", "cap_w", "ppep_w", "iterative_w"], &rows)
}

/// Figs. 8/9 sweep: per workload × instances × vf.
pub fn fig08_09_csv(r: &fig08_09_background::Fig0809Result) -> String {
    let mut rows = Vec::new();
    for e in &r.entries {
        for p in &e.per_thread {
            rows.push(vec![
                e.benchmark.clone(),
                e.instances.to_string(),
                p.vf.to_string(),
                format!("{:.6}", p.energy),
                format!("{:.6}", p.time),
                format!("{:.6}", p.edp),
            ]);
        }
    }
    to_csv(
        &[
            "benchmark",
            "instances",
            "vf",
            "energy_j",
            "time_s",
            "edp_js",
        ],
        &rows,
    )
}

/// Fig. 10 cells.
pub fn fig10_csv(r: &fig10_nb_share::Fig10Result) -> String {
    let rows: Vec<Vec<String>> = r
        .cells
        .iter()
        .map(|c| {
            vec![
                c.benchmark.clone(),
                c.instances.to_string(),
                c.vf.to_string(),
                format!("{:.6}", c.normalized_energy),
                format!("{:.6}", c.nb_ratio),
            ]
        })
        .collect();
    to_csv(
        &[
            "benchmark",
            "instances",
            "vf",
            "normalized_energy",
            "nb_ratio",
        ],
        &rows,
    )
}

/// Fig. 11 entries.
pub fn fig11_csv(r: &fig11_nb_dvfs::Fig11Result) -> String {
    let rows: Vec<Vec<String>> = r
        .entries
        .iter()
        .map(|e| {
            vec![
                e.benchmark.clone(),
                e.instances.to_string(),
                format!("{:.6}", e.energy_saving),
                format!("{:.6}", e.speedup),
            ]
        })
        .collect();
    to_csv(
        &["benchmark", "instances", "energy_saving", "speedup"],
        &rows,
    )
}

/// Ablation points.
pub fn ablations_csv(r: &ablations::AblationResult) -> String {
    let rows: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            vec![
                p.label.to_string(),
                format!("{:.6}", p.chip_aae),
                format!("{:.6}", p.dynamic_aae),
            ]
        })
        .collect();
    to_csv(&["configuration", "chip_aae", "dynamic_aae"], &rows)
}

/// Per-stage latency summary of the overhead experiment.
pub fn overhead_csv(r: &overhead::OverheadResult) -> String {
    let rows: Vec<Vec<String>> = r
        .stages
        .iter()
        .map(|s| {
            vec![
                s.stage.name().to_string(),
                s.count.to_string(),
                format!("{:.3}", s.p50_us),
                format!("{:.3}", s.p95_us),
                format!("{:.3}", s.p99_us),
                format!("{:.3}", s.max_us),
            ]
        })
        .collect();
    to_csv(
        &["stage", "spans", "p50_us", "p95_us", "p99_us", "max_us"],
        &rows,
    )
}

/// The overhead experiment's machine-readable verdict
/// (`BENCH_overhead.json`), consumed by the CI smoke step.
pub fn overhead_bench_json(r: &overhead::OverheadResult) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"overhead\",");
    let _ = writeln!(s, "  \"intervals\": {},", r.intervals);
    let _ = writeln!(s, "  \"budget_ms\": {:.1},", r.budget_ms);
    let _ = writeln!(s, "  \"identical\": {},", r.identical);
    let _ = writeln!(s, "  \"mean_fraction\": {:.6},", r.mean_fraction);
    let _ = writeln!(s, "  \"p95_fraction\": {:.6},", r.p95_fraction);
    let _ = writeln!(s, "  \"max_fraction\": {:.6},", r.max_fraction);
    s.push_str("  \"stages\": [\n");
    for (i, st) in r.stages.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"stage\": \"{}\", \"spans\": {}, \"p50_us\": {:.3}, \
             \"p95_us\": {:.3}, \"p99_us\": {:.3}, \"max_us\": {:.3}}}",
            st.stage.name(),
            st.count,
            st.p50_us,
            st.p95_us,
            st.p99_us,
            st.max_us
        );
        s.push_str(if i + 1 < r.stages.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// A one-line human summary of which files a writer produced.
pub fn written_summary(paths: &[String]) -> String {
    let mut s = String::new();
    let _ = write!(s, "wrote {} CSV file(s):", paths.len());
    for p in paths {
        let _ = write!(s, " {p}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_escaping() {
        let rows = vec![vec![
            "a,b".to_string(),
            "plain".to_string(),
            "q\"q".to_string(),
        ]];
        let csv = to_csv(&["x", "y", "z"], &rows);
        assert_eq!(csv, "x,y,z\n\"a,b\",plain,\"q\"\"q\"\n");
    }

    #[test]
    fn fig11_csv_layout() {
        let r = crate::fig11_nb_dvfs::Fig11Result {
            entries: vec![crate::fig11_nb_dvfs::NbDvfsEntry {
                benchmark: "433.milc".into(),
                instances: 2,
                energy_saving: 0.123456,
                speedup: 1.25,
            }],
            average_saving: 0.123456,
            average_speedup: 1.25,
        };
        let csv = fig11_csv(&r);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("benchmark,instances,energy_saving,speedup")
        );
        assert_eq!(lines.next(), Some("433.milc,2,0.123456,1.250000"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn written_summary_formats() {
        let s = written_summary(&["a.csv".into(), "b.csv".into()]);
        assert!(s.contains("2 CSV"));
        assert!(s.contains("a.csv"));
    }
}
