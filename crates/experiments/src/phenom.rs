//! §IV-B2 / §IV-C2 — validation on the AMD Phenom™ II X6 1090T.
//!
//! The paper re-validates its models on a second platform using
//! PARSEC and NPB: dynamic-model AAE 8.2/7.3/7.1% at VF4–VF2, chip
//! model 3.6/3.1/2.6%; cross-VF prediction between VF4/VF3/VF2
//! averages 5.6% (dynamic) and 3.1% (chip).

use crate::common::{Context, CvMachinery, Scale, TraceStore};
use ppep_models::chip_power::ChipPowerModel;
use ppep_rig::TrainingRig;
use ppep_types::{Result, VfStateId};
use ppep_workloads::combos::{npb_runs, parsec_runs};
use ppep_workloads::WorkloadSpec;

/// The experiment's result.
#[derive(Debug, Clone)]
pub struct PhenomResult {
    /// `(vf, dynamic AAE, chip AAE)` per validated VF state, slowest
    /// first.
    pub per_vf: Vec<(VfStateId, f64, f64)>,
    /// Overall cross-VF dynamic prediction error.
    pub cross_dynamic: f64,
    /// Overall cross-VF chip prediction error.
    pub cross_chip: f64,
}

fn phenom_roster(ctx: &Context) -> Vec<WorkloadSpec> {
    // PARSEC + NPB only (§IV-B2), capped to the 6-core chip.
    let mut roster: Vec<WorkloadSpec> = parsec_runs(ctx.seed)
        .into_iter()
        .chain(npb_runs(ctx.seed))
        .filter(|w| w.thread_count() <= 6)
        .collect();
    if ctx.scale == Scale::Quick {
        roster = roster.into_iter().step_by(6).take(10).collect();
    }
    roster
}

/// Runs the Phenom II validation.
///
/// # Errors
///
/// Propagates fitting and prediction errors.
pub fn run(ctx_fx: &Context) -> Result<PhenomResult> {
    // Build a Phenom context at the same scale/seed.
    let ctx = Context::phenom_ii_x6(ctx_fx.scale, ctx_fx.seed).with_jobs(ctx_fx.jobs);
    let table = ctx.rig.config().topology.vf_table().clone();
    let budget = ctx.scale.budget();
    let roster = phenom_roster(&ctx);
    let vfs: Vec<VfStateId> = table.states().collect();
    let store = TraceStore::collect_sharded(&ctx.rig, &roster, &vfs, &budget, ctx.jobs);
    let cv = CvMachinery::build(&ctx.rig, &store, &budget, ctx.scale.folds())?;

    let mut fold_models = Vec::with_capacity(cv.folds.k());
    for fold in 0..cv.folds.k() {
        let dynamic = cv.fit_fold(fold, &ctx.rig, &store)?;
        fold_models.push(ChipPowerModel::new(cv.idle.clone(), dynamic));
    }

    // Same-state validation per VF.
    let mut per_vf = Vec::new();
    for vf in table.states() {
        let voltage = table.point(vf).voltage;
        let mut dyn_errs = Vec::new();
        let mut chip_errs = Vec::new();
        for (index, name) in cv.names.iter().enumerate() {
            let model = cv.fold_model(&fold_models, index)?;
            let Some(trace) = store.get(name, vf) else {
                continue;
            };
            for record in &trace.records {
                let idle_w = cv.idle.estimate(voltage, record.temperature)?.as_watts();
                let measured = record.measured_power.as_watts();
                let sample = TrainingRig::dyn_sample_from(record, &cv.idle, &table)?;
                let est = model
                    .dynamic_model()
                    .estimate_core(&sample.rates, voltage)?
                    .as_watts();
                let measured_dyn = measured - idle_w;
                if measured_dyn > 0.5 {
                    dyn_errs.push((est - measured_dyn).abs() / measured_dyn);
                }
                chip_errs.push((idle_w + est - measured).abs() / measured);
            }
        }
        per_vf.push((
            vf,
            ppep_regress::stats::mean(&dyn_errs),
            ppep_regress::stats::mean(&chip_errs),
        ));
    }

    // Cross-VF between the middle states (paper: VF4/VF3/VF2).
    let cross_states: Vec<VfStateId> = table.states().skip(1).collect();
    let mut cross_dyn = Vec::new();
    let mut cross_chip = Vec::new();
    for &from in &cross_states {
        for &to in &cross_states {
            for (index, name) in cv.names.iter().enumerate() {
                let model = cv.fold_model(&fold_models, index)?;
                let (Some(src), Some(dst)) = (store.get(name, from), store.get(name, to)) else {
                    continue;
                };
                let mut pred = 0.0;
                for r in &src.records {
                    pred += model
                        .predict_chip(&r.samples, from, to, &table, r.temperature)?
                        .as_watts();
                }
                pred /= src.records.len() as f64;
                let meas = dst
                    .records
                    .iter()
                    .map(|r| r.measured_power.as_watts())
                    .sum::<f64>()
                    / dst.records.len() as f64;
                cross_chip.push((pred - meas).abs() / meas);
                // Dynamic-only comparison.
                let v_to = table.point(to).voltage;
                let mut pred_dyn = 0.0;
                for r in &src.records {
                    pred_dyn += model
                        .predict_dynamic(&r.samples, from, to, &table)?
                        .as_watts();
                }
                pred_dyn /= src.records.len() as f64;
                let mut meas_dyn = 0.0;
                for r in &dst.records {
                    meas_dyn += r.measured_power.as_watts()
                        - cv.idle.estimate(v_to, r.temperature)?.as_watts();
                }
                meas_dyn /= dst.records.len() as f64;
                if meas_dyn > 0.5 {
                    cross_dyn.push((pred_dyn - meas_dyn).abs() / meas_dyn);
                }
            }
        }
    }

    Ok(PhenomResult {
        per_vf,
        cross_dynamic: ppep_regress::stats::mean(&cross_dyn),
        cross_chip: ppep_regress::stats::mean(&cross_chip),
    })
}

/// Prints the Phenom II validation summary.
pub fn print(result: &PhenomResult) {
    println!("== §IV-B2/C2: AMD Phenom II X6 1090T validation ==");
    let rows: Vec<Vec<String>> = result
        .per_vf
        .iter()
        .rev()
        .map(|(vf, d, c)| {
            vec![
                vf.to_string(),
                crate::common::pct(*d),
                crate::common::pct(*c),
            ]
        })
        .collect();
    crate::common::print_table(&["VF", "dynamic AAE", "chip AAE"], &rows);
    println!(
        "cross-VF (upper three states): dynamic {} (paper 5.6%)  chip {} (paper 3.1%)",
        crate::common::pct(result.cross_dynamic),
        crate::common::pct(result.cross_chip)
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::DEFAULT_SEED;

    #[test]
    fn models_generalise_to_the_second_platform() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let r = run(&ctx).unwrap();
        assert_eq!(r.per_vf.len(), 4, "Phenom has four VF states");
        for (vf, dyn_aae, chip_aae) in &r.per_vf {
            assert!(*chip_aae < *dyn_aae, "{vf}: chip must beat dynamic");
            assert!(*chip_aae < 0.12, "{vf} chip AAE {chip_aae}");
        }
        assert!(r.cross_chip < 0.12, "cross chip {}", r.cross_chip);
        assert!(r.cross_chip < r.cross_dynamic);
    }
}
