//! Minimal ASCII charts for trace-style figures (Figs. 1 and 7).
//!
//! The experiment binary is a terminal program; a coarse chart beside
//! the numeric table makes the heat/cool transient and the capping
//! square-wave legible at a glance. CSV export (`--out`) remains the
//! path for real plots.

/// Renders a single-row sparkline using the eight block glyphs.
///
/// Values are min-max normalised; an empty slice renders empty, and a
/// constant series renders mid-height.
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let Some((min, max)) = crate::common::series_range(values) else {
        return String::new();
    };
    let span = max - min;
    values
        .iter()
        .map(|v| {
            let t = if span > 0.0 { (v - min) / span } else { 0.5 };
            GLYPHS[((t * 7.0).round() as usize).min(7)]
        })
        .collect()
}

/// Downsamples a series to at most `width` points by averaging each
/// bucket — so long traces fit one terminal row without aliasing away
/// level shifts.
pub fn downsample(values: &[f64], width: usize) -> Vec<f64> {
    assert!(width > 0, "chart width must be positive");
    if values.len() <= width {
        return values.to_vec();
    }
    let mut out = Vec::with_capacity(width);
    for b in 0..width {
        let start = b * values.len() / width;
        let end = (((b + 1) * values.len()) / width).max(start + 1);
        let bucket = &values[start..end.min(values.len())];
        out.push(bucket.iter().sum::<f64>() / bucket.len() as f64);
    }
    out
}

/// A labelled sparkline with its min/max range, ready to print.
pub fn chart_row(label: &str, values: &[f64], width: usize) -> String {
    let Some((min, max)) = crate::common::series_range(values) else {
        return format!("{label:<12} (empty)");
    };
    let ds = downsample(values, width);
    format!("{label:<12} {} [{min:.1} … {max:.1}]", sparkline(&ds))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[2], '█');
        assert!(chars[1] > chars[0] && chars[1] < chars[2]);
    }

    #[test]
    fn sparkline_edge_cases() {
        assert_eq!(sparkline(&[]), "");
        // Constant series: mid-height everywhere.
        let s = sparkline(&[3.0, 3.0, 3.0]);
        assert!(s.chars().all(|c| c == '▅' || c == '▄'));
    }

    #[test]
    fn downsample_preserves_level_shift() {
        // 100 low values then 100 high ones -> first half of buckets
        // low, second half high.
        let mut v = vec![1.0; 100];
        v.extend(vec![9.0; 100]);
        let ds = downsample(&v, 10);
        assert_eq!(ds.len(), 10);
        assert!(ds[..5].iter().all(|x| *x < 2.0));
        assert!(ds[5..].iter().all(|x| *x > 8.0));
        // Short series pass through untouched.
        assert_eq!(downsample(&[1.0, 2.0], 10), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let _ = downsample(&[1.0], 0);
    }

    #[test]
    fn chart_row_includes_range() {
        let row = chart_row("power", &[10.0, 20.0, 30.0], 40);
        assert!(row.starts_with("power"));
        assert!(row.contains("[10.0 … 30.0]"));
        assert_eq!(chart_row("x", &[], 10), "x            (empty)");
    }
}
