//! Accuracy-watch — replay a recorded trace with a
//! [`PredictionScorer`] attached and render the prediction-accuracy
//! scorecard (beyond the paper's figures; §IV's headline numbers are
//! ~2.7% CPI and ~4.6% power error, and this watches the repro's own
//! predictor for regressions and drift).
//!
//! The trace replays through the full supervised daemon: each
//! interval's projection is staged for the chosen VF state and scored
//! against the *next* interval's measured CPI and power, exactly the
//! online scoring path `PpepDaemon` runs in production. The result is
//! a per-core/per-quantity scorecard (ASCII table, JSONL, and
//! `BENCH_accuracy.json`), and — for clean traces — a gate: a mean
//! CPI error past [`CLEAN_CPI_GATE_PCT`] exits nonzero, so CI catches
//! a predictor regression the moment it lands.
//!
//! Storm traces are scored too, but not gated on accuracy: corrupted
//! measurements *should* blow the error up. There the interesting
//! output is the drift column — the trip-wire firing for the faulted
//! core is the feature under test.

use crate::common::{print_table, Context, Scale};
use crate::fig07_capping::cap_schedule;
use ppep_core::daemon::PpepDaemon;
use ppep_core::resilient::{ResilientDaemon, SupervisorConfig};
use ppep_core::Ppep;
use ppep_dvfs::capping::OneStepCapping;
use ppep_obs::{ErrorTrack, PredictionScorer, ScorerConfig};
use ppep_sim::chip::{ChipSimulator, SimConfig};
use ppep_sim::fault::FaultPlan;
use ppep_sim::SimPlatform;
use ppep_telemetry::{RecordingPlatform, ReplayPlatform, TraceReader};
use ppep_types::{Error, Result, Watts};
use ppep_workloads::combos::fig7_workload;

/// The clean-trace accuracy gate, percent mean CPI APE. The replayed
/// clean fixture scores a low-single-digit mean (the simulator is the
/// training distribution); 10% leaves headroom for model tweaks while
/// still catching a broken predictor or scoring path outright.
pub const CLEAN_CPI_GATE_PCT: f64 = 10.0;

/// One scored quantity's row in the scorecard.
#[derive(Debug, Clone)]
pub struct TrackRow {
    /// `core<N>` or `power`.
    pub label: String,
    /// Scored predicted-vs-measured pairs.
    pub scored: u64,
    /// Pairs skipped as unscorable (missing / non-finite / ~zero).
    pub invalid: u64,
    /// Mean APE, percent.
    pub mean_pct: f64,
    /// Bucket-resolution p99 APE, percent.
    pub p99_pct: f64,
    /// Worst APE, percent.
    pub max_pct: f64,
    /// Short (reactive) error EWMA, percent.
    pub ewma_pct: f64,
    /// Long (baseline) error EWMA, percent.
    pub baseline_pct: f64,
    /// Whether the drift trip-wire is currently tripped.
    pub drifted: bool,
    /// Rising-edge drift trips.
    pub trips: u64,
}

fn row(label: String, t: &ErrorTrack) -> TrackRow {
    TrackRow {
        label,
        scored: t.scored(),
        invalid: t.invalid(),
        mean_pct: t.mean_pct(),
        p99_pct: t.percentile_pct(0.99),
        max_pct: t.max_pct(),
        ewma_pct: t.drift().short_pct(),
        baseline_pct: t.drift().baseline_pct(),
        drifted: t.drift().tripped(),
        trips: t.drift().trips(),
    }
}

/// The experiment's result.
#[derive(Debug, Clone)]
pub struct AccuracyWatchResult {
    /// Where the trace came from (a path, or `synthesized`).
    pub source: String,
    /// Measured intervals the trace holds.
    pub intervals: usize,
    /// Fault lines the trace holds (0 for a clean trace).
    pub faults: usize,
    /// Whether the trace is clean (no fault lines) — gated if so.
    pub clean: bool,
    /// Per-core rows, then the chip-power row.
    pub rows: Vec<TrackRow>,
    /// Mean CPI APE across every scored core observation, percent.
    pub mean_cpi_pct: f64,
    /// Mean chip-power APE, percent.
    pub power_mean_pct: f64,
    /// Staged predictions dropped without a matching measurement.
    pub stale_drops: u64,
    /// Rising-edge drift trips across all tracks.
    pub drift_trips: u64,
    /// The gate threshold applied to clean traces, percent.
    pub gate_pct: f64,
}

impl AccuracyWatchResult {
    /// Whether the clean-trace gate passes (storm traces always pass:
    /// their errors are the fault injector's doing, not the model's).
    pub fn gate_passed(&self) -> bool {
        !self.clean || self.mean_cpi_pct <= self.gate_pct
    }

    /// Enforces the gate.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] when a clean trace's mean CPI error
    /// regressed past [`CLEAN_CPI_GATE_PCT`].
    pub fn gate(&self) -> Result<()> {
        if self.gate_passed() {
            Ok(())
        } else {
            Err(Error::InvalidInput(format!(
                "accuracy gate: clean-trace mean CPI error {:.2}% exceeds the {:.1}% baseline",
                self.mean_cpi_pct, self.gate_pct
            )))
        }
    }

    /// The scorecard as JSON Lines, one object per track.
    pub fn scorecard_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.rows {
            out.push_str(&format!(
                "{{\"track\":\"{}\",\"scored\":{},\"invalid\":{},\"mean_pct\":{:.6},\
                 \"p99_pct\":{:.6},\"max_pct\":{:.6},\"ewma_pct\":{:.6},\
                 \"baseline_pct\":{:.6},\"drifted\":{},\"trips\":{}}}\n",
                r.label,
                r.scored,
                r.invalid,
                r.mean_pct,
                r.p99_pct,
                r.max_pct,
                r.ewma_pct,
                r.baseline_pct,
                r.drifted,
                r.trips,
            ));
        }
        out
    }

    /// The benchmark artifact (`BENCH_accuracy.json`).
    pub fn bench_json(&self) -> String {
        format!(
            "{{\"source\":\"{}\",\"intervals\":{},\"faults\":{},\"clean\":{},\
             \"mean_cpi_err_pct\":{:.6},\"power_err_pct\":{:.6},\"stale_drops\":{},\
             \"drift_trips\":{},\"gate_pct\":{:.1},\"gate_passed\":{}}}",
            self.source.replace('"', "'"),
            self.intervals,
            self.faults,
            self.clean,
            self.mean_cpi_pct,
            self.power_mean_pct,
            self.stale_drops,
            self.drift_trips,
            self.gate_pct,
            self.gate_passed(),
        )
    }
}

/// Records a capping run in-memory with the same recipe as the
/// committed golden fixtures (fig. 7 workload, square-wave cap,
/// period 4), under the given fault plan.
pub fn record_run(
    ctx: &Context,
    ppep: &Ppep,
    steps: usize,
    plan: &FaultPlan,
) -> Result<TraceReader> {
    let mut sim = ChipSimulator::new(SimConfig::fx8320_pg(ctx.seed));
    sim.load_workload(&fig7_workload(ctx.seed));
    sim.set_fault_plan(plan.clone());
    let recording = RecordingPlatform::new(SimPlatform::new(sim));
    let table = ppep.models().vf_table().clone();
    let controller = OneStepCapping::new(ppep.clone(), cap_schedule(0, 4));
    let inner = PpepDaemon::new(ppep.clone(), recording, controller);
    let mut daemon = ResilientDaemon::new(inner, SupervisorConfig::new(table.lowest()));
    for step in 0..steps {
        daemon
            .inner_mut()
            .controller_mut()
            .set_cap(cap_schedule(step, 4));
        daemon.step()?;
    }
    TraceReader::parse(daemon.inner().platform().trace_jsonl())
}

/// Replays `trace` under the supervised capping daemon with a scorer
/// attached and returns the final scorer plus its stale-drop count.
fn score_trace(ppep: &Ppep, trace: &TraceReader) -> Result<PredictionScorer> {
    let steps = trace.interval_count() + trace.fault_count();
    // Follow the trace's own recorded cap schedule where it has one;
    // fall back to the fixtures' square wave.
    let caps: Vec<Option<Watts>> = trace.decisions().map(|d| d.cap).collect();
    let table = ppep.models().vf_table().clone();
    let controller = OneStepCapping::new(ppep.clone(), cap_schedule(0, 4));
    let replay = ReplayPlatform::new(trace.clone());
    let inner =
        PpepDaemon::new(ppep.clone(), replay, controller).with_scorer(ScorerConfig::default());
    let mut daemon = ResilientDaemon::new(inner, SupervisorConfig::new(table.lowest()));
    for step in 0..steps {
        let cap = caps
            .get(step)
            .copied()
            .flatten()
            .unwrap_or_else(|| cap_schedule(step, 4));
        daemon.inner_mut().controller_mut().set_cap(cap);
        daemon.step()?;
    }
    daemon
        .inner()
        .scorer()
        .cloned()
        .ok_or_else(|| Error::InvalidInput("accuracy-watch: scorer vanished".into()))
}

/// Runs the watch over `trace` (name, bytes), or over a synthesized
/// clean capping recording when `trace` is `None`.
///
/// # Errors
///
/// Training failures, malformed traces, and non-transient replay
/// errors.
pub fn run(ctx: &Context, trace: Option<(&str, &[u8])>) -> Result<AccuracyWatchResult> {
    let models = ctx.train_models()?;
    let ppep = ctx.engine(models);
    let (source, reader) = match trace {
        Some((name, bytes)) => (name.to_string(), TraceReader::parse_any(bytes)?),
        None => {
            let steps = match ctx.scale {
                Scale::Full => 96,
                Scale::Quick => 24,
            };
            (
                "synthesized".to_string(),
                record_run(ctx, &ppep, steps, &FaultPlan::none())?,
            )
        }
    };
    let intervals = reader.interval_count();
    let faults = reader.fault_count();
    let scorer = score_trace(&ppep, &reader)?;

    let mut rows: Vec<TrackRow> = scorer
        .cores()
        .iter()
        .enumerate()
        .map(|(i, t)| row(format!("core{i}"), t))
        .collect();
    rows.push(row("power".to_string(), scorer.power()));
    let drift_trips = rows.iter().map(|r| r.trips).sum();

    Ok(AccuracyWatchResult {
        source,
        intervals,
        faults,
        clean: faults == 0,
        rows,
        mean_cpi_pct: scorer.mean_cpi_pct(),
        power_mean_pct: scorer.power().mean_pct(),
        stale_drops: scorer.stale_drops(),
        drift_trips,
        gate_pct: CLEAN_CPI_GATE_PCT,
    })
}

/// Prints the scorecard table and the gate verdict.
pub fn print(result: &AccuracyWatchResult) {
    println!("== Accuracy-watch: prediction error scorecard ==");
    println!(
        "trace {} ({} intervals, {} faults, {}), {} stale-dropped predictions",
        result.source,
        result.intervals,
        result.faults,
        if result.clean { "clean" } else { "storm" },
        result.stale_drops,
    );
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.scored.to_string(),
                r.invalid.to_string(),
                format!("{:.2}", r.mean_pct),
                format!("{:.2}", r.p99_pct),
                format!("{:.2}", r.max_pct),
                format!("{:.2}", r.ewma_pct),
                format!("{:.2}", r.baseline_pct),
                if r.drifted {
                    format!("TRIPPED x{}", r.trips)
                } else if r.trips > 0 {
                    format!("ok x{}", r.trips)
                } else {
                    "ok".to_string()
                },
            ]
        })
        .collect();
    print_table(
        &[
            "track", "scored", "invalid", "mean %", "p99 %", "max %", "ewma %", "base %", "drift",
        ],
        &rows,
    );
    println!(
        "mean CPI err {:.2}% / mean power err {:.2}% / {} drift trips",
        result.mean_cpi_pct, result.power_mean_pct, result.drift_trips
    );
    if result.clean {
        println!(
            "clean-trace gate ({:.1}%): {}",
            result.gate_pct,
            if result.gate_passed() { "PASS" } else { "FAIL" }
        );
    } else {
        println!("storm trace: accuracy gate not applied (errors are injected)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::DEFAULT_SEED;

    fn fixture(name: &str) -> Vec<u8> {
        let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../tests/fixtures")
            .join(name);
        std::fs::read(path).expect("fixture exists")
    }

    #[test]
    fn clean_fixture_scores_under_the_gate() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let bytes = fixture("capping_clean.jsonl");
        let r = run(&ctx, Some(("capping_clean.jsonl", &bytes))).unwrap();
        assert!(r.clean);
        assert_eq!(r.intervals, 12);
        // 12 intervals -> 11 scored (the first has no staged prediction).
        let power = r.rows.last().unwrap();
        assert_eq!(power.label, "power");
        assert!(power.scored >= 10, "power scored {}", power.scored);
        assert!(r.mean_cpi_pct > 0.0, "scoring must have happened");
        r.gate().expect("clean fixture passes the accuracy gate");
        let jsonl = r.scorecard_jsonl();
        assert_eq!(jsonl.lines().count(), r.rows.len());
        assert!(r.bench_json().contains("\"gate_passed\":true"));
    }

    #[test]
    fn storm_fixture_is_scored_but_never_gated() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let bytes = fixture("capping_storm.jsonl");
        let r = run(&ctx, Some(("capping_storm.jsonl", &bytes))).unwrap();
        assert!(!r.clean);
        assert!(r.faults > 0);
        assert!(r.gate_passed(), "storm traces are informational");
        // The storm's fault lines mean some staged predictions never
        // met a measurement.
        assert!(r.stale_drops > 0, "stale drops {}", r.stale_drops);
        print(&r);
    }

    #[test]
    fn sustained_storm_trips_the_drift_wire() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let ppep = ctx.engine(ctx.train_models().unwrap());
        // Long enough for the drift detector to arm (min_samples) and
        // a corruption rate high enough that stuck/spiked sensor
        // readings dominate the short error EWMA.
        let plan = FaultPlan::storm(0xF00D, 96, 0.3, 8);
        let trace = record_run(&ctx, &ppep, 96, &plan).unwrap();
        let scorer = score_trace(&ppep, &trace).unwrap();
        let trips: u64 = scorer
            .cores()
            .iter()
            .map(|t| t.drift().trips())
            .chain(std::iter::once(scorer.power().drift().trips()))
            .sum();
        assert!(
            trips > 0,
            "a sustained corrupting storm must trip drift (cpi ewma {:.2}%, power ewma {:.2}%)",
            scorer
                .cores()
                .iter()
                .map(|t| t.drift().short_pct())
                .fold(0.0, f64::max),
            scorer.power().drift().short_pct(),
        );
    }

    #[test]
    fn synthesized_trace_runs_when_no_fixture_is_given() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let r = run(&ctx, None).unwrap();
        assert_eq!(r.source, "synthesized");
        assert!(r.clean);
        assert_eq!(r.intervals, 24);
        r.gate().expect("synthesized clean run passes");
    }
}
