//! Trace record/replay round trip — the platform-abstraction
//! demonstrator (beyond the paper's figures).
//!
//! A supervised Fig. 7 capping run (with a mild fault storm, so the
//! degraded paths are exercised) executes twice:
//!
//! 1. **Record** — the daemon drives a live [`SimPlatform`] wrapped in
//!    a [`RecordingPlatform`], which appends every sample, fault,
//!    applied assignment, and controller decision to a JSONL trace.
//! 2. **Replay** — a fresh daemon with the same trained engine and
//!    controller drives a [`ReplayPlatform`] built from that trace, in
//!    strict mode: every `apply` must reproduce the recorded
//!    assignment, position by position.
//!
//! Because the trace serializes every `f64` with shortest-exact
//! formatting, the replayed decisions must be bit-identical to the
//! live run's — any divergence fails the experiment.
//!
//! The run also transcodes the trace to the v2 binary framing
//! (`ppep_telemetry::binary`) and verifies the transcode is lossless;
//! the test suite additionally gates on the v2 document being at
//! least 5x smaller than the v1 JSONL.

use crate::common::{Context, Scale};
use crate::fig07_capping::cap_schedule;
use ppep_core::daemon::PpepDaemon;
use ppep_core::resilient::{ResilientDaemon, SupervisorConfig};
use ppep_core::{Platform, Ppep};
use ppep_dvfs::capping::OneStepCapping;
use ppep_sim::chip::{ChipSimulator, SimConfig};
use ppep_sim::fault::FaultPlan;
use ppep_sim::SimPlatform;
use ppep_telemetry::{RecordingPlatform, ReplayPlatform, TraceReader};
use ppep_types::{Error, Result, VfStateId};
use ppep_workloads::combos::fig7_workload;

/// The experiment's result.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// Intervals driven in each run.
    pub intervals: usize,
    /// Successful samples in the recorded trace.
    pub trace_intervals: usize,
    /// Faulted samples in the recorded trace.
    pub trace_faults: usize,
    /// Whether the replayed decisions matched the live run's
    /// bit-for-bit (they must).
    pub identical: bool,
    /// The recorded trace document (JSON Lines).
    pub trace_jsonl: String,
    /// Size of the v1 JSONL document in bytes.
    pub v1_bytes: usize,
    /// Size of the same trace in v2 binary framing.
    pub v2_bytes: usize,
}

impl ReplayResult {
    /// How many times smaller the v2 binary document is.
    pub fn v2_ratio(&self) -> f64 {
        if self.v2_bytes == 0 {
            0.0
        } else {
            self.v1_bytes as f64 / self.v2_bytes as f64
        }
    }
}

/// A recorded supervised capping run: the trace plus the run's shape.
#[derive(Debug, Clone)]
pub struct RecordedCapping {
    /// The recorded trace document (JSON Lines).
    pub trace_jsonl: String,
    /// Intervals driven.
    pub intervals: usize,
    /// Cap-schedule period (intervals per cap phase).
    pub period: usize,
    /// The live run's per-interval decisions.
    pub live_decisions: Vec<Vec<VfStateId>>,
}

/// The per-interval decisions of a driven run, plus the daemon (so the
/// caller can take its platform back).
type DrivenRun<P> = (Vec<Vec<VfStateId>>, ResilientDaemon<P, OneStepCapping>);

/// Drives one supervised capping run over `platform`, returning the
/// per-interval decisions and the daemon's platform back.
fn drive<P: Platform>(
    ppep: &Ppep,
    platform: P,
    intervals: usize,
    period: usize,
) -> Result<DrivenRun<P>> {
    let table = ppep.models().vf_table().clone();
    let controller = OneStepCapping::new(ppep.clone(), cap_schedule(0, period));
    let inner = PpepDaemon::new(ppep.clone(), platform, controller);
    let mut daemon = ResilientDaemon::new(inner, SupervisorConfig::new(table.lowest()));
    let mut decisions = Vec::with_capacity(intervals);
    for step in 0..intervals {
        daemon
            .inner_mut()
            .controller_mut()
            .set_cap(cap_schedule(step, period));
        let s = daemon.step()?;
        decisions.push(s.decision);
    }
    Ok((decisions, daemon))
}

/// Records one supervised Fig. 7 capping run (with the standard mild
/// fault storm) over a live simulator, returning the JSONL trace.
///
/// This is the shared recording path of the `replay` and
/// `diff-policies` experiments: both want the same live run, one to
/// strict-replay it and one to diff controllers over it.
///
/// # Errors
///
/// Propagates non-transient daemon errors.
pub fn record(ctx: &Context, ppep: &Ppep) -> Result<RecordedCapping> {
    let intervals = match ctx.scale {
        Scale::Full => 240,
        Scale::Quick => 48,
    };
    let period = intervals / 6;
    let cores = ppep.models().topology().core_count();
    let plan = FaultPlan::storm(ctx.seed ^ 0x5EED_7ACE, intervals as u64, 0.05, cores);

    let mut sim = ChipSimulator::new(SimConfig::fx8320_pg(ctx.seed));
    sim.load_workload(&fig7_workload(ctx.seed));
    sim.set_fault_plan(plan);
    let recording = RecordingPlatform::new(SimPlatform::new(sim));
    let (live_decisions, daemon) = drive(ppep, recording, intervals, period)?;
    let trace_jsonl = daemon.inner().platform().trace_jsonl().to_string();
    Ok(RecordedCapping {
        trace_jsonl,
        intervals,
        period,
        live_decisions,
    })
}

/// Records a live run and replays it strictly.
///
/// # Errors
///
/// Propagates training errors, non-transient daemon errors,
/// strict-replay divergence, and v2 transcode lossiness.
pub fn run(ctx: &Context) -> Result<ReplayResult> {
    let models = ctx.train_models()?;
    let ppep = ctx.engine(models);
    let recorded = record(ctx, &ppep)?;
    let RecordedCapping {
        trace_jsonl,
        intervals,
        period,
        live_decisions: live,
    } = recorded;

    // Transcode to the v2 binary framing and verify losslessness.
    let trace = TraceReader::parse(&trace_jsonl)?;
    let v2 = ppep_telemetry::binary::encode(&trace);
    let back = ppep_telemetry::binary::decode(&v2)?;
    if back.to_jsonl() != trace.to_jsonl() {
        return Err(Error::InvalidInput(
            "v2 binary transcode is not lossless".into(),
        ));
    }
    let (v1_bytes, v2_bytes) = (trace_jsonl.len(), v2.len());

    // Replay, strictly: every apply must match the recorded one.
    let (trace_intervals, trace_faults) = (trace.interval_count(), trace.fault_count());
    let replay = ReplayPlatform::new(trace).strict();
    let (replayed, _) = drive(&ppep, replay, intervals, period)?;

    Ok(ReplayResult {
        intervals,
        trace_intervals,
        trace_faults,
        identical: live == replayed,
        trace_jsonl,
        v1_bytes,
        v2_bytes,
    })
}

/// Prints the round-trip verdict.
pub fn print(result: &ReplayResult) {
    println!("== Replay: record -> JSONL -> strict replay round trip ==");
    println!(
        "{} intervals driven; trace holds {} samples + {} faults \
         ({} KiB of JSONL)",
        result.intervals,
        result.trace_intervals,
        result.trace_faults,
        result.trace_jsonl.len() / 1024,
    );
    println!(
        "v2 binary framing: {} bytes vs {} bytes of JSONL \
         ({:.2}x smaller, lossless)",
        result.v2_bytes,
        result.v1_bytes,
        result.v2_ratio(),
    );
    println!(
        "replayed decisions {}",
        if result.identical {
            "bit-identical to the live run"
        } else {
            "DIVERGED from the live run"
        }
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::DEFAULT_SEED;

    #[test]
    fn replay_reproduces_the_live_run() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let r = run(&ctx).unwrap();
        assert!(r.identical, "replayed decisions must match the live run");
        assert_eq!(r.intervals, 48);
        assert!(r.trace_faults > 0, "the storm must exercise fault lines");
        assert_eq!(r.trace_intervals + r.trace_faults, r.intervals);
        assert!(r.trace_jsonl.lines().count() > r.intervals);
        // The v2 binary framing must deliver at least the 5x size cut
        // it was designed for on this (decision-bearing) trace.
        assert!(
            r.v2_ratio() >= 5.0,
            "v2 must be >=5x smaller than v1: v1 {} bytes, v2 {} bytes ({:.2}x)",
            r.v1_bytes,
            r.v2_bytes,
            r.v2_ratio()
        );
    }
}
