//! Fig. 6 — next-interval energy prediction error at VF5 for the 61
//! SPEC combinations: PPEP versus Green Governors.
//!
//! Paper numbers: PPEP 3.6% average AAE at VF5 (and 3.3 / 3.7 / 4.0 /
//! 4.9% at VF4–VF1); Green Governors about 7%.

use crate::common::Context;
use ppep_core::energy::EnergyPredictor;
use ppep_types::{Result, VfStateId};
use ppep_workloads::combos::spec_combos;

/// Per-combo energy prediction error at VF5.
#[derive(Debug, Clone)]
pub struct ComboEnergyError {
    /// Combination name (the Fig. 6 x-axis label).
    pub name: String,
    /// PPEP's AAE.
    pub ppep: f64,
    /// Green Governors' AAE.
    pub green_governors: f64,
}

/// The experiment's result.
#[derive(Debug, Clone)]
pub struct Fig06Result {
    /// Per-combo errors at VF5, in Fig. 6 order.
    pub combos: Vec<ComboEnergyError>,
    /// PPEP average at VF5 (paper: 3.6%).
    pub ppep_avg: f64,
    /// Green Governors average at VF5 (paper: ~7%).
    pub gg_avg: f64,
    /// PPEP average per VF state, slowest first (paper VF4..VF1:
    /// 3.3/3.7/4.0/4.9%).
    pub ppep_per_vf: Vec<(VfStateId, f64)>,
}

/// Runs the Fig. 6 study.
///
/// # Errors
///
/// Propagates training and prediction errors.
pub fn run(ctx: &Context) -> Result<Fig06Result> {
    let models = ctx.train_models()?;
    let predictor = EnergyPredictor::new(models);
    let table = ctx.rig.config().topology.vf_table().clone();
    let budget = {
        let mut b = ctx.scale.budget();
        b.record_intervals = b.record_intervals.max(10);
        b
    };
    let roster = match ctx.scale {
        crate::common::Scale::Full => spec_combos(ctx.seed),
        crate::common::Scale::Quick => spec_combos(ctx.seed)
            .into_iter()
            .step_by(7)
            .take(8)
            .collect(),
    };

    // VF5 per-combo comparison (the traces shard across workers; the
    // error evaluation stays on this thread).
    let vf5 = table.highest();
    let (traces, _obs) = crate::fleet::map_indexed(roster.len(), ctx.jobs, |i, _| {
        ctx.rig.collect_run(&roster[i], vf5, &budget)
    });
    let mut combos = Vec::new();
    for (spec, trace) in roster.iter().zip(&traces) {
        let (ppep_errs, gg_errs) = predictor.trace_errors(&trace.records)?;
        combos.push(ComboEnergyError {
            name: spec.name().to_string(),
            ppep: ppep_regress::stats::mean(&ppep_errs),
            green_governors: ppep_regress::stats::mean(&gg_errs),
        });
    }
    let ppep_avg = ppep_regress::stats::mean(&combos.iter().map(|c| c.ppep).collect::<Vec<_>>());
    let gg_avg =
        ppep_regress::stats::mean(&combos.iter().map(|c| c.green_governors).collect::<Vec<_>>());

    // PPEP per-VF averages on a reduced roster (the paper reports one
    // number per state).
    let sub_roster: Vec<_> = roster.iter().step_by(4).cloned().collect();
    let states: Vec<VfStateId> = table.states().collect();
    let cells = states.len() * sub_roster.len();
    let (vf_traces, _obs) = crate::fleet::map_indexed(cells, ctx.jobs, |index, _| {
        let vf = states[index / sub_roster.len().max(1)];
        let spec = &sub_roster[index % sub_roster.len().max(1)];
        ctx.rig.collect_run(spec, vf, &budget)
    });
    let mut ppep_per_vf = Vec::new();
    for (row, &vf) in states.iter().enumerate() {
        let mut errs = Vec::new();
        for trace in vf_traces
            .iter()
            .skip(row * sub_roster.len())
            .take(sub_roster.len())
        {
            let (p, _) = predictor.trace_errors(&trace.records)?;
            errs.extend(p);
        }
        ppep_per_vf.push((vf, ppep_regress::stats::mean(&errs)));
    }

    Ok(Fig06Result {
        combos,
        ppep_avg,
        gg_avg,
        ppep_per_vf,
    })
}

/// Prints the Fig. 6 rows.
pub fn print(result: &Fig06Result) {
    println!("== Fig. 6: next-interval energy prediction AAE at VF5 ==");
    let rows: Vec<Vec<String>> = result
        .combos
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                crate::common::pct(c.ppep),
                crate::common::pct(c.green_governors),
            ]
        })
        .collect();
    crate::common::print_table(&["combination", "PPEP", "Green Governors"], &rows);
    println!(
        "average: PPEP {} (paper 3.6%)  GG {} (paper ~7%)",
        crate::common::pct(result.ppep_avg),
        crate::common::pct(result.gg_avg)
    );
    println!("PPEP per VF state:");
    for (vf, e) in result.ppep_per_vf.iter().rev() {
        println!("  {vf}: {}", crate::common::pct(*e));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{Scale, DEFAULT_SEED};

    #[test]
    fn ppep_beats_green_governors() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let r = run(&ctx).unwrap();
        assert!(!r.combos.is_empty());
        assert!(
            r.ppep_avg < r.gg_avg,
            "PPEP {} must beat GG {}",
            r.ppep_avg,
            r.gg_avg
        );
        assert!(r.ppep_avg < 0.10, "PPEP energy AAE {}", r.ppep_avg);
        assert_eq!(r.ppep_per_vf.len(), 5);
        for (vf, e) in &r.ppep_per_vf {
            assert!(*e < 0.15, "{vf}: {e}");
        }
    }
}
