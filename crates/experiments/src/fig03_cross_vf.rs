//! Fig. 3 — power prediction **across** VF states.
//!
//! For every ordered pair `(VFi, VFj)` of the five states, power at
//! `VFj` is predicted from counters gathered at `VFi` (via the
//! hardware-event predictor) and compared against the average measured
//! power of the same combination actually running at `VFj`.
//!
//! Paper numbers: dynamic prediction 5.5–13.7% per pair, 8.3% overall
//! (SD 6.9%); chip prediction 2.7–6.3% per pair, 4.2% overall
//! (SD 3.6%). Errors grow with VF distance and toward VF1.

use crate::common::{Context, CvMachinery, SuiteErrors, TraceStore};
use ppep_models::chip_power::ChipPowerModel;
use ppep_types::{Result, VfStateId};

/// Aggregated errors of one `(from, to)` pair.
#[derive(Debug, Clone, Copy)]
pub struct PairErrors {
    /// Source state (counters gathered here).
    pub from: VfStateId,
    /// Target state (power predicted here).
    pub to: VfStateId,
    /// Dynamic-power prediction errors over all combos.
    pub dynamic: SuiteErrors,
    /// Chip-power prediction errors over all combos.
    pub chip: SuiteErrors,
}

/// The experiment's result.
#[derive(Debug, Clone)]
pub struct Fig03Result {
    /// One entry per ordered pair, in the paper's ordering (fastest
    /// source first).
    pub pairs: Vec<PairErrors>,
    /// Overall dynamic average (paper: 8.3%).
    pub dynamic_overall: f64,
    /// Overall chip average (paper: 4.2%).
    pub chip_overall: f64,
}

/// Runs the Fig. 3 study against an existing trace store.
///
/// # Errors
///
/// Propagates model errors.
pub fn run_with_store(ctx: &Context, store: &TraceStore) -> Result<Fig03Result> {
    let budget = ctx.scale.budget();
    let table = ctx.rig.config().topology.vf_table().clone();
    let cv = CvMachinery::build(&ctx.rig, store, &budget, ctx.scale.folds())?;

    let mut fold_models = Vec::with_capacity(cv.folds.k());
    for fold in 0..cv.folds.k() {
        let dynamic = cv.fit_fold(fold, &ctx.rig, store)?;
        fold_models.push(ChipPowerModel::new(cv.idle.clone(), dynamic));
    }

    let pair_list = table.state_pairs();
    let mut dyn_errors: Vec<Vec<f64>> = vec![Vec::new(); pair_list.len()];
    let mut chip_errors: Vec<Vec<f64>> = vec![Vec::new(); pair_list.len()];

    for (index, name) in cv.names.iter().enumerate() {
        let model = cv.fold_model(&fold_models, index)?;
        for (p, &(from, to)) in pair_list.iter().enumerate() {
            let (Some(src), Some(dst)) = (store.get(name, from), store.get(name, to)) else {
                continue;
            };
            // Mean predicted power at `to`, from every `from` interval.
            let mut pred_chip = 0.0;
            let mut pred_dyn = 0.0;
            for record in &src.records {
                pred_chip += model
                    .predict_chip(&record.samples, from, to, &table, record.temperature)?
                    .as_watts();
                pred_dyn += model
                    .predict_dynamic(&record.samples, from, to, &table)?
                    .as_watts();
            }
            pred_chip /= src.records.len() as f64;
            pred_dyn /= src.records.len() as f64;

            // Mean measured power (and measured dynamic) at `to`.
            let v_to = table.point(to).voltage;
            let mut meas_chip = 0.0;
            let mut meas_dyn = 0.0;
            for record in &dst.records {
                let idle = cv.idle.estimate(v_to, record.temperature)?.as_watts();
                meas_chip += record.measured_power.as_watts();
                meas_dyn += record.measured_power.as_watts() - idle;
            }
            meas_chip /= dst.records.len() as f64;
            meas_dyn /= dst.records.len() as f64;

            if meas_dyn > 0.5 {
                dyn_errors[p].push((pred_dyn - meas_dyn).abs() / meas_dyn);
            }
            chip_errors[p].push((pred_chip - meas_chip).abs() / meas_chip);
        }
    }

    let mut pairs = Vec::with_capacity(pair_list.len());
    for (p, &(from, to)) in pair_list.iter().enumerate() {
        if let (Some(dynamic), Some(chip)) = (
            SuiteErrors::of(&dyn_errors[p]),
            SuiteErrors::of(&chip_errors[p]),
        ) {
            pairs.push(PairErrors {
                from,
                to,
                dynamic,
                chip,
            });
        }
    }
    let dynamic_overall =
        ppep_regress::stats::mean(&pairs.iter().map(|p| p.dynamic.mean).collect::<Vec<_>>());
    let chip_overall =
        ppep_regress::stats::mean(&pairs.iter().map(|p| p.chip.mean).collect::<Vec<_>>());
    Ok(Fig03Result {
        pairs,
        dynamic_overall,
        chip_overall,
    })
}

/// Collects traces and runs the study.
///
/// # Errors
///
/// Propagates model errors.
pub fn run(ctx: &Context) -> Result<Fig03Result> {
    let table = ctx.rig.config().topology.vf_table().clone();
    let vfs: Vec<VfStateId> = table.states().collect();
    let store = TraceStore::collect_sharded(
        &ctx.rig,
        &ctx.scale.roster(ctx.seed),
        &vfs,
        &ctx.scale.budget(),
        ctx.jobs,
    );
    run_with_store(ctx, &store)
}

/// Prints both panels of Fig. 3.
pub fn print(result: &Fig03Result) {
    println!("== Fig. 3: power prediction across VF states ==");
    let rows: Vec<Vec<String>> = result
        .pairs
        .iter()
        .map(|p| {
            vec![
                format!("{}->{}", p.from, p.to),
                format!("{:.1}%", p.dynamic.mean * 100.0),
                format!("{:.1}%", p.dynamic.std_dev * 100.0),
                format!("{:.1}%", p.chip.mean * 100.0),
                format!("{:.1}%", p.chip.std_dev * 100.0),
            ]
        })
        .collect();
    crate::common::print_table(&["pair", "dyn AAE", "dyn SD", "chip AAE", "chip SD"], &rows);
    println!(
        "overall: dynamic {:.1}% (paper 8.3%)  chip {:.1}% (paper 4.2%)",
        result.dynamic_overall * 100.0,
        result.chip_overall * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{Scale, DEFAULT_SEED};

    #[test]
    fn fig3_shape_matches_paper() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let r = run(&ctx).unwrap();
        assert_eq!(r.pairs.len(), 25, "all ordered VF pairs");
        // Chip prediction beats dynamic prediction.
        assert!(r.chip_overall < r.dynamic_overall);
        assert!(r.chip_overall < 0.12, "chip overall {}", r.chip_overall);
        // The paper's trend: errors grow as the source state moves
        // away from the training state (VF5). Compare the mean error
        // across targets for VF5 sources versus VF1 sources.
        let source_mean = |fi: usize, pick: fn(&PairErrors) -> f64| {
            let v: Vec<f64> = r
                .pairs
                .iter()
                .filter(|p| p.from.index() == fi)
                .map(pick)
                .collect();
            ppep_regress::stats::mean(&v)
        };
        assert!(
            source_mean(0, |p| p.chip.mean) > source_mean(4, |p| p.chip.mean),
            "VF1-source chip error must exceed VF5-source: {} vs {}",
            source_mean(0, |p| p.chip.mean),
            source_mean(4, |p| p.chip.mean)
        );
        assert!(
            source_mean(0, |p| p.dynamic.mean) > source_mean(4, |p| p.dynamic.mean),
            "VF1-source dynamic error must exceed VF5-source"
        );
    }
}
