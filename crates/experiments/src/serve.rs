//! Multi-tenant serving harnesses (beyond the paper): the scripted
//! service demo, the chaos containment gate, and the load generator.
//!
//! Three subcommands on the binary drive one [`CappingService`] each:
//!
//! * `serve` — a clean scripted fleet: every tenant admitted, no
//!   faults, per-tenant health printed at the end.
//! * `serve-chaos` — the CI containment gate: a fault storm aimed at
//!   exactly one tenant; the run *fails* (nonzero exit) unless the
//!   victim visibly degrades while every survivor sustains its
//!   availability floor and the granted budget never exceeds the
//!   socket cap. `--out` additionally writes the per-tenant
//!   `serve_health.jsonl` artifact.
//! * `load-gen` — concurrent trace replay against the service,
//!   reporting sustained frame throughput and p50/p95/p99 round-trip
//!   latency (`BENCH_serve.json` under `--out`).

use crate::common::{Context, Scale};
use ppep_core::Ppep;
use ppep_serve::chaos::{self, ChaosConfig, ChaosReport};
use ppep_serve::loadgen::{self, LoadGenConfig, LoadGenReport};
use ppep_types::Result;

/// Interval counts per scale.
fn intervals(scale: Scale) -> u64 {
    match scale {
        Scale::Full => 120,
        Scale::Quick => 40,
    }
}

/// Runs the clean scripted fleet (the `serve` subcommand).
///
/// # Errors
///
/// Propagates training and service-level errors.
pub fn run_demo(ctx: &Context) -> Result<ChaosReport> {
    let ppep = Ppep::new(ctx.train_models()?);
    let mut config = ChaosConfig::smoke(ctx.seed);
    config.tenants = 4;
    config.storm_rate = 0.0; // no faults: a clean hosting run
    config.intervals = intervals(ctx.scale);
    chaos::run(&ppep, &config)
}

/// Runs the containment gate scenario (the `serve-chaos` subcommand).
///
/// # Errors
///
/// Propagates training and service-level errors; the *gate* verdict is
/// the caller's to enforce via [`ChaosReport::gate`].
pub fn run_chaos(ctx: &Context) -> Result<ChaosReport> {
    let ppep = Ppep::new(ctx.train_models()?);
    let mut config = ChaosConfig::smoke(ctx.seed);
    config.intervals = intervals(ctx.scale);
    chaos::run(&ppep, &config)
}

/// Runs the load generator (the `load-gen` subcommand). `jobs` sets
/// the concurrent client count (min 2).
///
/// # Errors
///
/// Propagates training, admission, and wire errors.
pub fn run_loadgen(ctx: &Context) -> Result<LoadGenReport> {
    let ppep = Ppep::new(ctx.train_models()?);
    let mut config = LoadGenConfig::new(ctx.seed);
    config.clients = (ctx.jobs.max(2)) as u32;
    config.intervals = intervals(ctx.scale);
    loadgen::run(&ppep, &config)
}

fn print_tenants(report: &ChaosReport) {
    println!("tenant  slot  health    avail   fresh  held  failsafe  retries  granted");
    for t in &report.tenants {
        let health = match &t.evicted {
            Some(_) => "evicted".to_string(),
            None => t.health.to_string(),
        };
        println!(
            "{:>6}  {:>4}  {:<8}  {:.3}  {:>5}  {:>4}  {:>8}  {:>7}  {}",
            t.tenant,
            t.slot,
            health,
            t.availability,
            t.fresh_decisions,
            t.held_decisions,
            t.failsafe_intervals,
            t.retries,
            t.granted,
        );
    }
}

/// Prints the clean hosting summary.
pub fn print_demo(report: &ChaosReport) {
    println!("== Multi-tenant capping service: clean hosting run ==");
    println!("{}", report.summary());
    print_tenants(report);
    println!(
        "granted budget: peak {} / final {} / socket cap {}",
        report.max_total_granted, report.final_total_granted, report.config.socket_cap
    );
}

/// Prints the chaos containment summary.
pub fn print_chaos(report: &ChaosReport) {
    println!("== Multi-tenant capping service: chaos containment gate ==");
    println!("{}", report.summary());
    print_tenants(report);
    println!(
        "victim received {} failsafe-pinned replies; granted budget peak {} / cap {}",
        report.victim_failsafe_replies, report.max_total_granted, report.config.socket_cap
    );
    match report.gate() {
        Ok(()) => println!("containment gate: PASS"),
        Err(e) => println!("containment gate: FAIL — {e}"),
    }
}

/// Prints the load-generator summary.
pub fn print_loadgen(report: &LoadGenReport) {
    println!("== Multi-tenant capping service: concurrent load generator ==");
    println!(
        "{} clients, {} frames in {:.3} s -> {:.0} frames/s ({} evictions)",
        report.clients, report.frames, report.wall_seconds, report.throughput_fps, report.evictions
    );
    println!(
        "frame round-trip: p50 {:.0} us, p95 {:.0} us, p99 {:.0} us, max {:.0} us",
        report.p50_us, report.p95_us, report.p99_us, report.max_us
    );
    println!("aggregate granted budget at end: {}", report.total_granted);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::DEFAULT_SEED;

    #[test]
    fn chaos_gate_passes_at_quick_scale() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let report = run_chaos(&ctx).expect("chaos run completes");
        report.gate().expect("containment gate holds");
        assert_eq!(report.tenants.len(), 8);
    }

    #[test]
    fn clean_demo_keeps_every_tenant_healthy() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let report = run_demo(&ctx).expect("demo run completes");
        for t in &report.tenants {
            assert!(t.evicted.is_none(), "tenant {} evicted", t.tenant);
            assert!(
                (t.availability - 1.0).abs() < 1e-9,
                "tenant {}: availability {}",
                t.tenant,
                t.availability
            );
        }
        assert!(report.max_total_granted <= report.config.socket_cap);
    }
}
