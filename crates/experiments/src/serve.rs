//! Multi-tenant serving harnesses (beyond the paper): the scripted
//! service demo, the chaos containment gate, the load generator, and
//! the sharding benchmark.
//!
//! Four subcommands on the binary drive one [`CappingService`] each:
//!
//! * `serve` — a clean scripted fleet: every tenant admitted, no
//!   faults, per-tenant health printed at the end.
//! * `serve-chaos` — the CI containment gate: a fault storm aimed at
//!   exactly one tenant; the run *fails* (nonzero exit) unless the
//!   victim visibly degrades while every survivor sustains its
//!   availability floor and the granted budget never exceeds the
//!   socket cap. `--out` additionally writes the per-tenant
//!   `serve_health.jsonl` artifact.
//! * `load-gen` — concurrent trace replay against the service,
//!   reporting sustained frame throughput and p50/p95/p99 round-trip
//!   latency (`BENCH_serve.json` under `--out`).
//! * `serve-bench` — the sharding gate: the same replay in
//!   single-lock-compat (`shards = 1`) and sharded modes; fails
//!   unless the per-tenant reply transcripts are byte-identical *and*
//!   the sharded p99 beats the single-lock p99
//!   (`BENCH_serve_shard.json` under `--out`).
//!
//! `--shards N`, `--tenants N`, and `--transport unix|tcp` override
//! the shard count, fleet size, and (for chaos/load-gen) route the
//! frames over a real socket instead of in-process calls.

use crate::common::{Context, Scale};
use ppep_serve::chaos::{self, ChaosConfig, ChaosReport};
use ppep_serve::loadgen::{self, LoadGenConfig, LoadGenReport};
use ppep_serve::TransportKind;
use ppep_types::{Error, Result};

/// CLI overrides shared by the serve subcommands (`0` = keep the
/// subcommand's default).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeOpts {
    /// Service shards (`--shards`).
    pub shards: u32,
    /// Fleet / client count (`--tenants`).
    pub tenants: u32,
    /// Route frames over a real socket (`--transport unix|tcp`).
    pub transport: Option<TransportKind>,
}

/// Interval counts per scale.
fn intervals(scale: Scale) -> u64 {
    match scale {
        Scale::Full => 120,
        Scale::Quick => 40,
    }
}

/// Runs the clean scripted fleet (the `serve` subcommand).
///
/// # Errors
///
/// Propagates training and service-level errors.
pub fn run_demo(ctx: &Context, opts: ServeOpts) -> Result<ChaosReport> {
    let ppep = ctx.engine(ctx.train_models()?);
    let mut config = ChaosConfig::smoke(ctx.seed);
    config.tenants = if opts.tenants > 0 { opts.tenants } else { 4 };
    config.storm_rate = 0.0; // no faults: a clean hosting run
    config.intervals = intervals(ctx.scale);
    config.shards = opts.shards.max(1);
    config.transport = opts.transport;
    chaos::run(&ppep, &config)
}

/// Runs the containment gate scenario (the `serve-chaos` subcommand).
///
/// # Errors
///
/// Propagates training and service-level errors; the *gate* verdict is
/// the caller's to enforce via [`ChaosReport::gate`].
pub fn run_chaos(ctx: &Context, opts: ServeOpts) -> Result<ChaosReport> {
    let ppep = ctx.engine(ctx.train_models()?);
    let mut config = ChaosConfig::smoke(ctx.seed);
    config.intervals = intervals(ctx.scale);
    if opts.tenants > 0 {
        config.tenants = opts.tenants;
    }
    config.shards = opts.shards.max(1);
    config.transport = opts.transport;
    chaos::run(&ppep, &config)
}

/// Runs the load generator (the `load-gen` subcommand). `--jobs` sets
/// the replay workers; `--tenants` the client count (default: the
/// worker count, min 2).
///
/// # Errors
///
/// Propagates training, admission, and wire errors.
pub fn run_loadgen(ctx: &Context, opts: ServeOpts) -> Result<LoadGenReport> {
    let ppep = ctx.engine(ctx.train_models()?);
    let mut config = LoadGenConfig::new(ctx.seed);
    let workers = (ctx.jobs.max(2)) as u32;
    config.workers = workers;
    config.clients = if opts.tenants > 0 {
        opts.tenants
    } else {
        workers
    };
    config.intervals = intervals(ctx.scale);
    config.shards = opts.shards.max(1);
    config.transport = opts.transport;
    loadgen::run(&ppep, &config)
}

/// The sharding benchmark: one replay in single-lock-compat mode, one
/// sharded, plus the correctness cross-check.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Shards the sharded side ran.
    pub shards: u32,
    /// Best-of attempts taken (latency gates retry under timing
    /// noise; correctness never does).
    pub attempts: u32,
    /// The `shards = 1` baseline.
    pub single: LoadGenReport,
    /// The sharded run.
    pub sharded: LoadGenReport,
    /// Whether every tenant's reply transcript was byte-identical
    /// across the two modes.
    pub transcripts_identical: bool,
}

impl ServeBenchReport {
    /// single-lock p99 / sharded p99 (>1 means sharding won).
    pub fn speedup_p99(&self) -> f64 {
        self.single.p99_us / self.sharded.p99_us.max(1e-9)
    }

    /// One JSON object for the `BENCH_serve_shard.json` artifact.
    pub fn to_json(&self) -> String {
        let side = |r: &LoadGenReport| {
            format!(
                "{{\"p50_us\":{:.1},\"p95_us\":{:.1},\"p99_us\":{:.1},\
                 \"throughput_fps\":{:.2},\"transcript_digest\":\"{:016x}\"}}",
                r.p50_us,
                r.p95_us,
                r.p99_us,
                r.throughput_fps,
                r.transcript_digest(),
            )
        };
        format!(
            "{{\"clients\":{},\"workers\":{},\"shards\":{},\"attempts\":{},\
             \"transcripts_identical\":{},\"single\":{},\"sharded\":{},\
             \"speedup_p99\":{:.3},\"speedup_throughput\":{:.3}}}",
            self.single.clients,
            self.single.workers,
            self.shards,
            self.attempts,
            self.transcripts_identical,
            side(&self.single),
            side(&self.sharded),
            self.speedup_p99(),
            self.sharded.throughput_fps / self.single.throughput_fps.max(1e-9),
        )
    }

    /// The sharding gate: byte-identical transcripts AND a sharded
    /// p99 strictly below the single-lock baseline.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] naming the violated clause.
    pub fn gate(&self) -> Result<()> {
        if !self.transcripts_identical {
            return Err(Error::InvalidInput(
                "serve-bench gate: sharded reply transcripts diverged from the \
                 single-lock baseline"
                    .into(),
            ));
        }
        if self.sharded.p99_us >= self.single.p99_us {
            return Err(Error::InvalidInput(format!(
                "serve-bench gate: sharded p99 {:.1} us is not below the \
                 single-lock p99 {:.1} us",
                self.sharded.p99_us, self.single.p99_us
            )));
        }
        Ok(())
    }
}

/// Runs the sharding benchmark (the `serve-bench` subcommand): at
/// least 8 tenants replayed under real thread contention, once
/// through one lock and once sharded. The latency comparison is
/// best-of-3 (timing noise); the transcript comparison is not — one
/// divergent byte fails immediately.
///
/// # Errors
///
/// Propagates training, admission, and wire errors. The gate verdict
/// is the caller's to enforce via [`ServeBenchReport::gate`].
pub fn run_serve_bench(ctx: &Context, opts: ServeOpts) -> Result<ServeBenchReport> {
    let ppep = ctx.engine(ctx.train_models()?);
    let clients = opts.tenants.max(8);
    let shards = if opts.shards > 1 { opts.shards } else { 4 };
    let mut config = LoadGenConfig::new(ctx.seed);
    config.clients = clients;
    config.intervals = intervals(ctx.scale);
    // Enough workers that the single lock is genuinely contended.
    config.workers = clients.clamp(4, 8);
    config.transport = opts.transport;

    let mut best: Option<ServeBenchReport> = None;
    for attempt in 1..=3u32 {
        config.shards = 1;
        let single = loadgen::run(&ppep, &config)?;
        config.shards = shards;
        let sharded = loadgen::run(&ppep, &config)?;
        let report = ServeBenchReport {
            shards,
            attempts: attempt,
            transcripts_identical: single.transcripts == sharded.transcripts,
            single,
            sharded,
        };
        if !report.transcripts_identical || report.gate().is_ok() {
            return Ok(report);
        }
        let better = match &best {
            Some(b) => report.speedup_p99() > b.speedup_p99(),
            None => true,
        };
        if better {
            best = Some(report);
        }
    }
    best.ok_or_else(|| Error::InvalidInput("serve-bench: no attempt completed".into()))
}

fn print_tenants(report: &ChaosReport) {
    println!("tenant  slot  health    avail   fresh  held  failsafe  retries  granted");
    for t in &report.tenants {
        let health = match &t.evicted {
            Some(_) => "evicted".to_string(),
            None => t.health.to_string(),
        };
        println!(
            "{:>6}  {:>4}  {:<8}  {:.3}  {:>5}  {:>4}  {:>8}  {:>7}  {}",
            t.tenant,
            t.slot,
            health,
            t.availability,
            t.fresh_decisions,
            t.held_decisions,
            t.failsafe_intervals,
            t.retries,
            t.granted,
        );
    }
}

/// Prints the clean hosting summary.
pub fn print_demo(report: &ChaosReport) {
    println!("== Multi-tenant capping service: clean hosting run ==");
    println!("{}", report.summary());
    print_tenants(report);
    println!(
        "granted budget: peak {} / final {} / socket cap {}",
        report.max_total_granted, report.final_total_granted, report.config.socket_cap
    );
}

/// Prints the chaos containment summary.
pub fn print_chaos(report: &ChaosReport) {
    println!("== Multi-tenant capping service: chaos containment gate ==");
    println!("{}", report.summary());
    print_tenants(report);
    println!(
        "victim received {} failsafe-pinned replies; granted budget peak {} / cap {}",
        report.victim_failsafe_replies, report.max_total_granted, report.config.socket_cap
    );
    match report.gate() {
        Ok(()) => println!("containment gate: PASS"),
        Err(e) => println!("containment gate: FAIL — {e}"),
    }
}

/// Prints the load-generator summary.
pub fn print_loadgen(report: &LoadGenReport) {
    println!("== Multi-tenant capping service: concurrent load generator ==");
    println!(
        "{} clients on {} shard(s) via {} ({} workers): {} frames in {:.3} s -> {:.0} frames/s ({} evictions)",
        report.clients,
        report.shards,
        report.transport,
        report.workers,
        report.frames,
        report.wall_seconds,
        report.throughput_fps,
        report.evictions
    );
    println!(
        "frame round-trip: p50 {:.0} us, p95 {:.0} us, p99 {:.0} us, max {:.0} us",
        report.p50_us, report.p95_us, report.p99_us, report.max_us
    );
    for (shard, p99) in &report.shard_p99_us {
        let gauge = report.shard_gauges.iter().find(|g| g.shard == *shard);
        println!(
            "  shard {shard}: p99 {:.0} us, {} tenants, queue depth {}",
            p99,
            gauge.map_or(0, |g| g.live),
            gauge.map_or(0, |g| g.queue_depth),
        );
    }
    println!("aggregate granted budget at end: {}", report.total_granted);
}

/// Prints the sharding-benchmark summary.
pub fn print_serve_bench(report: &ServeBenchReport) {
    println!("== Multi-tenant capping service: sharding benchmark ==");
    println!(
        "{} clients x {} workers, single lock vs {} shards (best of {} attempt(s))",
        report.single.clients, report.single.workers, report.shards, report.attempts
    );
    println!(
        "single lock: p50 {:.0} us, p95 {:.0} us, p99 {:.0} us, {:.0} frames/s",
        report.single.p50_us,
        report.single.p95_us,
        report.single.p99_us,
        report.single.throughput_fps
    );
    println!(
        "    sharded: p50 {:.0} us, p95 {:.0} us, p99 {:.0} us, {:.0} frames/s",
        report.sharded.p50_us,
        report.sharded.p95_us,
        report.sharded.p99_us,
        report.sharded.throughput_fps
    );
    println!(
        "p99 speedup {:.2}x; transcripts {}",
        report.speedup_p99(),
        if report.transcripts_identical {
            "byte-identical"
        } else {
            "DIVERGED"
        }
    );
    match report.gate() {
        Ok(()) => println!("sharding gate: PASS"),
        Err(e) => println!("sharding gate: FAIL — {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::DEFAULT_SEED;

    #[test]
    fn chaos_gate_passes_at_quick_scale() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let report = run_chaos(&ctx, ServeOpts::default()).expect("chaos run completes");
        report.gate().expect("containment gate holds");
        assert_eq!(report.tenants.len(), 8);
    }

    #[test]
    fn serve_bench_gate_passes_at_quick_scale() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED).with_jobs(4);
        let report = run_serve_bench(&ctx, ServeOpts::default()).expect("bench completes");
        assert!(
            report.transcripts_identical,
            "modes must agree byte-for-byte"
        );
        assert!(report.single.clients >= 8);
        assert_eq!(report.sharded.shards as u32, report.shards);
        let json = report.to_json();
        assert!(json.contains("\"speedup_p99\""), "{json}");
        assert!(json.contains("\"transcripts_identical\":true"), "{json}");
    }

    #[test]
    fn clean_demo_keeps_every_tenant_healthy() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let report = run_demo(&ctx, ServeOpts::default()).expect("demo run completes");
        for t in &report.tenants {
            assert!(t.evicted.is_none(), "tenant {} evicted", t.tenant);
            assert!(
                (t.availability - 1.0).abs() < 1e-9,
                "tenant {}: availability {}",
                t.tenant,
                t.availability
            );
        }
        assert!(report.max_total_granted <= report.config.socket_cap);
    }
}
