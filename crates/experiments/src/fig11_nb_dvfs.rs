//! Fig. 11 — what a DVFS-capable north bridge would buy (§V-C2).
//!
//! The study adds a hypothetical low NB point (0.940 V, 1.1 GHz; idle
//! −40%, dynamic −36%, leading-load cycles +50%) and re-evaluates the
//! PPE of every (core VF × NB VF) combination:
//!
//! * **energy saving** (Fig. 11a): how much lower the minimum energy
//!   over the extended space is, versus the NB-high-only space —
//!   paper: 26/23/21/20% for milc ×1–4, 25/19/16/14% for sjeng,
//!   20.4% average;
//! * **speedup** (Fig. 11b): with (core-VF1, NB-high) as the energy
//!   baseline, the fastest configuration with similar-or-less energy —
//!   paper: 1.54/1.30/1.27/1.25× for milc, 1.99/1.19/1.19/1.20× for
//!   sjeng, 1.37× average.

use crate::common::Context;
use ppep_core::Ppep;
use ppep_sim::chip::ChipSimulator;
use ppep_types::vf::NbVfState;
use ppep_types::Result;
use ppep_workloads::combos::instances;

/// One workload's Fig. 11 outcome.
#[derive(Debug, Clone)]
pub struct NbDvfsEntry {
    /// Benchmark name.
    pub benchmark: String,
    /// Concurrent instances.
    pub instances: usize,
    /// Fractional energy saving from NB scaling.
    pub energy_saving: f64,
    /// Speedup at similar energy versus (core-VF1, NB-high).
    pub speedup: f64,
}

/// The experiment's result.
#[derive(Debug, Clone)]
pub struct Fig11Result {
    /// One entry per workload (milc/sjeng × 1–4).
    pub entries: Vec<NbDvfsEntry>,
    /// Average energy saving (paper: 20.4%).
    pub average_saving: f64,
    /// Average speedup (paper: 1.37×).
    pub average_speedup: f64,
}

/// Runs the Fig. 11 study.
///
/// # Errors
///
/// Propagates training and projection errors.
pub fn run(ctx: &Context) -> Result<Fig11Result> {
    let models = ctx.train_models()?;
    let ppep = ctx.engine(models);
    run_with_engine(ctx, &ppep)
}

/// Runs with an already-trained engine.
///
/// # Errors
///
/// Propagates projection errors.
pub fn run_with_engine(ctx: &Context, ppep: &Ppep) -> Result<Fig11Result> {
    let warmup = match ctx.scale {
        crate::common::Scale::Full => 20,
        crate::common::Scale::Quick => 8,
    };
    let mut entries = Vec::new();
    for benchmark in ["433.milc", "458.sjeng"] {
        for n in 1..=4 {
            let mut sim = ChipSimulator::new(ppep_sim::chip::SimConfig::fx8320_pg(ctx.seed));
            sim.load_workload(&instances(benchmark, n, ctx.seed));
            let record = sim.run_intervals(warmup).pop().ok_or_else(|| {
                ppep_types::Error::InvalidInput("warmup produced no intervals".into())
            })?;

            let hi = ppep.project_nb(&record, NbVfState::High)?;
            let lo = ppep.project_nb(&record, NbVfState::Low)?;

            // Energy saving: minimum over the extended space vs the
            // NB-high-only space.
            let min_hi = crate::common::series_min(hi.chip.iter().map(|c| c.energy.as_joules()))
                .unwrap_or(0.0);
            let min_all = crate::common::series_min(lo.chip.iter().map(|c| c.energy.as_joules()))
                .unwrap_or(min_hi)
                .min(min_hi);
            let energy_saving = if min_hi > 0.0 {
                (min_hi - min_all) / min_hi
            } else {
                0.0
            };

            // Speedup at similar energy: baseline is (core-VF1, NB-hi).
            let table = ppep.models().vf_table();
            let baseline = hi.chip_at(table.lowest());
            let baseline_energy = baseline.energy.as_joules();
            let baseline_time = baseline.time_for_work.as_secs();
            let best_time = hi
                .chip
                .iter()
                .chain(lo.chip.iter())
                .filter(|c| c.energy.as_joules() <= baseline_energy * 1.02)
                .map(|c| c.time_for_work.as_secs())
                .fold(baseline_time, f64::min);
            let speedup = baseline_time / best_time;

            entries.push(NbDvfsEntry {
                benchmark: benchmark.to_string(),
                instances: n,
                energy_saving,
                speedup,
            });
        }
    }
    let average_saving =
        ppep_regress::stats::mean(&entries.iter().map(|e| e.energy_saving).collect::<Vec<_>>());
    let average_speedup =
        ppep_regress::stats::mean(&entries.iter().map(|e| e.speedup).collect::<Vec<_>>());
    Ok(Fig11Result {
        entries,
        average_saving,
        average_speedup,
    })
}

/// Prints the Fig. 11 rows.
pub fn print(result: &Fig11Result) {
    println!("== Fig. 11: scalable-NB energy savings and speedup ==");
    let rows: Vec<Vec<String>> = result
        .entries
        .iter()
        .map(|e| {
            vec![
                format!("{} x{}", e.benchmark, e.instances),
                crate::common::pct(e.energy_saving),
                format!("{:.2}x", e.speedup),
            ]
        })
        .collect();
    crate::common::print_table(&["workload", "energy saving", "speedup"], &rows);
    println!(
        "averages: saving {} (paper 20.4%)  speedup {:.2}x (paper 1.37x)",
        crate::common::pct(result.average_saving),
        result.average_speedup
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{Scale, DEFAULT_SEED};

    #[test]
    fn nb_dvfs_offers_savings_and_speedup() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let r = run(&ctx).unwrap();
        assert_eq!(r.entries.len(), 8);
        // Every workload saves energy from NB scaling.
        for e in &r.entries {
            assert!(
                e.energy_saving > 0.02,
                "{} x{}: saving {}",
                e.benchmark,
                e.instances,
                e.energy_saving
            );
            assert!(e.speedup >= 1.0);
        }
        // Averages in the paper's regime (±big-simulation slack).
        assert!(
            (0.05..0.45).contains(&r.average_saving),
            "average saving {}",
            r.average_saving
        );
        assert!(
            r.average_speedup > 1.05,
            "average speedup {}",
            r.average_speedup
        );
        // The Fig. 11a ordering, restated robustly: memory-bound
        // savings *persist* as instances are added (NB dynamic power
        // share grows with traffic — paper: milc 26% → 20%), while
        // CPU-bound savings collapse (idle-power savings dilute
        // across sharers — paper: sjeng 25% → 14%).
        let saving = |bench: &str, n: usize| {
            r.entries
                .iter()
                .find(|e| e.benchmark == bench && e.instances == n)
                .unwrap()
                .energy_saving
        };
        let retention = |bench: &str| saving(bench, 4) / saving(bench, 1);
        assert!(
            retention("433.milc") > retention("458.sjeng"),
            "milc retains {} of its x1 saving vs sjeng {}",
            retention("433.milc"),
            retention("458.sjeng")
        );
    }
}
