//! Fig. 10 — the north bridge's share of chip energy (§V-C2).
//!
//! PPEP's separate core/NB energy estimates show that the NB consumes
//! ~60% of total energy on average for memory-bound work (minimum
//! 45%) and ~25% for CPU-bound work (minimum 10%); the share grows at
//! lower core VF states and with fewer busy CUs.

use crate::common::Context;
use ppep_core::Ppep;
use ppep_sim::chip::ChipSimulator;
use ppep_types::{Result, VfStateId};
use ppep_workloads::combos::instances;

/// One cell: NB share for a (benchmark, instances, VF) combination.
#[derive(Debug, Clone)]
pub struct NbShareCell {
    /// Benchmark name.
    pub benchmark: String,
    /// Concurrent instances.
    pub instances: usize,
    /// Core VF state.
    pub vf: VfStateId,
    /// NB energy as a fraction of total chip energy.
    pub nb_ratio: f64,
    /// Normalised total energy (per benchmark × instances, max = 1).
    pub normalized_energy: f64,
}

/// The experiment's result.
#[derive(Debug, Clone)]
pub struct Fig10Result {
    /// All cells.
    pub cells: Vec<NbShareCell>,
    /// Average NB share for the memory-bound benchmark (paper: ~60%).
    pub memory_bound_avg: f64,
    /// Average NB share for the CPU-bound benchmark (paper: ~25%).
    pub cpu_bound_avg: f64,
}

/// Runs the Fig. 10 study.
///
/// # Errors
///
/// Propagates training and projection errors.
pub fn run(ctx: &Context) -> Result<Fig10Result> {
    let models = ctx.train_models()?;
    let ppep = ctx.engine(models);
    run_with_engine(ctx, &ppep)
}

/// Runs with an already-trained engine.
///
/// # Errors
///
/// Propagates projection errors.
pub fn run_with_engine(ctx: &Context, ppep: &Ppep) -> Result<Fig10Result> {
    let _table = ppep.models().vf_table();
    let warmup = match ctx.scale {
        crate::common::Scale::Full => 20,
        crate::common::Scale::Quick => 8,
    };
    let mut cells = Vec::new();
    for benchmark in ["433.milc", "458.sjeng"] {
        for n in 1..=4 {
            let mut sim = ChipSimulator::new(ppep_sim::chip::SimConfig::fx8320_pg(ctx.seed));
            sim.load_workload(&instances(benchmark, n, ctx.seed));
            let record = sim.run_intervals(warmup).pop().ok_or_else(|| {
                ppep_types::Error::InvalidInput("warmup produced no intervals".into())
            })?;
            let projection = ppep.project(&record)?;
            let max_energy =
                crate::common::series_max(projection.chip.iter().map(|c| c.energy.as_joules()))
                    .unwrap_or(0.0);
            for chip in &projection.chip {
                cells.push(NbShareCell {
                    benchmark: benchmark.to_string(),
                    instances: n,
                    vf: chip.vf,
                    nb_ratio: chip.nb_ratio(),
                    normalized_energy: chip.energy.as_joules() / max_energy,
                });
            }
        }
    }
    let avg = |bench: &str| {
        let v: Vec<f64> = cells
            .iter()
            .filter(|c| c.benchmark == bench)
            .map(|c| c.nb_ratio)
            .collect();
        ppep_regress::stats::mean(&v)
    };
    Ok(Fig10Result {
        memory_bound_avg: avg("433.milc"),
        cpu_bound_avg: avg("458.sjeng"),
        cells,
    })
}

/// Prints the Fig. 10 table.
pub fn print(result: &Fig10Result) {
    println!("== Fig. 10: NB energy share ==");
    let rows: Vec<Vec<String>> = result
        .cells
        .iter()
        .map(|c| {
            vec![
                format!("{} x{}", c.benchmark, c.instances),
                c.vf.to_string(),
                format!("{:.2}", c.normalized_energy),
                crate::common::pct(c.nb_ratio),
            ]
        })
        .collect();
    crate::common::print_table(&["workload", "VF", "norm energy", "NB ratio"], &rows);
    println!(
        "averages: memory-bound {} (paper ~60%)  CPU-bound {} (paper ~25%)",
        crate::common::pct(result.memory_bound_avg),
        crate::common::pct(result.cpu_bound_avg)
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{Scale, DEFAULT_SEED};

    #[test]
    fn nb_share_shape_matches_paper() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let r = run(&ctx).unwrap();
        // 2 benchmarks × 4 instance counts × 5 VF states.
        assert_eq!(r.cells.len(), 40);
        // Memory-bound work gives the NB a much larger share.
        assert!(
            r.memory_bound_avg > r.cpu_bound_avg + 0.10,
            "milc {} vs sjeng {}",
            r.memory_bound_avg,
            r.cpu_bound_avg
        );
        // The share grows at lower core VF states (milc x1).
        let share = |vf: usize| {
            r.cells
                .iter()
                .find(|c| c.benchmark == "433.milc" && c.instances == 1 && c.vf.index() == vf)
                .unwrap()
                .nb_ratio
        };
        assert!(
            share(0) > share(4),
            "VF1 share {} vs VF5 {}",
            share(0),
            share(4)
        );
        // And shrinks with more busy cores to share the NB (at VF5).
        let share_n = |n: usize| {
            r.cells
                .iter()
                .find(|c| c.benchmark == "458.sjeng" && c.instances == n && c.vf.index() == 4)
                .unwrap()
                .nb_ratio
        };
        assert!(share_n(1) > share_n(4));
    }
}
