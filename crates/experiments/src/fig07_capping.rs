//! Fig. 7 — power-capping responsiveness: PPEP's one-step policy
//! versus a simple iterative policy, under a square-wave power target.
//!
//! The workload is 429.mcf + 458.sjeng + 416.gamess + swaptions on
//! four CUs. The paper reports: PPEP adjusts within one 0.2 s interval
//! and adheres to the budget 94% of the time; the iterative policy
//! takes 2.8 s to converge (14× slower) and adheres 81% of the time.

use crate::common::Context;
use ppep_core::daemon::DvfsController;
use ppep_core::Ppep;
use ppep_dvfs::capping::{cap_adherence, IterativeCapping, OneStepCapping};
use ppep_sim::chip::ChipSimulator;
use ppep_types::{CuId, Result, Watts};
use ppep_workloads::combos::fig7_workload;

/// One policy's trace and summary statistics.
#[derive(Debug, Clone)]
pub struct PolicyTrace {
    /// Measured chip power per interval.
    pub power: Vec<Watts>,
    /// The cap in force per interval.
    pub cap: Vec<Watts>,
    /// Fraction of intervals at or under the in-force cap.
    pub adherence: f64,
    /// Worst-case intervals needed to get under a newly lowered cap.
    pub worst_settle_intervals: usize,
}

/// The experiment's result.
#[derive(Debug, Clone)]
pub struct Fig07Result {
    /// The PPEP-based one-step policy.
    pub ppep: PolicyTrace,
    /// The simple iterative policy.
    pub iterative: PolicyTrace,
    /// Convergence speedup (iterative settle / one-step settle).
    pub speedup: f64,
}

/// The square-wave cap: alternates between a high and a low budget
/// every `period` intervals (the paper swings the cap widely to expose
/// convergence behaviour).
pub fn cap_schedule(step: usize, period: usize) -> Watts {
    if (step / period).is_multiple_of(2) {
        Watts::new(95.0)
    } else {
        Watts::new(40.0)
    }
}

fn run_policy(ctx: &Context, ppep: &Ppep, one_step: bool, intervals: usize) -> Result<PolicyTrace> {
    let mut sim = ChipSimulator::new(ppep_sim::chip::SimConfig::fx8320_pg(ctx.seed));
    sim.load_workload(&fig7_workload(ctx.seed));
    let table = ppep.models().vf_table().clone();
    let period = intervals / 6;

    let mut one = OneStepCapping::new(ppep.clone(), cap_schedule(0, period));
    let mut iter = IterativeCapping::new(cap_schedule(0, period), &table);
    // Commodity reactive governors hold each setting for a few
    // intervals to measure stable power before moving again.
    iter.hold_intervals = 4;

    let mut power = Vec::with_capacity(intervals);
    let mut caps = Vec::with_capacity(intervals);
    let mut settles: Vec<usize> = Vec::new();
    let mut pending_settle: Option<usize> = None;

    for step in 0..intervals {
        let cap = cap_schedule(step, period);
        let record = sim.step_interval();
        power.push(record.measured_power);
        caps.push(cap);

        // Track settle time after each downward cap edge.
        if step > 0 && cap < cap_schedule(step - 1, period) {
            pending_settle = Some(0);
        }
        if let Some(ticks) = pending_settle.as_mut() {
            if record.measured_power <= cap * 1.03 {
                settles.push(*ticks);
                pending_settle = None;
            } else {
                *ticks += 1;
            }
        }

        let decision = if one_step {
            one.set_cap(cap);
            let projection = ppep.project(&record)?;
            one.decide(&projection)?
        } else {
            iter.set_cap(cap);
            iter.observe_power(record.measured_power);
            iter.choose(ppep.models().topology().cu_count())
        };
        for (cu, vf) in decision.iter().enumerate().take(4) {
            sim.set_cu_vf(CuId(cu), *vf)?;
        }
    }

    // Adherence against the per-interval cap (3% sensor-noise slack,
    // skipping the first interval after each edge which no controller
    // can anticipate).
    let mut under = 0usize;
    let mut counted = 0usize;
    for step in 1..intervals {
        if cap_schedule(step, period) < cap_schedule(step - 1, period) {
            continue;
        }
        counted += 1;
        if power[step] <= caps[step] * 1.03 {
            under += 1;
        }
    }
    let _ = cap_adherence(&power, caps[0]); // exercised in unit tests

    Ok(PolicyTrace {
        adherence: under as f64 / counted.max(1) as f64,
        worst_settle_intervals: settles.into_iter().max().unwrap_or(intervals),
        power,
        cap: caps,
    })
}

/// Runs both policies.
///
/// # Errors
///
/// Propagates training and policy errors.
pub fn run(ctx: &Context) -> Result<Fig07Result> {
    let models = ctx.train_models()?;
    let ppep = ctx.engine(models);
    let intervals = match ctx.scale {
        crate::common::Scale::Full => 300,
        crate::common::Scale::Quick => 90,
    };
    let one = run_policy(ctx, &ppep, true, intervals)?;
    let iter = run_policy(ctx, &ppep, false, intervals)?;
    let speedup =
        iter.worst_settle_intervals.max(1) as f64 / one.worst_settle_intervals.max(1) as f64;
    Ok(Fig07Result {
        ppep: one,
        iterative: iter,
        speedup,
    })
}

/// Prints the Fig. 7 summary.
pub fn print(result: &Fig07Result) {
    println!("== Fig. 7: power capping responsiveness ==");
    println!(
        "PPEP one-step : adherence {}  worst settle {} intervals ({:.1} s)",
        crate::common::pct(result.ppep.adherence),
        result.ppep.worst_settle_intervals,
        result.ppep.worst_settle_intervals as f64 * 0.2
    );
    println!(
        "iterative     : adherence {}  worst settle {} intervals ({:.1} s)",
        crate::common::pct(result.iterative.adherence),
        result.iterative.worst_settle_intervals,
        result.iterative.worst_settle_intervals as f64 * 0.2
    );
    println!(
        "convergence speedup: {:.1}x (paper: 14x — 0.2 s vs 2.8 s)",
        result.speedup
    );
    let to_w = |v: &[ppep_types::Watts]| v.iter().map(|w| w.as_watts()).collect::<Vec<_>>();
    println!(
        "{}",
        crate::ascii::chart_row("cap", &to_w(&result.ppep.cap), 60)
    );
    println!(
        "{}",
        crate::ascii::chart_row("PPEP", &to_w(&result.ppep.power), 60)
    );
    println!(
        "{}",
        crate::ascii::chart_row("iterative", &to_w(&result.iterative.power), 60)
    );
    println!("step  cap      PPEP      iterative");
    let n = result.ppep.power.len();
    for i in (0..n).step_by((n / 30).max(1)) {
        println!(
            "{:>4}  {:>6.1}  {:>8.1}  {:>9.1}",
            i,
            result.ppep.cap[i].as_watts(),
            result.ppep.power[i].as_watts(),
            result.iterative.power[i].as_watts()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{Scale, DEFAULT_SEED};

    #[test]
    fn one_step_outperforms_iterative() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let r = run(&ctx).unwrap();
        assert!(
            r.ppep.worst_settle_intervals <= 1,
            "one-step must settle within one interval, took {}",
            r.ppep.worst_settle_intervals
        );
        assert!(
            r.iterative.worst_settle_intervals > r.ppep.worst_settle_intervals,
            "iterative {} vs one-step {}",
            r.iterative.worst_settle_intervals,
            r.ppep.worst_settle_intervals
        );
        assert!(
            r.ppep.adherence >= r.iterative.adherence,
            "adherence: PPEP {} vs iterative {}",
            r.ppep.adherence,
            r.iterative.adherence
        );
        assert!(r.speedup >= 2.0, "speedup {}", r.speedup);
    }
}
