//! Fig. 2 — validation error of the dynamic (a) and chip (b) power
//! models, per suite and VF state, under 4-fold cross-validation.
//!
//! Paper numbers: dynamic model 10.6% average AAE (per-VF 8.9 / 8.4 /
//! 9.5 / 12.0 / 14.4% from VF5 to VF1, average SD 5.8%, outliers to
//! 49% on DC/IS/dedup); chip model 4.6% average AAE, SD 2.8%.

use crate::common::{Context, CvMachinery, SuiteErrors, TraceStore};
use ppep_rig::TrainingRig;
use ppep_types::{Result, VfStateId};
use ppep_workloads::Suite;

/// Per-combo AAE at one VF state.
#[derive(Debug, Clone)]
pub struct ComboError {
    /// Combination name.
    pub name: String,
    /// Owning suite.
    pub suite: Suite,
    /// The VF state validated at.
    pub vf: VfStateId,
    /// AAE of the dynamic power estimate across intervals.
    pub dynamic_aae: f64,
    /// AAE of the chip power estimate across intervals.
    pub chip_aae: f64,
}

/// One aggregated cell of the figure.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// VF state.
    pub vf: VfStateId,
    /// Suite (`None` = the figure's ALL column).
    pub suite: Option<Suite>,
    /// Aggregated dynamic-model errors.
    pub dynamic: SuiteErrors,
    /// Aggregated chip-model errors.
    pub chip: SuiteErrors,
}

/// The experiment's result.
#[derive(Debug, Clone)]
pub struct Fig02Result {
    /// All per-combo errors.
    pub combos: Vec<ComboError>,
    /// The figure's cells (per VF × suite plus ALL).
    pub cells: Vec<Cell>,
    /// Overall dynamic-model average AAE (paper: 10.6%).
    pub dynamic_overall: f64,
    /// Overall chip-model average AAE (paper: 4.6%).
    pub chip_overall: f64,
    /// Worst single-combo dynamic AAE (paper: up to 49%).
    pub dynamic_worst: f64,
    /// The five worst combinations by dynamic AAE — the paper names
    /// DC and IS (NPB) and dedup (PARSEC) as its outliers.
    pub worst_combos: Vec<(String, f64)>,
}

/// Runs the Fig. 2 study. The heavy lifting (trace collection) can be
/// shared with Fig. 3 by passing the same `store`.
///
/// # Errors
///
/// Propagates model-fitting errors.
pub fn run_with_store(ctx: &Context, store: &TraceStore) -> Result<Fig02Result> {
    let budget = ctx.scale.budget();
    let table = ctx.rig.config().topology.vf_table().clone();
    let cv = CvMachinery::build(&ctx.rig, store, &budget, ctx.scale.folds())?;

    // One dynamic model per fold.
    let mut fold_models = Vec::with_capacity(cv.folds.k());
    for fold in 0..cv.folds.k() {
        fold_models.push(cv.fit_fold(fold, &ctx.rig, store)?);
    }

    let mut combos = Vec::new();
    for (index, name) in cv.names.iter().enumerate() {
        let dynamic = cv.fold_model(&fold_models, index)?;
        let suite = store.suite_of(name).ok_or_else(|| {
            ppep_types::Error::InvalidInput(format!("combo {name} missing from trace store"))
        })?;
        for vf in table.states() {
            let Some(trace) = store.get(name, vf) else {
                continue;
            };
            let voltage = table.point(vf).voltage;
            let mut dyn_errs = Vec::new();
            let mut chip_errs = Vec::new();
            for record in &trace.records {
                let idle_w = cv.idle.estimate(voltage, record.temperature)?.as_watts();
                let measured = record.measured_power.as_watts();
                let measured_dyn = measured - idle_w;
                let sample = TrainingRig::dyn_sample_from(record, &cv.idle, &table)?;
                let est_dyn = dynamic.estimate_core(&sample.rates, voltage)?.as_watts();
                if measured_dyn > 0.5 {
                    dyn_errs.push((est_dyn - measured_dyn).abs() / measured_dyn);
                }
                chip_errs.push((idle_w + est_dyn - measured).abs() / measured);
            }
            if chip_errs.is_empty() {
                continue;
            }
            combos.push(ComboError {
                name: name.clone(),
                suite,
                vf,
                dynamic_aae: if dyn_errs.is_empty() {
                    0.0
                } else {
                    ppep_regress::stats::mean(&dyn_errs)
                },
                chip_aae: ppep_regress::stats::mean(&chip_errs),
            });
        }
    }

    // Aggregate into the figure's cells.
    let suites = [
        Some(Suite::SpecCpu2006),
        Some(Suite::Parsec),
        Some(Suite::Npb),
        None,
    ];
    let mut cells = Vec::new();
    for vf in table.states() {
        for suite in suites {
            let select = |c: &&ComboError| c.vf == vf && suite.is_none_or(|s| c.suite == s);
            let dyn_errs: Vec<f64> = combos
                .iter()
                .filter(select)
                .map(|c| c.dynamic_aae)
                .collect();
            let chip_errs: Vec<f64> = combos.iter().filter(select).map(|c| c.chip_aae).collect();
            if let (Some(dynamic), Some(chip)) =
                (SuiteErrors::of(&dyn_errs), SuiteErrors::of(&chip_errs))
            {
                cells.push(Cell {
                    vf,
                    suite,
                    dynamic,
                    chip,
                });
            }
        }
    }

    let all_dyn: Vec<f64> = combos.iter().map(|c| c.dynamic_aae).collect();
    let all_chip: Vec<f64> = combos.iter().map(|c| c.chip_aae).collect();
    // Worst distinct combinations across all VF states.
    let mut by_combo: std::collections::BTreeMap<String, f64> = std::collections::BTreeMap::new();
    for c in &combos {
        let slot = by_combo.entry(c.name.clone()).or_insert(0.0);
        *slot = slot.max(c.dynamic_aae);
    }
    let mut worst_combos: Vec<(String, f64)> = by_combo.into_iter().collect();
    worst_combos.sort_by(|a, b| b.1.total_cmp(&a.1));
    worst_combos.truncate(5);
    Ok(Fig02Result {
        dynamic_overall: ppep_regress::stats::mean(&all_dyn),
        chip_overall: ppep_regress::stats::mean(&all_chip),
        dynamic_worst: crate::common::series_max(all_dyn.iter().cloned()).unwrap_or(0.0),
        worst_combos,
        combos,
        cells,
    })
}

/// Collects traces and runs the study.
///
/// # Errors
///
/// Propagates model-fitting errors.
pub fn run(ctx: &Context) -> Result<Fig02Result> {
    let table = ctx.rig.config().topology.vf_table().clone();
    let vfs: Vec<VfStateId> = table.states().collect();
    let store = TraceStore::collect_sharded(
        &ctx.rig,
        &ctx.scale.roster(ctx.seed),
        &vfs,
        &ctx.scale.budget(),
        ctx.jobs,
    );
    run_with_store(ctx, &store)
}

/// Prints both panels of Fig. 2.
pub fn print(result: &Fig02Result) {
    println!("== Fig. 2a: dynamic power model validation error (paper avg 10.6%) ==");
    print_panel(result, |c| c.dynamic);
    println!();
    println!("== Fig. 2b: chip power model validation error (paper avg 4.6%, SD 2.8%) ==");
    print_panel(result, |c| c.chip);
    println!();
    println!(
        "overall: dynamic {:.1}%  chip {:.1}%  worst dynamic combo {:.1}%",
        result.dynamic_overall * 100.0,
        result.chip_overall * 100.0,
        result.dynamic_worst * 100.0
    );
    println!("worst combinations (paper: DC, IS, dedup):");
    for (name, aae) in &result.worst_combos {
        println!("  {name}: {:.1}%", aae * 100.0);
    }
}

fn print_panel(result: &Fig02Result, pick: impl Fn(&Cell) -> SuiteErrors) {
    let rows: Vec<Vec<String>> = result
        .cells
        .iter()
        .map(|c| {
            let e = pick(c);
            vec![
                c.vf.to_string(),
                c.suite
                    .map_or("ALL".to_string(), |s| s.abbrev().to_string()),
                format!("{:.1}%", e.mean * 100.0),
                format!("{:.1}%", e.std_dev * 100.0),
                e.count.to_string(),
            ]
        })
        .collect();
    crate::common::print_table(&["VF", "suite", "avg AAE", "SD", "n"], &rows);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{Scale, DEFAULT_SEED};

    #[test]
    fn fig2_shape_matches_paper() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let r = run(&ctx).unwrap();
        assert!(!r.combos.is_empty());
        // Chip error must be well below dynamic error (idle power is
        // modelled accurately and dominates).
        assert!(
            r.chip_overall < r.dynamic_overall,
            "chip {} !< dynamic {}",
            r.chip_overall,
            r.dynamic_overall
        );
        // Both stay in the paper's regime (generous quick-scale bands).
        assert!(r.chip_overall < 0.12, "chip AAE {}", r.chip_overall);
        assert!(
            r.dynamic_overall < 0.35,
            "dynamic AAE {}",
            r.dynamic_overall
        );
        // Cells cover all five VF states with an ALL aggregate.
        let all_cells: Vec<_> = r.cells.iter().filter(|c| c.suite.is_none()).collect();
        assert_eq!(all_cells.len(), 5);
        // Outlier bookkeeping: a sorted, non-empty top list whose head
        // matches the reported maximum. (At full scale the rapid-phase
        // benchmarks — dedup/IS/DC — appear in this list, matching the
        // paper's named outliers; the quick roster is too small to
        // guarantee that.)
        assert!(!r.worst_combos.is_empty() && r.worst_combos.len() <= 5);
        assert!((r.worst_combos[0].1 - r.dynamic_worst).abs() < 1e-12);
        for w in r.worst_combos.windows(2) {
            assert!(w[0].1 >= w[1].1, "worst list must be sorted");
        }
    }
}
