//! Zero-dependency scoped-thread worker pool for the paper-scale
//! sweeps.
//!
//! The 152-combination rosters are embarrassingly parallel: every
//! `(combo, vf)` cell builds its own freshly seeded simulator, so cell
//! results depend only on the cell's index, never on execution order.
//! [`map_indexed`] exploits that: a shared atomic cursor hands out
//! indices to `jobs` scoped workers, each worker writes its result
//! into the slot for that index, and the assembled vector is identical
//! for any worker count — byte-identical CSVs at `--jobs 1` and
//! `--jobs N` fall out of the construction.
//!
//! Each worker carries its own [`TraceRecorder`] so the observability
//! layer needs no cross-thread contention during the sweep; the
//! per-worker recorders are folded into one merged snapshot at join
//! via [`TraceRecorder::absorb`].

use ppep_obs::{RecorderHandle, TraceRecorder, TraceSnapshot};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The machine's available parallelism (1 when unknown).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `task(index, recorder)` once for every index in `0..items`,
/// sharded across `jobs` worker threads, and returns the results in
/// index order together with the merged observability snapshot of the
/// per-worker recorders.
///
/// `task` must be a pure function of its index (up to the recorder):
/// workers claim indices from a shared cursor, so *which* worker runs
/// a given index — and in what order — is nondeterministic, but the
/// assembled output is not. `jobs` is clamped to `1..=items`.
pub fn map_indexed<T, F>(items: usize, jobs: usize, task: F) -> (Vec<T>, TraceSnapshot)
where
    T: Send,
    F: Fn(usize, &RecorderHandle) -> T + Sync,
{
    let jobs = jobs.clamp(1, items.max(1));
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..items).map(|_| None).collect());
    let merged = TraceRecorder::new();

    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let recorder = Arc::new(TraceRecorder::new());
                    let handle = RecorderHandle::new(recorder.clone());
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= items {
                            break;
                        }
                        let value = task(index, &handle);
                        let mut guard = slots.lock().unwrap_or_else(|p| p.into_inner());
                        if let Some(slot) = guard.get_mut(index) {
                            *slot = Some(value);
                        }
                    }
                    recorder.snapshot()
                })
            })
            .collect();
        for worker in workers {
            if let Ok(snapshot) = worker.join() {
                merged.absorb(&snapshot);
            }
        }
    });

    let results = slots
        .into_inner()
        .unwrap_or_else(|p| p.into_inner())
        .into_iter()
        .flatten()
        .collect();
    (results, merged.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order_for_any_job_count() {
        let expected: Vec<usize> = (0..37).map(|i| i * i).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let (got, _) = map_indexed(37, jobs, |i, _| i * i);
            assert_eq!(got, expected, "jobs = {jobs}");
        }
    }

    #[test]
    fn worker_recorders_merge_at_join() {
        let (_, snapshot) = map_indexed(10, 4, |_, rec| rec.add("fleet.cells", 1));
        assert_eq!(snapshot.counter("fleet.cells"), 10);
    }

    #[test]
    fn zero_items_is_fine() {
        let (got, _) = map_indexed(0, 8, |i, _| i);
        assert!(got.is_empty());
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
