//! §IV-C1 — the two invariances behind the hardware-event predictor.
//!
//! * **Observation 1**: per-instruction counts of E1–E8 are
//!   VF-invariant. The paper measures VF5↔VF2 differences of
//!   0.6–5.0% per event.
//! * **Observation 2**: `CPI − DispatchStalls/inst` is VF-invariant;
//!   the paper measures a 1.7% gap difference.

use crate::common::Context;
use ppep_models::trainer::ComboTrace;
use ppep_pmc::events::EventId;
use ppep_types::Result;
use ppep_workloads::combos::single_threaded_52;

/// The eight core-private events of Observation 1.
pub const OBS1_EVENTS: [EventId; 8] = [
    EventId::RetiredUops,
    EventId::FpuPipeAssignment,
    EventId::InstructionCacheFetches,
    EventId::DataCacheAccesses,
    EventId::RequestsToL2,
    EventId::RetiredBranches,
    EventId::RetiredMispredictedBranches,
    EventId::L2CacheMisses,
];

/// The experiment's result.
#[derive(Debug, Clone)]
pub struct ObservationsResult {
    /// Mean relative VF5↔VF2 difference of per-instruction counts,
    /// one entry per Observation-1 event.
    pub obs1_deltas: Vec<(EventId, f64)>,
    /// Mean relative difference of the `CPI − DSPI` gap.
    pub obs2_delta: f64,
    /// Benchmarks measured.
    pub benchmark_count: usize,
}

fn mean_per_inst(trace: &ComboTrace, event: EventId) -> Option<f64> {
    let mut total_event = 0.0;
    let mut total_inst = 0.0;
    for r in &trace.records {
        let counts = &r.samples[0].counts;
        total_event += counts.get(event);
        total_inst += counts.get(EventId::RetiredInstructions);
    }
    (total_inst > 0.0).then_some(total_event / total_inst)
}

fn mean_gap(trace: &ComboTrace) -> Option<f64> {
    let mut gaps = Vec::new();
    for r in &trace.records {
        let counts = &r.samples[0].counts;
        let (Some(cpi), Some(dspi)) = (counts.cpi(), counts.dispatch_stalls_per_inst()) else {
            continue;
        };
        gaps.push(cpi - dspi);
    }
    (!gaps.is_empty()).then(|| ppep_regress::stats::mean(&gaps))
}

/// Runs the observation study (VF5 vs. VF2, as in the paper).
///
/// # Errors
///
/// Returns an error when no benchmark produced usable traces.
pub fn run(ctx: &Context) -> Result<ObservationsResult> {
    let table = ctx.rig.config().topology.vf_table().clone();
    let vf5 = table.highest();
    let vf2 = table.state(1)?;
    let budget = ctx.scale.budget();
    let roster = match ctx.scale {
        crate::common::Scale::Full => single_threaded_52(ctx.seed),
        crate::common::Scale::Quick => single_threaded_52(ctx.seed)
            .into_iter()
            .step_by(5)
            .take(8)
            .collect(),
    };

    let mut per_event_deltas: Vec<Vec<f64>> = vec![Vec::new(); OBS1_EVENTS.len()];
    let mut gap_deltas = Vec::new();
    for spec in &roster {
        let hi = ctx.rig.collect_run(spec, vf5, &budget);
        let lo = ctx.rig.collect_run(spec, vf2, &budget);
        for (i, &event) in OBS1_EVENTS.iter().enumerate() {
            if let (Some(a), Some(b)) = (mean_per_inst(&hi, event), mean_per_inst(&lo, event)) {
                if a > 0.0 {
                    per_event_deltas[i].push((a - b).abs() / a);
                }
            }
        }
        if let (Some(ga), Some(gb)) = (mean_gap(&hi), mean_gap(&lo)) {
            if ga > 0.0 {
                gap_deltas.push((ga - gb).abs() / ga);
            }
        }
    }
    if gap_deltas.is_empty() {
        return Err(ppep_types::Error::InvalidInput(
            "no benchmark produced usable traces".into(),
        ));
    }
    Ok(ObservationsResult {
        obs1_deltas: OBS1_EVENTS
            .iter()
            .zip(&per_event_deltas)
            .map(|(e, d)| (*e, ppep_regress::stats::mean(d)))
            .collect(),
        obs2_delta: ppep_regress::stats::mean(&gap_deltas),
        benchmark_count: roster.len(),
    })
}

/// Prints the §IV-C1 numbers (paper: 0.6–5.0% for Obs. 1; 1.7% for
/// Obs. 2).
pub fn print(result: &ObservationsResult) {
    println!(
        "== §IV-C1: VF5 vs VF2 invariances over {} benchmarks ==",
        result.benchmark_count
    );
    println!("Observation 1 — per-instruction event deltas:");
    for (e, d) in &result.obs1_deltas {
        println!("  E{} {:<42}: {:.2}%", e.paper_id(), e.name(), d * 100.0);
    }
    println!(
        "Observation 2 — (CPI − DispatchStalls/inst) gap delta: {:.2}%",
        result.obs2_delta * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{Scale, DEFAULT_SEED};

    #[test]
    fn invariances_hold_on_the_simulated_chip() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let r = run(&ctx).unwrap();
        assert_eq!(r.obs1_deltas.len(), 8);
        for (e, d) in &r.obs1_deltas {
            // Paper band: 0.6%..5.0%. Multiplexing and jitter keep the
            // deltas non-zero but small.
            assert!(*d < 0.09, "Obs.1 broken for {e}: {d}");
        }
        assert!(r.obs2_delta < 0.09, "Obs.2 delta {}", r.obs2_delta);
    }
}
