//! Overhead — per-stage latency and framework overhead of the 200 ms
//! online loop (beyond the paper's figures; backs its §V claim that
//! PPEP's online prediction cost is negligible).
//!
//! The Fig. 7 capping scenario (plus a mild fault storm, so the
//! degraded paths are exercised too) runs twice under a supervised
//! daemon: once with the no-op recorder and once with a
//! [`TraceRecorder`] attached. The traced run yields per-stage
//! latency histograms (p50/p95/p99/max), a per-interval framework
//! overhead profile against the 200 ms decision budget, and the full
//! span/event trace for JSONL and Chrome `trace_event` export. The
//! untraced run exists to prove the instrumentation is inert: both
//! runs must produce bit-identical DVFS decisions.

use crate::common::{print_table, Context, Scale};
use crate::fig07_capping::cap_schedule;
use ppep_core::daemon::PpepDaemon;
use ppep_core::resilient::{ResilientDaemon, SupervisorConfig};
use ppep_core::Ppep;
use ppep_dvfs::capping::OneStepCapping;
use ppep_obs::export::{chrome_trace_snapshot, metrics_jsonl, spans_jsonl};
use ppep_obs::{
    OverheadProfile, RecorderHandle, ScorerConfig, Stage, TraceRecorder, TraceSnapshot,
};
use ppep_sim::chip::{ChipSimulator, SimConfig};
use ppep_sim::fault::FaultPlan;
use ppep_sim::SimPlatform;
use ppep_types::{Result, VfStateId};
use ppep_workloads::combos::fig7_workload;
use std::sync::Arc;

/// One pipeline stage's latency summary (all values in microseconds).
#[derive(Debug, Clone)]
pub struct StageRow {
    /// The stage.
    pub stage: Stage,
    /// Spans recorded for it.
    pub count: u64,
    /// Median latency.
    pub p50_us: f64,
    /// 95th-percentile latency.
    pub p95_us: f64,
    /// 99th-percentile latency.
    pub p99_us: f64,
    /// Worst observed latency.
    pub max_us: f64,
}

/// The experiment's result.
#[derive(Debug, Clone)]
pub struct OverheadResult {
    /// Per-stage latency rows, pipeline order.
    pub stages: Vec<StageRow>,
    /// Mean framework compute per interval as a fraction of 200 ms.
    pub mean_fraction: f64,
    /// 95th-percentile framework fraction.
    pub p95_fraction: f64,
    /// Worst-interval framework fraction.
    pub max_fraction: f64,
    /// The decision budget, in milliseconds.
    pub budget_ms: f64,
    /// Intervals the scenario ran for.
    pub intervals: usize,
    /// Whether the traced and untraced runs chose identical VF
    /// assignments on every interval (they must).
    pub identical: bool,
    /// The traced run's full observability snapshot.
    pub snapshot: TraceSnapshot,
}

fn scenario_sim(ctx: &Context, plan: &FaultPlan) -> ChipSimulator {
    let mut sim = ChipSimulator::new(SimConfig::fx8320_pg(ctx.seed));
    sim.load_workload(&fig7_workload(ctx.seed));
    sim.set_fault_plan(plan.clone());
    sim
}

/// One supervised capping run; returns the per-interval decisions.
fn run_once(
    ctx: &Context,
    ppep: &Ppep,
    plan: &FaultPlan,
    intervals: usize,
    period: usize,
    recorder: RecorderHandle,
) -> Result<Vec<Vec<VfStateId>>> {
    let table = ppep.models().vf_table().clone();
    let controller =
        OneStepCapping::new(ppep.clone(), cap_schedule(0, period)).with_recorder(recorder.clone());
    let inner = PpepDaemon::new(
        ppep.clone(),
        SimPlatform::new(scenario_sim(ctx, plan)),
        controller,
    )
    .with_recorder(recorder)
    // Both runs score their own predictions: the traced run exports
    // the accuracy gauges/histograms, and the decision comparison
    // below then also re-checks that scoring is bit-inert.
    .with_scorer(ScorerConfig::default());
    let mut daemon = ResilientDaemon::new(inner, SupervisorConfig::new(table.lowest()));
    let mut decisions = Vec::with_capacity(intervals);
    for step in 0..intervals {
        daemon
            .inner_mut()
            .controller_mut()
            .set_cap(cap_schedule(step, period));
        let s = daemon.step()?;
        decisions.push(s.decision);
    }
    Ok(decisions)
}

/// Runs the scenario untraced and traced and profiles the traced run.
///
/// # Errors
///
/// Propagates training errors and non-transient daemon errors.
pub fn run(ctx: &Context) -> Result<OverheadResult> {
    let models = ctx.train_models()?;
    let ppep = ctx.engine(models);
    let intervals = match ctx.scale {
        Scale::Full => 240,
        Scale::Quick => 48,
    };
    let period = intervals / 6;
    let cores = ppep.models().topology().core_count();
    // Mild storm: enough faults to exercise the degraded paths and
    // fault counters without dominating the trace.
    let plan = FaultPlan::storm(ctx.seed ^ 0x0B5E_CAFE, intervals as u64, 0.05, cores);

    let baseline = run_once(ctx, &ppep, &plan, intervals, period, RecorderHandle::noop())?;
    let recorder = Arc::new(TraceRecorder::new());
    let traced = run_once(
        ctx,
        &ppep,
        &plan,
        intervals,
        period,
        RecorderHandle::new(recorder.clone()),
    )?;
    let identical = baseline == traced;

    let snapshot = recorder.snapshot();
    let profile = OverheadProfile::from_spans(&snapshot.spans);
    let stages = Stage::ALL
        .iter()
        .filter_map(|&stage| {
            let h = snapshot.stage_histogram(stage)?;
            Some(StageRow {
                stage,
                count: h.count(),
                p50_us: h.percentile(0.50),
                p95_us: h.percentile(0.95),
                p99_us: h.percentile(0.99),
                max_us: h.max(),
            })
        })
        .collect();

    Ok(OverheadResult {
        stages,
        mean_fraction: profile.mean_fraction(),
        p95_fraction: profile.fraction_percentile(0.95),
        max_fraction: profile.max_fraction(),
        budget_ms: profile.budget_ns() as f64 / 1e6,
        intervals,
        identical,
        snapshot,
    })
}

/// The traced run's spans as JSON Lines.
pub fn spans_export(r: &OverheadResult) -> String {
    spans_jsonl(&r.snapshot.spans)
}

/// The traced run's spans, events, and gauge counters (including the
/// `accuracy.*` accuracy/drift gauges) as a Chrome `trace_event` JSON
/// document (load in `chrome://tracing` or Perfetto).
pub fn trace_export(r: &OverheadResult) -> String {
    chrome_trace_snapshot(&r.snapshot)
}

/// The traced run's counters, gauges, and histograms as JSON Lines —
/// the per-stage latency histograms next to the `accuracy.*` error
/// histograms.
pub fn metrics_export(r: &OverheadResult) -> String {
    metrics_jsonl(&r.snapshot)
}

/// Prints the per-stage table, an ASCII latency chart, the counters,
/// and the overhead verdict.
pub fn print(result: &OverheadResult) {
    println!("== Overhead: per-stage latency of the 200 ms online loop ==");
    println!(
        "{} intervals, trace-on vs trace-off decisions {}",
        result.intervals,
        if result.identical {
            "identical"
        } else {
            "DIVERGED"
        }
    );
    let rows: Vec<Vec<String>> = result
        .stages
        .iter()
        .map(|s| {
            vec![
                s.stage.name().to_string(),
                s.count.to_string(),
                format!("{:.1}", s.p50_us),
                format!("{:.1}", s.p95_us),
                format!("{:.1}", s.p99_us),
                format!("{:.1}", s.max_us),
            ]
        })
        .collect();
    print_table(
        &["stage", "spans", "p50 us", "p95 us", "p99 us", "max us"],
        &rows,
    );

    // ASCII chart: each stage's p95 latency as a bar, log-ish scaled
    // so the cheap microsecond stages stay visible next to Sample.
    let max_p95 = result.stages.iter().fold(0.0_f64, |m, s| m.max(s.p95_us));
    if max_p95 > 0.0 {
        println!();
        for s in &result.stages {
            let scaled = (1.0 + s.p95_us).ln() / (1.0 + max_p95).ln();
            let width = (scaled * 40.0).round() as usize;
            println!("{:>13} |{}", s.stage.name(), "#".repeat(width));
        }
    }

    println!();
    let interesting = [
        "fault.injected",
        "fault.detected",
        "fault.quarantined",
        "fault.transient",
        "health.transitions",
        "dvfs.vf_transitions",
        "dvfs.cap_violations",
    ];
    for name in interesting {
        let v = result.snapshot.counter(name);
        if v > 0 {
            println!("{name}: {v}");
        }
    }
    if let Some(cpi) = result.snapshot.gauges.get("accuracy.cpi.mean_pct") {
        let power = result
            .snapshot
            .gauges
            .get("accuracy.power.mean_pct")
            .copied()
            .unwrap_or(0.0);
        let drifted = result
            .snapshot
            .gauges
            .get("accuracy.drift.tripped")
            .copied()
            .unwrap_or(0.0)
            > 0.0;
        println!(
            "prediction accuracy: mean CPI err {cpi:.2}% / mean power err {power:.2}% / drift {}",
            if drifted { "TRIPPED" } else { "ok" }
        );
    }
    println!(
        "framework compute per interval: mean {} / p95 {} / max {} of the {:.0} ms budget",
        pct_fine(result.mean_fraction),
        pct_fine(result.p95_fraction),
        pct_fine(result.max_fraction),
        result.budget_ms
    );
}

/// A sub-percent-capable percentage (the overhead fractions are tiny).
fn pct_fine(v: f64) -> String {
    format!("{:.4}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::DEFAULT_SEED;

    #[test]
    fn overhead_run_is_inert_and_cheap() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let r = run(&ctx).unwrap();
        assert!(r.identical, "tracing must not perturb decisions");
        assert_eq!(r.intervals, 48);
        // Every chip-pipeline stage fired at least once; the serve-*
        // stages belong to the capping service and stay silent here.
        let pipeline_stages = Stage::ALL.iter().filter(|s| !s.is_serve()).count();
        assert_eq!(r.stages.len(), pipeline_stages);
        for s in &r.stages {
            assert!(!s.stage.is_serve(), "{} cannot fire here", s.stage.name());
            assert!(s.count > 0, "stage {} never ran", s.stage.name());
            assert!(s.p50_us <= s.p95_us && s.p95_us <= s.p99_us);
        }
        // The framework is far inside the 200 ms budget even with the
        // CI gate's 10x slack.
        assert!(r.mean_fraction < 0.10, "mean {:.4}", r.mean_fraction);
        assert!(r.budget_ms > 199.0 && r.budget_ms < 201.0);
        // The storm and the controller left their counters behind.
        assert!(r.snapshot.counter("fault.injected") > 0);
        assert!(r.snapshot.counter("dvfs.vf_transitions") > 0);
        // The scorer's accuracy view made it into the snapshot and
        // both export formats.
        assert!(r.snapshot.gauges.contains_key("accuracy.cpi.mean_pct"));
        assert!(r.snapshot.histograms.contains_key("accuracy.cpi.err_pct"));
        // Exports are well-formed enough to ship.
        let jsonl = spans_export(&r);
        assert!(jsonl.lines().count() == r.snapshot.spans.len());
        let trace = trace_export(&r);
        assert!(trace.starts_with('{') && trace.trim_end().ends_with('}'));
        assert!(
            trace.contains("\"name\":\"accuracy.cpi.mean_pct\""),
            "accuracy gauges must be visible in the Chrome trace"
        );
        let metrics = metrics_export(&r);
        assert!(
            metrics
                .lines()
                .any(|l| l.contains("accuracy.power.mean_pct")),
            "{metrics}"
        );
    }
}
