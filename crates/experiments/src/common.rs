//! Shared experiment infrastructure: scale presets, trace stores,
//! cross-validation machinery, and table printing.

use ppep_core::{Ppep, ProjectionKernel};
use ppep_models::idle::IdlePowerModel;
use ppep_models::trainer::{ComboTrace, TrainingBudget};
use ppep_models::DynamicPowerModel;
use ppep_regress::KFold;
use ppep_rig::TrainingRig;
use ppep_types::{Result, VfStateId, Watts};
use ppep_workloads::combos::{full_roster, npb_runs, parsec_runs, spec_combos};
use ppep_workloads::{Suite, WorkloadSpec};

/// The default seed all experiments run under (reported in
/// `EXPERIMENTS.md`).
pub const DEFAULT_SEED: u64 = 42;

/// How much simulated time an experiment spends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced rosters and interval counts — used by tests and the
    /// Criterion benches.
    Quick,
    /// The paper-sized configuration (152 combinations, 4-fold CV).
    Full,
}

impl Scale {
    /// The benchmark roster at this scale.
    pub fn roster(&self, seed: u64) -> Vec<WorkloadSpec> {
        match self {
            Scale::Full => full_roster(seed),
            Scale::Quick => {
                // A 16-combo cross-section: 8 SPEC (mixed widths),
                // 4 PARSEC, 4 NPB.
                let mut out: Vec<WorkloadSpec> = Vec::new();
                let spec = spec_combos(seed);
                out.extend(spec.iter().take(4).cloned()); // singles
                out.push(spec[30].clone()); // a double
                out.push(spec[45].clone()); // a triple
                out.push(spec[55].clone()); // a quad
                out.push(spec[14].clone()); // 433.milc single
                let parsec = parsec_runs(seed);
                out.extend(parsec.iter().step_by(13).take(4).cloned());
                let npb = npb_runs(seed);
                out.extend(npb.iter().step_by(11).take(4).cloned());
                out
            }
        }
    }

    /// The training budget at this scale.
    pub fn budget(&self) -> TrainingBudget {
        match self {
            Scale::Full => TrainingBudget::standard(),
            Scale::Quick => TrainingBudget::quick(),
        }
    }

    /// Cross-validation folds (the paper uses 4).
    pub fn folds(&self) -> usize {
        4
    }
}

/// A ready-to-run experiment context: the platform rig and scale.
#[derive(Debug, Clone)]
pub struct Context {
    /// The training/collection rig.
    pub rig: TrainingRig,
    /// The scale preset.
    pub scale: Scale,
    /// The global seed.
    pub seed: u64,
    /// Worker threads for the sweep collections (`--jobs`; 1 = serial).
    pub jobs: usize,
    /// Projection kernel every engine this context builds routes
    /// through (`--kernel`; batch by default).
    pub kernel: ProjectionKernel,
}

impl Context {
    /// An FX-8320 context.
    pub fn fx8320(scale: Scale, seed: u64) -> Self {
        Self {
            rig: TrainingRig::fx8320(seed),
            scale,
            seed,
            jobs: 1,
            kernel: ProjectionKernel::default(),
        }
    }

    /// A Phenom II context.
    pub fn phenom_ii_x6(scale: Scale, seed: u64) -> Self {
        Self {
            rig: TrainingRig::phenom_ii_x6(seed),
            scale,
            seed,
            jobs: 1,
            kernel: ProjectionKernel::default(),
        }
    }

    /// Sets the sweep worker count (clamped to at least 1).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Sets the projection kernel for engines built via
    /// [`Context::engine`].
    #[must_use]
    pub fn with_kernel(mut self, kernel: ProjectionKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Wraps trained models in an engine routed through this
    /// context's kernel — the one construction path every experiment
    /// uses, so `--kernel` reaches them all.
    pub fn engine(&self, models: ppep_models::trainer::TrainedModels) -> Ppep {
        Ppep::new(models).with_kernel(self.kernel)
    }

    /// Trains the full model bundle (idle + α + dynamic + GG) on this
    /// context's roster, and attaches the PG decomposition.
    ///
    /// # Errors
    ///
    /// Propagates training errors.
    pub fn train_models(&self) -> Result<ppep_models::trainer::TrainedModels> {
        let roster = self.scale.roster(self.seed);
        let budget = self.scale.budget();
        let models = self.rig.train(&roster, &budget)?;
        let sweep = self.rig.collect_pg_sweep(&budget);
        let pg = ppep_models::pg::PgIdleModel::fit(&sweep, self.rig.config().topology.cu_count())?;
        Ok(models.with_pg(pg))
    }
}

/// All traces of one roster across a set of VF states.
#[derive(Debug, Clone)]
pub struct TraceStore {
    traces: Vec<ComboTrace>,
}

impl TraceStore {
    /// Runs every `(combo, vf)` pair once and stores the traces.
    pub fn collect(
        rig: &TrainingRig,
        roster: &[WorkloadSpec],
        vfs: &[VfStateId],
        budget: &TrainingBudget,
    ) -> Self {
        Self::collect_sharded(rig, roster, vfs, budget, 1)
    }

    /// [`Self::collect`] sharded across `jobs` worker threads.
    ///
    /// Every `(combo, vf)` cell builds its own freshly seeded
    /// simulator inside [`TrainingRig::collect_run`], so the stored
    /// traces are identical — byte for byte in any derived CSV — for
    /// every worker count.
    pub fn collect_sharded(
        rig: &TrainingRig,
        roster: &[WorkloadSpec],
        vfs: &[VfStateId],
        budget: &TrainingBudget,
        jobs: usize,
    ) -> Self {
        let cells = roster.len() * vfs.len();
        let (traces, _obs) = crate::fleet::map_indexed(cells, jobs, |index, rec| {
            // Row-major over the roster: index = spec * vfs.len() + vf.
            let spec = &roster[index / vfs.len().max(1)];
            let vf = vfs[index % vfs.len().max(1)];
            let trace = rig.collect_run(spec, vf, budget);
            rec.add("fleet.cells", 1);
            trace
        });
        Self { traces }
    }

    /// All stored traces.
    pub fn traces(&self) -> &[ComboTrace] {
        &self.traces
    }

    /// The trace of one combo at one state.
    pub fn get(&self, name: &str, vf: VfStateId) -> Option<&ComboTrace> {
        self.traces.iter().find(|t| t.name == name && t.vf == vf)
    }

    /// Distinct combo names, in first-seen order.
    pub fn combo_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for t in &self.traces {
            if !names.contains(&t.name) {
                names.push(t.name.clone());
            }
        }
        names
    }

    /// The suite of a combo.
    pub fn suite_of(&self, name: &str) -> Option<Suite> {
        self.traces.iter().find(|t| t.name == name).map(|t| t.suite)
    }
}

/// Shared machinery for the Fig. 2/3 cross-validated model studies:
/// the workload-independent models (idle, α) plus per-fold dynamic
/// model fitting on the VF5 traces of the training combos.
#[derive(Debug, Clone)]
pub struct CvMachinery {
    /// The fitted idle model.
    pub idle: IdlePowerModel,
    /// The calibrated voltage exponent.
    pub alpha: f64,
    /// The fold splitter over combo indices.
    pub folds: KFold,
    /// Combo names in fold-index order.
    pub names: Vec<String>,
}

impl CvMachinery {
    /// Builds the machinery: fits idle + α, splits combos into folds.
    ///
    /// # Errors
    ///
    /// Propagates fitting errors.
    pub fn build(
        rig: &TrainingRig,
        store: &TraceStore,
        budget: &TrainingBudget,
        k: usize,
    ) -> Result<Self> {
        let idle_samples = rig.collect_idle_traces(budget);
        let idle = IdlePowerModel::fit(&idle_samples)?;
        let alpha = rig.calibrate_alpha(&idle, budget)?;
        let names = store.combo_names();
        let folds = KFold::new_shuffled(names.len(), k, rig.seed())?;
        Ok(Self {
            idle,
            alpha,
            folds,
            names,
        })
    }

    /// Fits the dynamic model for one fold (training on every combo
    /// *not* in the fold, at the chip's top state).
    ///
    /// # Errors
    ///
    /// Propagates fitting errors.
    pub fn fit_fold(
        &self,
        fold: usize,
        rig: &TrainingRig,
        store: &TraceStore,
    ) -> Result<DynamicPowerModel> {
        let table = rig.config().topology.vf_table().clone();
        let vf_top = table.highest();
        let mut samples = Vec::new();
        for &i in &self.folds.train_indices(fold) {
            let name = &self.names[i];
            let trace = store.get(name, vf_top).ok_or_else(|| {
                ppep_types::Error::InvalidInput(format!("missing VF-top trace for {name}"))
            })?;
            for record in &trace.records {
                samples.push(TrainingRig::dyn_sample_from(record, &self.idle, &table)?);
            }
        }
        DynamicPowerModel::fit(
            &samples,
            self.alpha,
            table.point(vf_top).voltage,
            ppep_models::trainer::DEFAULT_RIDGE_LAMBDA,
        )
    }

    /// The fold that holds out a given combo index, or `None` when
    /// the index is outside the partition.
    pub fn fold_of(&self, combo_index: usize) -> Option<usize> {
        (0..self.folds.k()).find(|&f| self.folds.test_indices(f).contains(&combo_index))
    }

    /// The held-out fold model for a combo index.
    ///
    /// # Errors
    ///
    /// Returns [`ppep_types::Error::InvalidInput`] when the index is
    /// outside the k-fold partition.
    pub fn fold_model<'m, M>(&self, fold_models: &'m [M], combo_index: usize) -> Result<&'m M> {
        let fold = self.fold_of(combo_index).ok_or_else(|| {
            ppep_types::Error::InvalidInput(format!(
                "combo {combo_index} is not covered by any cross-validation fold"
            ))
        })?;
        fold_models.get(fold).ok_or_else(|| {
            ppep_types::Error::InvalidInput(format!("no model trained for fold {fold}"))
        })
    }
}

/// Smallest value of a series, or `None` when the series is empty —
/// the non-panicking fold for possibly-empty report series.
pub fn series_min(values: impl IntoIterator<Item = f64>) -> Option<f64> {
    values.into_iter().reduce(f64::min)
}

/// Largest value of a series, or `None` when the series is empty.
pub fn series_max(values: impl IntoIterator<Item = f64>) -> Option<f64> {
    values.into_iter().reduce(f64::max)
}

/// `(min, max)` of a series, or `None` when the series is empty.
pub fn series_range(values: &[f64]) -> Option<(f64, f64)> {
    let mut it = values.iter().copied();
    let first = it.next()?;
    Some(it.fold((first, first), |(lo, hi), v| (lo.min(v), hi.max(v))))
}

/// Per-suite, per-VF aggregation used by the Fig. 2 style outputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuiteErrors {
    /// Mean of the per-combo AAEs (the figure's bar).
    pub mean: f64,
    /// Standard deviation of the per-combo AAEs (the figure's cross).
    pub std_dev: f64,
    /// Number of combos aggregated.
    pub count: usize,
}

impl SuiteErrors {
    /// Aggregates per-combo errors.
    pub fn of(errors: &[f64]) -> Option<Self> {
        if errors.is_empty() {
            return None;
        }
        let mean = ppep_regress::stats::mean(errors);
        let std_dev = ppep_regress::stats::std_dev(errors);
        Some(Self {
            mean,
            std_dev,
            count: errors.len(),
        })
    }
}

/// Renders a simple fixed-width text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats watts with one decimal.
pub fn w(v: Watts) -> String {
    format!("{:.1} W", v.as_watts())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_roster_is_a_cross_section() {
        let roster = Scale::Quick.roster(DEFAULT_SEED);
        assert_eq!(roster.len(), 16);
        let suites: std::collections::BTreeSet<_> = roster.iter().map(|w| w.suite()).collect();
        assert!(suites.contains(&Suite::SpecCpu2006));
        assert!(suites.contains(&Suite::Parsec));
        assert!(suites.contains(&Suite::Npb));
        // Contains multi-programmed SPEC widths.
        assert!(roster.iter().any(|w| w.thread_count() == 4));
    }

    #[test]
    fn full_roster_is_the_paper_roster() {
        assert_eq!(Scale::Full.roster(DEFAULT_SEED).len(), 152);
        assert_eq!(Scale::Full.folds(), 4);
    }

    #[test]
    fn trace_store_lookup() {
        let rig = TrainingRig::fx8320(7);
        let roster = vec![ppep_workloads::combos::instances("403.gcc", 1, 7)];
        let table = rig.config().topology.vf_table().clone();
        let mut budget = TrainingBudget::quick();
        budget.warmup_intervals = 2;
        budget.record_intervals = 3;
        let vfs = [table.lowest(), table.highest()];
        let store = TraceStore::collect(&rig, &roster, &vfs, &budget);
        assert_eq!(store.traces().len(), 2);
        assert!(store.get("403.gcc x1", table.lowest()).is_some());
        assert!(store.get("403.gcc x1", table.highest()).is_some());
        assert!(store.get("nope", table.lowest()).is_none());
        assert_eq!(store.combo_names(), vec!["403.gcc x1"]);
        assert_eq!(store.suite_of("403.gcc x1"), Some(Suite::SpecCpu2006));
    }

    #[test]
    fn suite_errors_aggregation() {
        assert!(SuiteErrors::of(&[]).is_none());
        let s = SuiteErrors::of(&[0.04, 0.06]).unwrap();
        assert!((s.mean - 0.05).abs() < 1e-12);
        assert_eq!(s.count, 2);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.0456), "4.6%");
        assert_eq!(w(Watts::new(12.345)), "12.3 W");
    }
}
