//! Resilience — the Fig. 7 power-capping scenario replayed under a
//! deterministic fault storm (beyond the paper).
//!
//! The paper's daemon trusts its plumbing; this experiment does not.
//! Both an unprotected [`PpepDaemon`] and a supervised
//! [`ResilientDaemon`] drive the one-step capping policy over the
//! Fig. 7 workload while a seeded [`FaultPlan`] drops sensor
//! readings, freezes the diode, fails MSR reads, and overruns
//! intervals. A sensor dropout is pinned into the first high-cap
//! phase, so the unprotected daemon is guaranteed to abort while the
//! chip runs fast — and then has nobody to throttle it when the cap
//! drops. The supervisor absorbs the same faults by holding its last
//! good projection (or pinning the failsafe state), keeping the cap
//! enforced.
//!
//! Reported per daemon: decision availability (intervals with an
//! informed DVFS decision) and cap adherence (intervals at or under
//! the in-force cap, measured against the simulator's hidden true
//! power).

use crate::common::Context;
use crate::fig07_capping::cap_schedule;
use ppep_core::daemon::PpepDaemon;
use ppep_core::resilient::{HealthReport, ResilientDaemon, SupervisorConfig};
use ppep_core::{Platform, Ppep};
use ppep_dvfs::capping::OneStepCapping;
use ppep_sim::chip::{ChipSimulator, SimConfig};
use ppep_sim::fault::{FaultKind, FaultPlan};
use ppep_sim::SimPlatform;
use ppep_types::{Error, Result, Watts};
use ppep_workloads::combos::fig7_workload;

/// One daemon's survival statistics.
#[derive(Debug, Clone)]
pub struct DaemonOutcome {
    /// Intervals for which the daemon made an informed DVFS decision.
    pub decided_intervals: usize,
    /// Intervals the scenario ran for.
    pub total_intervals: usize,
    /// `decided_intervals / total_intervals`.
    pub decision_availability: f64,
    /// Fraction of observable steady-state intervals at or under the
    /// in-force cap (hidden true power, 3% slack, skipping the
    /// interval after each downward cap edge).
    pub adherence: f64,
    /// The error that killed the daemon, if one did.
    pub aborted_by: Option<Error>,
    /// The interval the daemon died on, if it died.
    pub aborted_at: Option<usize>,
}

/// The experiment's result.
#[derive(Debug, Clone)]
pub struct ResilienceResult {
    /// The unprotected daemon (aborts on the first erroring fault).
    pub unprotected: DaemonOutcome,
    /// The supervised daemon.
    pub supervised: DaemonOutcome,
    /// The supervisor's health bookkeeping.
    pub health: HealthReport,
    /// Total faults scheduled.
    pub faults_injected: usize,
    /// Intervals with at least one erroring (measurement-losing)
    /// fault.
    pub erroring_intervals: usize,
}

/// The shared fault schedule: a seeded storm, plus one guaranteed
/// sensor dropout in the middle of the first high-cap phase — the
/// worst possible moment for an unprotected daemon to die, since the
/// chip is running fast and the 40 W phase is coming.
pub fn fault_schedule(seed: u64, intervals: usize, period: usize, cores: usize) -> FaultPlan {
    FaultPlan::storm(seed ^ 0x5E11_F0CC, intervals as u64, 0.15, cores)
        .with((period / 2) as u64, FaultKind::SensorDropout)
}

fn scenario_sim(ctx: &Context, plan: &FaultPlan) -> ChipSimulator {
    let mut sim = ChipSimulator::new(SimConfig::fx8320_pg(ctx.seed));
    sim.load_workload(&fig7_workload(ctx.seed));
    sim.set_fault_plan(plan.clone());
    sim
}

/// Cap adherence over a trace of hidden true powers (`None` where the
/// measurement — and hence the truth snapshot — was lost).
fn adherence(power: &[Option<Watts>], period: usize) -> f64 {
    let mut under = 0usize;
    let mut counted = 0usize;
    for (step, p) in power.iter().enumerate().skip(1) {
        if cap_schedule(step, period) < cap_schedule(step - 1, period) {
            continue; // no controller can anticipate the edge
        }
        let Some(p) = p else { continue };
        counted += 1;
        if *p <= cap_schedule(step, period) * 1.03 {
            under += 1;
        }
    }
    under as f64 / counted.max(1) as f64
}

fn run_unprotected(
    ctx: &Context,
    ppep: &Ppep,
    plan: &FaultPlan,
    intervals: usize,
    period: usize,
) -> Result<DaemonOutcome> {
    let controller = OneStepCapping::new(ppep.clone(), cap_schedule(0, period));
    let mut daemon = PpepDaemon::new(
        ppep.clone(),
        SimPlatform::new(scenario_sim(ctx, plan)),
        controller,
    );
    let mut power: Vec<Option<Watts>> = Vec::with_capacity(intervals);
    let mut decided = 0usize;
    let mut aborted_by: Option<Error> = None;
    let mut aborted_at: Option<usize> = None;
    for step in 0..intervals {
        if aborted_by.is_none() {
            daemon.controller_mut().set_cap(cap_schedule(step, period));
            match daemon.step() {
                Ok(s) => {
                    decided += 1;
                    power.push(Some(s.record.true_power.total()));
                }
                Err(e) => {
                    aborted_by = Some(e);
                    aborted_at = Some(step);
                    power.push(None);
                }
            }
        } else {
            // The daemon is dead but the chip is not: it freewheels at
            // the last applied VF assignment while time (and the cap
            // schedule) marches on.
            match daemon.platform_mut().sample() {
                Ok(r) => power.push(Some(r.true_power.total())),
                Err(_) => power.push(None),
            }
        }
    }
    Ok(DaemonOutcome {
        decided_intervals: decided,
        total_intervals: intervals,
        decision_availability: decided as f64 / intervals as f64,
        adherence: adherence(&power, period),
        aborted_by,
        aborted_at,
    })
}

fn run_supervised(
    ctx: &Context,
    ppep: &Ppep,
    plan: &FaultPlan,
    intervals: usize,
    period: usize,
) -> Result<(DaemonOutcome, HealthReport)> {
    let table = ppep.models().vf_table().clone();
    let controller = OneStepCapping::new(ppep.clone(), cap_schedule(0, period));
    let inner = PpepDaemon::new(
        ppep.clone(),
        SimPlatform::new(scenario_sim(ctx, plan)),
        controller,
    );
    let mut daemon = ResilientDaemon::new(inner, SupervisorConfig::new(table.lowest()));
    let mut power: Vec<Option<Watts>> = Vec::with_capacity(intervals);
    for step in 0..intervals {
        daemon
            .inner_mut()
            .controller_mut()
            .set_cap(cap_schedule(step, period));
        let s = daemon.step()?; // all injected faults are transient
        power.push(s.record.as_ref().map(|r| r.true_power.total()));
    }
    let report = daemon.report().clone();
    let decided = (report.fresh_decisions + report.held_decisions) as usize;
    Ok((
        DaemonOutcome {
            decided_intervals: decided,
            total_intervals: intervals,
            decision_availability: report.decision_availability(),
            adherence: adherence(&power, period),
            aborted_by: None,
            aborted_at: None,
        },
        report,
    ))
}

/// Runs the scenario for both daemons under the identical fault plan.
///
/// # Errors
///
/// Propagates training errors and non-transient daemon errors.
pub fn run(ctx: &Context) -> Result<ResilienceResult> {
    let models = ctx.train_models()?;
    let ppep = ctx.engine(models);
    let intervals = match ctx.scale {
        crate::common::Scale::Full => 300,
        crate::common::Scale::Quick => 90,
    };
    let period = intervals / 6;
    let cores = ppep.models().topology().core_count();
    let plan = fault_schedule(ctx.seed, intervals, period, cores);

    let unprotected = run_unprotected(ctx, &ppep, &plan, intervals, period)?;
    let (supervised, health) = run_supervised(ctx, &ppep, &plan, intervals, period)?;
    Ok(ResilienceResult {
        unprotected,
        supervised,
        health,
        faults_injected: plan.len(),
        erroring_intervals: plan.erroring_intervals(intervals as u64),
    })
}

/// Prints the resilience summary.
pub fn print(result: &ResilienceResult) {
    println!("== Resilience: Fig. 7 capping under a fault storm ==");
    println!(
        "faults: {} scheduled, {} intervals lose their measurement outright",
        result.faults_injected, result.erroring_intervals
    );
    let line = |label: &str, o: &DaemonOutcome| {
        let fate = match (&o.aborted_by, o.aborted_at) {
            (Some(e), Some(at)) => format!("ABORTED at interval {at}: {e}"),
            _ => "completed".to_string(),
        };
        println!(
            "{label}: decisions {}/{} ({}), cap adherence {}, {fate}",
            o.decided_intervals,
            o.total_intervals,
            crate::common::pct(o.decision_availability),
            crate::common::pct(o.adherence),
        );
    };
    line("unprotected", &result.unprotected);
    line("supervised ", &result.supervised);
    let h = &result.health;
    println!(
        "supervisor: {} fresh, {} held, {} failsafe-pinned, {} quarantined, \
         {} transient errors absorbed",
        h.fresh_decisions,
        h.held_decisions,
        h.failsafe_intervals,
        h.quarantined,
        h.transient_errors
    );
    let path: Vec<String> = h
        .transitions
        .iter()
        .map(|(i, s)| format!("{s}@{i}"))
        .collect();
    if !path.is_empty() {
        println!("health transitions: healthy@0 -> {}", path.join(" -> "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{Scale, DEFAULT_SEED};

    #[test]
    fn supervised_daemon_survives_where_unprotected_aborts() {
        let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
        let r = run(&ctx).unwrap();

        // The guaranteed dropout (at the latest) kills the unprotected
        // daemon inside the first high-cap phase.
        assert!(
            r.unprotected.aborted_by.is_some(),
            "unprotected daemon must abort"
        );
        assert!(r.unprotected.aborted_at.unwrap() <= 90 / 6 / 2);
        assert!(r.unprotected.decision_availability < 0.5);

        // The supervised daemon completes the whole scenario with an
        // informed decision on >= 90% of intervals.
        assert!(r.supervised.aborted_by.is_none());
        assert!(
            r.supervised.decision_availability >= 0.9,
            "availability {:.3}",
            r.supervised.decision_availability
        );

        // ... and materially better cap adherence: the dead daemon
        // leaves the chip fast through every 40 W phase.
        assert!(
            r.supervised.adherence >= r.unprotected.adherence + 0.1,
            "adherence: supervised {:.3} vs unprotected {:.3}",
            r.supervised.adherence,
            r.unprotected.adherence
        );

        // The storm actually bit the supervisor.
        assert!(r.health.transient_errors > 0);
        assert_eq!(
            r.health.transient_errors as usize
                + r.health.quarantined as usize
                + r.supervised.decided_intervals
                - r.health.held_decisions as usize,
            r.supervised.total_intervals,
            "every interval is either fresh, held, or pinned"
        );
    }

    #[test]
    fn fault_schedule_is_deterministic() {
        let a = fault_schedule(7, 90, 15, 8);
        let b = fault_schedule(7, 90, 15, 8);
        assert_eq!(a, b);
        // The pinned dropout is always present.
        assert!(a.kinds_at(7).any(|k| matches!(k, FaultKind::SensorDropout)));
    }
}
