use ppep_experiments::common::{Context, Scale, DEFAULT_SEED};
use ppep_models::trainer::TrainingRig;
use ppep_sim::chip::SimConfig;

fn main() {
    let ctx = Context::fx8320(Scale::Quick, DEFAULT_SEED);
    let budget = ctx.scale.budget();
    let roster = ctx.scale.roster(ctx.seed);
    let (train, _) = roster.split_at(roster.len() * 3 / 4);
    for (label, ideal_pmu, ideal_sensor) in
        [("realistic", false, false), ("ideal_pmu", true, false), ("both", true, true)]
    {
        let mut cfg = SimConfig::fx8320(ctx.seed);
        cfg.ideal_pmu = ideal_pmu;
        cfg.ideal_sensor = ideal_sensor;
        let rig = TrainingRig::with_config(cfg, ctx.seed);
        let m = rig.train(train, &budget).unwrap();
        print!("{label:>12}: alpha {:.2} weights(nJ):", m.alpha());
        for w in m.dynamic_model().weights() {
            print!(" {:.2}", w * 1e9);
        }
        println!();
    }
}
