//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The real crate cannot be fetched in the sandboxed reproduction
//! environment, so this shim reimplements the API surface the
//! workspace's property tests rely on: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!`, range and collection
//! strategies, `any::<bool>()`, `prop::num::f64::NORMAL`, `prop_map`,
//! and the `TestRunner`/`ValueTree` pair. Failing cases report the
//! case number and generated inputs; there is **no shrinking** — a
//! deliberate trade for zero dependencies.
//!
//! Cases are generated from a fixed seed so failures are reproducible
//! run-to-run (set `PROPTEST_SEED` to explore a different stream).

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Strategy combinators and the [`Strategy`] trait.
pub mod strategy {
    use super::*;

    /// A source of generated values.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Produces a (non-shrinking) value tree, mirroring the real
        /// crate's `Strategy::new_tree`.
        ///
        /// # Errors
        ///
        /// Never fails in this shim; the `Result` mirrors upstream.
        fn new_tree(
            &self,
            runner: &mut crate::test_runner::TestRunner,
        ) -> Result<SingleValueTree<Self::Value>, String>
        where
            Self::Value: Clone,
        {
            Ok(SingleValueTree {
                value: self.generate(runner.rng_mut()),
            })
        }
    }

    /// A generated value without shrink structure.
    #[derive(Debug, Clone)]
    pub struct SingleValueTree<T> {
        pub(crate) value: T,
    }

    impl<T: Clone + std::fmt::Debug> ValueTree for SingleValueTree<T> {
        type Value = T;
        fn current(&self) -> T {
            self.value.clone()
        }
    }

    /// The value-tree interface (`current` only; no shrinking).
    pub trait ValueTree {
        /// The type of value the tree holds.
        type Value;
        /// The current value.
        fn current(&self) -> Self::Value;
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.start..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::*;
    use crate::strategy::Strategy;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value of the type.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over all values of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::*;
    use crate::strategy::Strategy;

    /// A size specification: fixed or ranged.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            Self {
                lo,
                hi_inclusive: hi,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and
    /// whose length comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Numeric strategies (`prop::num::f64::NORMAL`).
pub mod num {
    /// `f64` strategies.
    pub mod f64 {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy over "normal" (finite, non-subnormal, non-zero)
        /// floats, spread over several orders of magnitude so both the
        /// integer and fractional parts vary.
        #[derive(Debug, Clone, Copy)]
        pub struct NormalF64;

        /// The canonical instance.
        pub const NORMAL: NormalF64 = NormalF64;

        impl Strategy for NormalF64 {
            type Value = f64;
            fn generate(&self, rng: &mut StdRng) -> f64 {
                let magnitude: f64 = rng.gen_range(1e-3_f64..1e6);
                let sign = if rng.gen_range(0u32..2) == 0 {
                    1.0
                } else {
                    -1.0
                };
                sign * magnitude
            }
        }
    }
}

/// The test runner and its configuration.
pub mod test_runner {
    use super::*;

    /// How many cases to run, mirroring `ProptestConfig`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    /// Upstream-compatible alias.
    pub type ProptestConfig = Config;

    impl Config {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// The error a failing property case reports.
    pub type TestCaseError = String;

    /// Drives case generation for one property.
    #[derive(Debug)]
    pub struct TestRunner {
        config: Config,
        rng: StdRng,
    }

    impl TestRunner {
        /// A runner with the given config and the deterministic
        /// default seed (override with `PROPTEST_SEED`).
        #[must_use]
        pub fn new(config: Config) -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x5EED_CAFE_F00D_u64);
            Self {
                config,
                rng: StdRng::seed_from_u64(seed),
            }
        }

        /// The number of cases to run.
        #[must_use]
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The runner's generator.
        pub fn rng_mut(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }

    impl Default for TestRunner {
        fn default() -> Self {
            Self::new(Config::default())
        }
    }
}

/// Everything a property-test module conventionally imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Strategy, ValueTree};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop` namespace (`prop::collection`, `prop::num`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
    }
}

/// Declares property tests. Supports an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions
/// whose arguments are drawn from strategies:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

/// Internal: expands each property function. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            for case in 0..runner.cases() {
                $(let $arg = $crate::strategy::Strategy::generate(
                    &($strat),
                    runner.rng_mut(),
                );)+
                // Render inputs before the body gets a chance to move
                // them; only `Debug` is needed.
                let inputs =
                    [$(format!(concat!(stringify!($arg), " = {:?}"), $arg)),+].join(", ");
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!("proptest case {case} failed: {message}\n  inputs: {inputs}");
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Skips the current case when `cond` is false. The real crate
/// retries with fresh inputs; this shim simply counts the case as
/// passed, which preserves soundness (never hides a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// `assert!` that reports through the proptest failure path.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// `assert_eq!` through the proptest failure path.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// `assert_ne!` through the proptest failure path.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Doc comments and extra attributes survive expansion.
        #[test]
        fn ranges_stay_in_bounds(a in 5u64..10, b in 0.25f64..0.75, flag in any::<bool>()) {
            prop_assert!((5..10).contains(&a));
            prop_assert!((0.25..0.75).contains(&b));
            prop_assert!(u8::from(flag) <= 1);
        }

        #[test]
        fn vec_strategy_respects_sizes(
            xs in prop::collection::vec(0u32..100, 3),
            ys in prop::collection::vec(0u32..100, 1..5),
        ) {
            prop_assert_eq!(xs.len(), 3);
            prop_assert!((1..5).contains(&ys.len()));
        }

        #[test]
        fn normal_floats_are_finite_nonzero(v in prop::num::f64::NORMAL) {
            prop_assert!(v.is_finite());
            prop_assert_ne!(v, 0.0);
        }

        #[test]
        fn prop_map_applies(v in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn new_tree_and_current_work() {
        let mut runner = crate::test_runner::TestRunner::default();
        let v = (2.0f64..3.0).new_tree(&mut runner).unwrap().current();
        assert!((2.0..3.0).contains(&v));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// Extra attributes pass through to the generated test, so the
        /// failure path is testable with `should_panic`.
        #[test]
        #[should_panic(expected = "proptest case")]
        fn failures_report_inputs(x in 0u32..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }
}
