//! Property tests over the chip simulator's physical invariants.

use ppep_pmc::EventId;
use ppep_sim::chip::{ChipSimulator, SimConfig};
use ppep_workloads::combos::instances;
use proptest::prelude::*;

const BENCH_POOL: [&str; 6] = ["458.sjeng", "433.milc", "403.gcc", "canneal", "EP", "CG"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Ground-truth power decomposition always sums to its total, the
    /// sensor stays within noise of it, and counters are physical
    /// (finite, non-negative) — for any workload mix, VF state, and
    /// gating setting.
    #[test]
    fn physical_invariants_hold(
        bench_idx in 0usize..BENCH_POOL.len(),
        threads in 1usize..=8,
        vf_idx in 0usize..5,
        pg in any::<bool>(),
        seed in 0u64..200,
    ) {
        let config = if pg { SimConfig::fx8320_pg(seed) } else { SimConfig::fx8320(seed) };
        let mut sim = ChipSimulator::new(config);
        sim.load_workload(&instances(BENCH_POOL[bench_idx], threads, seed));
        let table = sim.topology().vf_table().clone();
        sim.set_all_vf(table.state(vf_idx).unwrap());
        for record in sim.run_intervals(4) {
            // Decomposition identity.
            let total = record.true_power.total().as_watts();
            let parts = record.true_power.dynamic_total().as_watts()
                + record.true_power.idle_total().as_watts();
            prop_assert!((total - parts).abs() < 1e-9);
            prop_assert!(total > 0.0 && total < 300.0, "total {total}");
            // Sensor within ~6 sigma of truth.
            let rel =
                (record.measured_power.as_watts() - total).abs() / total.max(1.0);
            prop_assert!(rel < 0.10, "sensor off by {rel}");
            // Counters physical.
            for counts in &record.true_counts {
                prop_assert!(counts.is_finite());
                prop_assert!(counts.is_non_negative());
                // Memory cycles can never exceed unhalted cycles.
                prop_assert!(
                    counts.get(EventId::MabWaitCycles)
                        <= counts.get(EventId::CpuClocksNotHalted) + 1e-6
                );
            }
            // Busy-core flags match the retired counts.
            for (busy, counts) in record.core_busy.iter().zip(&record.true_counts) {
                prop_assert_eq!(
                    *busy,
                    counts.get(EventId::RetiredInstructions) > 0.0
                );
            }
            prop_assert!(record.busy_cu_count(sim.topology()) <= 4);
        }
    }

    /// The same seed reproduces the same run bit-exactly, and a
    /// different seed changes the measurements — for any configuration.
    #[test]
    fn determinism_in_the_seed(
        bench_idx in 0usize..BENCH_POOL.len(),
        threads in 1usize..=4,
        seed in 0u64..100,
    ) {
        let run = |s: u64| {
            let mut sim = ChipSimulator::new(SimConfig::fx8320(s));
            sim.load_workload(&instances(BENCH_POOL[bench_idx], threads, s));
            let r = sim.run_intervals(2).pop().unwrap();
            (r.measured_power, r.true_counts[0])
        };
        let (p1, c1) = run(seed);
        let (p2, c2) = run(seed);
        prop_assert_eq!(p1, p2);
        prop_assert_eq!(c1, c2);
        let (p3, _) = run(seed + 1);
        prop_assert_ne!(p1, p3, "different seeds must perturb the run");
    }

    /// Lower VF states never increase true chip power for the same
    /// workload (monotone ladder).
    #[test]
    fn power_is_monotone_in_vf(
        bench_idx in 0usize..BENCH_POOL.len(),
        threads in 1usize..=8,
    ) {
        let mut last = f64::INFINITY;
        let table = ppep_types::VfTable::fx8320();
        for vf in table.states().rev() {
            let mut sim = ChipSimulator::new(SimConfig::fx8320(42));
            sim.load_workload(&instances(BENCH_POOL[bench_idx], threads, 42));
            sim.set_all_vf(vf);
            let record = sim.run_intervals(3).pop().unwrap();
            let p = record.true_power.total().as_watts();
            prop_assert!(
                p <= last * 1.02,
                "power must fall down the ladder: {p} after {last} at {vf}"
            );
            last = p;
        }
    }
}
