//! OS-facing device facades: `hwmon` and `/dev/cpu/N/msr`.
//!
//! The paper's userspace daemon reads temperature "through the hwmon
//! tree in sysfs" and counters via `msr-tools` (§II). These facades
//! reproduce those interfaces over the simulator, so code written
//! against the OS surface (string-typed sysfs attributes, per-core MSR
//! device nodes) ports across.

use crate::chip::ChipSimulator;
use ppep_types::{CoreId, Error, Result};

/// A sysfs-hwmon-style view of the socket thermal diode.
///
/// Linux hwmon exposes temperatures in *millidegrees Celsius* as
/// decimal strings; `temp1_input` is the conventional first sensor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hwmon;

impl Hwmon {
    /// Reads a named attribute, as `cat /sys/class/hwmon/.../<name>`
    /// would.
    ///
    /// Supported attributes: `temp1_input` (millidegrees C),
    /// `temp1_label`, `name`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Device`] for unknown attribute names.
    pub fn read(self, sim: &ChipSimulator, attribute: &str) -> Result<String> {
        match attribute {
            "temp1_input" => {
                let milli = sim.temperature().to_celsius().as_celsius() * 1000.0;
                Ok(format!("{}", milli.round() as i64))
            }
            "temp1_label" => Ok("CPU Temperature".to_string()),
            "name" => Ok("ppep_socket".to_string()),
            other => Err(Error::Device(format!("hwmon: no attribute {other:?}"))),
        }
    }

    /// Convenience: the diode temperature in degrees Celsius, parsed
    /// back from the sysfs string (exactly the round trip a userspace
    /// daemon performs).
    ///
    /// # Errors
    ///
    /// Propagates attribute errors.
    pub fn temperature_celsius(self, sim: &ChipSimulator) -> Result<f64> {
        let milli: f64 = self
            .read(sim, "temp1_input")?
            .parse()
            .map_err(|_| Error::Device("hwmon: unparsable temp1_input".into()))?;
        Ok(milli / 1000.0)
    }
}

/// A `/dev/cpu/N/msr`-style read path into each core's performance
/// counter registers.
///
/// Only reads are exposed: the simulator's PMU owns counter
/// programming (as the kernel's perf subsystem would), and a stray
/// external `wrmsr` would corrupt its multiplexing bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
pub struct MsrBus;

impl MsrBus {
    /// Reads an MSR on a specific core, as
    /// `rdmsr -p <core> <address>` would.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownCore`] for out-of-range cores and
    /// [`Error::Device`] for addresses outside the PMC block.
    pub fn rdmsr(self, sim: &ChipSimulator, core: CoreId, address: u32) -> Result<u64> {
        let pmu = sim.core_pmu(core)?;
        pmu.msr().rdmsr(address)
    }

    /// Dumps the six `(PERF_CTL, PERF_CTR)` pairs of one core — the
    /// `rdmsr`-loop a diagnostic script would run.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownCore`] for out-of-range cores.
    pub fn dump_pmc_block(self, sim: &ChipSimulator, core: CoreId) -> Result<Vec<(u32, u64, u64)>> {
        use ppep_pmc::msr::{PERF_CTL_BASE, SLOT_COUNT};
        let mut out = Vec::with_capacity(SLOT_COUNT);
        for slot in 0..SLOT_COUNT as u32 {
            let ctl_addr = PERF_CTL_BASE + 2 * slot;
            let ctl = self.rdmsr(sim, core, ctl_addr)?;
            let ctr = self.rdmsr(sim, core, ctl_addr + 1)?;
            out.push((ctl_addr, ctl, ctr));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::SimConfig;
    use ppep_pmc::msr::PERF_CTL_BASE;
    use ppep_types::Kelvin;
    use ppep_workloads::combos::instances;

    fn sim() -> ChipSimulator {
        let mut sim = ChipSimulator::new(SimConfig::fx8320(42));
        sim.load_workload(&instances("458.sjeng", 2, 42));
        sim
    }

    #[test]
    fn hwmon_reports_millidegrees() {
        let mut sim = sim();
        sim.set_temperature(Kelvin::new(320.65)); // 47.5 °C
        let raw = Hwmon.read(&sim, "temp1_input").unwrap();
        assert_eq!(raw, "47500");
        let c = Hwmon.temperature_celsius(&sim).unwrap();
        assert!((c - 47.5).abs() < 1e-9);
        assert_eq!(Hwmon.read(&sim, "name").unwrap(), "ppep_socket");
        assert!(Hwmon.read(&sim, "temp9_input").is_err());
    }

    #[test]
    fn msr_bus_reads_live_counters() {
        let mut sim = sim();
        let core = CoreId(0);
        let before = MsrBus.dump_pmc_block(&sim, core).unwrap();
        assert_eq!(before.len(), 6);
        // Every CTL has its enable bit set (the PMU programmed them).
        for (_, ctl, _) in &before {
            assert!(ctl & ppep_pmc::msr::CTL_ENABLE_BIT != 0);
        }
        // Counters move as the core executes.
        let _ = sim.run_intervals(2);
        let after = MsrBus.dump_pmc_block(&sim, core).unwrap();
        let moved = before
            .iter()
            .zip(&after)
            .any(|((_, _, b), (_, _, a))| a != b);
        assert!(moved, "running two intervals must advance some counter");
        // Idle cores' counters stay parked at zero.
        let idle = MsrBus.dump_pmc_block(&sim, CoreId(7)).unwrap();
        assert!(idle.iter().all(|(_, _, ctr)| *ctr == 0));
    }

    #[test]
    fn msr_bus_error_paths() {
        let sim = sim();
        assert!(MsrBus.rdmsr(&sim, CoreId(99), PERF_CTL_BASE).is_err());
        assert!(MsrBus.rdmsr(&sim, CoreId(0), 0xC000_0000).is_err());
    }
}
